//! Collusion economics: what false reception reports actually buy
//! (§III-A4 and §IV-D).
//!
//! ```sh
//! cargo run --release --example collusion_economics
//! ```
//!
//! First the analytics: the probability that a transaction's requestor
//! *and* payee both fall inside a colluder set, for growing set sizes.
//! Then a simulated swarm where all free-riders collude: they finally
//! download something — at dial-up-class rates.

use tchain_analysis::collusion::{ps_exact, ps_monte_carlo, ps_paper};
use tchain_experiments::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};

fn main() {
    println!("Collusion success probability (N = 1000 peers, b = 50 neighbors)\n");
    println!("{:>10}  {:>12}  {:>12}  {:>12}", "colluders", "paper form", "exact", "monte-carlo");
    for m in [5usize, 20, 50, 100, 250] {
        println!(
            "{:>10}  {:>12.2e}  {:>12.2e}  {:>12.2e}",
            m,
            ps_paper(1000, m, 50),
            ps_exact(1000, m, 50),
            ps_monte_carlo(1000, m, 50, 50_000, 9)
        );
    }
    println!("\nEven 5% of the swarm colluding succeeds on <1% of transactions —");
    println!("and every failed transaction still burns the donor's §II-D2 ledger.\n");

    let n = 60;
    let plan = flash_plan(n, 0.25, RiderMode::Colluding, 11);
    let out = run_proto(
        Proto::TChain,
        4.0,
        plan,
        11,
        Horizon::ExtendForFreeRiders(6000.0),
        RunOpts::default(),
    );
    let compliant = out.mean_compliant().unwrap_or(f64::NAN);
    println!("Simulated T-Chain swarm, {n} leechers, 25% *colluding* free-riders:");
    println!("  compliant completion : {compliant:.0} s");
    match out.mean_free_rider() {
        Some(fr) => println!(
            "  colluder completion  : {fr:.0} s  ({:.1}x slower than compliant)",
            fr / compliant
        ),
        None => println!(
            "  colluder completion  : none finished ({} still stuck)",
            out.unfinished_free_riders
        ),
    }
    println!("\nCollusion turns \"never\" into \"eventually\" — the paper's §IV-D conclusion.");
}
