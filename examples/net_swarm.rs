//! Boot a real in-process swarm on the `tchain-net` runtime.
//!
//! ```sh
//! cargo run --release --example net_swarm
//! ```
//!
//! Unlike `quickstart` (which runs the fluid simulator), every exchange
//! here moves actual bytes: eight peers on a deterministic channel mesh
//! trade genuinely ChaCha20-encrypted pieces, keys are released only
//! against reception reports (§II-B), and one peer free-rides to show
//! the incentive bite. Prints per-peer completions and chain stats.

use tchain_net::{run_swarm, SwarmConfig};

fn main() {
    let cfg = SwarmConfig { peers: 8, seed: 0xCAFE, ..SwarmConfig::default() }.with_free_riders(1);
    let report = run_swarm(cfg).expect("mesh transport");

    println!(
        "tchain-net swarm — {} peers ({} free-riding) sharing {} pieces over `{}`",
        report.peers, report.free_riders, report.pieces, report.backend
    );
    println!(
        "  finished leechers : {}/{} compliant, {}/{} free-riders",
        report.completed_compliant,
        report.total_compliant,
        report.completed_free_riders,
        report.free_riders
    );
    println!(
        "  run               : {} ticks ({:.1} virtual s), frame digest {:016x}",
        report.ticks, report.elapsed, report.fingerprint
    );
    println!(
        "  plaintexts        : {}",
        if report.plaintext_ok { "byte-identical to the source" } else { "CORRUPT" }
    );
    println!(
        "  audit             : {} key releases checked, {} violations",
        report.key_releases,
        report.violations.len()
    );
    println!(
        "  traffic           : {} encrypted uploads, {} gifts, {} reports, {} escrow transfers",
        report.uploads, report.gifts, report.reports, report.escrow_transfers
    );
    println!(
        "  chains            : {} started, mean length {:.2}, max {}, {} terminated (§II-B3)",
        report.chains_started, report.mean_chain_len, report.max_chain_len, report.chains_terminated
    );

    println!("  per peer          :");
    for (id, c) in &report.peer_counters {
        let done = report
            .completion_times
            .iter()
            .find(|(p, _)| p == id)
            .map(|(_, t)| format!("done at {t:>6.1}s"))
            .unwrap_or_else(|| {
                if *id == 0 { "seeder       ".into() } else { "incomplete   ".into() }
            });
        println!(
            "    peer {id:>2}: {done}  {} decrypted, {} gifted, {} keys sent, {} reports sent, {} escrowed",
            c.decrypted, c.unencrypted, c.keys_sent, c.reports_sent, c.escrowed
        );
    }

    for v in &report.violations {
        eprintln!("  VIOLATION: {v}");
    }
    assert!(report.ok(), "run must satisfy every protocol invariant");
}
