//! The Fig. 1 triangle, step by step, with *real bytes and real keys*.
//!
//! ```sh
//! cargo run --release --example triangle_walkthrough
//! ```
//!
//! Plays the paper's initiation-phase message sequence between three
//! participants A (seeder/donor), B (requestor) and C (payee) using the
//! actual ChaCha20 keyring from `tchain-crypto`, showing why neither
//! party can gain by stopping early: B's piece is ciphertext until the
//! reciprocation report releases the key.

use tchain_crypto::Keyring;

fn main() {
    // The file pieces A holds (tiny stand-ins for 64 KB pieces).
    let pi1: Vec<u8> = b"piece #1: the bytes B asked A for".to_vec();
    let pi2: Vec<u8> = b"piece #2: the bytes C wants from B".to_vec();

    println!("T-Chain initiation phase (Fig. 1a) with real crypto\n");

    // Step 1: A encrypts pi1 under a fresh key and sends [null | K[pi1] | C]
    // to B — "you must reciprocate to C".
    let mut a_ring = Keyring::new(0xA);
    let (k1_id, k1) = a_ring.mint();
    let ct1 = k1.apply_to_vec(&pi1);
    println!("1) A → B : [null | K{{pi1}} | payee=C]  ({} ciphertext bytes, key {k1_id} withheld)", ct1.len());
    assert_ne!(ct1, pi1, "B cannot read the piece yet");

    // Step 2: B reciprocates by uploading pi2 (encrypted under B's own
    // fresh key) to C, quoting the transaction it pays for.
    let mut b_ring = Keyring::new(0xB);
    let (k2_id, k2) = b_ring.mint();
    let ct2 = k2.apply_to_vec(&pi2);
    println!("2) B → C : [(pi1, A) | K{{pi2}} | payee=D]  ({} ciphertext bytes, key {k2_id} withheld)", ct2.len());

    // Step 3: C confirms receipt to A (a few bytes — §III-C calls this
    // negligible next to a piece upload).
    println!("3) C → A : reception report r_C = [B | pi1]  (~{} bytes)", 16);

    // Step 4: A releases K{pi1}; B decrypts and the first transaction
    // completes. B's reciprocation already *started* the second one.
    let k1_released = a_ring.release(k1_id).expect("A still holds the key");
    let pt1 = k1_released.apply_to_vec(&ct1);
    println!("4) A → B : key {k1_id} released");
    assert_eq!(pt1, pi1);
    println!("   B decrypts pi1 successfully: {:?}", String::from_utf8_lossy(&pt1));

    // Replays fail: the key is single-release.
    assert!(a_ring.release(k1_id).is_none());
    println!("\n   (replayed release attempts return nothing — one key, one piece)");

    // What a cheater gets: C never reports, A never releases, B holds
    // useless ciphertext.
    let mut cheat_ring = Keyring::new(0xC);
    let (_, wrong) = cheat_ring.mint();
    let garbage = wrong.apply_to_vec(&ct2);
    assert_ne!(garbage, pi2);
    println!("   (decrypting with any other key yields garbage — cheating buys nothing)");
}
