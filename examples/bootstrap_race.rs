//! Bootstrap race: the §III-B analytical models vs the simulator.
//!
//! ```sh
//! cargo run --release --example bootstrap_race
//! ```
//!
//! Iterates the paper's discrete-time bootstrapping models (eqs. 1–6) for
//! a flash crowd and compares against a simulated T-Chain swarm's actual
//! time-to-first-completed-piece — the claim of Propositions III.1/III.2
//! made tangible.

use tchain_analysis::bootstrap::{trajectory, BootstrapParams, BootstrapState, PieceDistribution};
use tchain_attacks::PeerPlan;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_proto::{FileSpec, Role, SwarmConfig};
use tchain_workloads::{flash_crowd, CapacityClasses};

fn main() {
    // Analytical race.
    let params = BootstrapParams::default();
    let dist = PieceDistribution::uniform(100);
    let s0 = BootstrapState { x: 300.0, y: 0.0, n: 600.0 };
    let bt = trajectory(s0, &params, None, 12);
    let tc = trajectory(s0, &params, Some(&dist), 12);
    println!("§III-B model: fraction of peers still un-bootstrapped (x+y)/n\n");
    println!("{:>4}  {:>10}  {:>8}", "slot", "BitTorrent", "T-Chain");
    for t in 0..=12 {
        println!("{t:>4}  {:>10.3}  {:>8.3}", bt[t], tc[t]);
    }
    println!(
        "\nω' = {:.3}, ω'' = {:.4}; with K = {} chains/peer the flash-crowd condition (Prop. III.1) favours T-Chain.",
        dist.omega_prime(),
        dist.omega_double_prime(),
        params.k_chains
    );

    // Simulated bootstrapping: time from join to first completed piece.
    let n = 100;
    let file = FileSpec::tchain(4.0);
    let times = flash_crowd(n, 10.0, 5);
    let caps = CapacityClasses::default().assign(n, 5);
    let plan: Vec<PeerPlan> =
        times.into_iter().zip(caps).map(|(at, c)| PeerPlan::compliant(at, c)).collect();
    let mut sw = TChainSwarm::new(SwarmConfig::paper(file), TChainConfig::default(), plan, 5);
    // Track first-piece times by sampling.
    let mut first_piece: Vec<Option<f64>> = vec![None; n + 1];
    while sw.base().peers.iter_alive().any(|p| p.role == Role::Leecher)
        && sw.base().clock.now() < 5_000.0
    {
        sw.step();
        let now = sw.base().clock.now();
        for p in sw.base().peers.iter_alive() {
            if p.role == Role::Leecher && p.have.count() > 0 {
                let slot = &mut first_piece[p.id.index().min(n)];
                if slot.is_none() {
                    *slot = Some(now - p.join_time);
                }
            }
        }
    }
    let mut boots: Vec<f64> = first_piece.into_iter().flatten().collect();
    boots.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!("\nSimulated T-Chain swarm of {n}: time from join to first completed piece");
    println!("  bootstrapped peers : {}", boots.len());
    if !boots.is_empty() {
        println!("  median             : {:.1} s", boots[boots.len() / 2]);
        println!("  90th percentile    : {:.1} s", boots[(boots.len() * 9 / 10).min(boots.len() - 1)]);
    }
    println!("\nBarrier-free entry: newcomers forward their first encrypted piece (§II-D1).");
}
