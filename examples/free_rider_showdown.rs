//! Free-rider showdown: the paper's §IV-C story in one run per protocol.
//!
//! ```sh
//! cargo run --release --example free_rider_showdown
//! ```
//!
//! A quarter of the swarm contributes nothing and mounts the large-view
//! exploit plus whitewashing. BitTorrent, PropShare and FairTorrent all
//! let them finish; T-Chain starves every one of them while compliant
//! leechers stay fast.

use tchain_experiments::{flash_plan, fmt_opt, run_proto, Horizon, Proto, RiderMode, RunOpts};

fn main() {
    let n = 80;
    let file_mib = 4.0;
    println!(
        "Free-rider showdown — {n} leechers, 25% free-riders (large-view + whitewash), {file_mib} MiB\n"
    );
    println!(
        "{:>14}  {:>16}  {:>16}  {:>9}",
        "protocol", "compliant (s)", "free-rider (s)", "FR done"
    );
    for proto in Proto::main_four() {
        let plan = flash_plan(n, 0.25, RiderMode::Aggressive, 42);
        let out = run_proto(
            proto,
            file_mib,
            plan,
            42,
            Horizon::ExtendForFreeRiders(4000.0),
            RunOpts::default(),
        );
        let total_fr = out.free_rider_times.len() + out.unfinished_free_riders;
        println!(
            "{:>14}  {:>16}  {:>16}  {:>8}%",
            proto.name(),
            fmt_opt(out.mean_compliant()),
            fmt_opt(out.mean_free_rider()),
            (100 * out.free_rider_times.len()).checked_div(total_fr).unwrap_or(0)
        );
    }
    println!("\nT-Chain *prevents* free-riding instead of merely penalizing it (§IV-C).");
}
