//! Quickstart: run a small T-Chain swarm and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 16 MiB file swarm with 40 heterogeneous leechers joining as a
//! flash crowd, runs the full T-Chain protocol (triangle transactions,
//! pay-it-forward chains, flow control, opportunistic seeding) to
//! completion, and prints per-peer and chain-level statistics.

use tchain_attacks::PeerPlan;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_metrics::Summary;
use tchain_proto::{FileSpec, SwarmConfig};
use tchain_workloads::{flash_crowd, CapacityClasses};

fn main() {
    let n = 40;
    let file = FileSpec::tchain(16.0); // 16 MiB in 64 KB pieces
    let times = flash_crowd(n, 10.0, 7);
    let caps = CapacityClasses::default().assign(n, 7);
    let plan: Vec<PeerPlan> = times
        .into_iter()
        .zip(caps)
        .map(|(at, capacity)| PeerPlan::compliant(at, capacity))
        .collect();

    let mut swarm = TChainSwarm::new(SwarmConfig::paper(file), TChainConfig::default(), plan, 7);
    swarm.run_until_done();

    let completions = swarm.completion_times(true);
    let summary = Summary::of(&completions);
    println!("T-Chain quickstart — {n} leechers sharing {} MiB", file.file_size() / 1048576.0);
    println!("  finished leechers       : {}/{n}", completions.len());
    println!("  download completion time: {summary} s");
    println!("  uplink utilization      : {:.1}%", swarm.base().mean_uplink_utilization() * 100.0);
    let (direct, indirect) = swarm.reciprocity_split();
    println!("  transactions            : {} completed, {} aborted", swarm.txns_completed(), swarm.txns_aborted());
    println!("  reciprocity             : {direct} direct, {indirect} indirect (pay-it-forward)");
    let stats = swarm.chain_stats();
    println!(
        "  chains                  : {} by seeder, {} opportunistic, mean length {:.1} transactions",
        stats.created_by_seeder,
        stats.created_by_leechers,
        stats.mean_length()
    );
    let fairness = swarm.fairness_factors();
    println!("  mean fairness factor    : {:.2} (1.0 = give exactly what you take)",
        fairness.iter().sum::<f64>() / fairness.len().max(1) as f64);
}
