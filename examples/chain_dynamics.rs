//! Chain dynamics: watch T-Chain's pay-it-forward chains grow and drain
//! (the Fig. 10/11 mechanics) as an ASCII strip chart.
//!
//! ```sh
//! cargo run --release --example chain_dynamics
//! ```

use tchain_attacks::PeerPlan;
use tchain_core::{ChainOrigin, TChainConfig, TChainSwarm};
use tchain_proto::{FileSpec, Role, SwarmConfig};
use tchain_workloads::{flash_crowd, CapacityClasses};

fn main() {
    let n = 80;
    let file = FileSpec::tchain(6.0);
    let times = flash_crowd(n, 10.0, 3);
    let caps = CapacityClasses::default().assign(n, 3);
    let plan: Vec<PeerPlan> = times
        .into_iter()
        .zip(caps)
        .map(|(at, c)| PeerPlan::compliant(at, c))
        .collect();
    let mut sw = TChainSwarm::new(SwarmConfig::paper(file), TChainConfig::default(), plan, 3);

    println!("Active chains (#) and alive leechers (o) over time — flash crowd of {n}\n");
    let mut peak = 1.0f64;
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    loop {
        for _ in 0..10 {
            sw.step();
        }
        let now = sw.base().clock.now();
        let chains = sw.chain_stats().active as f64;
        let leechers = sw
            .base()
            .peers
            .iter_alive()
            .filter(|p| p.role == Role::Leecher)
            .count() as f64;
        peak = peak.max(chains);
        rows.push((now, chains, leechers));
        if (leechers == 0.0 && now > 30.0) || now > 10_000.0 {
            break;
        }
    }
    let width = 58.0;
    for (t, chains, leechers) in &rows {
        let c = ((chains / peak) * width) as usize;
        let l = ((*leechers / n as f64) * width) as usize;
        let mut bar = vec![' '; width as usize + 1];
        for x in bar.iter_mut().take(c) {
            *x = '#';
        }
        if l < bar.len() {
            bar[l] = 'o';
        }
        println!("{:>6.0}s |{}| {:>5.0} chains", t, bar.iter().collect::<String>(), chains);
    }
    let s = sw.chain_stats();
    println!("\nchains created: {} by the seeder, {} opportunistically by leechers", s.created_by_seeder, s.created_by_leechers);
    println!("chain endings : {} natural terminations, {} departures, {} stalls, {} collusion", s.ended_no_payee, s.ended_departure, s.ended_stalled, s.ended_collusion);
    println!("mean chain length: {:.1} transactions", s.mean_length());
    let _ = ChainOrigin::Seeder; // re-exported for API completeness
}
