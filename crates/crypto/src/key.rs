//! Per-transaction key management for T-Chain.
//!
//! §II-B (footnote 2): "each key is used to encrypt only one file piece and
//! never used thereafter … using new keys ensures that the recipient cannot
//! guess the key from previous transactions." A donor's [`Keyring`] mints a
//! fresh random key per transaction (the `K^{ij}_{D,R}` of Table I) and
//! releases it only when the reciprocation report arrives.

use crate::chacha::{self, KeyBytes, Nonce};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Opaque handle naming a minted key without revealing it, e.g. inside a
/// simulated `[null | K[p]| payee]` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A 256-bit symmetric key together with the nonce used for its single
/// piece. Sent to the requestor only upon reciprocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PieceKey {
    key: KeyBytes,
    nonce: Nonce,
}

impl PieceKey {
    /// Encrypts (or, symmetrically, decrypts) `data` in place.
    pub fn apply(&self, data: &mut [u8]) {
        chacha::apply(&self.key, 0, &self.nonce, data);
    }

    /// Encrypts `data` into a new vector.
    pub fn apply_to_vec(&self, data: &[u8]) -> Vec<u8> {
        chacha::apply_to_vec(&self.key, 0, &self.nonce, data)
    }

    /// Serialized size in bytes of (key, nonce), used for the §III-C space
    /// overhead accounting and by the wire format's `KeyRelease` payload.
    pub const WIRE_SIZE: usize =
        std::mem::size_of::<KeyBytes>() + std::mem::size_of::<Nonce>();

    /// Serializes the key for a `KeyRelease` frame: `key ‖ nonce`.
    pub fn to_wire_bytes(&self) -> [u8; Self::WIRE_SIZE] {
        let mut out = [0u8; Self::WIRE_SIZE];
        out[..self.key.len()].copy_from_slice(&self.key);
        out[self.key.len()..].copy_from_slice(&self.nonce);
        out
    }

    /// Reconstructs a key from its `key ‖ nonce` wire form.
    pub fn from_wire_bytes(wire: &[u8; Self::WIRE_SIZE]) -> Self {
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        key.copy_from_slice(&wire[..32]);
        nonce.copy_from_slice(&wire[32..]);
        PieceKey { key, nonce }
    }
}

/// A donor's collection of minted-but-unreleased piece keys.
///
/// ```
/// use tchain_crypto::Keyring;
/// let mut ring = Keyring::new(42);
/// let (id, key) = ring.mint();
/// let mut piece = b"some piece bytes".to_vec();
/// key.apply(&mut piece); // donor encrypts before uploading
/// // ...requestor reciprocates; payee reports; donor releases the key:
/// let released = ring.release(id).expect("key still held");
/// let mut back = piece.clone();
/// released.apply(&mut back);
/// assert_eq!(back, b"some piece bytes");
/// ```
#[derive(Debug)]
pub struct Keyring {
    rng: SmallRng,
    next: u64,
    held: HashMap<KeyId, PieceKey>,
}

impl Keyring {
    /// Creates a keyring seeded for reproducible simulations.
    pub fn new(seed: u64) -> Self {
        Keyring { rng: SmallRng::seed_from_u64(seed), next: 0, held: HashMap::new() }
    }

    /// Mints a fresh key, storing it until release.
    pub fn mint(&mut self) -> (KeyId, PieceKey) {
        let mut key = [0u8; 32];
        self.rng.fill(&mut key);
        let mut nonce = [0u8; 12];
        self.rng.fill(&mut nonce[..]);
        let id = KeyId(self.next);
        self.next += 1;
        let pk = PieceKey { key, nonce };
        self.held.insert(id, pk);
        (id, pk)
    }

    /// Looks at a held key without releasing it.
    pub fn peek(&self, id: KeyId) -> Option<&PieceKey> {
        self.held.get(&id)
    }

    /// Releases (removes and returns) a key once reciprocation is reported.
    /// Returns `None` if the key was never minted or already released —
    /// double-release is how a colluding payee could try to replay reports,
    /// so callers should treat `None` as "nothing to send".
    pub fn release(&mut self, id: KeyId) -> Option<PieceKey> {
        self.held.remove(&id)
    }

    /// Number of keys minted so far.
    pub fn minted(&self) -> u64 {
        self.next
    }

    /// Number of keys currently held (unreleased).
    pub fn held_count(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_release_roundtrip() {
        let mut ring = Keyring::new(1);
        let (id, k) = ring.mint();
        assert_eq!(ring.held_count(), 1);
        let data = vec![1u8, 2, 3, 4, 5];
        let ct = k.apply_to_vec(&data);
        assert_ne!(ct, data);
        let released = ring.release(id).unwrap();
        assert_eq!(released.apply_to_vec(&ct), data);
        assert_eq!(ring.held_count(), 0);
    }

    #[test]
    fn double_release_returns_none() {
        let mut ring = Keyring::new(2);
        let (id, _) = ring.mint();
        assert!(ring.release(id).is_some());
        assert!(ring.release(id).is_none());
    }

    #[test]
    fn keys_are_unique_per_transaction() {
        let mut ring = Keyring::new(3);
        let (a_id, a) = ring.mint();
        let (b_id, b) = ring.mint();
        assert_ne!(a_id, b_id);
        assert_ne!(a, b, "fresh key material every transaction (§II-B fn.2)");
    }

    #[test]
    fn different_seeds_different_keys() {
        let (_, a) = Keyring::new(10).mint();
        let (_, b) = Keyring::new(11).mint();
        assert_ne!(a, b);
    }

    #[test]
    fn wire_size_matches_space_overhead_model() {
        // §III-C3: 256-bit keys; our wire size also carries the 96-bit nonce.
        assert_eq!(PieceKey::WIRE_SIZE, 44);
    }

    #[test]
    fn wire_bytes_roundtrip_preserves_keystream() {
        let (_, k) = Keyring::new(7).mint();
        let back = PieceKey::from_wire_bytes(&k.to_wire_bytes());
        assert_eq!(back, k);
        let data = b"piece bytes over the wire".to_vec();
        assert_eq!(back.apply_to_vec(&k.apply_to_vec(&data)), data);
    }
}
