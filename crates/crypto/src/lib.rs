//! # tchain-crypto — symmetric primitives for the almost-fair exchange
//!
//! T-Chain's enforcement mechanism is cryptographic but deliberately
//! lightweight: a donor uploads a piece encrypted under a fresh symmetric
//! key and releases the key only after the designated payee confirms
//! reciprocation (paper §II-B). This crate provides:
//!
//! * [`chacha`] — a from-scratch ChaCha20 stream cipher (RFC 8439, with the
//!   RFC's test vectors), used both by the real-bytes examples and by the
//!   §III-C overhead benchmarks;
//! * [`Keyring`]/[`PieceKey`]/[`KeyId`] — per-transaction key management
//!   with the "one key per piece, never reused" policy of §II-B.
//!
//! The swarm simulator moves *accounting* rather than real bytes, but it
//! still mints real keys through [`Keyring`] so that the exchange-protocol
//! invariants (no decryption before release, unique keys, replayed-release
//! detection) are enforced by the same code a real client would run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha;
mod key;

pub use chacha::{apply, apply_to_vec, block, KeyBytes, Nonce};
pub use key::{KeyId, Keyring, PieceKey};
