//! A from-scratch ChaCha20 stream cipher (RFC 8439).
//!
//! T-Chain's almost-fair exchange rests on a *lightweight symmetric* cipher:
//! the donor encrypts each piece with a fresh key and withholds the key
//! until reciprocation (§II-B). §III-C argues the cost is negligible
//! ("0.715 ms per 128 KB piece"); the `crypto` criterion bench measures the
//! same quantity for this implementation.
//!
//! Because encryption is XOR with a keystream, `apply` both encrypts and
//! decrypts. No external crypto crates are used.

/// A 256-bit ChaCha20 key.
pub type KeyBytes = [u8; 32];
/// A 96-bit nonce. T-Chain derives it from the transaction id so every
/// (key, piece) pair uses a unique stream.
pub type Nonce = [u8; 12];

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn initial_state(key: &KeyBytes, counter: u32, nonce: &Nonce) -> [u32; 16] {
    let mut s = [0u32; 16];
    s[..4].copy_from_slice(&CONSTANTS);
    for (i, w) in key.chunks_exact(4).enumerate() {
        s[4 + i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
    }
    s[12] = counter;
    for (i, w) in nonce.chunks_exact(4).enumerate() {
        s[13 + i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
    }
    s
}

/// Computes one 64-byte keystream block (the RFC 8439 `chacha20_block`
/// function).
pub fn block(key: &KeyBytes, counter: u32, nonce: &Nonce) -> [u8; 64] {
    let init = initial_state(key, counter, nonce);
    let mut s = init;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = s[i].wrapping_add(init[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream into `data` in place, starting from block
/// `counter` (1 in RFC 8439's encryption examples; we use 0 for pieces).
///
/// Applying the function twice with the same parameters restores the input,
/// which is exactly the donor-withholds-the-key mechanism of §II-B: an
/// encrypted piece is useless until the matching key arrives.
pub fn apply(key: &KeyBytes, counter: u32, nonce: &Nonce, data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

/// Convenience wrapper returning a new vector instead of mutating in place.
pub fn apply_to_vec(key: &KeyBytes, counter: u32, nonce: &Nonce, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    apply(key, counter, nonce, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1 quarter-round test vector.
    #[test]
    fn rfc8439_quarter_round() {
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    fn test_key() -> KeyBytes {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_function() {
        let key = test_key();
        let nonce: Nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expected);
    }

    /// RFC 8439 §2.4.2 encryption test vector (first block of ciphertext).
    #[test]
    fn rfc8439_encryption_prefix() {
        let key = test_key();
        let nonce: Nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let ct = apply_to_vec(&key, 1, &nonce, plaintext);
        let expected_prefix: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&ct[..16], &expected_prefix);
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let key = test_key();
        let nonce: Nonce = [7; 12];
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut buf = data.clone();
        apply(&key, 0, &nonce, &mut buf);
        assert_ne!(buf, data, "ciphertext must differ from plaintext");
        apply(&key, 0, &nonce, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn wrong_key_does_not_decrypt() {
        let key = test_key();
        let mut wrong = key;
        wrong[0] ^= 1;
        let nonce: Nonce = [3; 12];
        let data = vec![0xAAu8; 256];
        let ct = apply_to_vec(&key, 0, &nonce, &data);
        let bad = apply_to_vec(&wrong, 0, &nonce, &ct);
        assert_ne!(bad, data);
    }

    #[test]
    fn empty_input_is_fine() {
        let key = test_key();
        let nonce: Nonce = [0; 12];
        let mut empty: Vec<u8> = Vec::new();
        apply(&key, 0, &nonce, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn non_multiple_of_block_size() {
        let key = test_key();
        let nonce: Nonce = [1; 12];
        for len in [1usize, 63, 64, 65, 127, 129] {
            let data = vec![0x55u8; len];
            let ct = apply_to_vec(&key, 0, &nonce, &data);
            assert_eq!(ct.len(), len);
            let pt = apply_to_vec(&key, 0, &nonce, &ct);
            assert_eq!(pt, data);
        }
    }
}
