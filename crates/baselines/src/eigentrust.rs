//! A compact EigenTrust model (Kamvar et al., §V) for Table II.
//!
//! EigenTrust is the paper's representative *indirect reciprocity*
//! (reputation) scheme. We model the part Table II judges: peers rate
//! each other from direct interactions, global trust is the stationary
//! vector of the normalized local-trust matrix (power iteration with
//! pre-trusted-peer damping), and uploaders allocate bandwidth
//! proportionally to global trust — with a fixed share reserved for
//! zero-trust newcomers ("in EigenTrust, 10% of each participant's
//! resources are allotted for newcomers", §V).
//!
//! The model is a round-based allocation game rather than a full swarm:
//! enough to reproduce the qualitative columns — reputations *do* starve
//! honest-looking free-riders, but **false praise** within a colluding
//! clique inflates trust, and whitewashing resets to the newcomer share.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Behaviour of a modelled peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actor {
    /// Uploads honestly and rates honestly.
    Honest,
    /// Never uploads; rated 0 by honest peers.
    FreeRider,
    /// Uploads a token amount (10 % of honest) to prime its reputation,
    /// then clique members amplify each other with maximal ratings
    /// (false praise, §III-A4 / Table II "False Praise").
    Colluder,
}

/// Round-based EigenTrust allocation model.
#[derive(Debug)]
pub struct EigenTrustModel {
    actors: Vec<Actor>,
    /// Local trust `c[i][j]`: i's normalized rating of j.
    local: Vec<Vec<f64>>,
    /// Global trust vector.
    global: Vec<f64>,
    /// Share of bandwidth reserved for zero-trust newcomers.
    newcomer_share: f64,
    /// Damping toward the pre-trusted set (the honest seed peers).
    damping: f64,
    received: Vec<f64>,
    rng: SmallRng,
}

impl EigenTrustModel {
    /// Builds a model over the given actors.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two peers.
    pub fn new(actors: Vec<Actor>, seed: u64) -> Self {
        let n = actors.len();
        assert!(n >= 2, "need at least two peers");
        EigenTrustModel {
            local: vec![vec![0.0; n]; n],
            global: vec![1.0 / n as f64; n],
            newcomer_share: 0.1,
            damping: 0.15,
            received: vec![0.0; n],
            rng: SmallRng::seed_from_u64(seed),
            actors,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// `true` when the model has no peers (never constructible).
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Global trust of peer `i`.
    pub fn trust(&self, i: usize) -> f64 {
        self.global[i]
    }

    /// Cumulative service received by peer `i`.
    pub fn received(&self, i: usize) -> f64 {
        self.received[i]
    }

    /// Resets a peer to a fresh identity (whitewashing): all ratings of
    /// and by it are forgotten.
    pub fn whitewash(&mut self, i: usize) {
        let n = self.len();
        for j in 0..n {
            self.local[i][j] = 0.0;
            self.local[j][i] = 0.0;
        }
        self.global[i] = 0.0;
    }

    /// Plays one round: every honest peer serves one unit of bandwidth,
    /// split between trust-proportional allocation and the newcomer
    /// reserve; ratings update from who actually served whom.
    pub fn round(&mut self) {
        let n = self.len();
        for i in 0..n {
            let effort = match self.actors[i] {
                Actor::Honest => 1.0,
                Actor::Colluder => 0.1, // token service to prime ratings
                Actor::FreeRider => continue,
            };
            let total_trust: f64 = (0..n).filter(|&j| j != i).map(|j| self.global[j]).sum();
            for j in 0..n {
                if j == i {
                    continue;
                }
                let proportional = if total_trust > 0.0 {
                    effort * (1.0 - self.newcomer_share) * self.global[j] / total_trust
                } else {
                    0.0
                };
                self.received[j] += proportional;
            }
            // Newcomer reserve: one random zero-trust peer.
            let zeros: Vec<usize> =
                (0..n).filter(|&j| j != i && self.global[j] < 1e-9).collect();
            if !zeros.is_empty() {
                let j = zeros[self.rng.gen_range(0..zeros.len())];
                self.received[j] += effort * self.newcomer_share;
            }
            // Uploaders earn truthful positive ratings in proportion to
            // the service they actually rendered.
            for j in 0..n {
                if j != i {
                    self.local[j][i] += effort;
                }
            }
        }
        // False praise within colluding cliques.
        for i in 0..n {
            if self.actors[i] == Actor::Colluder {
                for j in 0..n {
                    if j != i && self.actors[j] == Actor::Colluder {
                        self.local[i][j] += 5.0;
                    }
                }
            }
        }
        self.recompute_global();
    }

    /// Power iteration on the normalized local-trust matrix with damping
    /// toward the pre-trusted honest seeds.
    fn recompute_global(&mut self) {
        let n = self.len();
        let pre: Vec<f64> = {
            let honest = self.actors.iter().filter(|&&a| a == Actor::Honest).count().max(1);
            self.actors
                .iter()
                .map(|&a| if a == Actor::Honest { 1.0 / honest as f64 } else { 0.0 })
                .collect()
        };
        let mut t = pre.clone();
        for _ in 0..30 {
            let mut next = vec![0.0; n];
            for (i, row) in self.local.iter().enumerate() {
                let sum: f64 = row.iter().sum();
                if sum <= 0.0 {
                    continue;
                }
                for j in 0..n {
                    next[j] += t[i] * row[j] / sum;
                }
            }
            for (j, v) in next.iter_mut().enumerate() {
                *v = (1.0 - self.damping) * *v + self.damping * pre[j];
            }
            t = next;
        }
        self.global = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed(honest: usize, riders: usize, colluders: usize) -> EigenTrustModel {
        let mut a = vec![Actor::Honest; honest];
        a.extend(std::iter::repeat_n(Actor::FreeRider, riders));
        a.extend(std::iter::repeat_n(Actor::Colluder, colluders));
        EigenTrustModel::new(a, 7)
    }

    #[test]
    fn honest_peers_earn_trust_riders_do_not() {
        let mut m = mixed(10, 3, 0);
        for _ in 0..20 {
            m.round();
        }
        let honest_trust: f64 = (0..10).map(|i| m.trust(i)).sum::<f64>() / 10.0;
        let rider_trust: f64 = (10..13).map(|i| m.trust(i)).sum::<f64>() / 3.0;
        assert!(
            honest_trust > rider_trust * 10.0,
            "honest {honest_trust} vs rider {rider_trust}"
        );
        // Free-riders still receive *something* via the newcomer reserve —
        // the exploitable altruism Table II flags.
        let rider_recv: f64 = (10..13).map(|i| m.received(i)).sum();
        assert!(rider_recv > 0.0);
    }

    #[test]
    fn false_praise_inflates_colluder_trust() {
        let mut with = mixed(10, 0, 4);
        let mut without = mixed(10, 4, 0);
        for _ in 0..20 {
            with.round();
            without.round();
        }
        let colluder_trust: f64 = (10..14).map(|i| with.trust(i)).sum();
        let rider_trust: f64 = (10..14).map(|i| without.trust(i)).sum();
        assert!(
            colluder_trust > rider_trust * 2.0,
            "collusion must pay: {colluder_trust} vs {rider_trust}"
        );
    }

    #[test]
    fn whitewash_resets_trust_but_keeps_newcomer_access() {
        let mut m = mixed(10, 1, 0);
        for _ in 0..10 {
            m.round();
        }
        let before = m.received(10);
        m.whitewash(10);
        assert!(m.trust(10) < 1e-9);
        m.round();
        // Fresh identity competes for the newcomer reserve again.
        assert!(m.received(10) >= before);
    }

    #[test]
    fn honest_only_trust_roughly_uniform() {
        let mut m = mixed(8, 0, 0);
        for _ in 0..10 {
            m.round();
        }
        let t: Vec<f64> = (0..8).map(|i| m.trust(i)).collect();
        let (min, max) =
            t.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        assert!(max / min < 1.5, "uniform honest behaviour → near-uniform trust");
    }
}
