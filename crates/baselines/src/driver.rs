//! The baseline swarm driver: BitTorrent TFT, PropShare, FairTorrent and
//! Random BitTorrent over the shared substrate.
//!
//! All four baselines exchange 16 KB blocks (64 KB whole pieces for
//! FairTorrent, matching §IV-A) under different *upload scheduling*
//! policies; everything else — tracker, mesh, LRF piece selection, seeder
//! presence, leecher departures — is identical. One driver parameterized
//! by [`Baseline`] keeps their comparison honest: any performance gap
//! comes from the incentive policy, not from incidental implementation
//! differences.

use crate::config::{Baseline, BaselineConfig};
use std::collections::{HashMap, HashSet};
use tchain_attacks::{PeerPlan, Strategy};
use tchain_metrics::{RecoveryCounters, TimeSeries};
use tchain_obs::{
    trace_event, Event, ExportStats, MetricMap, Phase, PhaseProfile, PhaseProfiler, StatsRegistry,
    Tracer,
};
use tchain_proto::{PieceId, Role, SwarmBase, SwarmConfig};
use tchain_sim::{FaultPlan, Flow, FlowId, NodeId, Periodic, Route};

#[derive(Debug, Default)]
struct BtState {
    strategy: Strategy,
    planned_capacity: f64,
    /// Regular unchoke set (upload recipients).
    unchoked: Vec<NodeId>,
    /// Optimistic unchoke set.
    optimistic: Vec<NodeId>,
    /// PropShare per-recipient bandwidth weights.
    weights: HashMap<NodeId, f64>,
    /// Active block flow per recipient.
    serving: HashMap<NodeId, FlowId>,
    /// Bytes received per neighbor in the current 10 s window.
    window: HashMap<NodeId, f64>,
    /// Previous completed window (the TFT ranking input).
    window_prev: HashMap<NodeId, f64>,
    /// FairTorrent ledger: bytes sent minus bytes received, per neighbor.
    deficits: HashMap<NodeId, f64>,
    /// Blocks received per partially downloaded piece.
    piece_progress: HashMap<PieceId, u32>,
    /// Which piece we are pulling from each uploader.
    pulling: HashMap<NodeId, PieceId>,
    /// Pieces currently assigned to some uploader (duplicate guard).
    in_flight: HashSet<PieceId>,
    /// Completed pieces since the last whitewash.
    pieces_since_ww: u32,
    /// Attacker lineage: first identity and original join time.
    lineage: Option<(NodeId, f64)>,
}

#[derive(Debug)]
struct PendingJoin {
    at: f64,
    plan: PeerPlan,
    carry: Vec<PieceId>,
    lineage: Option<(NodeId, f64)>,
}

/// A swarm running one of the four baseline protocols.
///
/// ```
/// use tchain_baselines::{Baseline, BaselineConfig, BaselineSwarm};
/// use tchain_proto::{FileSpec, SwarmConfig};
/// use tchain_attacks::PeerPlan;
/// use tchain_sim::kbps;
///
/// let file = FileSpec::custom(8, 64.0 * 1024.0, 16.0 * 1024.0);
/// let plan: Vec<PeerPlan> =
///     (0..6).map(|i| PeerPlan::compliant(i as f64 * 0.1, kbps(800.0))).collect();
/// let mut swarm = BaselineSwarm::new(
///     SwarmConfig::paper(file),
///     BaselineConfig::default(),
///     Baseline::BitTorrent,
///     plan,
///     1,
/// );
/// swarm.run_until_done();
/// assert_eq!(swarm.completion_times(true).len(), 6);
/// ```
#[derive(Debug)]
pub struct BaselineSwarm {
    base: SwarmBase,
    cfg: BaselineConfig,
    policy: Baseline,
    seeder: NodeId,
    states: Vec<BtState>,
    plan: Vec<PeerPlan>,
    next_arrival: usize,
    pending_joins: Vec<PendingJoin>,
    rechoke_timer: Periodic,
    optimistic_timer: Periodic,
    sample_timer: Periodic,
    leecher_series: TimeSeries,
    completed_buf: Vec<Flow>,
    blocks_moved: u64,
    planned_crashes: Vec<(f64, NodeId)>,
    crashes: u64,
    /// Per-phase wall-clock profiler for [`BaselineSwarm::step`];
    /// disabled (branch-only) unless
    /// [`BaselineSwarm::enable_profiling`] is called.
    profiler: PhaseProfiler,
}

impl BaselineSwarm {
    /// Builds a baseline swarm: one seeder plus planned leecher arrivals.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(
        scfg: SwarmConfig,
        cfg: BaselineConfig,
        policy: Baseline,
        plan: Vec<PeerPlan>,
        seed: u64,
    ) -> Self {
        Self::with_faults(scfg, cfg, policy, plan, seed, FaultPlan::none())
    }

    /// Builds a baseline swarm under a fault-injection plan. Baselines
    /// have no report/key control plane; faults manifest as lost
    /// unchoke/block-start messages (the transfer simply does not start
    /// this round and is retried at the next rechoke), lost tracker
    /// queries, and abrupt peer crashes. [`FaultPlan::none()`] reproduces
    /// [`BaselineSwarm::new`] bit for bit.
    pub fn with_faults(
        scfg: SwarmConfig,
        cfg: BaselineConfig,
        policy: Baseline,
        mut plan: Vec<PeerPlan>,
        seed: u64,
        fplan: FaultPlan,
    ) -> Self {
        cfg.validate();
        plan.sort_by(|a, b| a.at.total_cmp(&b.at));
        let mut base = SwarmBase::with_faults(scfg, seed, fplan);
        let seeder = base.admit_seeder();
        let mut sw = BaselineSwarm {
            base,
            cfg,
            policy,
            seeder,
            states: Vec::new(),
            plan,
            next_arrival: 0,
            pending_joins: Vec::new(),
            rechoke_timer: Periodic::new(cfg.rechoke_period),
            optimistic_timer: Periodic::new(cfg.optimistic_period),
            sample_timer: Periodic::new(cfg.sample_period),
            leecher_series: TimeSeries::new(),
            completed_buf: Vec::new(),
            blocks_moved: 0,
            planned_crashes: Vec::new(),
            crashes: 0,
            profiler: PhaseProfiler::disabled(),
        };
        sw.ensure_state(seeder);
        sw
    }

    // ------------------------------------------------------------------
    // Accessors (mirroring `TChainSwarm` so experiments treat protocols
    // uniformly)
    // ------------------------------------------------------------------

    /// The policy this swarm runs.
    pub fn policy(&self) -> Baseline {
        self.policy
    }

    /// The underlying substrate.
    pub fn base(&self) -> &SwarmBase {
        &self.base
    }

    /// The seeder's id.
    pub fn seeder(&self) -> NodeId {
        self.seeder
    }

    /// Blocks transferred so far.
    pub fn blocks_moved(&self) -> u64 {
        self.blocks_moved
    }

    /// Recovery/fault counters (delivery statistics from the fault layer
    /// plus crash tallies). Baselines have no retry machinery — a lost
    /// block-start is simply retried at the next rechoke round.
    pub fn recovery_counters(&self) -> RecoveryCounters {
        let fs = self.base.faults.stats();
        RecoveryCounters {
            ctrl_sent: fs.sent,
            ctrl_dropped: fs.dropped + fs.partition_dropped,
            ctrl_delayed: fs.delayed,
            tracker_dropped: fs.tracker_dropped,
            crashes: self.crashes,
            ..RecoveryCounters::default()
        }
    }

    /// `(time, alive leechers)` census samples.
    pub fn leecher_series(&self) -> &TimeSeries {
        &self.leecher_series
    }

    /// Turns on structured event tracing with a ring buffer of `capacity`
    /// records. Tracing only observes the run; traced and untraced runs
    /// with the same seed stay bit-identical.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.base.enable_tracing(capacity);
    }

    /// Turns on per-phase wall-clock profiling of
    /// [`BaselineSwarm::step`].
    pub fn enable_profiling(&mut self) {
        self.profiler = PhaseProfiler::enabled();
    }

    /// The event tracer (disabled unless
    /// [`BaselineSwarm::enable_tracing`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.base.trace
    }

    /// Per-phase timing summary accumulated so far (empty when profiling
    /// is off).
    pub fn profile(&self) -> PhaseProfile {
        self.profiler.profile()
    }

    /// Every counter the run can report, as one flat named-metric map.
    pub fn metrics(&self) -> MetricMap {
        let mut reg = StatsRegistry::new();
        self.recovery_counters().export_stats("recovery.", &mut reg);
        self.base.flows.stats().export_stats("flows.", &mut reg);
        reg.set("blocks.moved", self.blocks_moved);
        if self.base.trace.is_enabled() {
            reg.set("trace.emitted", self.base.trace.emitted());
            reg.set("trace.peak_depth", self.base.trace.peak_depth() as u64);
            reg.set("trace.overwritten", self.base.trace.overwritten());
        }
        reg.snapshot()
    }

    /// Download completion times of finished leechers by compliance.
    pub fn completion_times(&self, compliant: bool) -> Vec<f64> {
        self.base
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher && p.compliant == compliant)
            .filter_map(|p| p.done_time.map(|d| d - p.join_time))
            .collect()
    }

    /// Free-rider outcomes by attacker lineage (whitewash resets collapse
    /// onto the first identity): completed durations plus unfinished
    /// lineage count.
    pub fn free_rider_results(&self) -> (Vec<f64>, usize) {
        let mut durations: std::collections::HashMap<NodeId, f64> =
            std::collections::HashMap::new();
        let mut lineages: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for p in self.base.peers.iter() {
            if p.role != Role::Leecher || p.compliant {
                continue;
            }
            let Some((root, first_join)) = self.states[p.id.index()].lineage else { continue };
            lineages.insert(root);
            if let Some(d) = p.done_time {
                let dur = d - first_join;
                durations
                    .entry(root)
                    .and_modify(|v| *v = v.min(dur))
                    .or_insert(dur);
            }
        }
        let unfinished = lineages.len() - durations.len();
        (durations.into_values().collect(), unfinished)
    }

    /// Leechers (by compliance) that joined but never finished.
    pub fn unfinished(&self, compliant: bool) -> usize {
        self.base
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher && p.compliant == compliant)
            .filter(|p| p.done_time.is_none())
            .count()
    }

    /// Fairness factors (bytes downloaded / bytes uploaded, §IV-H) of
    /// finished compliant leechers.
    pub fn fairness_factors(&self) -> Vec<f64> {
        self.base
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher && p.compliant && p.done_time.is_some())
            .filter_map(|p| {
                let up = self.base.flows.uploaded(p.id);
                if up > 0.0 {
                    Some(self.base.flows.downloaded(p.id) / up)
                } else {
                    None
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Runs until every planned compliant leecher finished or departed,
    /// or `max_time` elapses.
    pub fn run_until_done(&mut self) {
        loop {
            self.step();
            let now = self.base.clock.now();
            if now >= self.base.cfg.max_time {
                break;
            }
            if self.next_arrival >= self.plan.len() && self.pending_joins.is_empty() {
                let any_left = self.base.peers.iter().any(|p| {
                    p.role == Role::Leecher && p.compliant && p.done_time.is_none() && p.alive()
                });
                if !any_left {
                    break;
                }
            }
        }
    }

    /// Runs until simulated time `t`.
    pub fn run_to(&mut self, t: f64) {
        while self.base.clock.now() < t {
            self.step();
        }
    }

    /// Advances the simulation by one step.
    pub fn step(&mut self) {
        let now = self.base.clock.tick();
        let p = self.profiler.begin();
        self.process_crashes(now);
        self.process_arrivals(now);
        self.profiler.end(Phase::Membership, p);
        let p = self.profiler.begin();
        if self.rechoke_timer.fire(now) {
            self.rechoke_round(now);
        }
        if self.optimistic_timer.fire(now) && self.policy == Baseline::BitTorrent {
            self.optimistic_round();
        }
        if self.policy == Baseline::FairTorrent {
            self.fairtorrent_kick();
        }
        self.profiler.end(Phase::Rechoke, p);
        let mut completed = std::mem::take(&mut self.completed_buf);
        completed.clear();
        let p = self.profiler.begin();
        self.base.flows.advance(self.base.cfg.dt, &mut completed);
        self.profiler.end(Phase::FlowAdvance, p);
        let p = self.profiler.begin();
        for f in completed.drain(..) {
            self.on_block_complete(f, now);
        }
        self.profiler.end(Phase::Completions, p);
        self.completed_buf = completed;
        if self.sample_timer.fire(now) {
            let p = self.profiler.begin();
            let leechers =
                self.base.peers.iter_alive().filter(|p| p.role == Role::Leecher).count();
            self.leecher_series.push(now, leechers as f64);
            self.profiler.end(Phase::Sampling, p);
        }
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn ensure_state(&mut self, id: NodeId) {
        if id.index() >= self.states.len() {
            self.states.resize_with(id.index() + 1, BtState::default);
        }
    }

    /// Fires due crash events ([`PeerPlan::crash_at`] schedules and
    /// [`FaultPlan`] fraction events). Baselines carry no escrowed keys,
    /// so a crash is a graceful departure minus the goodbye — the same
    /// state cleanup, counted separately.
    fn process_crashes(&mut self, now: f64) {
        if !self.planned_crashes.is_empty() {
            let mut i = 0;
            while i < self.planned_crashes.len() {
                if self.planned_crashes[i].0 <= now {
                    let (_, id) = self.planned_crashes.swap_remove(i);
                    if self.base.peers.alive(id) {
                        self.crash_peer(id, now);
                    }
                } else {
                    i += 1;
                }
            }
        }
        if self.base.faults.crash_due(now) {
            let alive: Vec<NodeId> = self
                .base
                .peers
                .iter_alive()
                .filter(|p| p.role == Role::Leecher)
                .map(|p| p.id)
                .collect();
            let victims = self.base.faults.crash_victims(now, &alive);
            for v in victims {
                if self.base.peers.alive(v) {
                    self.crash_peer(v, now);
                }
            }
        }
    }

    fn crash_peer(&mut self, id: NodeId, now: f64) {
        self.crashes += 1;
        trace_event!(self.base.trace, now, Event::PeerCrash { peer: id.0 });
        self.remove_peer(id);
    }

    fn process_arrivals(&mut self, now: f64) {
        while self.next_arrival < self.plan.len() && self.plan[self.next_arrival].at <= now {
            let p = self.plan[self.next_arrival];
            self.next_arrival += 1;
            self.admit_plan(p, Vec::new(), now);
        }
        if !self.pending_joins.is_empty() {
            let mut due = Vec::new();
            let mut i = 0;
            while i < self.pending_joins.len() {
                if self.pending_joins[i].at <= now {
                    due.push(self.pending_joins.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            for j in due {
                self.admit_plan_lineage(j.plan, j.carry, now, j.lineage);
            }
        }
    }

    fn admit_plan(&mut self, plan: PeerPlan, carry: Vec<PieceId>, now: f64) -> NodeId {
        self.admit_plan_lineage(plan, carry, now, None)
    }

    fn admit_plan_lineage(
        &mut self,
        plan: PeerPlan,
        mut carry: Vec<PieceId>,
        now: f64,
        lineage: Option<(NodeId, f64)>,
    ) -> NodeId {
        let compliant = plan.strategy.uploads();
        if compliant && self.cfg.initial_piece_fraction > 0.0 && carry.is_empty() {
            let n = (self.cfg.initial_piece_fraction * self.base.cfg.file.pieces as f64) as usize;
            let all: Vec<u32> = (0..self.base.cfg.file.pieces as u32).collect();
            carry = self.base.rng.sample(&all, n).into_iter().map(PieceId).collect();
        }
        let id = self.base.admit_with_pieces(
            Role::Leecher,
            plan.effective_capacity(),
            compliant,
            carry.iter().copied(),
        );
        self.ensure_state(id);
        let st = &mut self.states[id.index()];
        st.strategy = plan.strategy;
        st.planned_capacity = plan.capacity;
        st.lineage = Some(lineage.unwrap_or((id, now)));
        if let Some(at) = plan.crash_at {
            self.planned_crashes.push((at.max(now), id));
        }
        id
    }

    fn finish_peer(&mut self, id: NodeId, now: f64) {
        self.base.peers.get_mut(id).done_time = Some(now);
        if self.cfg.replace_on_finish {
            let cap = self.states[id.index()].planned_capacity;
            self.pending_joins.push(PendingJoin {
                at: now + self.base.cfg.dt,
                plan: PeerPlan::compliant(now + self.base.cfg.dt, cap),
                carry: Vec::new(),
                lineage: None,
            });
        }
        self.remove_peer(id);
    }

    fn remove_peer(&mut self, id: NodeId) {
        let (out, inb) = self.base.depart(id);
        // Uploads we were making die; recipients' pull assignments clear.
        for f in out {
            let piece = PieceId(f.tag as u32);
            if self.base.peers.alive(f.dst) {
                let ds = &mut self.states[f.dst.index()];
                ds.pulling.remove(&id);
                ds.in_flight.remove(&piece);
            }
        }
        // Uploads toward us die; uploaders' serving entries clear.
        for f in inb {
            if self.base.peers.alive(f.src) {
                self.states[f.src.index()].serving.remove(&id);
            }
        }
        let st = &mut self.states[id.index()];
        st.serving.clear();
        st.pulling.clear();
        st.in_flight.clear();
        st.unchoked.clear();
        st.optimistic.clear();
    }

    fn whitewash(&mut self, id: NodeId, now: f64) {
        let carry: Vec<PieceId> = self.base.peers.get(id).have.iter_set().collect();
        let plan = PeerPlan {
            at: now + 5.0,
            capacity: self.states[id.index()].planned_capacity,
            strategy: self.states[id.index()].strategy,
            crash_at: None,
        };
        let lineage = self.states[id.index()].lineage;
        self.remove_peer(id);
        self.base.peers.get_mut(id).left_time = Some(now);
        self.pending_joins.push(PendingJoin { at: now + 5.0, plan, carry, lineage });
    }

    // ------------------------------------------------------------------
    // Unchoking policies
    // ------------------------------------------------------------------

    fn rechoke_round(&mut self, now: f64) {
        let ids: Vec<NodeId> = self.base.peers.iter_alive().map(|p| p.id).collect();
        for id in ids {
            // Window rotation happens for everyone (ranking input).
            let w = std::mem::take(&mut self.states[id.index()].window);
            self.states[id.index()].window_prev = w;
            if !self.base.peers.alive(id) {
                continue;
            }
            let peer = self.base.peers.get(id);
            let is_seeder = peer.role == Role::Seeder;
            let compliant = peer.compliant;
            if !compliant {
                // Free-riders upload nothing; large-view attackers
                // re-query the tracker every round (§IV-C).
                if let Strategy::FreeRider(frc) = self.states[id.index()].strategy {
                    if frc.large_view {
                        self.base.acquire_neighbors(id, usize::MAX);
                    }
                }
                continue;
            }
            if self.policy == Baseline::FairTorrent && !is_seeder {
                continue; // FairTorrent leechers schedule per block.
            }
            let new_unchoked = if is_seeder {
                self.pick_random_interested(id, self.cfg.seeder_slots)
            } else {
                match self.policy {
                    Baseline::BitTorrent => self.pick_top_contributors(id, self.cfg.unchoke_slots),
                    Baseline::RandomBt => self.pick_random_interested(
                        id,
                        self.cfg.unchoke_slots + self.cfg.optimistic_slots,
                    ),
                    Baseline::PropShare => self.propshare_allocate(id),
                    Baseline::FairTorrent => unreachable!("handled above"),
                }
            };
            self.apply_unchoke_set(id, new_unchoked);
            self.base.maybe_refill(id);
        }
        let _ = now;
    }

    /// BitTorrent TFT: the `k` *interested* neighbors that uploaded most
    /// to us in the previous window; any remaining slots go to random
    /// interested neighbors (as real clients do — an empty ranking, e.g.
    /// right after joining, must not leave the uplink idle).
    fn pick_top_contributors(&mut self, id: NodeId, k: usize) -> Vec<NodeId> {
        let interested = self.pick_random_interested(id, usize::MAX);
        let mut ranked: Vec<(f64, NodeId)> = interested
            .iter()
            .map(|&n| {
                (self.states[id.index()].window_prev.get(&n).copied().unwrap_or(0.0), n)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut set: Vec<NodeId> =
            ranked.iter().take_while(|(b, _)| *b > 0.0).take(k).map(|&(_, n)| n).collect();
        // Fill the remaining regular slots with random interested peers
        // (`pick_random_interested` already shuffled them).
        for (_, n) in ranked.iter().filter(|(b, _)| *b <= 0.0) {
            if set.len() >= k {
                break;
            }
            set.push(*n);
        }
        set
    }

    /// Random interested neighbors (optimistic-only policies + seeders).
    fn pick_random_interested(&mut self, id: NodeId, k: usize) -> Vec<NodeId> {
        let neighbors: Vec<NodeId> = self.base.mesh.neighbors(id).to_vec();
        let mut eligible: Vec<NodeId> = neighbors
            .into_iter()
            .filter(|&n| self.base.peers.alive(n))
            .filter(|&n| {
                let pn = self.base.peers.get(n);
                pn.role == Role::Leecher
                    && !pn.have.is_complete()
                    && pn.have.wants_from(&self.base.peers.get(id).have)
            })
            .collect();
        self.base.rng.shuffle(&mut eligible);
        eligible.truncate(k);
        eligible
    }

    /// PropShare: weights proportional to last-round contributions, with
    /// a fixed exploration share for one random non-contributor.
    fn propshare_allocate(&mut self, id: NodeId) -> Vec<NodeId> {
        let contributors: Vec<(NodeId, f64)> = self.states[id.index()]
            .window_prev
            .iter()
            .filter(|(n, b)| self.base.peers.alive(**n) && **b > 0.0)
            .map(|(&n, &b)| (n, b))
            .collect();
        self.states[id.index()].weights.clear();
        if contributors.is_empty() {
            // Newcomer state: explore with plain optimistic unchokes.
            return self.pick_random_interested(id, self.cfg.unchoke_slots);
        }
        let total: f64 = contributors.iter().map(|(_, b)| b).sum();
        let mut set: Vec<NodeId> = Vec::with_capacity(contributors.len() + 1);
        for (n, b) in &contributors {
            self.states[id.index()].weights.insert(*n, *b);
            set.push(*n);
        }
        // Exploration: one random interested non-contributor gets the
        // reserved share (20 % of bandwidth → weight e/(1-e) × total).
        let explore_weight = self.cfg.propshare_explore / (1.0 - self.cfg.propshare_explore) * total;
        let candidates: Vec<NodeId> = self
            .base
            .mesh
            .neighbors(id)
            .iter()
            .copied()
            .filter(|n| !set.contains(n) && self.base.peers.alive(*n))
            .filter(|&n| {
                let pn = self.base.peers.get(n);
                pn.role == Role::Leecher && pn.have.wants_from(&self.base.peers.get(id).have)
            })
            .collect();
        if let Some(&n) = self.base.rng.choose(&candidates) {
            self.states[id.index()].weights.insert(n, explore_weight);
            set.push(n);
        }
        set
    }

    /// Installs a new unchoke set: chokes dropped peers (cancelling their
    /// block flows) and starts blocks toward new ones.
    fn apply_unchoke_set(&mut self, id: NodeId, new_set: Vec<NodeId>) {
        let old: Vec<NodeId> = self.states[id.index()].unchoked.clone();
        for &d in &old {
            if !new_set.contains(&d) && !self.states[id.index()].optimistic.contains(&d) {
                self.choke(id, d);
            }
        }
        for &d in &new_set {
            if !old.contains(&d) {
                trace_event!(
                    self.base.trace,
                    self.base.clock.now(),
                    Event::Unchoke { peer: id.0, target: d.0, optimistic: false }
                );
            }
        }
        self.states[id.index()].unchoked = new_set.clone();
        for d in new_set {
            self.try_start_block(id, d);
        }
    }

    fn optimistic_round(&mut self) {
        let ids: Vec<NodeId> = self
            .base
            .peers
            .iter_alive()
            .filter(|p| p.role == Role::Leecher && p.compliant)
            .map(|p| p.id)
            .collect();
        for id in ids {
            let old = std::mem::take(&mut self.states[id.index()].optimistic);
            for d in old {
                if !self.states[id.index()].unchoked.contains(&d) {
                    self.choke(id, d);
                }
            }
            // A random interested neighbor outside the regular set
            // (§II-A: "regardless of its past upload history").
            let unchoked = self.states[id.index()].unchoked.clone();
            let neighbors: Vec<NodeId> = self.base.mesh.neighbors(id).to_vec();
            let candidates: Vec<NodeId> = neighbors
                .into_iter()
                .filter(|&n| self.base.peers.alive(n) && !unchoked.contains(&n))
                .filter(|&n| {
                    let pn = self.base.peers.get(n);
                    pn.role == Role::Leecher
                        && pn.have.wants_from(&self.base.peers.get(id).have)
                })
                .collect();
            let picks = self.base.rng.sample(&candidates, self.cfg.optimistic_slots);
            self.states[id.index()].optimistic = picks.clone();
            for d in picks {
                trace_event!(
                    self.base.trace,
                    self.base.clock.now(),
                    Event::Unchoke { peer: id.0, target: d.0, optimistic: true }
                );
                self.try_start_block(id, d);
            }
        }
    }

    /// FairTorrent: an idle uploader sends the next block to the
    /// interested neighbor with the lowest deficit.
    fn fairtorrent_kick(&mut self) {
        let ids: Vec<NodeId> = self
            .base
            .peers
            .iter_alive()
            .filter(|p| p.compliant && p.capacity > 0.0)
            .map(|p| p.id)
            .collect();
        for u in ids {
            self.fair_serve(u);
        }
    }

    fn fair_serve(&mut self, u: NodeId) {
        // Two outstanding blocks keep the uplink busy across tick
        // boundaries (the scheduler's water-filling hands a finishing
        // block's leftover capacity to the other one).
        if !self.base.peers.alive(u) || self.states[u.index()].serving.len() >= 2 {
            return;
        }
        let mut ranked: Vec<(f64, NodeId)> = {
            let neighbors: Vec<NodeId> = self.base.mesh.neighbors(u).to_vec();
            neighbors
                .into_iter()
                .filter(|&n| self.base.peers.alive(n))
                .filter(|&n| {
                    let pn = self.base.peers.get(n);
                    pn.role == Role::Leecher
                        && pn.have.wants_from(&self.base.peers.get(u).have)
                })
                .map(|n| (self.states[u.index()].deficits.get(&n).copied().unwrap_or(0.0), n))
                .collect()
        };
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (_, d) in ranked {
            if self.try_start_block(u, d) && self.states[u.index()].serving.len() >= 2 {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Block transfer
    // ------------------------------------------------------------------

    /// Starts (or continues) a block flow `u → d`. Returns `false` when no
    /// piece can be assigned (not interested / everything in flight).
    fn try_start_block(&mut self, u: NodeId, d: NodeId) -> bool {
        if u == d || !self.base.peers.alive(u) || !self.base.peers.alive(d) {
            return false;
        }
        if self.states[u.index()].serving.contains_key(&d) {
            return true; // already streaming
        }
        // Fault injection: the unchoke/request handshake is a control
        // message. A dropped one means the block does not start this
        // round; the next rechoke (or FairTorrent kick) is the natural
        // retry. Latency models do not delay data-plane starts — only
        // drops and partitions apply. No-op on the fault-free path.
        if self.base.faults.active() {
            let now = self.base.clock.now();
            if matches!(self.base.faults.route(u, d, now), Route::Dropped) {
                return false;
            }
        }
        // Current assignment, or pick a new piece by LRF.
        let piece = match self.states[d.index()].pulling.get(&u).copied() {
            Some(p) if !self.base.peers.get(d).have.has(p) => p,
            _ => {
                let picked = {
                    let d_have = &self.base.peers.get(d).have;
                    let u_have = &self.base.peers.get(u).have;
                    let in_flight = &self.states[d.index()].in_flight;
                    self.base.mesh.lrf_pick_where(d, d_have, u_have, &mut self.base.rng, |p| {
                        !in_flight.contains(&p)
                    })
                };
                match picked {
                    Some(p) => {
                        self.states[d.index()].pulling.insert(u, p);
                        self.states[d.index()].in_flight.insert(p);
                        p
                    }
                    None => return false,
                }
            }
        };
        let weight = self.states[u.index()].weights.get(&d).copied().unwrap_or(1.0);
        // Pipeline several blocks per request, bounded by what the piece
        // still needs.
        let blocks_needed = self.base.cfg.file.blocks_per_piece() as u32;
        let progress = self.states[d.index()].piece_progress.get(&piece).copied().unwrap_or(0);
        let blocks = (blocks_needed - progress).min(self.cfg.pipeline_blocks as u32).max(1);
        let fid = self.base.flows.start(
            u,
            d,
            self.base.cfg.file.block_size * blocks as f64,
            weight.max(1e-6),
            piece.0 as u64,
        );
        self.states[u.index()].serving.insert(d, fid);
        true
    }

    /// Chokes `d`: cancels the in-flight block (progress on that block is
    /// lost; completed blocks of the piece are kept and resumable) and
    /// clears the pull assignment so the piece is assignable elsewhere.
    fn choke(&mut self, u: NodeId, d: NodeId) {
        trace_event!(
            self.base.trace,
            self.base.clock.now(),
            Event::Choke { peer: u.0, target: d.0 }
        );
        if let Some(fid) = self.states[u.index()].serving.remove(&d) {
            self.base.flows.cancel(fid);
        }
        if self.base.peers.alive(d) {
            let ds = &mut self.states[d.index()];
            if let Some(p) = ds.pulling.remove(&u) {
                ds.in_flight.remove(&p);
            }
        }
    }

    fn on_block_complete(&mut self, f: Flow, now: f64) {
        let (u, d) = (f.src, f.dst);
        let piece = PieceId(f.tag as u32);
        let block = f.size;
        let blocks_in_flow =
            (f.size / self.base.cfg.file.block_size).round().max(1.0) as u32;
        self.blocks_moved += blocks_in_flow as u64;
        self.states[u.index()].serving.remove(&d);
        if !self.base.peers.alive(d) {
            return;
        }
        // Accounting: rate windows and FairTorrent deficits.
        *self.states[d.index()].window.entry(u).or_insert(0.0) += block;
        *self.states[u.index()].deficits.entry(d).or_insert(0.0) += block;
        *self.states[d.index()].deficits.entry(u).or_insert(0.0) -= block;
        // Piece assembly.
        let blocks_needed = self.base.cfg.file.blocks_per_piece() as u32;
        let progress = {
            let e = self.states[d.index()].piece_progress.entry(piece).or_insert(0);
            *e += blocks_in_flow;
            *e
        };
        let mut piece_done = false;
        if progress >= blocks_needed {
            self.states[d.index()].piece_progress.remove(&piece);
            self.states[d.index()].in_flight.remove(&piece);
            self.states[d.index()].pulling.remove(&u);
            self.base.peers.get_mut(u).pieces_up += 1;
            piece_done = true;
            let complete = self.base.grant_piece(d, piece);
            if complete {
                self.finish_peer(d, now);
                if self.base.peers.alive(u) && self.policy == Baseline::FairTorrent {
                    self.fair_serve(u);
                }
                return;
            }
            // Whitewashing free-riders reset identity after extracting
            // their batch of free pieces (§IV-C).
            if let Strategy::FreeRider(frc) = self.states[d.index()].strategy {
                if frc.whitewash {
                    self.states[d.index()].pieces_since_ww += 1;
                    if self.states[d.index()].pieces_since_ww >= self.cfg.whitewash_after_pieces {
                        self.whitewash(d, now);
                        if self.base.peers.alive(u) && self.policy == Baseline::FairTorrent {
                            self.fair_serve(u);
                        }
                        return;
                    }
                }
            }
        }
        // Keep the pipe busy — and never leave a pull assignment behind
        // without a live flow (it would poison the piece as permanently
        // "in flight" if this pair never resumes).
        if !self.base.peers.alive(u) {
            if !piece_done {
                let ds = &mut self.states[d.index()];
                if let Some(p) = ds.pulling.remove(&u) {
                    ds.in_flight.remove(&p);
                }
            }
            return;
        }
        match self.policy {
            Baseline::FairTorrent => {
                // FairTorrent re-decides the recipient per block: release
                // the assignment (progress is kept and resumable), then
                // serve the lowest-deficit neighbor.
                if !piece_done {
                    let ds = &mut self.states[d.index()];
                    if let Some(p) = ds.pulling.remove(&u) {
                        ds.in_flight.remove(&p);
                    }
                }
                if self.base.peers.get(u).role == Role::Seeder || self.base.peers.get(u).compliant
                {
                    self.fair_serve(u);
                }
            }
            _ => {
                let still_unchoked = self.states[u.index()].unchoked.contains(&d)
                    || self.states[u.index()].optimistic.contains(&d);
                let mut continued = false;
                if still_unchoked {
                    continued = self.try_start_block(u, d);
                }
                if !continued && !piece_done {
                    let ds = &mut self.states[d.index()];
                    if let Some(p) = ds.pulling.remove(&u) {
                        ds.in_flight.remove(&p);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_proto::FileSpec;
    use tchain_sim::{kbps, kib};

    fn small_file(pieces: usize) -> FileSpec {
        FileSpec::custom(pieces, kib(64.0), kib(16.0))
    }

    fn flash_plan(n: usize, cap_kbps: f64) -> Vec<PeerPlan> {
        (0..n).map(|i| PeerPlan::compliant(0.5 + i as f64 * 0.01, kbps(cap_kbps))).collect()
    }

    fn run_policy(policy: Baseline, n: usize, seed: u64) -> BaselineSwarm {
        let mut sw = BaselineSwarm::new(
            SwarmConfig::paper(small_file(32)),
            BaselineConfig::default(),
            policy,
            flash_plan(n, 800.0),
            seed,
        );
        sw.run_until_done();
        sw
    }

    #[test]
    fn bittorrent_compliant_swarm_finishes() {
        let sw = run_policy(Baseline::BitTorrent, 16, 1);
        assert_eq!(sw.completion_times(true).len(), 16);
        assert!(sw.blocks_moved() > 0);
    }

    #[test]
    fn propshare_compliant_swarm_finishes() {
        let sw = run_policy(Baseline::PropShare, 16, 2);
        assert_eq!(sw.completion_times(true).len(), 16);
    }

    #[test]
    fn fairtorrent_compliant_swarm_finishes() {
        let sw = run_policy(Baseline::FairTorrent, 16, 3);
        assert_eq!(sw.completion_times(true).len(), 16);
    }

    #[test]
    fn random_bt_compliant_swarm_finishes() {
        let sw = run_policy(Baseline::RandomBt, 16, 4);
        assert_eq!(sw.completion_times(true).len(), 16);
    }

    #[test]
    fn free_riders_do_finish_in_bittorrent() {
        // The §IV-C contrast with T-Chain: BitTorrent's altruism (seeder +
        // optimistic unchokes) lets zero-upload free-riders complete.
        let mut plan = flash_plan(16, 800.0);
        for i in 0..4 {
            plan.push(PeerPlan::free_rider(0.7 + i as f64 * 0.01, kbps(800.0)));
        }
        let mut sw = BaselineSwarm::new(
            SwarmConfig::paper(small_file(16)),
            BaselineConfig::default(),
            Baseline::BitTorrent,
            plan,
            5,
        );
        sw.run_to(6000.0);
        assert_eq!(sw.completion_times(true).len(), 16);
        assert!(
            !sw.completion_times(false).is_empty(),
            "free-riders eventually finish in BitTorrent"
        );
    }

    #[test]
    fn free_riders_slow_down_compliant_leechers() {
        let clean = run_policy(Baseline::BitTorrent, 12, 6);
        let t_clean: f64 = {
            let v = clean.completion_times(true);
            v.iter().sum::<f64>() / v.len() as f64
        };
        let mut plan = flash_plan(12, 800.0);
        for i in 0..6 {
            plan.push(PeerPlan::free_rider(0.7 + i as f64 * 0.01, kbps(800.0)));
        }
        let mut sw = BaselineSwarm::new(
            SwarmConfig::paper(small_file(32)),
            BaselineConfig::default(),
            Baseline::BitTorrent,
            plan,
            6,
        );
        sw.run_to(8000.0);
        let v = sw.completion_times(true);
        assert_eq!(v.len(), 12);
        let t_fr: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            t_fr > t_clean * 0.9,
            "free-riders should not speed up compliant leechers: {t_fr} vs {t_clean}"
        );
    }

    #[test]
    fn fairtorrent_deficits_balance_contributions() {
        let sw = run_policy(Baseline::FairTorrent, 12, 7);
        let ff = sw.fairness_factors();
        assert!(!ff.is_empty());
        let mean = ff.iter().sum::<f64>() / ff.len() as f64;
        assert!((0.4..2.5).contains(&mean), "fairness factor mean {mean}");
    }

    #[test]
    fn whitewash_creates_fresh_identities() {
        let mut plan = flash_plan(10, 800.0);
        plan.push(PeerPlan::free_rider(0.7, kbps(800.0)));
        let mut sw = BaselineSwarm::new(
            SwarmConfig::paper(small_file(32)),
            BaselineConfig { whitewash_after_pieces: 2, ..Default::default() },
            Baseline::FairTorrent,
            plan,
            8,
        );
        sw.run_to(3000.0);
        let identities = sw
            .base()
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher && !p.compliant)
            .count();
        assert!(identities > 1, "whitewashing spawned replacement identities: {identities}");
    }

    #[test]
    fn churn_replacement_keeps_population() {
        let mut sw = BaselineSwarm::new(
            SwarmConfig::paper(small_file(4)),
            BaselineConfig { replace_on_finish: true, ..Default::default() },
            Baseline::BitTorrent,
            flash_plan(6, 1200.0),
            9,
        );
        sw.run_to(600.0);
        assert!(sw.completion_times(true).len() > 6);
    }

    #[test]
    fn propshare_weights_bias_bandwidth() {
        let sw = run_policy(Baseline::PropShare, 14, 10);
        // Smoke check: the run completes and produced meaningful uploads.
        let total_up: f64 = sw
            .base()
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher)
            .map(|p| sw.base().flows.uploaded(p.id))
            .sum();
        assert!(total_up > 0.0);
    }
}
