//! Baseline protocol parameters (§II-A, §IV-A).

/// Which baseline incentive policy a [`crate::BaselineSwarm`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Original BitTorrent: rate-based tit-for-tat. Every 10 s a leecher
    /// unchokes the 4 neighbors that uploaded the most to it in the last
    /// window, plus one optimistic unchoke rotated every 30 s (§II-A).
    BitTorrent,
    /// PropShare: upload bandwidth split *proportionally* to each
    /// neighbor's contribution in the previous round, with a fixed 20 %
    /// reserved for exploration/newcomers (Levin et al., §V).
    PropShare,
    /// FairTorrent: each block goes to the interested neighbor with the
    /// lowest deficit (bytes sent minus bytes received) — no rounds
    /// (Sherman et al., §V).
    FairTorrent,
    /// Random BitTorrent (§IV-I): *all* bandwidth is optimistic —
    /// uploaders pick random interested neighbors every round.
    RandomBt,
}

impl Baseline {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::BitTorrent => "Original BT",
            Baseline::PropShare => "PropShare",
            Baseline::FairTorrent => "FairTorrent",
            Baseline::RandomBt => "Random BitTorrent",
        }
    }

    /// All four baselines, in the paper's legend order.
    pub fn all() -> [Baseline; 4] {
        [Baseline::BitTorrent, Baseline::PropShare, Baseline::FairTorrent, Baseline::RandomBt]
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunables for the baseline drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Regular unchoke slots (`k`, usually 4).
    pub unchoke_slots: usize,
    /// Optimistic unchoke slots (usually 1 — i.e. ~20 % of slots).
    pub optimistic_slots: usize,
    /// Rechoke period in seconds (10 s).
    pub rechoke_period: f64,
    /// Optimistic rotation period in seconds (30 s).
    pub optimistic_period: f64,
    /// Concurrent uploads the seeder maintains.
    pub seeder_slots: usize,
    /// Blocks pipelined per request (a flow carries this many blocks), as
    /// real clients keep several outstanding requests per peer. Prevents
    /// one-block-per-tick quantization from idling uplinks.
    pub pipeline_blocks: usize,
    /// PropShare's exploration share of upload bandwidth (0.2).
    pub propshare_explore: f64,
    /// Replace each finishing leecher with a fresh newcomer (§IV-I churn).
    pub replace_on_finish: bool,
    /// Fraction of the file pre-loaded into each compliant joiner.
    pub initial_piece_fraction: f64,
    /// A whitewashing free-rider resets its identity after this many
    /// completed pieces. §IV-C describes per-piece resets ("as soon as it
    /// gets one (free) piece"), the default; raise it to bound identity
    /// churn in very large runs.
    pub whitewash_after_pieces: u32,
    /// Seconds between census samples.
    pub sample_period: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            unchoke_slots: 4,
            optimistic_slots: 1,
            rechoke_period: 10.0,
            optimistic_period: 30.0,
            seeder_slots: 16,
            pipeline_blocks: 4,
            propshare_explore: 0.2,
            replace_on_finish: false,
            initial_piece_fraction: 0.0,
            whitewash_after_pieces: 1,
            sample_period: 5.0,
        }
    }
}

impl BaselineConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn validate(&self) {
        assert!(self.unchoke_slots >= 1, "need at least one unchoke slot");
        assert!(self.rechoke_period > 0.0 && self.optimistic_period > 0.0, "positive periods");
        assert!(self.seeder_slots >= 1, "seeder needs a slot");
        assert!(self.pipeline_blocks >= 1, "pipeline at least one block");
        assert!((0.0..1.0).contains(&self.propshare_explore), "explore share in [0,1)");
        assert!(
            (0.0..=1.0).contains(&self.initial_piece_fraction),
            "initial piece fraction in [0,1]"
        );
        assert!(self.whitewash_after_pieces >= 1, "whitewash batch of at least one piece");
        assert!(self.sample_period > 0.0, "positive sample period");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BaselineConfig::default();
        assert_eq!(c.unchoke_slots, 4, "top-4 TFT unchoking");
        assert_eq!(c.optimistic_slots, 1);
        assert_eq!(c.rechoke_period, 10.0);
        assert_eq!(c.optimistic_period, 30.0);
        assert!((c.propshare_explore - 0.2).abs() < 1e-12, "20% pre-allocated");
        c.validate();
    }

    #[test]
    fn names_match_legends() {
        assert_eq!(Baseline::BitTorrent.name(), "Original BT");
        assert_eq!(Baseline::all().len(), 4);
        assert_eq!(format!("{}", Baseline::FairTorrent), "FairTorrent");
    }

    #[test]
    #[should_panic(expected = "explore share")]
    fn bad_explore_rejected() {
        BaselineConfig { propshare_explore: 1.0, ..Default::default() }.validate();
    }
}
