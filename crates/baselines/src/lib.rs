//! # tchain-baselines — the comparison protocols
//!
//! Every incentive scheme the paper evaluates against T-Chain (§IV) plus
//! the qualitative Table II comparators:
//!
//! * [`BaselineSwarm`] with [`Baseline::BitTorrent`] — rate-based
//!   tit-for-tat with optimistic unchoking (§II-A);
//! * [`Baseline::PropShare`] — proportional-share allocation with a fixed
//!   20 % exploration reserve;
//! * [`Baseline::FairTorrent`] — deficit-based block scheduling;
//! * [`Baseline::RandomBt`] — 100 % optimistic unchoking (§IV-I);
//! * [`eigentrust`] / [`dandelion`] — simplified models of the indirect-
//!   reciprocity schemes, used only to regenerate Table II's columns.
//!
//! All four quantitative baselines share one driver over the common
//! substrate so measured differences are attributable to the incentive
//! policy alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod dandelion;
mod driver;
pub mod eigentrust;

pub use config::{Baseline, BaselineConfig};
pub use driver::BaselineSwarm;
