//! A compact Dandelion model (Sirivianos et al., §V) for Table II.
//!
//! Dandelion enforces reciprocity through a **trusted central server**:
//! uploads of encrypted content earn server-accounted credit, downloads
//! spend it, and newcomers start with an initial credit grant. The paper
//! faults it on two axes Table II records: the reliance on a trusted
//! third party (scalability / single point of failure) and the newcomer
//! grant being farmable by whitewashing/Sybil identities.

use std::collections::HashMap;

/// Identity of a Dandelion client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// The central credit server: the trusted third party T-Chain avoids.
#[derive(Debug, Default)]
pub struct CreditServer {
    credit: HashMap<ClientId, i64>,
    initial_grant: i64,
    next_id: u32,
    transactions: u64,
}

impl CreditServer {
    /// A server granting `initial_grant` credits to each new identity
    /// ("newcomers start with some initial credit", §V).
    pub fn new(initial_grant: i64) -> Self {
        CreditServer { initial_grant, ..Default::default() }
    }

    /// Registers a new identity (a join, a whitewash rejoin or a Sybil).
    pub fn register(&mut self) -> ClientId {
        let id = ClientId(self.next_id);
        self.next_id += 1;
        self.credit.insert(id, self.initial_grant);
        id
    }

    /// Current balance.
    pub fn balance(&self, id: ClientId) -> i64 {
        self.credit.get(&id).copied().unwrap_or(0)
    }

    /// Total registered identities (Sybil pressure on the server).
    pub fn identities(&self) -> usize {
        self.credit.len()
    }

    /// Server-mediated transactions processed (every exchange touches the
    /// server — the scalability bottleneck Table II marks with ×).
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Settles one piece transfer: the uploader earns a credit, the
    /// downloader spends one. Fails (returns `false`) when the downloader
    /// has no credit — the enforcement that stops plain free-riding.
    pub fn settle(&mut self, uploader: ClientId, downloader: ClientId) -> bool {
        self.transactions += 1;
        let bal = self.balance(downloader);
        if bal <= 0 {
            return false;
        }
        *self.credit.entry(downloader).or_insert(0) -= 1;
        *self.credit.entry(uploader).or_insert(0) += 1;
        true
    }

    /// Credits a whitewashing attacker can farm by cycling identities:
    /// `identities × initial_grant`.
    pub fn farmable_credit(&self, identities: u64) -> i64 {
        identities as i64 * self.initial_grant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_enforces_reciprocity() {
        let mut s = CreditServer::new(2);
        let a = s.register();
        let b = s.register();
        // b can download only its grant's worth without uploading.
        assert!(s.settle(a, b));
        assert!(s.settle(a, b));
        assert!(!s.settle(a, b), "credit exhausted: free-riding blocked");
        // After uploading, b can download again.
        assert!(s.settle(b, a));
        assert!(s.settle(a, b));
    }

    #[test]
    fn whitewashing_farms_newcomer_grants() {
        let mut s = CreditServer::new(5);
        let honest = s.register();
        let mut downloaded = 0;
        for _ in 0..10 {
            // The attacker discards each drained identity and re-registers.
            let fresh = s.register();
            while s.settle(honest, fresh) {
                downloaded += 1;
            }
        }
        assert_eq!(downloaded, 50, "10 identities × 5 granted credits");
        assert_eq!(s.identities(), 11);
    }

    #[test]
    fn every_exchange_hits_the_central_server() {
        let mut s = CreditServer::new(1);
        let a = s.register();
        let b = s.register();
        for _ in 0..10 {
            s.settle(a, b);
            s.settle(b, a);
        }
        assert_eq!(s.transactions(), 20, "central mediation on every transfer");
    }

    #[test]
    fn balances_conserved() {
        let mut s = CreditServer::new(3);
        let a = s.register();
        let b = s.register();
        let c = s.register();
        s.settle(a, b);
        s.settle(b, c);
        s.settle(c, a);
        let total: i64 = [a, b, c].iter().map(|&x| s.balance(x)).sum();
        assert_eq!(total, 9, "credits move, never created by transfers");
    }
}
