//! # tchain-workloads — arrival processes and capacity distributions
//!
//! The paper drives its swarms with two arrival models (§IV-A, §IV-E):
//!
//! * a **flash crowd**, "all leechers joined the swarm within the first 10
//!   seconds" — [`flash_crowd`];
//! * a **continuous stream** mirroring "the RedHat 9 release" tracker
//!   trace (paper ref.\[28\]) — the original trace is no longer published, so
//!   [`TraceModel`] synthesizes a release-day workload with the same
//!   qualitative shape (initial surge, exponentially decaying long tail,
//!   diurnal modulation); see DESIGN.md "Substitutions".
//!
//! Upload capacities are heterogeneous, "varying from 400 Kbps to 1200
//! Kbps" (§IV-A) — [`CapacityClasses`] reproduces the five-class uniform
//! mix used by the works the paper cites, and is what makes Fig. 5's
//! "lowest/highest upload rate" leechers identifiable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Join times for `n` leechers arriving uniformly within `window` seconds
/// (the paper's 10-second flash crowd), sorted ascending.
pub fn flash_crowd(n: usize, window: f64, seed: u64) -> Vec<f64> {
    assert!(window >= 0.0, "window must be non-negative");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1A5_4C12_0000_0000);
    let mut t: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * window).collect();
    t.sort_by(f64::total_cmp);
    t
}

/// Join times for a homogeneous Poisson process with `rate` arrivals per
/// second, truncated to `n` arrivals.
pub fn poisson(n: usize, rate: f64, seed: u64) -> Vec<f64> {
    assert!(rate > 0.0, "rate must be positive");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9015_5015_0000_0000);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / rate;
            t
        })
        .collect()
}

/// Synthetic release-day tracker trace: a short initial surge followed by
/// an exponentially decaying Poisson arrival rate with mild diurnal
/// modulation. Substitutes for the RedHat 9 trace of §IV-E.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceModel {
    /// Peak arrival rate right after release (arrivals/second).
    pub peak_rate: f64,
    /// Exponential half-life of the arrival rate, in seconds.
    pub half_life: f64,
    /// Relative amplitude of the diurnal modulation in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Diurnal period in seconds (scaled down together with `half_life`
    /// for compressed-time experiments).
    pub diurnal_period: f64,
}

impl Default for TraceModel {
    /// A compressed-time release-day model: the surge decays with a
    /// half-life of ~2 hours of simulated time, long enough that a steady
    /// stream of newcomers spans every experiment that uses it.
    fn default() -> Self {
        TraceModel {
            peak_rate: 1.0,
            half_life: 7200.0,
            diurnal_amplitude: 0.3,
            diurnal_period: 6000.0,
        }
    }
}

impl TraceModel {
    /// Instantaneous arrival rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let decay = (-std::f64::consts::LN_2 * t / self.half_life).exp();
        let diurnal =
            1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * t / self.diurnal_period).sin();
        (self.peak_rate * decay * diurnal).max(0.0)
    }

    /// Generates the first `n` arrival times by thinning a dominating
    /// Poisson process (Lewis–Shedler).
    pub fn arrivals(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7AC3_0001_0000_0000);
        let lambda_max = self.peak_rate * (1.0 + self.diurnal_amplitude);
        let mut t = 0.0;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / lambda_max;
            if rng.gen::<f64>() < self.rate_at(t) / lambda_max {
                out.push(t);
            }
            // Rate decays to ~0 eventually; give up if thinning stalls so
            // callers never loop forever for huge n.
            if t > self.half_life * 64.0 {
                break;
            }
        }
        out
    }
}

/// The heterogeneous upload-capacity mix of §IV-A: five classes spanning
/// 400–1200 Kbps, assigned uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityClasses {
    classes_kbps: Vec<f64>,
}

impl Default for CapacityClasses {
    fn default() -> Self {
        CapacityClasses { classes_kbps: vec![400.0, 600.0, 800.0, 1000.0, 1200.0] }
    }
}

impl CapacityClasses {
    /// A custom class list (Kbps values).
    ///
    /// # Panics
    ///
    /// Panics if `classes_kbps` is empty or contains non-positive rates.
    pub fn new(classes_kbps: Vec<f64>) -> Self {
        assert!(!classes_kbps.is_empty(), "at least one class");
        assert!(classes_kbps.iter().all(|&c| c > 0.0), "rates must be positive");
        CapacityClasses { classes_kbps }
    }

    /// The class rates in Kbps.
    pub fn classes_kbps(&self) -> &[f64] {
        &self.classes_kbps
    }

    /// Lowest class in bytes/s (Fig. 5's 400 Kbps leecher).
    pub fn min_bytes_per_sec(&self) -> f64 {
        self.classes_kbps.iter().copied().fold(f64::INFINITY, f64::min) * 1000.0 / 8.0
    }

    /// Highest class in bytes/s (Fig. 5's 1200 Kbps leecher).
    pub fn max_bytes_per_sec(&self) -> f64 {
        self.classes_kbps.iter().copied().fold(0.0, f64::max) * 1000.0 / 8.0
    }

    /// Mean class rate in bytes/s (used for the "optimal" line of
    /// Fig. 3(a): a fluid lower bound of file size over mean upload rate).
    pub fn mean_bytes_per_sec(&self) -> f64 {
        self.classes_kbps.iter().sum::<f64>() / self.classes_kbps.len() as f64 * 1000.0 / 8.0
    }

    /// Assigns capacities (bytes/s) to `n` peers, classes drawn uniformly.
    pub fn assign(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xCAB0_0001_0000_0000);
        (0..n)
            .map(|_| self.classes_kbps[rng.gen_range(0..self.classes_kbps.len())] * 1000.0 / 8.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_fits_window_and_is_sorted() {
        let t = flash_crowd(1000, 10.0, 7);
        assert_eq!(t.len(), 1000);
        assert!(t.iter().all(|&x| (0.0..10.0).contains(&x)));
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn flash_crowd_deterministic_per_seed() {
        assert_eq!(flash_crowd(10, 10.0, 1), flash_crowd(10, 10.0, 1));
        assert_ne!(flash_crowd(10, 10.0, 1), flash_crowd(10, 10.0, 2));
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let t = poisson(20_000, 2.0, 3);
        let mean_gap = t.last().unwrap() / t.len() as f64;
        assert!((mean_gap - 0.5).abs() < 0.02, "mean gap {mean_gap}");
    }

    #[test]
    fn trace_rate_decays() {
        let m = TraceModel::default();
        assert!(m.rate_at(0.0) > m.rate_at(m.half_life * 4.0));
        // Roughly halves per half-life (modulo diurnal wiggle).
        let r0 = m.rate_at(0.0);
        let r1 = m.rate_at(m.half_life);
        assert!(r1 / r0 < 0.8 && r1 / r0 > 0.3, "ratio {}", r1 / r0);
    }

    #[test]
    fn trace_arrivals_sorted_and_thinning_matches_shape() {
        let m = TraceModel::default();
        let t = m.arrivals(2000, 11);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        // More arrivals in the first half-life than in the second.
        let h = m.half_life;
        let first = t.iter().filter(|&&x| x < h).count();
        let second = t.iter().filter(|&&x| (h..2.0 * h).contains(&x)).count();
        assert!(first > second, "{first} vs {second}");
    }

    #[test]
    fn capacity_classes_cover_range() {
        let c = CapacityClasses::default();
        assert_eq!(c.min_bytes_per_sec(), 50_000.0);
        assert_eq!(c.max_bytes_per_sec(), 150_000.0);
        assert_eq!(c.mean_bytes_per_sec(), 100_000.0);
        let caps = c.assign(5000, 9);
        assert!(caps.iter().all(|&x| (50_000.0..=150_000.0).contains(&x)));
        // All five classes should occur.
        let mut seen: Vec<u64> = caps.iter().map(|&x| x as u64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_classes_rejected() {
        CapacityClasses::new(vec![]);
    }
}
