//! Time series for "X over time" figures (active chains, piece timelines).

/// A `(time, value)` series sampled during a run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample's time.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t >= last, "time series must be pushed in order ({t} < {last})");
        }
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The latest value, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// The maximum value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Downsamples to at most `n` evenly spaced samples — used when
    /// printing a long run's series as a figure's worth of rows.
    pub fn downsample(&self, n: usize) -> TimeSeries {
        if n == 0 || self.len() <= n {
            return self.clone();
        }
        let step = self.len() as f64 / n as f64;
        let mut out = TimeSeries::new();
        for i in 0..n {
            let idx = ((i as f64 + 0.5) * step) as usize;
            let idx = idx.min(self.len() - 1);
            out.push(self.times[idx], self.values[idx]);
        }
        out
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (f64, f64)>>(iter: T) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let s: TimeSeries = vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some((2.0, 2.0)));
        assert_eq!(s.max_value(), Some(3.0));
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v[1], (1.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_rejected() {
        let mut s = TimeSeries::new();
        s.push(5.0, 0.0);
        s.push(4.0, 0.0);
    }

    #[test]
    fn downsample_keeps_shape() {
        let s: TimeSeries = (0..1000).map(|i| (i as f64, (i * 2) as f64)).collect();
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        // Still monotone in time and value for this monotone input.
        let pts: Vec<_> = d.iter().collect();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn downsample_noop_when_short() {
        let s: TimeSeries = vec![(0.0, 1.0)].into_iter().collect();
        assert_eq!(s.downsample(10), s);
        assert!(TimeSeries::new().max_value().is_none());
    }
}
