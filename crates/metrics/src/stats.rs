//! Summary statistics with 95 % confidence intervals.
//!
//! Every data point in the paper's graphs is "the mean and 95% confidence
//! intervals … over 30 runs, using different random number seeds" (§IV-A).
//! [`Summary`] reproduces that: a Student-t interval over per-run values.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Two-sided 97.5 % Student-t critical value for `df` degrees of freedom
/// (the multiplier of a 95 % confidence interval). Exact table for small
/// `df`, 1.96 asymptote beyond.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.02,
        61..=120 => 2.0,
        _ => 1.96,
    }
}

/// A mean with its 95 % confidence half-width, as plotted in every figure.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval (0 for < 2 samples).
    pub ci95: f64,
    /// Number of samples (runs).
    pub n: u64,
}

impl Summary {
    /// Summarizes a set of per-run values.
    pub fn of(samples: &[f64]) -> Self {
        let stats: OnlineStats = samples.iter().copied().collect();
        Summary::from_stats(&stats)
    }

    /// Summarizes an accumulator.
    pub fn from_stats(s: &OnlineStats) -> Self {
        let n = s.count();
        let ci95 = if n < 2 {
            0.0
        } else {
            t_critical_95(n - 1) * s.std_dev() / (n as f64).sqrt()
        };
        Summary { mean: s.mean(), ci95, n }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.ci95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(29) - 2.045).abs() < 1e-9, "30 runs → df 29");
        assert!((t_critical_95(7) - 2.365).abs() < 1e-9, "8 runs → df 7");
        assert_eq!(t_critical_95(1_000_000), 1.96);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn summary_interval() {
        // 30 identical values → zero-width interval.
        let same = vec![10.0; 30];
        let s = Summary::of(&same);
        assert_eq!(s.mean, 10.0);
        assert_eq!(s.ci95, 0.0);
        // Known case: sd = 1, n = 30 → ci ≈ 2.045/sqrt(30).
        let xs: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 9.0 } else { 11.0 }).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 10.0).abs() < 1e-12);
        let sd = (30.0f64 / 29.0).sqrt(); // sample sd of ±1 alternating
        assert!((s.ci95 - 2.045 * sd / 30f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 1);
    }
}
