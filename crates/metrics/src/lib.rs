//! # tchain-metrics — experiment statistics
//!
//! The measurement vocabulary of the paper's evaluation (§IV):
//!
//! * [`Summary`]/[`OnlineStats`] — means with 95 % Student-t confidence
//!   intervals over seeded runs (every line plot);
//! * [`Cdf`] — empirical CDFs (the Fig. 12 fairness-factor curves);
//! * [`TimeSeries`] — sampled "X over time" traces (Fig. 5 piece
//!   timelines, Fig. 10/11 chain counts);
//! * [`RecoveryCounters`] — retry/stall/recovery tallies from
//!   fault-injected runs (lost reports, retransmissions, escrow repairs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod recovery;
mod series;
mod stats;

pub use cdf::Cdf;
pub use recovery::RecoveryCounters;
pub use series::TimeSeries;
pub use stats::{t_critical_95, OnlineStats, Summary};
