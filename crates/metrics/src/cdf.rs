//! Empirical cumulative distribution functions (Fig. 12's fairness CDFs).

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Median (the 0.5-quantile).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// `(value, cumulative fraction)` points suitable for plotting or for
    /// printing a figure's data series.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted.iter().enumerate().map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_cdf() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.5), 0.5);
        assert_eq!(c.at(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let c = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(c.median(), 50.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.quantile(0.9), 90.0);
    }

    #[test]
    fn nan_dropped() {
        let c = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn points_are_monotone() {
        let c = Cdf::new(vec![5.0, 3.0, 9.0, 1.0]);
        let pts: Vec<_> = c.points().collect();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_quantile_panics() {
        Cdf::new(vec![]).median();
    }
}
