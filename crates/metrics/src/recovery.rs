//! Retry / stall / recovery counters for fault-injected runs.

/// What the recovery machinery did during one run: control-plane delivery
/// outcomes, retransmissions, watchdog interventions and the §II-B4 repair
/// actions (payee reassignment, key escrow). All zero on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryCounters {
    /// Control messages handed to the fault layer.
    pub ctrl_sent: u64,
    /// Control messages lost (loss probability or partition).
    pub ctrl_dropped: u64,
    /// Control messages delivered late.
    pub ctrl_delayed: u64,
    /// Tracker queries lost.
    pub tracker_dropped: u64,
    /// Reports/keys retransmitted after a timeout.
    pub retransmissions: u64,
    /// Retry chains that hit the attempt cap and gave up.
    pub retry_exhausted: u64,
    /// Transactions closed by the watchdog (dead participant or terminal
    /// stall).
    pub watchdog_closures: u64,
    /// §II-B4 payee reassignments (chain repaired past a gone payee).
    pub payees_reassigned: u64,
    /// §II-B4 key escrows (donor gone; payee releases the key).
    pub keys_escrowed: u64,
    /// Peers that crashed abruptly (distinct from graceful departures).
    pub crashes: u64,
    /// Chains force-closed because repair was impossible.
    pub broken_chains: u64,
    /// Transactions found referencing dead/stale protocol state and
    /// discarded instead of panicking.
    pub orphaned_txns: u64,
}

impl tchain_obs::ExportStats for RecoveryCounters {
    fn export_stats(&self, prefix: &str, reg: &mut tchain_obs::StatsRegistry) {
        reg.add(&format!("{prefix}ctrl_sent"), self.ctrl_sent);
        reg.add(&format!("{prefix}ctrl_dropped"), self.ctrl_dropped);
        reg.add(&format!("{prefix}ctrl_delayed"), self.ctrl_delayed);
        reg.add(&format!("{prefix}tracker_dropped"), self.tracker_dropped);
        reg.add(&format!("{prefix}retransmissions"), self.retransmissions);
        reg.add(&format!("{prefix}retry_exhausted"), self.retry_exhausted);
        reg.add(&format!("{prefix}watchdog_closures"), self.watchdog_closures);
        reg.add(&format!("{prefix}payees_reassigned"), self.payees_reassigned);
        reg.add(&format!("{prefix}keys_escrowed"), self.keys_escrowed);
        reg.add(&format!("{prefix}crashes"), self.crashes);
        reg.add(&format!("{prefix}broken_chains"), self.broken_chains);
        reg.add(&format!("{prefix}orphaned_txns"), self.orphaned_txns);
    }
}

impl RecoveryCounters {
    /// Sums two counter sets (e.g. aggregating over seeds).
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.ctrl_sent += other.ctrl_sent;
        self.ctrl_dropped += other.ctrl_dropped;
        self.ctrl_delayed += other.ctrl_delayed;
        self.tracker_dropped += other.tracker_dropped;
        self.retransmissions += other.retransmissions;
        self.retry_exhausted += other.retry_exhausted;
        self.watchdog_closures += other.watchdog_closures;
        self.payees_reassigned += other.payees_reassigned;
        self.keys_escrowed += other.keys_escrowed;
        self.crashes += other.crashes;
        self.broken_chains += other.broken_chains;
        self.orphaned_txns += other.orphaned_txns;
    }

    /// Fraction of sent control messages that were lost.
    pub fn loss_rate(&self) -> f64 {
        if self.ctrl_sent == 0 {
            0.0
        } else {
            self.ctrl_dropped as f64 / self.ctrl_sent as f64
        }
    }

    /// `true` when nothing fault-related happened (the expected state of
    /// every fault-free run).
    pub fn is_quiet(&self) -> bool {
        *self == RecoveryCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = RecoveryCounters { ctrl_sent: 10, ctrl_dropped: 2, ..Default::default() };
        let b = RecoveryCounters {
            ctrl_sent: 5,
            retransmissions: 3,
            keys_escrowed: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.ctrl_sent, 15);
        assert_eq!(a.ctrl_dropped, 2);
        assert_eq!(a.retransmissions, 3);
        assert_eq!(a.keys_escrowed, 1);
    }

    #[test]
    fn loss_rate_and_quiet() {
        let mut c = RecoveryCounters::default();
        assert!(c.is_quiet());
        assert_eq!(c.loss_rate(), 0.0);
        c.ctrl_sent = 8;
        c.ctrl_dropped = 2;
        assert!(!c.is_quiet());
        assert!((c.loss_rate() - 0.25).abs() < 1e-12);
    }
}
