//! Overhead accounting (§III-C): encryption, reports and storage.

/// Encryption/decryption overhead model (§III-C1).
///
/// Each leecher encrypts and decrypts the equivalent of the entire file
/// once; the overhead is that crypto time relative to the transfer time
/// at the given link rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncryptionOverhead {
    /// Seconds to encrypt (or decrypt) one byte.
    pub seconds_per_byte: f64,
}

impl EncryptionOverhead {
    /// The paper's cited figure (Sirivianos et al.): 0.715 ms per 128 KB
    /// piece.
    pub fn paper_cited() -> Self {
        EncryptionOverhead { seconds_per_byte: 0.715e-3 / (128.0 * 1024.0) }
    }

    /// From a measured cipher throughput in bytes/second (e.g. the
    /// `crypto` criterion bench on this machine).
    pub fn from_throughput(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "throughput must be positive");
        EncryptionOverhead { seconds_per_byte: 1.0 / bytes_per_sec }
    }

    /// Seconds to encrypt *and* decrypt `file_bytes`.
    pub fn crypto_seconds(&self, file_bytes: f64) -> f64 {
        2.0 * self.seconds_per_byte * file_bytes
    }

    /// Overhead fraction: crypto time over transfer time at
    /// `link_bytes_per_sec`.
    pub fn overhead_fraction(&self, file_bytes: f64, link_bytes_per_sec: f64) -> f64 {
        assert!(link_bytes_per_sec > 0.0, "link rate must be positive");
        self.crypto_seconds(file_bytes) / (file_bytes / link_bytes_per_sec)
    }
}

/// Storage overhead (§III-C3): one key (+nonce) retained per piece.
pub fn space_overhead_fraction(file_bytes: f64, piece_bytes: f64, key_bytes: f64) -> f64 {
    assert!(file_bytes > 0.0 && piece_bytes > 0.0, "positive sizes");
    let pieces = (file_bytes / piece_bytes).ceil();
    pieces * key_bytes / file_bytes
}

/// Report/latency overhead (§III-C2): consecutive transactions interleave,
/// so a single chain of `n` transactions completes within the time of
/// `n + 2` plain piece uploads.
pub fn chain_completion_slots(transactions: u64) -> u64 {
    transactions + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_encryption_overhead_below_1_2_percent() {
        // §III-C1: a 1 GB file needs ~12 s of crypto vs ~1024 s of
        // transfer at 8 Mbps ⇒ < 1.2 %.
        let e = EncryptionOverhead::paper_cited();
        let gb = 1024.0 * 1024.0 * 1024.0;
        let crypto = e.crypto_seconds(gb);
        assert!((11.0..13.0).contains(&crypto), "crypto {crypto} s");
        let mbps8 = 8_000_000.0 / 8.0;
        let frac = e.overhead_fraction(gb, mbps8);
        assert!(frac < 0.012, "overhead {frac}");
        assert!(frac > 0.008);
    }

    #[test]
    fn space_overhead_matches_paper() {
        // §III-C3: 1 GB file, 128 KB pieces, 256-bit keys ⇒ 256 KB
        // (~0.02 %).
        let gb = 1024.0 * 1024.0 * 1024.0;
        let frac = space_overhead_fraction(gb, 128.0 * 1024.0, 32.0);
        assert!((frac - 256.0 * 1024.0 / gb).abs() < 1e-12);
        assert!(frac < 0.0003);
    }

    #[test]
    fn chain_interleaving() {
        // §III-C2: n transactions take no more than n + 2 piece uploads.
        assert_eq!(chain_completion_slots(1), 3);
        assert_eq!(chain_completion_slots(100), 102);
    }

    #[test]
    fn from_measured_throughput() {
        // 1 GB/s cipher: a 128 MB file costs ~0.27 s of crypto.
        let e = EncryptionOverhead::from_throughput(1e9);
        let f = 128.0 * 1024.0 * 1024.0;
        assert!((e.crypto_seconds(f) - 2.0 * f / 1e9).abs() < 1e-12);
        // At 100 KB/s transfer the overhead is far below a percent.
        assert!(e.overhead_fraction(f, 100_000.0) < 0.001);
    }
}
