//! Newcomer-bootstrapping dynamics (§III-B).
//!
//! The paper models bootstrapping as a discrete-time system: `x(t)`
//! completely un-bootstrapped peers, `y(t)` partially bootstrapped peers
//! (one encrypted, un-reciprocated piece — T-Chain only) and `n(t)` total
//! peers. A BitTorrent-like protocol bootstraps via optimistic unchoking
//! (probability δ per timeslot); T-Chain bootstraps whenever a chain's
//! indirect reciprocity designates an un-bootstrapped payee.

/// Piece-possession distribution of bootstrapped peers: `pm[m]` is the
/// probability a bootstrapped peer holds `m` pieces (`m = 0..M-1`).
#[derive(Debug, Clone, PartialEq)]
pub struct PieceDistribution {
    pm: Vec<f64>,
}

impl PieceDistribution {
    /// A distribution over `0..M-1` pieces.
    ///
    /// # Panics
    ///
    /// Panics if `pm` is empty or does not sum to ~1.
    pub fn new(pm: Vec<f64>) -> Self {
        assert!(!pm.is_empty(), "distribution over at least one count");
        let sum: f64 = pm.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "probabilities must sum to 1, got {sum}");
        PieceDistribution { pm }
    }

    /// The uniform distribution `pm = 1/M` used throughout §III-B (e.g.
    /// the ω′ ≈ 0.495 example with M = 100).
    pub fn uniform(m_pieces: usize) -> Self {
        assert!(m_pieces >= 1, "at least one piece");
        PieceDistribution { pm: vec![1.0 / m_pieces as f64; m_pieces] }
    }

    /// Number of pieces `M`.
    pub fn m(&self) -> usize {
        self.pm.len()
    }

    /// ω′: probability that a peer already has the *single* piece of a
    /// partially bootstrapped peer — `Σ pm · m / M` (§III-B2).
    pub fn omega_prime(&self) -> f64 {
        let m = self.m() as f64;
        self.pm.iter().enumerate().map(|(i, p)| p * i as f64 / m).sum()
    }

    /// ω″ (eq. 4): probability that bootstrapped peer j needs *nothing*
    /// from bootstrapped peer i, i.e. j's set contains i's set:
    /// `Σ_j p_{mj} Σ_{i ≤ j} p_{mi} · C(mj, mi)/C(M, mi)`.
    ///
    /// For uniform `pm` and large `M` this is ≈ `ln(M)/M` (§III-B2).
    pub fn omega_double_prime(&self) -> f64 {
        let m = self.m();
        // ln C(a, b) via ln-gamma sums (factorials overflow fast).
        let ln_fact: Vec<f64> = {
            let mut v = vec![0.0; m + 1];
            for i in 1..=m {
                v[i] = v[i - 1] + (i as f64).ln();
            }
            v
        };
        let ln_choose = |a: usize, b: usize| ln_fact[a] - ln_fact[b] - ln_fact[a - b];
        let mut total = 0.0;
        for (mj, &pj) in self.pm.iter().enumerate() {
            if pj == 0.0 {
                continue;
            }
            for (mi, &pi) in self.pm.iter().enumerate().take(mj + 1) {
                if pi == 0.0 || mi == 0 {
                    // An empty set is contained in anything, but the paper
                    // sums from m = 1 (peers with zero pieces are counted
                    // in x, not z).
                    continue;
                }
                let term = (ln_choose(mj, mi) - ln_choose(m, mi)).exp();
                total += pj * pi * term;
            }
        }
        total
    }
}

/// State of the §III-B dynamical system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapState {
    /// Completely un-bootstrapped peers `x(t)`.
    pub x: f64,
    /// Partially bootstrapped peers `y(t)` (T-Chain only; 0 for BT).
    pub y: f64,
    /// Total peers `n(t)`.
    pub n: f64,
}

impl BootstrapState {
    /// Fully bootstrapped peers `z(t) = n − x − y`.
    pub fn z(&self) -> f64 {
        (self.n - self.x - self.y).max(0.0)
    }

    /// Fraction of peers not yet fully bootstrapped.
    pub fn unbootstrapped_fraction(&self) -> f64 {
        if self.n <= 0.0 {
            0.0
        } else {
            (self.x + self.y) / self.n
        }
    }
}

/// Parameters shared by both §III-B models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapParams {
    /// Newcomer arrival rate α (fraction of `n` per timeslot).
    pub alpha: f64,
    /// Departure rate β.
    pub beta: f64,
    /// BitTorrent's optimistic-unchoke probability δ (≈ 0.2: one of five
    /// slots).
    pub delta: f64,
    /// Average chains per bootstrapped T-Chain peer per timeslot `K`.
    pub k_chains: f64,
}

impl Default for BootstrapParams {
    fn default() -> Self {
        BootstrapParams { alpha: 0.0, beta: 0.0, delta: 0.2, k_chains: 2.0 }
    }
}

/// One step of the BitTorrent-like model (§III-B1, eq. 1). Returns the
/// next state; `y` stays 0 by construction.
pub fn bt_step(s: BootstrapState, p: &BootstrapParams) -> BootstrapState {
    let n = s.n;
    let z = s.z();
    let prob = bt_bootstrap_probability(n, z, p.delta);
    let x_next = s.x * (1.0 - prob) * (1.0 - p.beta) + p.alpha * n;
    let n_next = (1.0 - p.beta + p.alpha) * n;
    BootstrapState { x: x_next.max(0.0), y: 0.0, n: n_next }
}

/// The §III-B1 per-timeslot probability that a given un-bootstrapped peer
/// is bootstrapped: seeder pick + downloader optimistic unchokes, minus
/// the double-count.
pub fn bt_bootstrap_probability(n: f64, z: f64, delta: f64) -> f64 {
    if n <= 1.0 {
        return 1.0;
    }
    let seeder = 1.0 / n;
    let not_picked_by_one = 1.0 - delta + delta * (n - 2.0) / (n - 1.0);
    let downloaders = 1.0 - not_picked_by_one.powf(z.max(0.0));
    (seeder + downloaders - downloaders * seeder).clamp(0.0, 1.0)
}

/// The T-Chain per-timeslot bootstrap probability (eq. 2), using the
/// previous slot's fully bootstrapped count `z_prev` and the indirect-
/// reciprocity probability ω (eq. 3).
pub fn tchain_bootstrap_probability(
    n: f64,
    n_prev: f64,
    z_prev: f64,
    omega: f64,
    k_chains: f64,
) -> f64 {
    if n <= 1.0 || n_prev <= 1.0 {
        return 1.0;
    }
    let exponent = k_chains * omega * z_prev.max(0.0);
    let p = 1.0 - ((n - 1.0) / n) * (((n - 2.0) / (n_prev - 1.0)).clamp(0.0, 1.0)).powf(exponent);
    p.clamp(0.0, 1.0)
}

/// ω (eq. 3): the probability a bootstrapped peer's chain uses indirect
/// reciprocity, so its payee choice can bootstrap someone.
pub fn omega(prev: BootstrapState, omega_p: f64, omega_pp: f64) -> f64 {
    if prev.n <= 1.0 {
        return 0.0;
    }
    ((prev.x + omega_p * prev.y + omega_pp * (prev.z() - 1.0).max(0.0)) / (prev.n - 1.0))
        .clamp(0.0, 1.0)
}

/// One step of the T-Chain model (§III-B2, eqs. 5–6).
pub fn tchain_step(
    s: BootstrapState,
    prev: BootstrapState,
    p: &BootstrapParams,
    dist: &PieceDistribution,
) -> BootstrapState {
    let w = omega(prev, dist.omega_prime(), dist.omega_double_prime());
    let prob = tchain_bootstrap_probability(s.n, prev.n, prev.z(), w, p.k_chains);
    let x_next = p.alpha * s.n + s.x * (1.0 - p.beta) * (1.0 - prob);
    let y_next = s.x * (1.0 - p.beta) * prob;
    let n_next = (1.0 - p.beta + p.alpha) * s.n;
    BootstrapState { x: x_next.max(0.0), y: y_next.max(0.0), n: n_next }
}

/// Iterates a model for `steps` slots, returning the trajectory of
/// un-bootstrapped fractions `(x + y)/n` — the curves behind the §III-B3
/// comparison.
pub fn trajectory(
    mut s: BootstrapState,
    p: &BootstrapParams,
    dist: Option<&PieceDistribution>,
    steps: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(steps + 1);
    out.push(s.unbootstrapped_fraction());
    let mut prev = s;
    for _ in 0..steps {
        let next = match dist {
            Some(d) => tchain_step(s, prev, p, d),
            None => bt_step(s, p),
        };
        prev = s;
        s = next;
        out.push(s.unbootstrapped_fraction());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_prime_matches_paper_example() {
        // §III-B3: "ω′ = 0.495 (approximating ω′ with M = 100 and
        // pm = 1/M)".
        let d = PieceDistribution::uniform(100);
        assert!((d.omega_prime() - 0.495).abs() < 1e-12);
    }

    #[test]
    fn omega_double_prime_close_to_log_m_over_m() {
        // §III-B2: "If M is large and the pm are uniform, then
        // ω″ ≈ log(M)/M".
        for m in [100usize, 400, 1000] {
            let d = PieceDistribution::uniform(m);
            let w = d.omega_double_prime();
            let approx = (m as f64).ln() / m as f64;
            assert!(
                (w - approx).abs() / approx < 0.35,
                "M={m}: ω″={w} vs ln(M)/M={approx}"
            );
        }
    }

    #[test]
    fn omega_double_prime_below_omega_prime() {
        // The paper assumes ω″ ≤ ω′ throughout.
        let d = PieceDistribution::uniform(100);
        assert!(d.omega_double_prime() <= d.omega_prime());
    }

    #[test]
    fn bt_model_bootstraps_everyone_eventually() {
        let p = BootstrapParams::default();
        let s = BootstrapState { x: 500.0, y: 0.0, n: 600.0 };
        let traj = trajectory(s, &p, None, 200);
        assert!(traj[0] > 0.8);
        assert!(*traj.last().unwrap() < 0.01, "final fraction {}", traj.last().unwrap());
        // Monotone decrease without arrivals.
        for w in traj.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn tchain_model_bootstraps_faster_in_flash_crowd() {
        // Proposition III.1's regime: many un-bootstrapped peers. With
        // K = 2 and M = 100, Kω″ < δ, so T-Chain wins the short term
        // (flash crowd) while BitTorrent catches up long-term — exactly
        // the split between Propositions III.1 and III.2.
        let p = BootstrapParams::default();
        let d = PieceDistribution::uniform(100);
        let s = BootstrapState { x: 300.0, y: 0.0, n: 600.0 };
        let bt = trajectory(s, &p, None, 10);
        let tc = trajectory(s, &p, Some(&d), 10);
        assert!(
            tc[5] <= bt[5] + 1e-9,
            "t=5: tchain {} vs bt {}",
            tc[5],
            bt[5]
        );
    }

    #[test]
    fn tchain_model_wins_long_term_when_kw_exceeds_delta() {
        // Proposition III.2's regime: Kω″ > δ makes T-Chain faster even
        // when most peers are already bootstrapped.
        let d = PieceDistribution::uniform(100);
        let w = d.omega_double_prime();
        let k = (0.2 / w).ceil() + 2.0;
        let p = BootstrapParams { k_chains: k, ..Default::default() };
        let s = BootstrapState { x: 60.0, y: 0.0, n: 600.0 };
        let bt = trajectory(s, &p, None, 40);
        let tc = trajectory(s, &p, Some(&d), 40);
        assert!(
            tc[40] <= bt[40] + 1e-9,
            "t=40: tchain {} vs bt {}",
            tc[40],
            bt[40]
        );
    }

    #[test]
    fn constant_population_when_alpha_equals_beta() {
        // §III-B1: "if β = α … the expected number of peers in the swarm
        // remains constant".
        let p = BootstrapParams { alpha: 0.01, beta: 0.01, ..Default::default() };
        let mut s = BootstrapState { x: 100.0, y: 0.0, n: 500.0 };
        for _ in 0..50 {
            s = bt_step(s, &p);
        }
        assert!((s.n - 500.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for z in [0.0, 1.0, 10.0, 599.0] {
            let p = bt_bootstrap_probability(600.0, z, 0.2);
            assert!((0.0..=1.0).contains(&p));
            let q = tchain_bootstrap_probability(600.0, 600.0, z, 0.5, 2.0);
            assert!((0.0..=1.0).contains(&q));
        }
        assert_eq!(bt_bootstrap_probability(1.0, 0.0, 0.2), 1.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_distribution_rejected() {
        PieceDistribution::new(vec![0.5, 0.2]);
    }
}
