//! # tchain-analysis — the paper's Section III models
//!
//! Closed-form and iterated-expectation models, independent of the
//! simulator, used to cross-check it:
//!
//! * [`bootstrap`] — the §III-B newcomer-bootstrapping dynamics for a
//!   BitTorrent-like protocol (optimistic unchoking) and for T-Chain
//!   (pay-it-forward), including ω′ and ω″ (eq. 4);
//! * [`propositions`] — numeric verification of Propositions III.1/III.2
//!   (sufficient conditions for T-Chain's faster bootstrapping);
//! * [`collusion`] — the §III-A4 collusion/Sybil success probability
//!   (paper form, exact form and Monte-Carlo);
//! * [`overhead`] — the §III-C encryption/report/space overhead budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod collusion;
pub mod overhead;
pub mod propositions;

pub use bootstrap::{BootstrapParams, BootstrapState, PieceDistribution};
pub use overhead::EncryptionOverhead;
