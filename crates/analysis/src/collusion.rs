//! Collusion/Sybil success probability (§III-A4).
//!
//! A collusion (or Sybil) attack succeeds only when the *requestor and
//! payee of the same transaction* both belong to the attacker's set `S`
//! of `m` peers, each peer knowing `b` tracker-provided neighbors out of
//! `N`. The paper derives `P_s = Σ_{l=2}^{min(m,b)} P_l P_c` with
//!
//! `P_l = Π_{i=0}^{l-1} (m−i)/(N−i)`, `P_c = (l/b)·((l−1)/(b−1))`.
//!
//! We implement the paper's expression verbatim ([`ps_paper`]), the exact
//! expectation under the hypergeometric neighbor draw ([`ps_exact`], with
//! the closed form `m(m−1)/(N(N−1))`), and a Monte-Carlo simulation of
//! the described process ([`ps_monte_carlo`]) that validates the exact
//! form. All three agree that `P_s` is negligible unless the colluder set
//! is a large fraction of the swarm.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The paper's closed-form expression for the collusion success
/// probability (§III-A4).
///
/// # Panics
///
/// Panics unless `2 ≤ b ≤ N` and `m ≤ N`.
pub fn ps_paper(n: usize, m: usize, b: usize) -> f64 {
    validate(n, m, b);
    let mut total = 0.0;
    for l in 2..=m.min(b) {
        let mut pl = 1.0;
        for i in 0..l {
            pl *= (m - i) as f64 / (n - i) as f64;
        }
        let pc = (l as f64 / b as f64) * ((l - 1) as f64 / (b - 1) as f64);
        total += pl * pc;
    }
    total
}

/// Exact success probability when the `b` neighbors are a uniform draw
/// without replacement: `E[c(c−1)] / (b(b−1))` over hypergeometric `c`,
/// which collapses to `m(m−1) / (N(N−1))` — independent of `b`.
pub fn ps_exact(n: usize, m: usize, b: usize) -> f64 {
    validate(n, m, b);
    if m < 2 {
        return 0.0;
    }
    (m as f64 * (m - 1) as f64) / (n as f64 * (n - 1) as f64)
}

/// Monte-Carlo estimate of the §III-A4 process: draw `b` of `N` peers
/// (of whom `m` collude), then pick an ordered pair of distinct
/// neighbors (the independently chosen requestor and payee); success iff
/// both collude.
pub fn ps_monte_carlo(n: usize, m: usize, b: usize, trials: usize, seed: u64) -> f64 {
    validate(n, m, b);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..n).collect();
    let mut hits = 0usize;
    for _ in 0..trials {
        pool.shuffle(&mut rng);
        // First b entries are the neighbor list; peers 0..m collude.
        // `validate` guarantees b >= 2, so both draws are from a
        // non-empty slice and the rejection loop terminates.
        let Some(&requestor) = pool[..b].choose(&mut rng) else { continue };
        let payee = loop {
            let Some(&p) = pool[..b].choose(&mut rng) else { break requestor };
            if p != requestor {
                break p;
            }
        };
        if payee == requestor {
            continue;
        }
        if requestor < m && payee < m {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn validate(n: usize, m: usize, b: usize) {
    assert!(b >= 2, "need at least two neighbors");
    assert!(b <= n, "neighbor list cannot exceed the swarm");
    assert!(m <= n, "colluders cannot exceed the swarm");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_monte_carlo() {
        let (n, m, b) = (500, 50, 50);
        let exact = ps_exact(n, m, b);
        let mc = ps_monte_carlo(n, m, b, 200_000, 7);
        assert!(
            (exact - mc).abs() < 0.003,
            "exact {exact} vs MC {mc}"
        );
    }

    #[test]
    fn small_colluder_sets_are_hopeless() {
        // §III-A4: "when m ≪ N, the probability Ps is very small".
        let ps = ps_exact(1000, 10, 50);
        assert!(ps < 1e-4, "ps = {ps}");
        let ps = ps_paper(1000, 10, 50);
        assert!(ps < 1e-4, "paper ps = {ps}");
    }

    #[test]
    fn probability_grows_with_colluder_fraction() {
        let small = ps_exact(1000, 10, 50);
        let medium = ps_exact(1000, 100, 50);
        let large = ps_exact(1000, 500, 50);
        assert!(small < medium && medium < large);
        assert!((ps_exact(1000, 1000, 50) - 1.0).abs() < 1e-9, "all colluders ⇒ certain");
    }

    #[test]
    fn paper_form_is_small_and_same_order_for_small_m() {
        // The paper's P_l omits the combinatorial rearrangements, so its
        // expression underestimates the exact value; both are tiny and of
        // comparable magnitude in the m ≪ N regime the paper argues about.
        for (n, m, b) in [(1000usize, 20usize, 50usize), (5000, 100, 50)] {
            let exact = ps_exact(n, m, b);
            let paper = ps_paper(n, m, b);
            assert!(paper <= exact * 1.5 + 1e-12, "paper {paper} vs exact {exact}");
            assert!(paper > 0.0);
        }
    }

    #[test]
    fn zero_or_one_colluder_never_succeeds() {
        assert_eq!(ps_exact(100, 0, 10), 0.0);
        assert_eq!(ps_exact(100, 1, 10), 0.0);
        assert_eq!(ps_paper(100, 1, 10), 0.0);
        assert_eq!(ps_monte_carlo(100, 1, 10, 10_000, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "two neighbors")]
    fn degenerate_b_rejected() {
        ps_exact(10, 2, 1);
    }
}
