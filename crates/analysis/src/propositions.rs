//! Numeric verification of Propositions III.1 and III.2.
//!
//! Both propositions give *sufficient conditions* under which T-Chain's
//! bootstrapping rate beats the BitTorrent-like model's. The functions
//! here evaluate the conditions and the actual one-step rates, so tests
//! (and the `analysis` experiment binary) can confirm the implications
//! numerically across parameter sweeps.

use crate::bootstrap::{
    bt_bootstrap_probability, omega, tchain_bootstrap_probability, BootstrapParams,
    BootstrapState, PieceDistribution,
};

/// The bootstrapping *rate* as the paper defines it:
/// `E[x(t+1)|x(t)] / x(t)` — smaller is faster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateComparison {
    /// BitTorrent-like one-step rate.
    pub bt_rate: f64,
    /// T-Chain one-step rate.
    pub tchain_rate: f64,
}

impl RateComparison {
    /// Whether T-Chain bootstraps at least as fast.
    pub fn tchain_wins(&self) -> bool {
        self.tchain_rate <= self.bt_rate + 1e-12
    }
}

/// Evaluates both models' one-step rates at a common state (α = β = 0 as
/// in the propositions).
pub fn compare_rates(
    tchain: BootstrapState,
    tchain_prev: BootstrapState,
    bt_x: f64,
    n: f64,
    params: &BootstrapParams,
    dist: &PieceDistribution,
) -> RateComparison {
    let bt_z = n - bt_x;
    let p_bt = bt_bootstrap_probability(n, bt_z, params.delta);
    let w = omega(tchain_prev, dist.omega_prime(), dist.omega_double_prime());
    let p_tc =
        tchain_bootstrap_probability(tchain.n, tchain_prev.n, tchain_prev.z(), w, params.k_chains);
    RateComparison { bt_rate: 1.0 - p_bt, tchain_rate: 1.0 - p_tc }
}

/// Proposition III.1's sufficient condition (eq. 7):
/// `K z(t−1) (x + ω′y + ω″(z−1))/(n−1) ≥ δ (n − x_b)`.
pub fn prop31_condition(
    tchain_prev: BootstrapState,
    bt_x: f64,
    n: f64,
    params: &BootstrapParams,
    dist: &PieceDistribution,
) -> bool {
    let z = tchain_prev.z();
    let lhs = params.k_chains
        * z
        * ((tchain_prev.x
            + dist.omega_prime() * tchain_prev.y
            + dist.omega_double_prime() * (z - 1.0).max(0.0))
            / (n - 1.0));
    let rhs = params.delta * (n - bt_x);
    lhs >= rhs
}

/// Proposition III.2's sufficient condition (eq. 8):
/// `(1 − δ/(n−1))^{n(1−ν)} ≥ (1 − 1/(n−1))^{K n (1−µ) ω″}`, where
/// `µ ≥ (x_t + y_t)/n` bounds T-Chain's un-bootstrapped fraction and
/// `ν ≤ x_b/n` bounds BitTorrent's.
pub fn prop32_condition(
    n: f64,
    mu: f64,
    nu: f64,
    params: &BootstrapParams,
    dist: &PieceDistribution,
) -> bool {
    let lhs = (1.0 - params.delta / (n - 1.0)).powf(n * (1.0 - nu));
    let rhs = (1.0 - 1.0 / (n - 1.0)).powf(params.k_chains * n * (1.0 - mu) * dist.omega_double_prime());
    lhs >= rhs
}

/// The large-`n` limit of Proposition III.2's condition:
/// `δ(1−ν) ≤ K ω″ (1−µ)`. The paper notes `K ω″ > δ` suffices when
/// `ν > µ`.
pub fn prop32_asymptotic(
    mu: f64,
    nu: f64,
    params: &BootstrapParams,
    dist: &PieceDistribution,
) -> bool {
    params.delta * (1.0 - nu) <= params.k_chains * dist.omega_double_prime() * (1.0 - mu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BootstrapParams, PieceDistribution) {
        (BootstrapParams::default(), PieceDistribution::uniform(100))
    }

    #[test]
    fn prop31_example_from_paper() {
        // §III-B3 example: δ = 0.2, ω′ = 0.495, µ = 0.5, K = 2 satisfies
        // the flash-crowd sufficient condition when x_t + y_t ≤ x_b and
        // half the peers are un-bootstrapped.
        let (p, d) = setup();
        let n = 600.0;
        // T-Chain: 300 un-bootstrapped (µ = 0.5), mostly partially
        // bootstrapped peers.
        let prev = BootstrapState { x: 100.0, y: 200.0, n };
        assert!(prop31_condition(prev, 300.0, n, &p, &d));
    }

    #[test]
    fn prop31_condition_implies_faster_rate() {
        // Sweep states; whenever eq. (7) holds, the measured one-step
        // rate comparison must agree (that is the proposition).
        let (p, d) = setup();
        let n = 600.0;
        let mut checked = 0;
        for x_frac in [0.1, 0.3, 0.5, 0.7] {
            for y_frac in [0.0, 0.1, 0.3] {
                if x_frac + y_frac >= 1.0 {
                    continue;
                }
                let prev =
                    BootstrapState { x: x_frac * n, y: y_frac * n, n };
                let cur = prev;
                let bt_x = (x_frac + y_frac) * n; // same un-bootstrapped mass
                if prop31_condition(prev, bt_x, n, &p, &d) {
                    let cmp = compare_rates(cur, prev, bt_x, n, &p, &d);
                    assert!(
                        cmp.tchain_wins(),
                        "condition held but rates disagree: {cmp:?} at x={x_frac}, y={y_frac}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked >= 3, "sweep exercised the condition {checked} times");
    }

    #[test]
    fn prop32_kw_greater_than_delta_suffices() {
        // The paper: "Kω″ > δ is a sufficient condition to ensure (8)"
        // when ν > µ. Pick K from the computed ω″ so the premise holds.
        let d = PieceDistribution::uniform(100);
        let k = (0.2 / d.omega_double_prime()).ceil() + 1.0;
        let p = BootstrapParams { k_chains: k, ..Default::default() };
        assert!(p.k_chains * d.omega_double_prime() > p.delta);
        for n in [200.0, 600.0, 2000.0] {
            assert!(
                prop32_condition(n, 0.2, 0.3, &p, &d),
                "n={n}: eq. (8) should hold when Kω″ > δ and ν > µ"
            );
        }
        assert!(prop32_asymptotic(0.2, 0.3, &p, &d));
    }

    #[test]
    fn prop32_fails_for_tiny_k() {
        let d = PieceDistribution::uniform(100);
        let p = BootstrapParams { k_chains: 0.1, ..Default::default() };
        assert!(!prop32_asymptotic(0.5, 0.5, &p, &d));
    }

    #[test]
    fn rate_comparison_accessor() {
        let c = RateComparison { bt_rate: 0.9, tchain_rate: 0.8 };
        assert!(c.tchain_wins());
        let c = RateComparison { bt_rate: 0.8, tchain_rate: 0.9 };
        assert!(!c.tchain_wins());
    }
}
