//! Peers and the swarm membership table.

use crate::piece::Bitfield;
use tchain_sim::NodeId;

/// A participant's role (§II-A): seeders hold the whole file and upload
/// altruistically; leechers download and leave on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Holds all pieces; never leaves (the paper's single seeder remains in
    /// the swarm for the whole run).
    Seeder,
    /// Downloads the file; departs immediately upon completion (§IV-A).
    Leecher,
}

/// Per-peer state shared by every protocol driver.
///
/// Protocol-specific state (deficits, pending-piece ledgers, choke sets)
/// lives in the drivers, in parallel tables indexed by [`NodeId`].
#[derive(Debug, Clone)]
pub struct Peer {
    /// Identity within the simulation.
    pub id: NodeId,
    /// Seeder or leecher.
    pub role: Role,
    /// Upload capacity in bytes per second (0 for strict free-riders).
    pub capacity: f64,
    /// Simulated time the peer joined.
    pub join_time: f64,
    /// Time the download finished, if it did.
    pub done_time: Option<f64>,
    /// Time the peer left the swarm, if it did.
    pub left_time: Option<f64>,
    /// Completed (downloaded and decrypted) pieces — `F_A` in Table I.
    pub have: Bitfield,
    /// Completed piece-equivalents uploaded (numerator of the §IV-H
    /// fairness factor's denominator).
    pub pieces_up: u64,
    /// Completed pieces downloaded.
    pub pieces_down: u64,
    /// `false` for free-riders; used only for reporting, never by protocol
    /// logic (protocols cannot see who is compliant).
    pub compliant: bool,
}

impl Peer {
    /// Whether the peer is currently in the swarm.
    #[inline]
    pub fn alive(&self) -> bool {
        self.left_time.is_none()
    }

    /// Fairness factor: pieces downloaded over pieces uploaded (§IV-H).
    /// `None` when the peer uploaded nothing (the ratio is undefined; the
    /// paper's CDF only includes compliant leechers, which always upload).
    pub fn fairness_factor(&self) -> Option<f64> {
        if self.pieces_up == 0 {
            None
        } else {
            Some(self.pieces_down as f64 / self.pieces_up as f64)
        }
    }

    /// Residence time in the swarm up to `now` (or until departure).
    pub fn residence(&self, now: f64) -> f64 {
        self.left_time.unwrap_or(now) - self.join_time
    }
}

/// Dense table of every peer that ever joined the run (departed peers are
/// retained for end-of-run statistics).
#[derive(Debug, Default)]
pub struct PeerTable {
    peers: Vec<Peer>,
}

impl PeerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a peer and assigns it the next dense [`NodeId`].
    pub fn add(&mut self, role: Role, capacity: f64, join_time: f64, pieces: usize, compliant: bool) -> NodeId {
        let id = NodeId(self.peers.len() as u32);
        let have = match role {
            Role::Seeder => Bitfield::full(pieces),
            Role::Leecher => Bitfield::new(pieces),
        };
        self.peers.push(Peer {
            id,
            role,
            capacity,
            join_time,
            done_time: None,
            left_time: None,
            have,
            pieces_up: 0,
            pieces_down: 0,
            compliant,
        });
        id
    }

    /// Total peers ever admitted.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// `true` when no peer ever joined.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Immutable access.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never admitted.
    #[inline]
    pub fn get(&self, id: NodeId) -> &Peer {
        &self.peers[id.index()]
    }

    /// Mutable access.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never admitted.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> &mut Peer {
        &mut self.peers[id.index()]
    }

    /// Whether `id` is currently in the swarm.
    #[inline]
    pub fn alive(&self, id: NodeId) -> bool {
        self.peers[id.index()].alive()
    }

    /// Iterates over every peer ever admitted.
    pub fn iter(&self) -> impl Iterator<Item = &Peer> {
        self.peers.iter()
    }

    /// Iterates over peers currently in the swarm.
    pub fn iter_alive(&self) -> impl Iterator<Item = &Peer> {
        self.peers.iter().filter(|p| p.alive())
    }

    /// Number of live peers.
    pub fn alive_count(&self) -> usize {
        self.peers.iter().filter(|p| p.alive()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeder_starts_complete_leecher_empty() {
        let mut t = PeerTable::new();
        let s = t.add(Role::Seeder, 750_000.0, 0.0, 64, true);
        let l = t.add(Role::Leecher, 50_000.0, 1.0, 64, true);
        assert!(t.get(s).have.is_complete());
        assert_eq!(t.get(l).have.count(), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(s, NodeId(0));
        assert_eq!(l, NodeId(1));
    }

    #[test]
    fn fairness_factor() {
        let mut t = PeerTable::new();
        let l = t.add(Role::Leecher, 1.0, 0.0, 4, true);
        assert_eq!(t.get(l).fairness_factor(), None);
        t.get_mut(l).pieces_up = 4;
        t.get_mut(l).pieces_down = 2;
        assert_eq!(t.get(l).fairness_factor(), Some(0.5));
    }

    #[test]
    fn residence_and_departure() {
        let mut t = PeerTable::new();
        let l = t.add(Role::Leecher, 1.0, 10.0, 4, true);
        assert!(t.alive(l));
        assert_eq!(t.get(l).residence(25.0), 15.0);
        t.get_mut(l).left_time = Some(20.0);
        assert!(!t.alive(l));
        assert_eq!(t.get(l).residence(25.0), 10.0);
        assert_eq!(t.alive_count(), 0);
    }
}
