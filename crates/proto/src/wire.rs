//! Wire format for T-Chain's control messages.
//!
//! The simulator moves accounting rather than bytes, but a deployable
//! client needs a concrete encoding of Fig. 1's messages — and §III-C's
//! overhead argument rests on reports and keys being tiny next to 64 KB
//! pieces. This module pins those sizes down: a fixed little-endian
//! header plus payload, with strict parsing (trailing bytes rejected).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0]      message tag
//! [1..]    per-message fields (see each variant)
//! ```

use crate::PieceId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tchain_sim::NodeId;

/// Size in bytes of a key-release payload (256-bit key + 96-bit nonce).
pub const KEY_WIRE_SIZE: usize = 44;

/// A T-Chain control message (Fig. 1, Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// `[(i(j−1), D_{j−1}) | K[p_ij] | P_j]` — an (encrypted) piece
    /// upload header. The ciphertext itself travels out of band (it *is*
    /// the bulk transfer); this header carries the protocol fields.
    PieceUpload {
        /// Which earlier transaction this upload reciprocates, if any:
        /// `(piece, donor)` of the previous transaction.
        reciprocates: Option<(PieceId, NodeId)>,
        /// The piece being uploaded.
        piece: PieceId,
        /// The payee the recipient must reciprocate to; `None` means the
        /// upload is unencrypted and the chain terminates (§II-B3).
        payee: Option<NodeId>,
        /// Ciphertext length in bytes (for accounting/validation).
        ciphertext_len: u32,
    },
    /// `r_P = [R | i]` — the payee's reception report to the donor.
    ReceptionReport {
        /// Who reciprocated (the requestor being vouched for).
        requestor: NodeId,
        /// The piece the report covers.
        piece: PieceId,
    },
    /// The donor's key release to the requestor.
    KeyRelease {
        /// The piece the key decrypts.
        piece: PieceId,
        /// Raw key material (key ‖ nonce).
        key: [u8; KEY_WIRE_SIZE],
    },
    /// `B → P`: neighboring request sent before reciprocating to a payee
    /// that is not yet a neighbor (§II-B1).
    NeighborRequest {
        /// The requesting peer.
        from: NodeId,
    },
}

const TAG_PIECE_UPLOAD: u8 = 1;
const TAG_RECEPTION_REPORT: u8 = 2;
const TAG_KEY_RELEASE: u8 = 3;
const TAG_NEIGHBOR_REQUEST: u8 = 4;

/// Errors from [`Message::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer was shorter than the message demands.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Message {
    /// Encodes the message into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.encoded_len());
        match *self {
            Message::PieceUpload { reciprocates, piece, payee, ciphertext_len } => {
                b.put_u8(TAG_PIECE_UPLOAD);
                match reciprocates {
                    Some((p, d)) => {
                        b.put_u8(1);
                        b.put_u32_le(p.0);
                        b.put_u32_le(d.0);
                    }
                    None => b.put_u8(0),
                }
                b.put_u32_le(piece.0);
                match payee {
                    Some(p) => {
                        b.put_u8(1);
                        b.put_u32_le(p.0);
                    }
                    None => b.put_u8(0),
                }
                b.put_u32_le(ciphertext_len);
            }
            Message::ReceptionReport { requestor, piece } => {
                b.put_u8(TAG_RECEPTION_REPORT);
                b.put_u32_le(requestor.0);
                b.put_u32_le(piece.0);
            }
            Message::KeyRelease { piece, ref key } => {
                b.put_u8(TAG_KEY_RELEASE);
                b.put_u32_le(piece.0);
                b.put_slice(key);
            }
            Message::NeighborRequest { from } => {
                b.put_u8(TAG_NEIGHBOR_REQUEST);
                b.put_u32_le(from.0);
            }
        }
        b.freeze()
    }

    /// Exact encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::PieceUpload { reciprocates, payee, .. } => {
                1 + 1
                    + if reciprocates.is_some() { 8 } else { 0 }
                    + 4
                    + 1
                    + if payee.is_some() { 4 } else { 0 }
                    + 4
            }
            Message::ReceptionReport { .. } => 1 + 8,
            Message::KeyRelease { .. } => 1 + 4 + KEY_WIRE_SIZE,
            Message::NeighborRequest { .. } => 1 + 4,
        }
    }

    /// Decodes a message, rejecting truncated or over-long buffers.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the buffer is malformed.
    pub fn decode(mut buf: &[u8]) -> Result<Message, DecodeError> {
        fn need(buf: &[u8], n: usize) -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        }
        need(buf, 1)?;
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_PIECE_UPLOAD => {
                need(buf, 1)?;
                let reciprocates = if buf.get_u8() == 1 {
                    need(buf, 8)?;
                    Some((PieceId(buf.get_u32_le()), NodeId(buf.get_u32_le())))
                } else {
                    None
                };
                need(buf, 4)?;
                let piece = PieceId(buf.get_u32_le());
                need(buf, 1)?;
                let payee = if buf.get_u8() == 1 {
                    need(buf, 4)?;
                    Some(NodeId(buf.get_u32_le()))
                } else {
                    None
                };
                need(buf, 4)?;
                let ciphertext_len = buf.get_u32_le();
                Message::PieceUpload { reciprocates, piece, payee, ciphertext_len }
            }
            TAG_RECEPTION_REPORT => {
                need(buf, 8)?;
                Message::ReceptionReport {
                    requestor: NodeId(buf.get_u32_le()),
                    piece: PieceId(buf.get_u32_le()),
                }
            }
            TAG_KEY_RELEASE => {
                need(buf, 4 + KEY_WIRE_SIZE)?;
                let piece = PieceId(buf.get_u32_le());
                let mut key = [0u8; KEY_WIRE_SIZE];
                buf.copy_to_slice(&mut key);
                Message::KeyRelease { piece, key }
            }
            TAG_NEIGHBOR_REQUEST => {
                need(buf, 4)?;
                Message::NeighborRequest { from: NodeId(buf.get_u32_le()) }
            }
            t => return Err(DecodeError::UnknownTag(t)),
        };
        if buf.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(buf.remaining()));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let enc = m.encode();
        assert_eq!(enc.len(), m.encoded_len());
        assert_eq!(Message::decode(&enc).unwrap(), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::PieceUpload {
            reciprocates: Some((PieceId(7), NodeId(3))),
            piece: PieceId(99),
            payee: Some(NodeId(12)),
            ciphertext_len: 65536,
        });
        roundtrip(Message::PieceUpload {
            reciprocates: None,
            piece: PieceId(0),
            payee: None,
            ciphertext_len: 65536,
        });
        roundtrip(Message::ReceptionReport { requestor: NodeId(1), piece: PieceId(2) });
        roundtrip(Message::KeyRelease { piece: PieceId(3), key: [0xAB; KEY_WIRE_SIZE] });
        roundtrip(Message::NeighborRequest { from: NodeId(42) });
    }

    #[test]
    fn control_messages_are_tiny_next_to_pieces() {
        // §III-C2: "the reception report and the key uploaded are very
        // small in size compared to file pieces".
        let report = Message::ReceptionReport { requestor: NodeId(1), piece: PieceId(2) };
        let key = Message::KeyRelease { piece: PieceId(3), key: [0; KEY_WIRE_SIZE] };
        let piece_bytes = 64.0 * 1024.0;
        assert!((report.encoded_len() as f64) < piece_bytes * 0.001);
        assert!((key.encoded_len() as f64) < piece_bytes * 0.001);
    }

    #[test]
    fn truncated_rejected() {
        let m = Message::KeyRelease { piece: PieceId(3), key: [1; KEY_WIRE_SIZE] };
        let enc = m.encode();
        for cut in 0..enc.len() {
            assert_eq!(Message::decode(&enc[..cut]), Err(DecodeError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Message::NeighborRequest { from: NodeId(5) }.encode().to_vec();
        enc.push(0);
        assert_eq!(Message::decode(&enc), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(Message::decode(&[200]), Err(DecodeError::UnknownTag(200)));
        assert!(Message::decode(&[]).is_err());
    }

    #[test]
    fn decode_error_display() {
        assert_eq!(DecodeError::Truncated.to_string(), "message truncated");
        assert_eq!(DecodeError::UnknownTag(9).to_string(), "unknown message tag 9");
        assert_eq!(DecodeError::TrailingBytes(2).to_string(), "2 trailing bytes after message");
    }
}
