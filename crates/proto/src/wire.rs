//! Wire format for T-Chain's control messages.
//!
//! The simulator moves accounting rather than bytes, but a deployable
//! client needs a concrete encoding of Fig. 1's messages — and §III-C's
//! overhead argument rests on reports and keys being tiny next to 64 KB
//! pieces. This module pins those sizes down: a fixed little-endian
//! header plus payload, with strict parsing — trailing bytes, oversized
//! length fields and non-canonical flag bytes are all rejected with a
//! typed [`DecodeError`], never a panic.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0]      message tag
//! [1..]    per-message fields (see each variant)
//! ```

use crate::{Bitfield, PieceId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tchain_sim::NodeId;

/// Size in bytes of a key-release payload (256-bit key + 96-bit nonce),
/// derived from the crypto crate's key/nonce sizes so the wire format can
/// never drift from the cipher.
pub const KEY_WIRE_SIZE: usize = tchain_crypto::PieceKey::WIRE_SIZE;

/// Upper bound on `ciphertext_len` a decoder will accept: 16 MiB, far
/// above the paper's 64–256 KB pieces but small enough that a hostile
/// header cannot make a receiver reserve gigabytes.
pub const MAX_CIPHERTEXT_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on the piece count a [`Message::Bitfield`] may declare
/// (2^20 pieces of 64 KB is a 64 GiB file — beyond any scenario here).
pub const MAX_BITFIELD_PIECES: u32 = 1 << 20;

/// A T-Chain control message (Fig. 1, Table I) plus the availability
/// gossip (`Have`/`Bitfield`) the §II-A swarm mechanics assume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// `[(i(j−1), D_{j−1}) | K[p_ij] | P_j]` — an (encrypted) piece
    /// upload header. The ciphertext itself travels out of band (it *is*
    /// the bulk transfer); this header carries the protocol fields.
    PieceUpload {
        /// Which earlier transaction this upload reciprocates, if any:
        /// `(piece, donor)` of the previous transaction.
        reciprocates: Option<(PieceId, NodeId)>,
        /// The piece being uploaded.
        piece: PieceId,
        /// The payee the recipient must reciprocate to; `None` means the
        /// upload is unencrypted and the chain terminates (§II-B3).
        payee: Option<NodeId>,
        /// Ciphertext length in bytes (for accounting/validation).
        ciphertext_len: u32,
    },
    /// `r_P = [R | i]` — the payee's reception report to the donor.
    ReceptionReport {
        /// Who reciprocated (the requestor being vouched for).
        requestor: NodeId,
        /// The piece the report covers.
        piece: PieceId,
    },
    /// The donor's key release to the requestor, or — when `requestor`
    /// is set — a §II-B4 escrow message: a departing donor entrusting
    /// the key for its transaction *with that requestor* to the payee,
    /// or the payee forwarding it once the reciprocation arrives.
    /// Without the marker a payee holding keys for several transactions
    /// of the same `(donor, piece)` could not tell them apart.
    KeyRelease {
        /// The piece the key decrypts.
        piece: PieceId,
        /// The requestor of the transaction the key belongs to, for
        /// escrow handoffs/forwards; `None` for a direct release (the
        /// recipient *is* the requestor).
        requestor: Option<NodeId>,
        /// Raw key material (key ‖ nonce).
        key: [u8; KEY_WIRE_SIZE],
    },
    /// `B → P`: neighboring request sent before reciprocating to a payee
    /// that is not yet a neighbor (§II-B1).
    NeighborRequest {
        /// The requesting peer.
        from: NodeId,
    },
    /// Availability gossip: the sender completed (and, under T-Chain,
    /// decrypted) one piece.
    Have {
        /// The newly completed piece.
        piece: PieceId,
    },
    /// Handshake/availability gossip: the sender's full piece set, packed
    /// LSB-first with zero padding bits (non-canonical padding rejected).
    Bitfield {
        /// Total number of pieces in the file.
        pieces: u32,
        /// `ceil(pieces/8)` packed bytes.
        bits: Vec<u8>,
    },
}

const TAG_PIECE_UPLOAD: u8 = 1;
const TAG_RECEPTION_REPORT: u8 = 2;
const TAG_KEY_RELEASE: u8 = 3;
const TAG_NEIGHBOR_REQUEST: u8 = 4;
const TAG_HAVE: u8 = 5;
const TAG_BITFIELD: u8 = 6;

/// Errors from [`Message::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer was shorter than the message demands.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
    /// A length field exceeded its protocol bound.
    Oversized {
        /// Which field overflowed.
        field: &'static str,
        /// The declared value.
        got: u64,
        /// The protocol bound it violated.
        max: u64,
    },
    /// A non-canonical encoding: a flag byte other than 0/1, or a set
    /// padding bit in a bitfield.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            DecodeError::Oversized { field, got, max } => {
                write!(f, "{field} = {got} exceeds protocol bound {max}")
            }
            DecodeError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn get_flag(buf: &mut &[u8]) -> Result<bool, DecodeError> {
    match buf.get_u8() {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DecodeError::Malformed("flag byte must be 0 or 1")),
    }
}

impl Message {
    /// Builds a [`Message::Bitfield`] from a piece set.
    pub fn bitfield(bf: &Bitfield) -> Message {
        Message::Bitfield { pieces: bf.len() as u32, bits: bf.to_packed_bytes() }
    }

    /// Encodes the message into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.encoded_len());
        match *self {
            Message::PieceUpload { reciprocates, piece, payee, ciphertext_len } => {
                b.put_u8(TAG_PIECE_UPLOAD);
                match reciprocates {
                    Some((p, d)) => {
                        b.put_u8(1);
                        b.put_u32_le(p.0);
                        b.put_u32_le(d.0);
                    }
                    None => b.put_u8(0),
                }
                b.put_u32_le(piece.0);
                match payee {
                    Some(p) => {
                        b.put_u8(1);
                        b.put_u32_le(p.0);
                    }
                    None => b.put_u8(0),
                }
                b.put_u32_le(ciphertext_len);
            }
            Message::ReceptionReport { requestor, piece } => {
                b.put_u8(TAG_RECEPTION_REPORT);
                b.put_u32_le(requestor.0);
                b.put_u32_le(piece.0);
            }
            Message::KeyRelease { piece, requestor, ref key } => {
                b.put_u8(TAG_KEY_RELEASE);
                b.put_u32_le(piece.0);
                match requestor {
                    Some(r) => {
                        b.put_u8(1);
                        b.put_u32_le(r.0);
                    }
                    None => b.put_u8(0),
                }
                b.put_slice(key);
            }
            Message::NeighborRequest { from } => {
                b.put_u8(TAG_NEIGHBOR_REQUEST);
                b.put_u32_le(from.0);
            }
            Message::Have { piece } => {
                b.put_u8(TAG_HAVE);
                b.put_u32_le(piece.0);
            }
            Message::Bitfield { pieces, ref bits } => {
                b.put_u8(TAG_BITFIELD);
                b.put_u32_le(pieces);
                b.put_slice(bits);
            }
        }
        b.freeze()
    }

    /// Exact encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Message::PieceUpload { reciprocates, payee, .. } => {
                1 + 1
                    + if reciprocates.is_some() { 8 } else { 0 }
                    + 4
                    + 1
                    + if payee.is_some() { 4 } else { 0 }
                    + 4
            }
            Message::ReceptionReport { .. } => 1 + 8,
            Message::KeyRelease { requestor, .. } => {
                1 + 4 + 1 + if requestor.is_some() { 4 } else { 0 } + KEY_WIRE_SIZE
            }
            Message::NeighborRequest { .. } => 1 + 4,
            Message::Have { .. } => 1 + 4,
            Message::Bitfield { bits, .. } => 1 + 4 + bits.len(),
        }
    }

    /// Decodes a message, rejecting truncated, over-long, oversized or
    /// non-canonical buffers.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the buffer is malformed.
    pub fn decode(mut buf: &[u8]) -> Result<Message, DecodeError> {
        fn need(buf: &[u8], n: usize) -> Result<(), DecodeError> {
            if buf.remaining() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        }
        need(buf, 1)?;
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_PIECE_UPLOAD => {
                need(buf, 1)?;
                let reciprocates = if get_flag(&mut buf)? {
                    need(buf, 8)?;
                    Some((PieceId(buf.get_u32_le()), NodeId(buf.get_u32_le())))
                } else {
                    None
                };
                need(buf, 4)?;
                let piece = PieceId(buf.get_u32_le());
                need(buf, 1)?;
                let payee = if get_flag(&mut buf)? {
                    need(buf, 4)?;
                    Some(NodeId(buf.get_u32_le()))
                } else {
                    None
                };
                need(buf, 4)?;
                let ciphertext_len = buf.get_u32_le();
                if ciphertext_len > MAX_CIPHERTEXT_LEN {
                    return Err(DecodeError::Oversized {
                        field: "ciphertext_len",
                        got: u64::from(ciphertext_len),
                        max: u64::from(MAX_CIPHERTEXT_LEN),
                    });
                }
                Message::PieceUpload { reciprocates, piece, payee, ciphertext_len }
            }
            TAG_RECEPTION_REPORT => {
                need(buf, 8)?;
                Message::ReceptionReport {
                    requestor: NodeId(buf.get_u32_le()),
                    piece: PieceId(buf.get_u32_le()),
                }
            }
            TAG_KEY_RELEASE => {
                need(buf, 5)?;
                let piece = PieceId(buf.get_u32_le());
                let requestor = if get_flag(&mut buf)? {
                    need(buf, 4)?;
                    Some(NodeId(buf.get_u32_le()))
                } else {
                    None
                };
                need(buf, KEY_WIRE_SIZE)?;
                let mut key = [0u8; KEY_WIRE_SIZE];
                buf.copy_to_slice(&mut key);
                Message::KeyRelease { piece, requestor, key }
            }
            TAG_NEIGHBOR_REQUEST => {
                need(buf, 4)?;
                Message::NeighborRequest { from: NodeId(buf.get_u32_le()) }
            }
            TAG_HAVE => {
                need(buf, 4)?;
                Message::Have { piece: PieceId(buf.get_u32_le()) }
            }
            TAG_BITFIELD => {
                need(buf, 4)?;
                let pieces = buf.get_u32_le();
                if pieces > MAX_BITFIELD_PIECES {
                    return Err(DecodeError::Oversized {
                        field: "bitfield pieces",
                        got: u64::from(pieces),
                        max: u64::from(MAX_BITFIELD_PIECES),
                    });
                }
                let nbytes = (pieces as usize).div_ceil(8);
                need(buf, nbytes)?;
                let mut bits = vec![0u8; nbytes];
                buf.copy_to_slice(&mut bits);
                // Reject set padding bits so every piece set has exactly
                // one encoding (Bitfield::from_packed_bytes re-checks).
                if Bitfield::from_packed_bytes(pieces as usize, &bits).is_none() {
                    return Err(DecodeError::Malformed("bitfield padding bits set"));
                }
                Message::Bitfield { pieces, bits }
            }
            t => return Err(DecodeError::UnknownTag(t)),
        };
        if buf.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(buf.remaining()));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let enc = m.encode();
        assert_eq!(enc.len(), m.encoded_len());
        assert_eq!(Message::decode(&enc).expect("decode"), m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::PieceUpload {
            reciprocates: Some((PieceId(7), NodeId(3))),
            piece: PieceId(99),
            payee: Some(NodeId(12)),
            ciphertext_len: 65536,
        });
        roundtrip(Message::PieceUpload {
            reciprocates: None,
            piece: PieceId(0),
            payee: None,
            ciphertext_len: 65536,
        });
        roundtrip(Message::ReceptionReport { requestor: NodeId(1), piece: PieceId(2) });
        roundtrip(Message::KeyRelease {
            piece: PieceId(3),
            requestor: None,
            key: [0xAB; KEY_WIRE_SIZE],
        });
        roundtrip(Message::KeyRelease {
            piece: PieceId(3),
            requestor: Some(NodeId(8)),
            key: [0xCD; KEY_WIRE_SIZE],
        });
        roundtrip(Message::NeighborRequest { from: NodeId(42) });
        roundtrip(Message::Have { piece: PieceId(17) });
        let mut bf = Bitfield::new(21);
        bf.set(PieceId(0));
        bf.set(PieceId(20));
        roundtrip(Message::bitfield(&bf));
    }

    #[test]
    fn key_wire_size_tracks_crypto_crate() {
        assert_eq!(KEY_WIRE_SIZE, tchain_crypto::PieceKey::WIRE_SIZE);
        assert_eq!(KEY_WIRE_SIZE, 44);
    }

    #[test]
    fn control_messages_are_tiny_next_to_pieces() {
        // §III-C2: "the reception report and the key uploaded are very
        // small in size compared to file pieces".
        let report = Message::ReceptionReport { requestor: NodeId(1), piece: PieceId(2) };
        let key = Message::KeyRelease {
            piece: PieceId(3),
            requestor: Some(NodeId(7)),
            key: [0; KEY_WIRE_SIZE],
        };
        let piece_bytes = 64.0 * 1024.0;
        assert!((report.encoded_len() as f64) < piece_bytes * 0.001);
        assert!((key.encoded_len() as f64) < piece_bytes * 0.001);
    }

    #[test]
    fn truncated_rejected() {
        let m = Message::KeyRelease {
            piece: PieceId(3),
            requestor: Some(NodeId(4)),
            key: [1; KEY_WIRE_SIZE],
        };
        let enc = m.encode();
        for cut in 0..enc.len() {
            assert_eq!(Message::decode(&enc[..cut]), Err(DecodeError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Message::NeighborRequest { from: NodeId(5) }.encode().to_vec();
        enc.push(0);
        assert_eq!(Message::decode(&enc), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(Message::decode(&[200]), Err(DecodeError::UnknownTag(200)));
        assert!(Message::decode(&[]).is_err());
    }

    #[test]
    fn oversized_ciphertext_rejected() {
        let mut enc = Message::PieceUpload {
            reciprocates: None,
            piece: PieceId(1),
            payee: None,
            ciphertext_len: 0,
        }
        .encode()
        .to_vec();
        let n = enc.len();
        enc[n - 4..].copy_from_slice(&(MAX_CIPHERTEXT_LEN + 1).to_le_bytes());
        assert!(matches!(
            Message::decode(&enc),
            Err(DecodeError::Oversized { field: "ciphertext_len", .. })
        ));
        // The bound itself is accepted.
        enc[n - 4..].copy_from_slice(&MAX_CIPHERTEXT_LEN.to_le_bytes());
        assert!(Message::decode(&enc).is_ok());
    }

    #[test]
    fn oversized_bitfield_rejected() {
        let mut enc = vec![6u8];
        enc.extend_from_slice(&(MAX_BITFIELD_PIECES + 1).to_le_bytes());
        assert!(matches!(
            Message::decode(&enc),
            Err(DecodeError::Oversized { field: "bitfield pieces", .. })
        ));
    }

    #[test]
    fn noncanonical_flag_rejected() {
        let mut enc = Message::PieceUpload {
            reciprocates: None,
            piece: PieceId(1),
            payee: None,
            ciphertext_len: 8,
        }
        .encode()
        .to_vec();
        enc[1] = 2; // reciprocates flag must be 0/1
        assert_eq!(Message::decode(&enc), Err(DecodeError::Malformed("flag byte must be 0 or 1")));
    }

    #[test]
    fn bitfield_padding_bits_rejected() {
        let mut enc = vec![6u8];
        enc.extend_from_slice(&9u32.to_le_bytes());
        enc.extend_from_slice(&[0x00, 0x02]); // bit 9 set, but pieces = 9
        assert_eq!(Message::decode(&enc), Err(DecodeError::Malformed("bitfield padding bits set")));
    }

    #[test]
    fn decode_error_display() {
        assert_eq!(DecodeError::Truncated.to_string(), "message truncated");
        assert_eq!(DecodeError::UnknownTag(9).to_string(), "unknown message tag 9");
        assert_eq!(DecodeError::TrailingBytes(2).to_string(), "2 trailing bytes after message");
        assert_eq!(
            DecodeError::Oversized { field: "ciphertext_len", got: 99, max: 10 }.to_string(),
            "ciphertext_len = 99 exceeds protocol bound 10"
        );
        assert_eq!(
            DecodeError::Malformed("bad").to_string(),
            "malformed message: bad"
        );
    }
}
