//! The tracker: random membership lists.
//!
//! Per §IV-A: "Each leecher requests a list of 50 randomly selected
//! neighbors from the tracker upon arrival, and whenever its list of
//! neighbors falls below 30. Leechers maintain at most 55 neighbors."
//! The large-view exploit (§IV-C) abuses exactly this interface by
//! re-querying every rechoke period.

use std::collections::HashMap;
use tchain_sim::{NodeId, SimRng};

/// Neighbor-management constants from §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborPolicy {
    /// Members returned per tracker query.
    pub list_size: usize,
    /// Re-query the tracker when the neighbor count falls below this.
    pub refill_below: usize,
    /// Hard cap on concurrent neighbors.
    pub max_neighbors: usize,
}

impl Default for NeighborPolicy {
    fn default() -> Self {
        NeighborPolicy { list_size: 50, refill_below: 30, max_neighbors: 55 }
    }
}

/// Swarm membership registry with O(1) join/leave and O(k) random samples.
#[derive(Debug, Default)]
pub struct Tracker {
    members: Vec<NodeId>,
    pos: HashMap<NodeId, usize>,
    queries: u64,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a peer. Re-registering is a no-op.
    pub fn register(&mut self, id: NodeId) {
        if self.pos.contains_key(&id) {
            return;
        }
        self.pos.insert(id, self.members.len());
        self.members.push(id);
    }

    /// Unregisters a departed peer. Unknown ids are a no-op.
    pub fn unregister(&mut self, id: NodeId) {
        if let Some(i) = self.pos.remove(&id) {
            let last = self.members.len() - 1;
            self.members.swap(i, last);
            self.members.pop();
            if i < self.members.len() {
                self.pos.insert(self.members[i], i);
            }
        }
    }

    /// Number of registered members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when nobody is registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: NodeId) -> bool {
        self.pos.contains_key(&id)
    }

    /// Total queries served (per-run bookkeeping; the large-view exploit
    /// shows up as an outsized query count).
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Returns up to `k` distinct random members, excluding `requester`.
    pub fn random_members(&mut self, requester: NodeId, k: usize, rng: &mut SimRng) -> Vec<NodeId> {
        self.queries += 1;
        let pool = self.members.len();
        if pool == 0 {
            return Vec::new();
        }
        // If we'd return most of the swarm anyway, shuffle outright;
        // otherwise rejection-sample indices (O(k) expected).
        let effective = pool - usize::from(self.contains(requester));
        let k = k.min(effective);
        if k == 0 {
            return Vec::new();
        }
        if k * 3 >= pool {
            let mut all: Vec<NodeId> =
                self.members.iter().copied().filter(|&m| m != requester).collect();
            rng.shuffle(&mut all);
            all.truncate(k);
            all
        } else {
            let mut out = Vec::with_capacity(k);
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            while out.len() < k {
                let m = self.members[rng.below(pool)];
                if m != requester && seen.insert(m) {
                    out.push(m);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn register_unregister() {
        let mut t = Tracker::new();
        for i in 0..10 {
            t.register(n(i));
        }
        t.register(n(5)); // duplicate
        assert_eq!(t.len(), 10);
        t.unregister(n(3));
        t.unregister(n(3));
        assert_eq!(t.len(), 9);
        assert!(!t.contains(n(3)));
        assert!(t.contains(n(9)));
        t.unregister(n(99)); // unknown: no-op
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn samples_exclude_requester_and_are_distinct() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        for i in 0..100 {
            t.register(n(i));
        }
        for _ in 0..50 {
            let s = t.random_members(n(7), 50, &mut rng);
            assert_eq!(s.len(), 50);
            assert!(!s.contains(&n(7)));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 50);
        }
    }

    #[test]
    fn small_swarm_returns_everyone_else() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        t.register(n(0));
        t.register(n(1));
        t.register(n(2));
        let s = t.random_members(n(0), 50, &mut rng);
        assert_eq!(s.len(), 2);
        let s = t.random_members(n(99), 50, &mut rng);
        assert_eq!(s.len(), 3, "outsider sees everyone");
    }

    #[test]
    fn empty_tracker_returns_nothing() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        assert!(t.random_members(n(0), 50, &mut rng).is_empty());
    }

    #[test]
    fn samples_cover_the_swarm() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        for i in 0..200 {
            t.register(n(i));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for m in t.random_members(n(0), 20, &mut rng) {
                seen.insert(m);
            }
        }
        assert!(seen.len() > 150, "sampling should reach most members, got {}", seen.len());
    }

    #[test]
    fn default_policy_matches_paper() {
        let p = NeighborPolicy::default();
        assert_eq!((p.list_size, p.refill_below, p.max_neighbors), (50, 30, 55));
    }
}
