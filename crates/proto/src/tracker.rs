//! The tracker: random membership lists over sharded state.
//!
//! Per §IV-A: "Each leecher requests a list of 50 randomly selected
//! neighbors from the tracker upon arrival, and whenever its list of
//! neighbors falls below 30. Leechers maintain at most 55 neighbors."
//! The large-view exploit (§IV-C) abuses exactly this interface by
//! re-querying every rechoke period.
//!
//! Membership is held in shards keyed by `id % shards`: join and leave
//! touch exactly one shard (swap-remove, O(1)), and a sample costs
//! O(k + shards) regardless of total swarm size, so rendezvous stays
//! O(active peers) under heavy churn. A 1-shard tracker is the flat
//! structure the small fixed-membership harnesses always used — same
//! member order, same draw sequence — which is what keeps every
//! pre-sharding golden fingerprint byte-identical. Shard counts above
//! one only change *which* member a given RNG draw lands on, never the
//! number of draws, so large-swarm runs stay equally deterministic.

use std::collections::HashMap;
use tchain_sim::{NodeId, SimRng};

/// Neighbor-management constants from §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborPolicy {
    /// Members returned per tracker query.
    pub list_size: usize,
    /// Re-query the tracker when the neighbor count falls below this.
    pub refill_below: usize,
    /// Hard cap on concurrent neighbors.
    pub max_neighbors: usize,
}

impl Default for NeighborPolicy {
    fn default() -> Self {
        NeighborPolicy { list_size: 50, refill_below: 30, max_neighbors: 55 }
    }
}

/// One membership shard: a dense vector with swap-remove deletion plus
/// the position index that makes it O(1).
#[derive(Debug, Default)]
struct Shard {
    members: Vec<NodeId>,
    pos: HashMap<NodeId, usize>,
}

impl Shard {
    fn register(&mut self, id: NodeId) -> bool {
        if self.pos.contains_key(&id) {
            return false;
        }
        self.pos.insert(id, self.members.len());
        self.members.push(id);
        true
    }

    fn unregister(&mut self, id: NodeId) -> bool {
        let Some(i) = self.pos.remove(&id) else { return false };
        let last = self.members.len() - 1;
        self.members.swap(i, last);
        self.members.pop();
        if i < self.members.len() {
            self.pos.insert(self.members[i], i);
        }
        true
    }
}

/// Swarm membership registry: O(1) join/leave, O(k) random samples.
#[derive(Debug)]
pub struct Tracker {
    shards: Vec<Shard>,
    total: usize,
    queries: u64,
}

impl Default for Tracker {
    fn default() -> Self {
        Tracker::new()
    }
}

impl Tracker {
    /// Creates an empty single-shard tracker (the historical flat
    /// layout; every existing small-swarm fingerprint assumes it).
    pub fn new() -> Self {
        Tracker::with_shards(1)
    }

    /// Creates an empty tracker with `shards` membership shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards >= 1, "a tracker needs at least one shard");
        Tracker {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            total: 0,
            queries: 0,
        }
    }

    /// Shard count appropriate for an expected swarm size: 1 for small
    /// swarms (≤ 64 peers — the flat layout all existing goldens pin),
    /// then one shard per ~64 expected peers, capped at 16.
    pub fn shards_for(expected_peers: u32) -> usize {
        if expected_peers <= 64 {
            1
        } else {
            (expected_peers as usize).div_ceil(64).next_power_of_two().min(16)
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, id: NodeId) -> usize {
        id.0 as usize % self.shards.len()
    }

    /// Registers a peer. Re-registering is a no-op.
    pub fn register(&mut self, id: NodeId) {
        let s = self.shard_of(id);
        if self.shards[s].register(id) {
            self.total += 1;
        }
    }

    /// Unregisters a departed peer. Unknown ids are a no-op.
    pub fn unregister(&mut self, id: NodeId) {
        let s = self.shard_of(id);
        if self.shards[s].unregister(id) {
            self.total -= 1;
        }
    }

    /// Number of registered members.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when nobody is registered.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: NodeId) -> bool {
        self.shards[self.shard_of(id)].pos.contains_key(&id)
    }

    /// Total queries served (per-run bookkeeping; the large-view exploit
    /// shows up as an outsized query count).
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The member at global index `g`, counting through shards in order.
    #[inline]
    fn member_at(&self, mut g: usize) -> NodeId {
        for shard in &self.shards {
            if g < shard.members.len() {
                return shard.members[g];
            }
            g -= shard.members.len();
        }
        unreachable!("index {g} past membership");
    }

    /// Returns up to `k` distinct random members, excluding `requester`.
    pub fn random_members(&mut self, requester: NodeId, k: usize, rng: &mut SimRng) -> Vec<NodeId> {
        self.queries += 1;
        let pool = self.total;
        if pool == 0 {
            return Vec::new();
        }
        // If we'd return most of the swarm anyway, shuffle outright;
        // otherwise rejection-sample indices (O(k) expected).
        let effective = pool - usize::from(self.contains(requester));
        let k = k.min(effective);
        if k == 0 {
            return Vec::new();
        }
        if k * 3 >= pool {
            let mut all: Vec<NodeId> = self
                .shards
                .iter()
                .flat_map(|s| s.members.iter().copied())
                .filter(|&m| m != requester)
                .collect();
            rng.shuffle(&mut all);
            all.truncate(k);
            all
        } else {
            let mut out = Vec::with_capacity(k);
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            while out.len() < k {
                let m = self.member_at(rng.below(pool));
                if m != requester && seen.insert(m) {
                    out.push(m);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn register_unregister() {
        let mut t = Tracker::new();
        for i in 0..10 {
            t.register(n(i));
        }
        t.register(n(5)); // duplicate
        assert_eq!(t.len(), 10);
        t.unregister(n(3));
        t.unregister(n(3));
        assert_eq!(t.len(), 9);
        assert!(!t.contains(n(3)));
        assert!(t.contains(n(9)));
        t.unregister(n(99)); // unknown: no-op
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn samples_exclude_requester_and_are_distinct() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        for i in 0..100 {
            t.register(n(i));
        }
        for _ in 0..50 {
            let s = t.random_members(n(7), 50, &mut rng);
            assert_eq!(s.len(), 50);
            assert!(!s.contains(&n(7)));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 50);
        }
    }

    #[test]
    fn small_swarm_returns_everyone_else() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        t.register(n(0));
        t.register(n(1));
        t.register(n(2));
        let s = t.random_members(n(0), 50, &mut rng);
        assert_eq!(s.len(), 2);
        let s = t.random_members(n(99), 50, &mut rng);
        assert_eq!(s.len(), 3, "outsider sees everyone");
    }

    #[test]
    fn empty_tracker_returns_nothing() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        assert!(t.random_members(n(0), 50, &mut rng).is_empty());
    }

    #[test]
    fn samples_cover_the_swarm() {
        let mut t = Tracker::new();
        let mut rng = SimRng::new(0);
        for i in 0..200 {
            t.register(n(i));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for m in t.random_members(n(0), 20, &mut rng) {
                seen.insert(m);
            }
        }
        assert!(seen.len() > 150, "sampling should reach most members, got {}", seen.len());
    }

    #[test]
    fn default_policy_matches_paper() {
        let p = NeighborPolicy::default();
        assert_eq!((p.list_size, p.refill_below, p.max_neighbors), (50, 30, 55));
    }

    #[test]
    fn shard_count_scales_with_expected_swarm_size() {
        assert_eq!(Tracker::shards_for(8), 1);
        assert_eq!(Tracker::shards_for(64), 1);
        assert_eq!(Tracker::shards_for(65), 2);
        assert_eq!(Tracker::shards_for(256), 4);
        assert_eq!(Tracker::shards_for(100_000), 16, "cap holds");
    }

    #[test]
    fn sharded_tracker_keeps_every_membership_invariant() {
        let mut t = Tracker::with_shards(4);
        assert_eq!(t.shards(), 4);
        let mut rng = SimRng::new(7);
        for i in 0..256 {
            t.register(n(i));
        }
        assert_eq!(t.len(), 256);
        // Heavy churn: every third member leaves, some rejoin.
        for i in (0..256).step_by(3) {
            t.unregister(n(i));
        }
        for i in (0..256).step_by(9) {
            t.register(n(i));
        }
        let expected = 256 - 256usize.div_ceil(3) + 256usize.div_ceil(9);
        assert_eq!(t.len(), expected);
        for _ in 0..50 {
            let s = t.random_members(n(4), 50, &mut rng);
            assert_eq!(s.len(), 50);
            assert!(!s.contains(&n(4)));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 50, "distinct across shards");
            assert!(s.iter().all(|&m| t.contains(m)), "only live members sampled");
        }
    }

    #[test]
    fn sharded_sampling_is_deterministic() {
        let build = || {
            let mut t = Tracker::with_shards(4);
            for i in 0..200 {
                t.register(n(i));
            }
            t
        };
        let (mut a, mut b) = (build(), build());
        let mut ra = SimRng::new(42);
        let mut rb = SimRng::new(42);
        for _ in 0..20 {
            assert_eq!(a.random_members(n(0), 30, &mut ra), b.random_members(n(0), 30, &mut rb));
        }
    }

    #[test]
    fn one_shard_concatenation_is_the_flat_member_order() {
        // The S=1 layout must be exactly the historical flat vector:
        // register appends, unregister swap-removes. Golden fingerprints
        // depend on this draw-for-draw.
        let mut t = Tracker::new();
        for i in 0..6 {
            t.register(n(i));
        }
        t.unregister(n(1)); // swap-remove: 5 takes slot 1
        let mut rng = SimRng::new(0);
        // Sample everyone (shuffle path) and check the pool is the
        // expected post-swap set.
        let mut all = t.random_members(n(99), 10, &mut rng);
        all.sort_unstable();
        assert_eq!(all, vec![n(0), n(2), n(3), n(4), n(5)]);
    }
}
