//! The neighbor mesh and Local-Rarest-First piece selection.
//!
//! Each peer keeps per-piece *availability counts* over its current
//! neighbors, updated incrementally on connect/disconnect and on every
//! `Have` announcement. LRF picks the piece with the fewest copies among
//! the chooser's neighbors (§II-A), breaking ties uniformly at random.

use crate::peer::PeerTable;
use crate::piece::{Bitfield, PieceId};
use tchain_sim::{NodeId, SimRng};

/// Symmetric neighbor relations plus per-peer piece availability counts.
#[derive(Debug, Default)]
pub struct Mesh {
    neighbors: Vec<Vec<NodeId>>,
    avail: Vec<Vec<u16>>,
    pieces: usize,
}

impl Mesh {
    /// Creates a mesh for a file of `pieces` pieces.
    pub fn new(pieces: usize) -> Self {
        Mesh { neighbors: Vec::new(), avail: Vec::new(), pieces }
    }

    fn ensure(&mut self, id: NodeId) {
        let i = id.index();
        if i >= self.neighbors.len() {
            self.neighbors.resize_with(i + 1, Vec::new);
            self.avail.resize_with(i + 1, Vec::new);
        }
        if self.avail[i].is_empty() {
            self.avail[i] = vec![0; self.pieces];
        }
    }

    /// A peer's current neighbors.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.neighbors.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Current neighbor count.
    pub fn degree(&self, id: NodeId) -> usize {
        self.neighbors(id).len()
    }

    /// Whether `a` and `b` are connected.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Connects two peers (both directions) and folds each other's
    /// bitfields into the availability counts. Returns `false` (no-op) if
    /// they are the same peer or already connected.
    pub fn connect(&mut self, a: NodeId, b: NodeId, peers: &PeerTable) -> bool {
        if a == b || self.are_neighbors(a, b) {
            return false;
        }
        self.ensure(a);
        self.ensure(b);
        self.neighbors[a.index()].push(b);
        self.neighbors[b.index()].push(a);
        for p in peers.get(b).have.iter_set() {
            self.avail[a.index()][p.index()] += 1;
        }
        for p in peers.get(a).have.iter_set() {
            self.avail[b.index()][p.index()] += 1;
        }
        true
    }

    /// Disconnects two peers, reversing the availability contribution.
    /// Returns `false` if they were not connected.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId, peers: &PeerTable) -> bool {
        if !self.are_neighbors(a, b) {
            return false;
        }
        // are_neighbors() guarantees both entries exist, but a corrupted
        // adjacency list should degrade to a no-op rather than a panic.
        let list = &mut self.neighbors[a.index()];
        if let Some(p) = list.iter().position(|&x| x == b) {
            list.swap_remove(p);
        }
        let list = &mut self.neighbors[b.index()];
        if let Some(p) = list.iter().position(|&x| x == a) {
            list.swap_remove(p);
        }
        for p in peers.get(b).have.iter_set() {
            self.avail[a.index()][p.index()] -= 1;
        }
        for p in peers.get(a).have.iter_set() {
            self.avail[b.index()][p.index()] -= 1;
        }
        true
    }

    /// Disconnects `id` from everyone (departure). Returns its former
    /// neighbors. The departed peer's availability table is freed — with
    /// whitewashing attackers minting thousands of identities, per-dead-id
    /// storage would otherwise dominate memory.
    pub fn remove(&mut self, id: NodeId, peers: &PeerTable) -> Vec<NodeId> {
        let ns: Vec<NodeId> = self.neighbors(id).to_vec();
        for &n in &ns {
            self.disconnect(id, n, peers);
        }
        if let Some(a) = self.avail.get_mut(id.index()) {
            *a = Vec::new();
        }
        ns
    }

    /// Announces that `owner` completed piece `p`: every current neighbor's
    /// availability count for `p` is incremented (a `Have` broadcast).
    ///
    /// Call *after* setting the bit in `owner`'s bitfield.
    pub fn announce(&mut self, owner: NodeId, p: PieceId) {
        let ns = std::mem::take(&mut self.neighbors[owner.index()]);
        for &n in &ns {
            self.avail[n.index()][p.index()] += 1;
        }
        self.neighbors[owner.index()] = ns;
    }

    /// Availability of piece `p` among `id`'s neighbors.
    pub fn availability(&self, id: NodeId, p: PieceId) -> u16 {
        self.avail[id.index()][p.index()]
    }

    /// Local-Rarest-First selection: among pieces `source` has and
    /// `chooser` is missing, pick one minimizing availability among
    /// `chooser`'s neighbors; ties broken uniformly.
    pub fn lrf_pick(
        &self,
        chooser: NodeId,
        chooser_have: &Bitfield,
        source_have: &Bitfield,
        rng: &mut SimRng,
    ) -> Option<PieceId> {
        self.lrf_pick_where(chooser, chooser_have, source_have, rng, |_| true)
    }

    /// LRF restricted by an extra predicate — used for newcomer
    /// bootstrapping (§II-D1), where the donor must pick a piece that *both*
    /// the requestor and the payee need.
    pub fn lrf_pick_where(
        &self,
        chooser: NodeId,
        chooser_have: &Bitfield,
        source_have: &Bitfield,
        rng: &mut SimRng,
        mut keep: impl FnMut(PieceId) -> bool,
    ) -> Option<PieceId> {
        let avail = self.avail.get(chooser.index())?;
        if avail.is_empty() {
            // Chooser never connected: fall back to uniform choice.
            let cands: Vec<PieceId> =
                chooser_have.missing_from(source_have).filter(|&p| keep(p)).collect();
            return rng.choose(&cands).copied();
        }
        let mut best: Option<(u16, PieceId)> = None;
        let mut ties = 0u32;
        for p in chooser_have.missing_from(source_have) {
            if !keep(p) {
                continue;
            }
            let a = avail[p.index()];
            match best {
                None => {
                    best = Some((a, p));
                    ties = 1;
                }
                Some((b, _)) if a < b => {
                    best = Some((a, p));
                    ties = 1;
                }
                Some((b, _)) if a == b => {
                    // Reservoir sampling over ties keeps the choice uniform
                    // without materialising the candidate list.
                    ties += 1;
                    if rng.below(ties as usize) == 0 {
                        best = Some((a, p));
                    }
                }
                _ => {}
            }
        }
        best.map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Role;

    fn setup(pieces: usize) -> (PeerTable, Mesh, SimRng) {
        (PeerTable::new(), Mesh::new(pieces), SimRng::new(1))
    }

    #[test]
    fn connect_disconnect_symmetric() {
        let (mut t, mut m, _) = setup(8);
        let a = t.add(Role::Leecher, 1.0, 0.0, 8, true);
        let b = t.add(Role::Leecher, 1.0, 0.0, 8, true);
        assert!(m.connect(a, b, &t));
        assert!(!m.connect(a, b, &t), "duplicate connect is a no-op");
        assert!(!m.connect(a, a, &t), "self-connect is a no-op");
        assert!(m.are_neighbors(a, b) && m.are_neighbors(b, a));
        assert!(m.disconnect(a, b, &t));
        assert!(!m.disconnect(a, b, &t));
        assert_eq!(m.degree(a), 0);
    }

    #[test]
    fn availability_tracks_connect_announce_disconnect() {
        let (mut t, mut m, _) = setup(8);
        let s = t.add(Role::Seeder, 1.0, 0.0, 8, true);
        let a = t.add(Role::Leecher, 1.0, 0.0, 8, true);
        let b = t.add(Role::Leecher, 1.0, 0.0, 8, true);
        m.connect(a, s, &t);
        assert_eq!(m.availability(a, PieceId(0)), 1, "seeder has everything");
        m.connect(a, b, &t);
        assert_eq!(m.availability(a, PieceId(0)), 1);
        // b completes piece 0.
        t.get_mut(b).have.set(PieceId(0));
        m.announce(b, PieceId(0));
        assert_eq!(m.availability(a, PieceId(0)), 2);
        // s is not b's neighbor, so the announcement does not reach it.
        assert_eq!(m.availability(s, PieceId(0)), 0);
        m.disconnect(a, b, &t);
        assert_eq!(m.availability(a, PieceId(0)), 1);
        m.disconnect(a, s, &t);
        assert_eq!(m.availability(a, PieceId(0)), 0);
    }

    #[test]
    fn remove_detaches_everyone() {
        let (mut t, mut m, _) = setup(4);
        let a = t.add(Role::Leecher, 1.0, 0.0, 4, true);
        let b = t.add(Role::Leecher, 1.0, 0.0, 4, true);
        let c = t.add(Role::Leecher, 1.0, 0.0, 4, true);
        m.connect(a, b, &t);
        m.connect(a, c, &t);
        let former = m.remove(a, &t);
        assert_eq!(former.len(), 2);
        assert_eq!(m.degree(a), 0);
        assert_eq!(m.degree(b), 0);
        assert_eq!(m.degree(c), 0);
    }

    #[test]
    fn lrf_prefers_rarest() {
        let (mut t, mut m, mut rng) = setup(4);
        let chooser = t.add(Role::Leecher, 1.0, 0.0, 4, true);
        let s = t.add(Role::Seeder, 1.0, 0.0, 4, true);
        // Three neighbors all have piece 0; only the seeder has piece 3.
        m.connect(chooser, s, &t);
        for _ in 0..3 {
            let n = t.add(Role::Leecher, 1.0, 0.0, 4, true);
            t.get_mut(n).have.set(PieceId(0));
            m.connect(chooser, n, &t);
        }
        // Availability: p0=4, p1..3=1 (seeder only). All are candidates
        // from the seeder; the chooser must avoid the common piece 0.
        for _ in 0..20 {
            let have = t.get(chooser).have.clone();
            let p = m.lrf_pick(chooser, &have, &t.get(s).have, &mut rng).unwrap();
            assert_ne!(p, PieceId(0));
        }
    }

    #[test]
    fn lrf_ties_are_spread() {
        let (mut t, mut m, mut rng) = setup(16);
        let chooser = t.add(Role::Leecher, 1.0, 0.0, 16, true);
        let s = t.add(Role::Seeder, 1.0, 0.0, 16, true);
        m.connect(chooser, s, &t);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let have = t.get(chooser).have.clone();
            let p = m.lrf_pick(chooser, &have, &t.get(s).have, &mut rng).unwrap();
            seen.insert(p);
        }
        assert!(seen.len() > 8, "tie-breaking should spread choices, got {}", seen.len());
    }

    #[test]
    fn lrf_where_respects_filter() {
        let (mut t, mut m, mut rng) = setup(8);
        let chooser = t.add(Role::Leecher, 1.0, 0.0, 8, true);
        let s = t.add(Role::Seeder, 1.0, 0.0, 8, true);
        m.connect(chooser, s, &t);
        let have = t.get(chooser).have.clone();
        let p = m
            .lrf_pick_where(chooser, &have, &t.get(s).have, &mut rng, |p| p == PieceId(5))
            .unwrap();
        assert_eq!(p, PieceId(5));
        let none = m.lrf_pick_where(chooser, &have, &t.get(s).have, &mut rng, |_| false);
        assert!(none.is_none());
    }

    #[test]
    fn lrf_none_when_nothing_wanted() {
        let (mut t, mut m, mut rng) = setup(4);
        let chooser = t.add(Role::Leecher, 1.0, 0.0, 4, true);
        let other = t.add(Role::Leecher, 1.0, 0.0, 4, true);
        m.connect(chooser, other, &t);
        let have = t.get(chooser).have.clone();
        assert!(m.lrf_pick(chooser, &have, &t.get(other).have, &mut rng).is_none());
    }
}
