//! # tchain-proto — the swarm substrate
//!
//! Everything every protocol driver shares, rebuilt from the BitTorrent
//! mechanics the paper assumes (§II-A, §IV-A):
//!
//! * [`FileSpec`]/[`PieceId`]/[`Bitfield`] — the shared file, its pieces
//!   and per-peer completion sets, with the word-parallel interest tests
//!   (`wants_from`) that payee selection leans on;
//! * [`Peer`]/[`PeerTable`]/[`Role`] — swarm membership with join/leave
//!   and completion bookkeeping;
//! * [`Mesh`] — neighbor relations plus incremental piece-availability
//!   counts and Local-Rarest-First selection;
//! * [`Tracker`]/[`NeighborPolicy`] — 50-member random lists, refill below
//!   30 neighbors, 55-neighbor cap.
//!
//! Protocol logic (unchoking, deficits, T-Chain transactions) lives in
//! `tchain-baselines` and `tchain-core`, in drivers layered on this crate
//! and on `tchain-sim`'s flow scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
mod harness;
mod mesh;
mod peer;
mod piece;
mod tracker;
pub mod wire;

pub use control::{ControlMsg, Envelope, SendOutcome};
pub use harness::{SwarmBase, SwarmConfig};
pub use mesh::Mesh;
pub use peer::{Peer, PeerTable, Role};
pub use piece::{Bitfield, FileSpec, PieceId};
pub use tracker::{NeighborPolicy, Tracker};
