//! Shared scaffolding for swarm protocol drivers.
//!
//! Every protocol evaluated in the paper (T-Chain, BitTorrent, PropShare,
//! FairTorrent, Random BitTorrent) shares the same swarm mechanics: one
//! persistent seeder, leechers that join via the tracker, maintain 30–55
//! neighbors, announce completed pieces, and depart when done (§IV-A).
//! [`SwarmBase`] bundles that state; the drivers in `tchain-core` and
//! `tchain-baselines` layer their protocol logic on top.

use crate::control::{Envelope, SendOutcome};
use crate::{Bitfield, FileSpec, Mesh, NeighborPolicy, PeerTable, PieceId, Role, Tracker};
use tchain_obs::{trace_event, Event, Tracer};
use tchain_sim::{Clock, DelayQueue, FaultPlan, FaultState, Flow, FlowScheduler, NodeId, Route, SimRng};

/// Static configuration for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SwarmConfig {
    /// The shared file.
    pub file: FileSpec,
    /// Seeder upload capacity in bytes/s (paper: 6000 Kbps).
    pub seeder_capacity: f64,
    /// Neighbor-management constants.
    pub policy: NeighborPolicy,
    /// Simulation step in seconds.
    pub dt: f64,
    /// Hard stop for the run, in seconds.
    pub max_time: f64,
}

impl SwarmConfig {
    /// Paper defaults (§IV-A) for a given file size, with the piece layout
    /// chosen per protocol family by the caller.
    pub fn paper(file: FileSpec) -> Self {
        SwarmConfig {
            file,
            seeder_capacity: tchain_sim::kbps(6000.0),
            policy: NeighborPolicy::default(),
            dt: 1.0,
            max_time: 50_000.0,
        }
    }
}

/// The state every swarm driver owns: membership, mesh, tracker, bandwidth
/// scheduler, clock and the run's RNG.
#[derive(Debug)]
pub struct SwarmBase {
    /// Run configuration.
    pub cfg: SwarmConfig,
    /// Simulated clock.
    pub clock: Clock,
    /// All peers ever admitted.
    pub peers: PeerTable,
    /// Neighbor mesh + availability counts.
    pub mesh: Mesh,
    /// Membership registry.
    pub tracker: Tracker,
    /// Upload bandwidth model.
    pub flows: FlowScheduler,
    /// The run's random source.
    pub rng: SimRng,
    /// Fault-injection runtime (inert under [`FaultPlan::none`]).
    pub faults: FaultState,
    /// Delayed control messages awaiting delivery (empty on the
    /// fault-free path).
    pub ctrl: DelayQueue<Envelope>,
    /// Structured event tracer (disabled by default; see `tchain-obs`).
    pub trace: Tracer,
}

impl SwarmBase {
    /// Creates an empty swarm (no seeder yet) for a seeded run.
    pub fn new(cfg: SwarmConfig, seed: u64) -> Self {
        SwarmBase::with_faults(cfg, seed, FaultPlan::none())
    }

    /// Creates an empty swarm with a fault-injection plan. The fault RNG
    /// stream is derived from the plan's own seed, so the same `seed`
    /// produces the same swarm dynamics whether or not faults are active.
    pub fn with_faults(cfg: SwarmConfig, seed: u64, plan: FaultPlan) -> Self {
        SwarmBase {
            cfg,
            clock: Clock::new(cfg.dt),
            peers: PeerTable::new(),
            mesh: Mesh::new(cfg.file.pieces),
            tracker: Tracker::new(),
            flows: FlowScheduler::new(),
            rng: SimRng::new(seed),
            faults: FaultState::new(plan),
            ctrl: DelayQueue::new(),
            trace: Tracer::disabled(),
        }
    }

    /// Switches on structured event tracing with the given ring capacity.
    /// Tracing only observes the run; enabling it never changes outcomes.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Tracer::with_capacity(capacity);
    }

    /// Routes a control message through the fault layer. Returns
    /// [`SendOutcome::Delivered`] with the envelope when it should be
    /// handled synchronously (always the case without faults), otherwise
    /// parks or drops it.
    pub fn send_control(&mut self, env: Envelope) -> SendOutcome {
        let now = self.clock.now();
        match self.faults.route(env.from, env.to, now) {
            Route::Now => SendOutcome::Delivered(env),
            Route::At(t) => {
                trace_event!(
                    self.trace,
                    now,
                    Event::CtrlDelayed { from: env.from.0, to: env.to.0, until: t }
                );
                self.ctrl.push(t, env);
                SendOutcome::Scheduled(t)
            }
            Route::Dropped => {
                trace_event!(
                    self.trace,
                    now,
                    Event::CtrlDropped { from: env.from.0, to: env.to.0 }
                );
                SendOutcome::Dropped
            }
        }
    }

    /// Pops the next delayed control message due at the current time.
    pub fn poll_control(&mut self) -> Option<Envelope> {
        self.ctrl.pop_due(self.clock.now())
    }

    /// Admits the (single) seeder. Must be called before leechers join.
    pub fn admit_seeder(&mut self) -> NodeId {
        self.admit(Role::Seeder, self.cfg.seeder_capacity, true)
    }

    /// Admits a peer: registers it with the tracker, installs its upload
    /// capacity and connects it to an initial random neighbor list.
    pub fn admit(&mut self, role: Role, capacity: f64, compliant: bool) -> NodeId {
        self.admit_with_pieces(role, capacity, compliant, std::iter::empty())
    }

    /// Admits a peer that already holds some pieces — Fig. 6(b)'s
    /// pre-occupied initial pieces, or a whitewashing attacker carrying its
    /// progress into a fresh identity. Pieces are installed *before* the
    /// peer connects so neighbors' availability counts stay consistent.
    pub fn admit_with_pieces(
        &mut self,
        role: Role,
        capacity: f64,
        compliant: bool,
        pieces: impl IntoIterator<Item = PieceId>,
    ) -> NodeId {
        let now = self.clock.now();
        let id = self.peers.add(role, capacity, now, self.cfg.file.pieces, compliant);
        for p in pieces {
            self.peers.get_mut(id).have.set(p);
        }
        self.flows.set_capacity(id, capacity);
        self.tracker.register(id);
        self.acquire_neighbors(id, self.cfg.policy.max_neighbors);
        trace_event!(self.trace, now, Event::PeerJoin { peer: id.0, compliant });
        id
    }

    /// Queries the tracker once and connects to returned members, up to
    /// `cap` neighbors for `id` (pass `usize::MAX` for large-view
    /// attackers who ignore the cap; the *other* side's cap still holds).
    pub fn acquire_neighbors(&mut self, id: NodeId, cap: usize) {
        let list = self.tracker.random_members(id, self.cfg.policy.list_size, &mut self.rng);
        for m in list {
            if self.mesh.degree(id) >= cap {
                break;
            }
            if self.peers.alive(m) && self.mesh.degree(m) < self.cfg.policy.max_neighbors {
                self.mesh.connect(id, m, &self.peers);
            }
        }
    }

    /// Re-queries the tracker when the neighbor count fell below the
    /// refill threshold (§IV-A). Under fault injection the query itself
    /// can be lost, in which case the peer retries on a later tick.
    pub fn maybe_refill(&mut self, id: NodeId) {
        if self.mesh.degree(id) < self.cfg.policy.refill_below {
            if self.faults.tracker_query_lost(self.clock.now()) {
                return;
            }
            self.acquire_neighbors(id, self.cfg.policy.max_neighbors);
        }
    }

    /// Records that `id` completed (downloaded *and decrypted*) piece `p`:
    /// sets the bit, bumps the download counter and broadcasts the `Have`.
    /// Returns `true` if the peer now holds the entire file.
    pub fn grant_piece(&mut self, id: NodeId, p: PieceId) -> bool {
        let peer = self.peers.get_mut(id);
        if peer.have.set(p) {
            peer.pieces_down += 1;
            self.mesh.announce(id, p);
        }
        self.peers.get(id).have.is_complete()
    }

    /// Removes a peer from the swarm: unregisters it, detaches it from the
    /// mesh and cancels its flows. Returns `(outbound, inbound)` cancelled
    /// flows so the driver can clean up protocol state (e.g. reassign a
    /// payee per §II-B4).
    pub fn depart(&mut self, id: NodeId) -> (Vec<Flow>, Vec<Flow>) {
        debug_assert!(self.peers.alive(id), "departing peer must be alive");
        let now = self.clock.now();
        self.peers.get_mut(id).left_time = Some(now);
        self.tracker.unregister(id);
        self.mesh.remove(id, &self.peers);
        let out = self.flows.cancel_all_from(id);
        let inb = self.flows.cancel_all_to(id);
        trace_event!(self.trace, now, Event::PeerDepart { peer: id.0 });
        (out, inb)
    }

    /// Convenience: the bitfield of a peer (cloned views are avoided by
    /// borrowing; use `peers.get(id).have` when no second borrow is live).
    pub fn have(&self, id: NodeId) -> &Bitfield {
        &self.peers.get(id).have
    }

    /// All leechers ever admitted have finished or left.
    pub fn all_leechers_done(&self) -> bool {
        self.peers
            .iter()
            .filter(|p| p.role == Role::Leecher)
            .all(|p| p.done_time.is_some() || !p.alive())
    }

    /// Mean uplink utilization over compliant leechers that have departed
    /// or finished: bytes uploaded divided by capacity × residence time
    /// (Fig. 3(b)).
    pub fn mean_uplink_utilization(&self) -> f64 {
        let now = self.clock.now();
        let mut total = 0.0;
        let mut n = 0usize;
        for p in self.peers.iter() {
            if p.role != Role::Leecher || !p.compliant || p.capacity <= 0.0 {
                continue;
            }
            let res = p.residence(now);
            if res <= 0.0 {
                continue;
            }
            total += (self.flows.uploaded(p.id) / (p.capacity * res)).min(1.0);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_sim::kbps;

    fn base() -> SwarmBase {
        let cfg = SwarmConfig::paper(FileSpec::tchain(1.0));
        SwarmBase::new(cfg, 42)
    }

    #[test]
    fn seeder_then_leechers_connect() {
        let mut b = base();
        let s = b.admit_seeder();
        assert!(b.peers.get(s).have.is_complete());
        let l1 = b.admit(Role::Leecher, kbps(400.0), true);
        assert!(b.mesh.are_neighbors(l1, s), "first leecher connects to the only member");
        let l2 = b.admit(Role::Leecher, kbps(1200.0), true);
        assert!(b.mesh.degree(l2) == 2);
    }

    #[test]
    fn grant_piece_announces_and_completes() {
        let mut b = base();
        let _s = b.admit_seeder();
        let l = b.admit(Role::Leecher, kbps(400.0), true);
        let pieces = b.cfg.file.pieces;
        for i in 0..pieces as u32 {
            let done = b.grant_piece(l, PieceId(i));
            assert_eq!(done, i as usize == pieces - 1);
        }
        assert_eq!(b.peers.get(l).pieces_down as usize, pieces);
    }

    #[test]
    fn depart_cleans_up() {
        let mut b = base();
        let s = b.admit_seeder();
        let l = b.admit(Role::Leecher, kbps(400.0), true);
        b.flows.start(s, l, 100.0, 1.0, 0);
        b.flows.start(l, s, 100.0, 1.0, 0);
        let (out, inb) = b.depart(l);
        assert_eq!(out.len(), 1);
        assert_eq!(inb.len(), 1);
        assert!(!b.peers.alive(l));
        assert!(!b.tracker.contains(l));
        assert_eq!(b.mesh.degree(s), 0);
    }

    #[test]
    fn refill_queries_when_below_threshold() {
        let mut b = base();
        b.admit_seeder();
        for _ in 0..40 {
            b.admit(Role::Leecher, kbps(400.0), true);
        }
        let l = b.admit(Role::Leecher, kbps(400.0), true);
        // Disconnect everyone; refill should restore at least refill_below.
        let ns: Vec<_> = b.mesh.neighbors(l).to_vec();
        for n in ns {
            b.mesh.disconnect(l, n, &b.peers);
        }
        assert_eq!(b.mesh.degree(l), 0);
        b.maybe_refill(l);
        assert!(b.mesh.degree(l) >= 30, "degree {}", b.mesh.degree(l));
    }

    #[test]
    fn control_is_synchronous_without_faults() {
        let mut b = base();
        let env = Envelope {
            from: NodeId(1),
            to: NodeId(2),
            msg: crate::control::ControlMsg::Key { txn: 9 },
            sent_at: 0.0,
        };
        assert_eq!(b.send_control(env), SendOutcome::Delivered(env));
        assert!(b.poll_control().is_none(), "nothing ever queued");
        assert!(b.ctrl.is_empty());
    }

    #[test]
    fn delayed_control_is_queued_and_drained() {
        let cfg = SwarmConfig::paper(FileSpec::tchain(1.0));
        let plan = tchain_sim::FaultPlan { seed: 3, ..tchain_sim::FaultPlan::none() }
            .with_latency(tchain_sim::LatencyModel::Fixed(2.5));
        let mut b = SwarmBase::with_faults(cfg, 42, plan);
        let env = Envelope {
            from: NodeId(1),
            to: NodeId(2),
            msg: crate::control::ControlMsg::Report { txn: 1, falsified: false },
            sent_at: 0.0,
        };
        assert_eq!(b.send_control(env), SendOutcome::Scheduled(2.5));
        assert!(b.poll_control().is_none(), "not due yet");
        while b.clock.now() < 2.5 {
            b.clock.tick();
        }
        assert_eq!(b.poll_control(), Some(env));
        assert!(b.poll_control().is_none());
    }

    #[test]
    fn utilization_counts_only_compliant_leechers() {
        let mut b = base();
        let s = b.admit_seeder();
        let l = b.admit(Role::Leecher, 100.0, true);
        let f = b.admit(Role::Leecher, 0.0, false);
        // l uploads at full capacity for 10 s.
        b.flows.start(l, s, 2000.0, 1.0, 0);
        let mut done = Vec::new();
        for _ in 0..10 {
            b.clock.tick();
            b.flows.advance(1.0, &mut done);
        }
        let u = b.mean_uplink_utilization();
        assert!((u - 1.0).abs() < 1e-6, "one fully-utilized compliant leecher: {u}");
        let _ = f;
    }
}
