//! Schedulable control-plane events.
//!
//! Fig. 1's small messages — the payee's reception report and the donor's
//! key release — used to be synchronous function calls inside the drivers.
//! Under fault injection they become *events*: routed through the run's
//! [`FaultState`](tchain_sim::FaultState) (which may drop or delay them)
//! and, when delayed, parked in a [`DelayQueue`](tchain_sim::DelayQueue)
//! that the driver drains each tick. On the fault-free path `send` hands
//! the envelope straight back for synchronous handling, preserving the
//! exact call order (and therefore bit-identical runs) of the
//! instantaneous model.

use tchain_sim::NodeId;

/// A control message between peers. Transactions are referenced by their
/// packed arena handle (`u64`), the same tag the flow scheduler carries,
/// so the substrate stays ignorant of driver-internal types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// Payee → donor: the requestor reciprocated on transaction `txn`
    /// (Fig. 1's `r_P`). `falsified` marks a collusion lie (§IV-D) —
    /// wire-indistinguishable from a real report, carried here only for
    /// accounting.
    Report {
        /// Packed handle of the reported transaction.
        txn: u64,
        /// Whether this is a false report from a colluding payee.
        falsified: bool,
    },
    /// Donor (or escrow-holding payee, §II-B4) → requestor: the decryption
    /// key for transaction `txn`.
    Key {
        /// Packed handle of the transaction being unlocked.
        txn: u64,
    },
}

/// One addressed control message in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload.
    pub msg: ControlMsg,
    /// When the sender issued it.
    pub sent_at: f64,
}

/// What happened to a sent control message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendOutcome {
    /// Delivered synchronously: handle the returned envelope now.
    Delivered(Envelope),
    /// Parked for delivery at the given time.
    Scheduled(f64),
    /// Lost (loss probability or partition).
    Dropped,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_plain_data() {
        let e = Envelope {
            from: NodeId(1),
            to: NodeId(2),
            msg: ControlMsg::Report { txn: 7, falsified: false },
            sent_at: 3.5,
        };
        let f = e;
        assert_eq!(e, f, "copyable and comparable");
        assert_ne!(
            ControlMsg::Report { txn: 7, falsified: false },
            ControlMsg::Key { txn: 7 }
        );
    }
}
