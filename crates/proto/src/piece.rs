//! Files, pieces and bitfields.
//!
//! A swarm shares one file `F` divided into fixed-size pieces (§II-A).
//! BitTorrent and PropShare subdivide 256 KB pieces into 16 KB blocks;
//! T-Chain and FairTorrent exchange whole 64 KB pieces (§IV-A). The
//! [`Bitfield`] tracks which pieces a peer has *completed* (downloaded and,
//! for T-Chain, decrypted) — the set `F_A` of Table I.

use tchain_sim::{kib, mib};

/// Index of a piece within the shared file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PieceId(pub u32);

impl PieceId {
    /// The piece index as a dense `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PieceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Static description of the file being shared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileSpec {
    /// Number of pieces.
    pub pieces: usize,
    /// Piece size in bytes.
    pub piece_size: f64,
    /// Block size in bytes (the unit of transfer for BitTorrent/PropShare).
    pub block_size: f64,
}

impl FileSpec {
    /// The paper's default BitTorrent/PropShare configuration: 256 KB
    /// pieces of 16 KB blocks.
    pub fn bittorrent(file_mib: f64) -> Self {
        let piece = kib(256.0);
        FileSpec {
            pieces: (mib(file_mib) / piece).ceil() as usize,
            piece_size: piece,
            block_size: kib(16.0),
        }
    }

    /// The paper's T-Chain/FairTorrent configuration: 64 KB pieces without
    /// further subdivision (§IV-A).
    pub fn tchain(file_mib: f64) -> Self {
        let piece = kib(64.0);
        FileSpec { pieces: (mib(file_mib) / piece).ceil() as usize, piece_size: piece, block_size: piece }
    }

    /// An explicit configuration (used by the small-file experiments of
    /// §IV-I where the file is 1–50 pieces of 64 KB).
    ///
    /// # Panics
    ///
    /// Panics if `pieces` is zero or sizes are non-positive.
    pub fn custom(pieces: usize, piece_size: f64, block_size: f64) -> Self {
        assert!(pieces > 0, "a file has at least one piece");
        assert!(piece_size > 0.0 && block_size > 0.0, "sizes must be positive");
        FileSpec { pieces, piece_size, block_size }
    }

    /// Total file size in bytes.
    pub fn file_size(&self) -> f64 {
        self.pieces as f64 * self.piece_size
    }

    /// Blocks per piece (≥ 1).
    pub fn blocks_per_piece(&self) -> usize {
        (self.piece_size / self.block_size).round().max(1.0) as usize
    }
}

/// A set of piece indices, stored as packed 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitfield {
    words: Vec<u64>,
    len: usize,
    count: usize,
}

impl Bitfield {
    /// An empty bitfield over `len` pieces.
    pub fn new(len: usize) -> Self {
        Bitfield { words: vec![0; len.div_ceil(64)], len, count: 0 }
    }

    /// A full bitfield (the seeder's `F`).
    pub fn full(len: usize) -> Self {
        let mut bf = Bitfield::new(len);
        for w in bf.words.iter_mut() {
            *w = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = bf.words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        bf.count = len;
        bf
    }

    /// Number of pieces in the file.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the file has zero pieces (never happens for a valid
    /// [`FileSpec`], but keeps the API well-behaved).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pieces held.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` once every piece is held.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.count == self.len
    }

    /// Whether piece `p` is held.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn has(&self, p: PieceId) -> bool {
        let i = p.index();
        assert!(i < self.len, "piece {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Marks piece `p` held; returns `true` if it was newly added.
    pub fn set(&mut self, p: PieceId) -> bool {
        let i = p.index();
        assert!(i < self.len, "piece {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Iterates over held pieces.
    pub fn iter_set(&self) -> impl Iterator<Item = PieceId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            BitIter { word: w, base: (wi * 64) as u32 }
        })
    }

    /// Iterates over pieces `other` holds that `self` is missing — the
    /// pieces `self`'s owner would want from `other`'s owner.
    pub fn missing_from<'a>(&'a self, other: &'a Bitfield) -> impl Iterator<Item = PieceId> + 'a {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(other.words.iter()).enumerate().flat_map(move |(wi, (&a, &b))| {
            BitIter { word: !a & b, base: (wi * 64) as u32 }
        })
    }

    /// `true` if `other` holds at least one piece `self` is missing, i.e.
    /// whether `self`'s owner is *interested* in `other`'s owner (§II-A) —
    /// also the payee-eligibility test of §II-B2.
    pub fn wants_from(&self, other: &Bitfield) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(other.words.iter()).any(|(&a, &b)| !a & b != 0)
    }

    /// The lowest-index piece not yet held — the playback frontier for
    /// the streaming extension (§VI). `None` once complete.
    pub fn first_missing(&self) -> Option<PieceId> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let i = wi * 64 + (!w).trailing_zeros() as usize;
                if i < self.len {
                    return Some(PieceId(i as u32));
                }
            }
        }
        None
    }

    /// Number of pieces held by exactly one of the two bitfields — the
    /// "piece difference" metric of Fig. 6(a).
    pub fn difference(&self, other: &Bitfield) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(other.words.iter()).map(|(&a, &b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Packs the bitfield into `ceil(len/8)` LSB-first bytes — the payload
    /// of a `wire::Message::Bitfield` handshake frame.
    pub fn to_packed_bytes(&self) -> Vec<u8> {
        let nbytes = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(nbytes);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(nbytes);
        out
    }

    /// Rebuilds a bitfield from its packed form. Returns `None` when the
    /// byte count does not match `len` or a padding bit past `len` is set
    /// (a non-canonical — and therefore rejected — encoding).
    pub fn from_packed_bytes(len: usize, bytes: &[u8]) -> Option<Bitfield> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        let mut bf = Bitfield::new(len);
        for (i, &b) in bytes.iter().enumerate() {
            let mut rest = b;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let idx = i * 8 + bit;
                if idx >= len {
                    return None;
                }
                bf.set(PieceId(idx as u32));
            }
        }
        Some(bf)
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = PieceId;
    fn next(&mut self) -> Option<PieceId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(PieceId(self.base + tz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_spec_bittorrent_defaults() {
        let f = FileSpec::bittorrent(128.0);
        assert_eq!(f.pieces, 512);
        assert_eq!(f.blocks_per_piece(), 16);
        assert_eq!(f.file_size(), mib(128.0));
    }

    #[test]
    fn file_spec_tchain_defaults() {
        let f = FileSpec::tchain(128.0);
        assert_eq!(f.pieces, 2048);
        assert_eq!(f.blocks_per_piece(), 1);
    }

    #[test]
    fn empty_and_full() {
        let e = Bitfield::new(100);
        assert_eq!(e.count(), 0);
        assert!(!e.is_complete());
        let f = Bitfield::full(100);
        assert_eq!(f.count(), 100);
        assert!(f.is_complete());
        assert!(f.has(PieceId(99)));
        assert_eq!(f.iter_set().count(), 100);
    }

    #[test]
    fn full_is_exact_for_word_multiples() {
        let f = Bitfield::full(128);
        assert_eq!(f.count(), 128);
        assert_eq!(f.iter_set().count(), 128);
    }

    #[test]
    fn set_is_idempotent() {
        let mut b = Bitfield::new(10);
        assert!(b.set(PieceId(3)));
        assert!(!b.set(PieceId(3)));
        assert_eq!(b.count(), 1);
        assert!(b.has(PieceId(3)));
        assert!(!b.has(PieceId(4)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = Bitfield::new(10);
        b.has(PieceId(10));
    }

    #[test]
    fn wants_and_missing() {
        let mut a = Bitfield::new(200);
        let mut b = Bitfield::new(200);
        a.set(PieceId(0));
        b.set(PieceId(0));
        assert!(!a.wants_from(&b));
        b.set(PieceId(70));
        b.set(PieceId(150));
        assert!(a.wants_from(&b));
        let missing: Vec<_> = a.missing_from(&b).collect();
        assert_eq!(missing, vec![PieceId(70), PieceId(150)]);
        assert!(!b.wants_from(&a));
    }

    #[test]
    fn first_missing_walks_forward() {
        let mut b = Bitfield::new(130);
        assert_eq!(b.first_missing(), Some(PieceId(0)));
        for i in 0..64 {
            b.set(PieceId(i));
        }
        assert_eq!(b.first_missing(), Some(PieceId(64)));
        for i in 64..130 {
            b.set(PieceId(i));
        }
        assert_eq!(b.first_missing(), None);
        assert_eq!(Bitfield::full(64).first_missing(), None);
    }

    #[test]
    fn difference_is_symmetric() {
        let mut a = Bitfield::new(100);
        let mut b = Bitfield::new(100);
        a.set(PieceId(1));
        a.set(PieceId(2));
        b.set(PieceId(2));
        b.set(PieceId(3));
        b.set(PieceId(4));
        assert_eq!(a.difference(&b), 3);
        assert_eq!(b.difference(&a), 3);
        assert_eq!(a.difference(&a), 0);
    }

    #[test]
    fn packed_bytes_roundtrip() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 130] {
            let mut b = Bitfield::new(len);
            for i in (0..len).step_by(3) {
                b.set(PieceId(i as u32));
            }
            let packed = b.to_packed_bytes();
            assert_eq!(packed.len(), len.div_ceil(8));
            assert_eq!(Bitfield::from_packed_bytes(len, &packed), Some(b));
        }
    }

    #[test]
    fn packed_bytes_reject_padding_and_length() {
        // Wrong byte count.
        assert_eq!(Bitfield::from_packed_bytes(9, &[0xFF]), None);
        // Padding bit beyond len=9 set (bit 9 of the second byte's range).
        assert_eq!(Bitfield::from_packed_bytes(9, &[0x00, 0x02]), None);
        // Canonical full bitfield survives.
        let full = Bitfield::full(9);
        assert_eq!(Bitfield::from_packed_bytes(9, &full.to_packed_bytes()), Some(full));
    }

    #[test]
    fn seeder_complete_leecher_fills_up() {
        let spec = FileSpec::tchain(1.0); // 16 pieces
        assert_eq!(spec.pieces, 16);
        let seeder = Bitfield::full(spec.pieces);
        let mut l = Bitfield::new(spec.pieces);
        for p in seeder.iter_set() {
            l.set(p);
        }
        assert!(l.is_complete());
        assert!(!l.wants_from(&seeder));
    }
}
