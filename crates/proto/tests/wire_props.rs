//! Property tests for the `proto::wire` codec: every well-formed
//! [`Message`] round-trips byte-exactly, and no byte string — random,
//! mutated, or truncated — can make the strict decoder panic; it may
//! only return a typed [`DecodeError`].
//!
//! Strategies stay within the basic proptest vocabulary (ranges,
//! `any`, `collection::vec`, `option::of`) and messages are assembled
//! from sampled primitives inside the test body.

use proptest::prelude::*;
use tchain_proto::wire::{DecodeError, Message, KEY_WIRE_SIZE, MAX_CIPHERTEXT_LEN};
use tchain_proto::{Bitfield, PieceId};
use tchain_sim::NodeId;

/// Builds one message variant (picked by `kind`) from sampled fields,
/// spanning the full accepted range of each: ciphertext_len up to its
/// protocol bound, bitfields of 0..200 pieces in canonical packed form.
#[allow(clippy::too_many_arguments)]
fn build_message(
    kind: u32,
    a: u32,
    b: u32,
    rec: Option<(u32, u32)>,
    opt: Option<u32>,
    len: u32,
    bits: &[bool],
    key_bytes: &[u8],
) -> Message {
    let mut key = [0u8; KEY_WIRE_SIZE];
    key.copy_from_slice(&key_bytes[..KEY_WIRE_SIZE]);
    match kind % 6 {
        0 => Message::PieceUpload {
            reciprocates: rec.map(|(p, d)| (PieceId(p), NodeId(d))),
            piece: PieceId(a),
            payee: opt.map(NodeId),
            ciphertext_len: len % (MAX_CIPHERTEXT_LEN + 1),
        },
        1 => Message::ReceptionReport { requestor: NodeId(a), piece: PieceId(b) },
        2 => Message::KeyRelease { piece: PieceId(a), requestor: opt.map(NodeId), key },
        3 => Message::NeighborRequest { from: NodeId(a) },
        4 => Message::Have { piece: PieceId(a) },
        _ => {
            let mut bf = Bitfield::new(bits.len());
            for (i, s) in bits.iter().enumerate() {
                if *s {
                    bf.set(PieceId(i as u32));
                }
            }
            Message::bitfield(&bf)
        }
    }
}

proptest! {
    /// encode → decode is the identity, and `encoded_len` is exact.
    #[test]
    fn roundtrip_identity(
        kind in 0u32..6,
        a in any::<u32>(),
        b in any::<u32>(),
        rec in proptest::option::of((any::<u32>(), any::<u32>())),
        opt in proptest::option::of(any::<u32>()),
        len in any::<u32>(),
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        key_bytes in proptest::collection::vec(any::<u8>(), KEY_WIRE_SIZE),
    ) {
        let m = build_message(kind, a, b, rec, opt, len, &bits, &key_bytes);
        let enc = m.encode();
        prop_assert_eq!(enc.len(), m.encoded_len());
        prop_assert_eq!(Message::decode(&enc), Ok(m));
    }

    /// Arbitrary byte soup never panics the decoder — it either parses
    /// (re-encoding to the same canonical bytes) or errors.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        // Strict parsing means accepted bytes ARE the canonical
        // encoding: exactly one byte string per message value.
        if let Ok(m) = Message::decode(&bytes) {
            prop_assert_eq!(m.encode().as_ref(), &bytes[..]);
        }
    }

    /// A single mutated byte in a valid encoding never panics; if it
    /// still parses, it parses strictly (canonical re-encode).
    #[test]
    fn mutated_encodings_never_panic(
        kind in 0u32..6,
        a in any::<u32>(),
        b in any::<u32>(),
        rec in proptest::option::of((any::<u32>(), any::<u32>())),
        opt in proptest::option::of(any::<u32>()),
        len in any::<u32>(),
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        key_bytes in proptest::collection::vec(any::<u8>(), KEY_WIRE_SIZE),
        idx in any::<usize>(),
        xor in 1u32..256,
    ) {
        let m = build_message(kind, a, b, rec, opt, len, &bits, &key_bytes);
        let mut enc = m.encode().to_vec();
        if !enc.is_empty() {
            let i = idx % enc.len();
            enc[i] ^= xor as u8;
            if let Ok(dm) = Message::decode(&enc) {
                prop_assert_eq!(dm.encode().as_ref(), &enc[..]);
            }
        }
    }

    /// Every strict prefix of a valid encoding is rejected as truncated
    /// (or, for an empty prefix, simply rejected) — never accepted.
    #[test]
    fn prefixes_rejected(
        kind in 0u32..6,
        a in any::<u32>(),
        b in any::<u32>(),
        rec in proptest::option::of((any::<u32>(), any::<u32>())),
        opt in proptest::option::of(any::<u32>()),
        len in any::<u32>(),
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        key_bytes in proptest::collection::vec(any::<u8>(), KEY_WIRE_SIZE),
        frac in 0.0f64..1.0,
    ) {
        let m = build_message(kind, a, b, rec, opt, len, &bits, &key_bytes);
        let enc = m.encode();
        let cut = ((enc.len() as f64) * frac) as usize;
        if cut < enc.len() {
            prop_assert_eq!(Message::decode(&enc[..cut]), Err(DecodeError::Truncated));
        }
    }

    /// Appending junk to a valid encoding is always rejected.
    #[test]
    fn suffixes_rejected(
        kind in 0u32..6,
        a in any::<u32>(),
        b in any::<u32>(),
        rec in proptest::option::of((any::<u32>(), any::<u32>())),
        opt in proptest::option::of(any::<u32>()),
        len in any::<u32>(),
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        key_bytes in proptest::collection::vec(any::<u8>(), KEY_WIRE_SIZE),
        junk in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let m = build_message(kind, a, b, rec, opt, len, &bits, &key_bytes);
        let mut enc = m.encode().to_vec();
        enc.extend_from_slice(&junk);
        prop_assert!(Message::decode(&enc).is_err());
    }
}
