//! Scenario builders: workloads × strategies → peer plans, plus the
//! protocol-agnostic run wrapper the figure modules share.

use std::time::Instant;

use tchain_attacks::{GroupId, PeerPlan, Strategy};
use tchain_baselines::{Baseline, BaselineConfig, BaselineSwarm};
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_metrics::RecoveryCounters;
use tchain_obs::{MetricMap, PhaseProfile, TraceRecord};
use tchain_proto::{FileSpec, Role, SwarmConfig};
use tchain_sim::FaultPlan;
use tchain_workloads::{flash_crowd, CapacityClasses, TraceModel};

/// The five quantitative protocols of §IV, unified for the experiment
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// The paper's contribution.
    TChain,
    /// One of the four baselines.
    Baseline(Baseline),
}

impl Proto {
    /// Legend name.
    pub fn name(&self) -> &'static str {
        match self {
            Proto::TChain => "T-Chain",
            Proto::Baseline(b) => b.name(),
        }
    }

    /// The four protocols compared in most figures (legend order).
    pub fn main_four() -> [Proto; 4] {
        [
            Proto::Baseline(Baseline::BitTorrent),
            Proto::Baseline(Baseline::PropShare),
            Proto::Baseline(Baseline::FairTorrent),
            Proto::TChain,
        ]
    }

    /// The Fig. 13 set (adds Random BitTorrent).
    pub fn with_random_bt() -> [Proto; 5] {
        [
            Proto::Baseline(Baseline::RandomBt),
            Proto::Baseline(Baseline::BitTorrent),
            Proto::Baseline(Baseline::PropShare),
            Proto::Baseline(Baseline::FairTorrent),
            Proto::TChain,
        ]
    }

    /// The piece layout each protocol uses (§IV-A): 256 KB pieces of
    /// 16 KB blocks for BitTorrent/PropShare, whole 64 KB pieces for
    /// T-Chain/FairTorrent.
    pub fn file_spec(&self, file_mib: f64) -> FileSpec {
        match self {
            Proto::TChain | Proto::Baseline(Baseline::FairTorrent) => FileSpec::tchain(file_mib),
            _ => FileSpec::bittorrent(file_mib),
        }
    }
}

impl std::fmt::Display for Proto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Free-rider behaviour knob for scenario construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiderMode {
    /// §IV-C: zero upload + large-view + whitewashing.
    Aggressive,
    /// §IV-D: additionally, all free-riders collude in one set.
    Colluding,
}

/// Builds a flash-crowd plan (§IV-A: all joins within 10 s) of `n`
/// leechers with heterogeneous capacities; `fr_fraction` of them are
/// free-riders in the given mode.
pub fn flash_plan(n: usize, fr_fraction: f64, mode: RiderMode, seed: u64) -> Vec<PeerPlan> {
    let times = flash_crowd(n, 10.0, seed);
    let caps = CapacityClasses::default().assign(n, seed ^ 0xA1);
    plan_from(times, caps, fr_fraction, mode, seed)
}

/// Builds a trace-driven plan (§IV-E's continuous stream) of `n`
/// arrivals.
pub fn trace_plan(n: usize, fr_fraction: f64, mode: RiderMode, seed: u64) -> Vec<PeerPlan> {
    let times = TraceModel::default().arrivals(n, seed);
    let caps = CapacityClasses::default().assign(n, seed ^ 0xA1);
    plan_from(times, caps, fr_fraction, mode, seed)
}

fn plan_from(
    times: Vec<f64>,
    caps: Vec<f64>,
    fr_fraction: f64,
    mode: RiderMode,
    seed: u64,
) -> Vec<PeerPlan> {
    assert!((0.0..=1.0).contains(&fr_fraction), "free-rider fraction in [0,1]");
    let n = times.len();
    let fr_count = (fr_fraction * n as f64).round() as usize;
    // Spread free-riders across the arrival order deterministically.
    let mut is_fr = vec![false; n];
    if fr_count > 0 {
        let stride = n as f64 / fr_count as f64;
        for i in 0..fr_count {
            let idx = ((i as f64 + (seed % 7) as f64 / 7.0) * stride) as usize % n;
            is_fr[idx] = true;
        }
        // Collisions from the modulo: top up from the start.
        let mut placed = is_fr.iter().filter(|&&b| b).count();
        let mut i = 0;
        while placed < fr_count && i < n {
            if !is_fr[i] {
                is_fr[i] = true;
                placed += 1;
            }
            i += 1;
        }
    }
    times
        .into_iter()
        .zip(caps)
        .zip(is_fr)
        .map(|((at, capacity), fr)| {
            let strategy = if fr {
                match mode {
                    RiderMode::Aggressive => Strategy::aggressive_free_rider(),
                    RiderMode::Colluding => Strategy::colluding_free_rider(GroupId(0)),
                }
            } else {
                Strategy::Compliant
            };
            PeerPlan { at, capacity, strategy, crash_at: None }
        })
        .collect()
}

/// Uniform result bundle for one protocol run.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Per-leecher download durations of finished compliant leechers,
    /// ordered by completion time.
    pub compliant_times: Vec<f64>,
    /// Same for free-riders.
    pub free_rider_times: Vec<f64>,
    /// Compliant leechers that never finished.
    pub unfinished_compliant: usize,
    /// Free-rider identities that never finished.
    pub unfinished_free_riders: usize,
    /// Mean uplink utilization over compliant leechers (Fig. 3(b)).
    pub uplink_utilization: f64,
    /// Fairness factors of finished compliant leechers, ordered by
    /// completion time (Fig. 12).
    pub fairness: Vec<f64>,
    /// Mean per-leecher useful download throughput in bytes/s over
    /// compliant leechers (Fig. 13).
    pub mean_goodput: f64,
    /// Wall-clock of the simulated run in seconds.
    pub sim_time: f64,
    /// Fault-layer delivery statistics and recovery tallies (all zero on
    /// a fault-free run with no departures triggering escrow).
    pub recovery: RecoveryCounters,
    /// Host wall-clock seconds the run took. Measurement only — never
    /// fed back into the simulation, so it varies across hosts while the
    /// simulated results stay deterministic.
    pub wall_clock_s: f64,
    /// High-water mark of the event ring (0 when tracing was off).
    pub peak_event_depth: usize,
    /// Per-phase wall-clock profile (empty unless profiling was on).
    pub phases: PhaseProfile,
    /// Unified named-metric snapshot from the driver's stats registry.
    pub metrics: MetricMap,
    /// Buffered trace records (empty unless tracing was on).
    pub trace_records: Vec<TraceRecord>,
}

/// Extra horizon to run past compliant completion so baseline free-riders
/// can finish (their Fig. 7(b) completion times are far beyond the
/// compliant ones).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Horizon {
    /// Stop when all planned compliant leechers finished.
    CompliantDone,
    /// Run to a fixed simulated time.
    Fixed(f64),
    /// Compliant done, then keep going up to the given simulated time so
    /// free-riders can (maybe) finish.
    ExtendForFreeRiders(f64),
    /// Run until this many compliant completions (or the time bound) —
    /// the §IV-E trace methodology ("the first 1,000 compliant leechers
    /// that successfully completed").
    CompliantCount(usize, f64),
}

/// Per-run protocol options beyond the plan itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOpts {
    /// Fraction of the file pre-loaded into compliant joiners (Fig. 6(b)).
    pub initial_piece_fraction: f64,
    /// Replace finishing leechers with newcomers (Fig. 13 churn).
    pub replace_on_finish: bool,
    /// Override the file with `n` pieces of 64 KB (Fig. 13's small
    /// files); blocks stay at 16 KB for the block-based protocols.
    pub custom_pieces: Option<usize>,
    /// Record structured events into a ring of this capacity.
    pub trace_capacity: Option<usize>,
    /// Profile the driver main loop per [`tchain_obs::Phase`].
    pub profile: bool,
}

/// Runs one protocol over one plan and collects the uniform outcome.
pub fn run_proto(
    proto: Proto,
    file_mib: f64,
    plan: Vec<PeerPlan>,
    seed: u64,
    horizon: Horizon,
    opts: RunOpts,
) -> RunOutcome {
    run_proto_with_faults(proto, file_mib, plan, seed, horizon, opts, FaultPlan::none())
}

/// Runs one protocol under a fault-injection plan. With
/// [`FaultPlan::none()`] this is exactly [`run_proto`].
pub fn run_proto_with_faults(
    proto: Proto,
    file_mib: f64,
    plan: Vec<PeerPlan>,
    seed: u64,
    horizon: Horizon,
    opts: RunOpts,
    faults: FaultPlan,
) -> RunOutcome {
    let spec = match opts.custom_pieces {
        Some(n) => {
            let piece = 64.0 * 1024.0;
            let block = match proto {
                Proto::TChain | Proto::Baseline(Baseline::FairTorrent) => piece,
                _ => 16.0 * 1024.0,
            };
            FileSpec::custom(n, piece, block)
        }
        None => proto.file_spec(file_mib),
    };
    let scfg = SwarmConfig::paper(spec);
    let wall_start = Instant::now();
    match proto {
        Proto::TChain => {
            let cfg = TChainConfig {
                initial_piece_fraction: opts.initial_piece_fraction,
                replace_on_finish: opts.replace_on_finish,
                ..Default::default()
            };
            let mut sw = TChainSwarm::with_faults(scfg, cfg, plan, seed, faults);
            if let Some(cap) = opts.trace_capacity {
                sw.enable_tracing(cap);
            }
            if opts.profile {
                sw.enable_profiling();
            }
            match horizon {
                Horizon::CompliantDone => sw.run_until_done(),
                Horizon::Fixed(t) => sw.run_to(t),
                Horizon::ExtendForFreeRiders(t) => {
                    sw.run_until_done();
                    if sw.base().clock.now() < t {
                        sw.run_to(t);
                    }
                }
                Horizon::CompliantCount(k, max_t) => {
                    while sw.base().clock.now() < max_t
                        && sw.completion_times(true).len() < k
                    {
                        let t = sw.base().clock.now() + 25.0;
                        sw.run_to(t.min(max_t));
                    }
                }
            }
            let fr = sw.free_rider_results();
            let mut out = collect(sw.base(), spec.piece_size, fr, |p| p.fairness_factor());
            out.recovery = sw.recovery_counters();
            out.metrics = sw.metrics();
            out.phases = sw.profile();
            out.peak_event_depth = sw.tracer().peak_depth();
            out.trace_records = sw.tracer().records();
            out.wall_clock_s = wall_start.elapsed().as_secs_f64();
            out
        }
        Proto::Baseline(b) => {
            let cfg = BaselineConfig {
                initial_piece_fraction: opts.initial_piece_fraction,
                replace_on_finish: opts.replace_on_finish,
                ..Default::default()
            };
            let mut sw = BaselineSwarm::with_faults(scfg, cfg, b, plan, seed, faults);
            if let Some(cap) = opts.trace_capacity {
                sw.enable_tracing(cap);
            }
            if opts.profile {
                sw.enable_profiling();
            }
            match horizon {
                Horizon::CompliantDone => sw.run_until_done(),
                Horizon::Fixed(t) => sw.run_to(t),
                Horizon::ExtendForFreeRiders(t) => {
                    sw.run_until_done();
                    if sw.base().clock.now() < t {
                        sw.run_to(t);
                    }
                }
                Horizon::CompliantCount(k, max_t) => {
                    while sw.base().clock.now() < max_t
                        && sw.completion_times(true).len() < k
                    {
                        let t = sw.base().clock.now() + 25.0;
                        sw.run_to(t.min(max_t));
                    }
                }
            }
            let fr = sw.free_rider_results();
            let mut out = {
                let flows = &sw.base().flows;
                collect(sw.base(), spec.piece_size, fr, |p| {
                    let up = flows.uploaded(p.id);
                    if up > 0.0 {
                        Some(flows.downloaded(p.id) / up)
                    } else {
                        None
                    }
                })
            };
            out.recovery = sw.recovery_counters();
            out.metrics = sw.metrics();
            out.phases = sw.profile();
            out.peak_event_depth = sw.tracer().peak_depth();
            out.trace_records = sw.tracer().records();
            out.wall_clock_s = wall_start.elapsed().as_secs_f64();
            out
        }
    }
}

fn collect(
    base: &tchain_proto::SwarmBase,
    piece_size: f64,
    free_rider_results: (Vec<f64>, usize),
    fairness_of: impl Fn(&tchain_proto::Peer) -> Option<f64>,
) -> RunOutcome {
    let now = base.clock.now();
    let mut compliant: Vec<(f64, f64, Option<f64>)> = Vec::new();
    let (mut rider_durations, unfinished_free_riders) = free_rider_results;
    let mut unfinished_compliant = 0;
    let mut goodput_sum = 0.0;
    let mut goodput_n = 0usize;
    for p in base.peers.iter() {
        if p.role != Role::Leecher {
            continue;
        }
        match (p.compliant, p.done_time) {
            (true, Some(d)) => compliant.push((d, d - p.join_time, fairness_of(p))),
            (true, None) => unfinished_compliant += 1,
            (false, _) => {} // free-riders handled by lineage above
        }
        if p.compliant {
            let res = p.residence(now);
            if res > 1.0 {
                goodput_sum += p.pieces_down as f64 * piece_size / res;
                goodput_n += 1;
            }
        }
    }
    compliant.sort_by(|a, b| a.0.total_cmp(&b.0));
    rider_durations.sort_by(|a, b| a.total_cmp(b));
    RunOutcome {
        compliant_times: compliant.iter().map(|c| c.1).collect(),
        free_rider_times: rider_durations,
        unfinished_compliant,
        unfinished_free_riders,
        uplink_utilization: base.mean_uplink_utilization(),
        fairness: compliant.iter().filter_map(|c| c.2).collect(),
        mean_goodput: if goodput_n == 0 { 0.0 } else { goodput_sum / goodput_n as f64 },
        sim_time: now,
        ..RunOutcome::default()
    }
}

impl RunOutcome {
    /// Mean compliant download completion time, if any finished.
    pub fn mean_compliant(&self) -> Option<f64> {
        mean(&self.compliant_times)
    }

    /// Mean free-rider completion time, if any finished.
    pub fn mean_free_rider(&self) -> Option<f64> {
        mean(&self.free_rider_times)
    }

    /// Equality over the simulation-determined fields only: host-side
    /// measurements (wall clock, profiler timings, trace buffers and the
    /// `trace.*` gauges they feed) are excluded, so a traced run must
    /// compare equal to the same seed run untraced.
    pub fn deterministic_eq(&self, other: &RunOutcome) -> bool {
        fn sim_metrics(m: &MetricMap) -> MetricMap {
            m.iter()
                .filter(|(k, _)| !k.starts_with("trace."))
                .map(|(k, &v)| (k.clone(), v))
                .collect()
        }
        self.compliant_times == other.compliant_times
            && self.free_rider_times == other.free_rider_times
            && self.unfinished_compliant == other.unfinished_compliant
            && self.unfinished_free_riders == other.unfinished_free_riders
            && self.uplink_utilization == other.uplink_utilization
            && self.fairness == other.fairness
            && self.mean_goodput == other.mean_goodput
            && self.sim_time == other.sim_time
            && self.recovery == other.recovery
            && sim_metrics(&self.metrics) == sim_metrics(&other.metrics)
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_plan_fractions() {
        let plan = flash_plan(100, 0.25, RiderMode::Aggressive, 1);
        assert_eq!(plan.len(), 100);
        let frs = plan.iter().filter(|p| p.strategy.is_free_rider()).count();
        assert_eq!(frs, 25);
        assert!(plan.iter().all(|p| (0.0..10.0).contains(&p.at)));
        assert!(plan.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn colluding_mode_registers_group() {
        let plan = flash_plan(40, 0.5, RiderMode::Colluding, 2);
        let all_colluders = plan
            .iter()
            .filter(|p| p.strategy.is_free_rider())
            .all(|p| p.strategy.free_rider().unwrap().collude.is_some());
        assert!(all_colluders);
    }

    #[test]
    fn trace_plan_streams_arrivals() {
        let plan = trace_plan(200, 0.0, RiderMode::Aggressive, 3);
        assert_eq!(plan.len(), 200);
        // Arrivals span far beyond a 10 s flash window.
        assert!(plan.last().unwrap().at > 60.0);
    }

    #[test]
    fn run_proto_smoke_tchain_and_bt() {
        let plan = flash_plan(10, 0.0, RiderMode::Aggressive, 4);
        for proto in [Proto::TChain, Proto::Baseline(Baseline::BitTorrent)] {
            let out = run_proto(proto, 1.0, plan.clone(), 4, Horizon::CompliantDone, RunOpts::default());
            assert_eq!(out.compliant_times.len(), 10, "{proto}: everyone finishes");
            assert!(out.mean_compliant().unwrap() > 0.0);
            assert!(out.uplink_utilization >= 0.0 && out.uplink_utilization <= 1.0);
        }
    }

    #[test]
    fn custom_pieces_small_file() {
        let plan = flash_plan(8, 0.0, RiderMode::Aggressive, 5);
        let out = run_proto(
            Proto::TChain,
            1.0,
            plan,
            5,
            Horizon::Fixed(300.0),
            RunOpts { custom_pieces: Some(2), ..Default::default() },
        );
        assert!(out.compliant_times.len() <= 8);
        assert!(out.sim_time >= 300.0);
    }

    #[test]
    fn proto_file_specs() {
        assert_eq!(Proto::TChain.file_spec(128.0).pieces, 2048);
        assert_eq!(Proto::Baseline(Baseline::BitTorrent).file_spec(128.0).pieces, 512);
        assert_eq!(Proto::main_four().len(), 4);
        assert_eq!(Proto::with_random_bt().len(), 5);
    }
}
