//! # tchain-experiments — regenerating every table and figure
//!
//! The §IV evaluation as runnable code. Each figure has a module under
//! [`figures`] and a thin binary (`fig03` … `fig13`, `table2`,
//! `overhead`, `analysis`, `all`). Scale with `TCHAIN_SCALE=quick|paper`
//! (see [`Scale`]); results are printed as paper-style rows and persisted
//! as JSON under `results/`.
//!
//! ```no_run
//! use tchain_experiments::{figures, Scale};
//! figures::fig03::run(Scale::Quick);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
mod output;
pub mod runner;
mod scale;
mod scenario;

pub use output::{
    deterministic_view, fmt_opt, persist, print_table, results_dir, save, save_with_meta, RunMeta,
};
pub use runner::{
    effective_jobs, parse_jobs_args, set_jobs, sweep, take_failures, FailedCell, Sweep,
};
pub use scale::Scale;
pub use scenario::{
    flash_plan, run_proto, run_proto_with_faults, trace_plan, Horizon, Proto, RiderMode, RunOpts,
    RunOutcome,
};
