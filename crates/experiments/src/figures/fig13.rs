//! Fig. 13: small files under churn — average compliant download
//! throughput vs number of pieces, with 0 % and 50 % free-riders,
//! including Random BitTorrent.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_metrics::Summary;

/// One Fig. 13 point.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Protocol legend name.
    pub proto: String,
    /// Free-rider percentage.
    pub fr_pct: u32,
    /// Number of 64 KB pieces in the shared file.
    pub pieces: usize,
    /// Mean per-leecher goodput in Kbps.
    pub throughput_kbps: Summary,
}

/// Runs Fig. 13.
pub fn run(scale: Scale) -> Vec<Point> {
    let piece_counts: Vec<usize> = match scale {
        Scale::Quick => vec![1, 2, 5, 10, 30],
        Scale::Paper => vec![1, 2, 3, 4, 5, 10, 20, 30, 50],
    };
    let window = scale.small_file_window();
    let n = scale.small_file_swarm();
    let mut points = Vec::new();
    let mut meta = RunMeta::default();
    const FR_PCTS: [u32; 2] = [0, 50];
    let runs = scale.runs().min(3);
    let mut cells = Vec::new();
    for fr_pct in FR_PCTS {
        for proto in Proto::with_random_bt() {
            for &pieces in &piece_counts {
                for r in 0..runs {
                    let seed = (pieces as u64) << 9 | (fr_pct as u64) << 1 | r as u64;
                    cells.push((proto, fr_pct, pieces, seed));
                }
            }
        }
    }
    let sw = sweep(
        "fig13",
        &cells,
        |&(proto, fr_pct, pieces, seed)| {
            (format!("{} {pieces}p {fr_pct}% FR churn", proto.name()), seed)
        },
        |&(proto, fr_pct, pieces, seed)| {
            let plan = flash_plan(n, fr_pct as f64 / 100.0, RiderMode::Aggressive, seed);
            run_proto(
                proto,
                1.0, // overridden by custom_pieces
                plan,
                seed,
                Horizon::Fixed(window),
                RunOpts {
                    custom_pieces: Some(pieces),
                    replace_on_finish: true,
                    ..Default::default()
                },
            )
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for fr_pct in FR_PCTS {
        for proto in Proto::with_random_bt() {
            for &pieces in &piece_counts {
                let mut tp = Vec::new();
                for _ in 0..runs {
                    let Some(out) = outs.next().flatten() else {
                        continue;
                    };
                    meta.absorb(&out);
                    tp.push(out.mean_goodput * 8.0 / 1000.0); // → Kbps
                }
                points.push(Point {
                    proto: proto.name().to_string(),
                    fr_pct,
                    pieces,
                    throughput_kbps: Summary::of(&tp),
                });
            }
        }
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.proto.clone(),
                format!("{}%", p.fr_pct),
                p.pieces.to_string(),
                format!("{}", p.throughput_kbps),
            ]
        })
        .collect();
    print_table(
        "Fig. 13: compliant download throughput (Kbps) vs file pieces under churn",
        &["protocol", "free-riders", "pieces", "throughput"],
        &rows,
    );
    persist("fig13", scale.name(), &points, &meta);
    points
}
