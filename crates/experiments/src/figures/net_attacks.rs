//! net_attacks: strategic adversaries on the wire (§IV-C, §IV-D).
//!
//! The PR 9 system experiment. Boots in-process swarms of real
//! [`tchain_net::PeerRuntime`]s with the adversary engine armed and
//! reproduces the paper's attack analyses on the executable runtime:
//!
//! * **baseline** — a clean swarm, the control leg. The attack engine
//!   must stay unconstructed: no false reports, no whitewash rejoins,
//!   exactly one tracker query per peer.
//! * **aggressive-25pct** — 25 % of the swarm runs
//!   `Strategy::aggressive_free_rider()` (§IV-C large-view + whitewash:
//!   outsized tracker re-queries every rechoke period, identity resets
//!   with loot kept once the current identity stalls). T-Chain starves
//!   them anyway — encrypted uploads are worthless without keys, and
//!   keys require reciprocation — while every compliant leecher still
//!   completes. Cross-checked against the fluid-sim free-rider driver
//!   on the same scenario shape.
//! * **collusion-ring** — a ring of `colluding_free_rider(GroupId(0))`
//!   (§IV-D): ring members file false `Report` frames on each other's
//!   behalf whenever a transaction's requestor and payee both land in
//!   the ring. The observer must detect and attribute *every* false
//!   report, colluder gain must stay bounded by the report count, and
//!   no compliant peer may be implicated.
//! * **sybil** — a collude-only ring (no large-view, no whitewash) so
//!   the swarm population stays fixed while the §III-A4 collision rate
//!   is measured: of the designated-payee uploads whose requestor sits
//!   in the ring, the fraction whose payee also does is compared to the
//!   closed-form conditional rate `(m−1)/(N−1)` from
//!   [`tchain_analysis::collusion`].
//!
//! Every scenario is run twice under the same seed and must produce a
//! bit-identical frame-stream fingerprint; `all_safe` gates the CI job.
//!
//! **Tolerances.** Incentive invariants are exact (compliant rate 1.0,
//! zero free-rider completions, zero unreciprocated key releases, every
//! false report attributed). The Sybil rate comparison is shape-level:
//! the wire's payee assignment is the §II-D2 pending ledger, not a
//! uniform draw — ring members never report, so their unreciprocated
//! transactions pile up in donors' pending ledgers and the ring is
//! over-represented among payees, biasing the measured rate ~3× above
//! the uniform closed form. The measured/closed-form ratio must land
//! in [0.25, 5.0] (observed 2.6–3.1 across seeds).

use crate::output::{persist, print_table, RunMeta};
use crate::scale::Scale;
use serde::Serialize;
use std::time::Instant;
use tchain_analysis::collusion::ps_exact;
use tchain_attacks::{FreeRiderConfig, GroupId, PeerPlan, Strategy};
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_net::{run_swarm, SwarmConfig as NetSwarmConfig, SwarmReport};
use tchain_proto::{FileSpec, SwarmConfig};
use tchain_sim::kbps;

/// One adversarial scenario's audited outcome.
#[derive(Debug, Serialize)]
pub struct AttackPoint {
    /// Scenario label.
    pub scenario: String,
    /// Peers including the seeder.
    pub peers: u32,
    /// Strategic (non-compliant) peers in the boot population.
    pub adversaries: u32,
    /// Compliant leechers that completed / total.
    pub completed_compliant: u32,
    /// Compliant leechers in the scenario.
    pub total_compliant: u32,
    /// Adversaries that assembled the whole file.
    pub adversaries_done: u32,
    /// Completion breakdown per strategy label → (completed, total).
    pub completed_by_strategy: Vec<(String, u32, u32)>,
    /// Every decrypted piece matched the source bytes.
    pub plaintext_ok: bool,
    /// §II-D2 ledgers consistent on every survivor.
    pub ledger_ok: bool,
    /// Unreciprocated key releases seen by the observer (must stay 0).
    pub violations: usize,
    /// False reception reports detected and attributed (§IV-D).
    pub false_reports: u64,
    /// Key releases colluders extracted via false reports.
    pub colluder_gain: u64,
    /// Designated-payee uploads leaked from non-attackers to attackers.
    pub altruism_leaked: u64,
    /// Uploads leaked from the seeder to attackers (§II-D3 exposure).
    pub seeder_leakage: u64,
    /// §II-B3 gifts that landed on attackers.
    pub gift_leakage: u64,
    /// Uploads whose requestor sat in a Sybil group (§III-A4 trials).
    pub sybil_checks: u64,
    /// Trials where the payee landed in the requestor's group.
    pub sybil_collisions: u64,
    /// Whitewash identity resets completed (§IV-C).
    pub whitewash_rejoins: u64,
    /// Tracker member-list queries served (large-view signature).
    pub tracker_queries: u64,
    /// Encrypted uploads on the wire.
    pub uploads: u64,
    /// Key releases on the wire.
    pub key_releases: u64,
    /// Mean uploads per chain.
    pub mean_chain_len: f64,
    /// Transport-clock seconds to drain.
    pub elapsed: f64,
    /// Order-sensitive digest of every delivered frame (hex).
    pub fingerprint: String,
    /// Same-seed rerun reproduced the fingerprint bit-for-bit.
    pub deterministic: bool,
    /// Scenario-specific incentive guarantee held.
    pub safe: bool,
}

/// Net-vs-fluid cross-check on the aggressive free-rider scenario.
#[derive(Debug, Serialize)]
pub struct FluidCrossCheck {
    /// Seed shared by both runs.
    pub seed: u64,
    /// Net: completed compliant / total compliant.
    pub net_compliant_rate: f64,
    /// Fluid: completed compliant / total compliant.
    pub sim_compliant_rate: f64,
    /// Net adversaries that finished (starvation check).
    pub net_free_riders_done: u32,
    /// Fluid free-riders that finished.
    pub sim_free_riders_done: usize,
    /// Net mean uploads per chain.
    pub net_mean_chain_len: f64,
    /// Fluid mean transactions per ended chain.
    pub sim_mean_chain_len: f64,
    /// net/sim mean-chain-length ratio.
    pub chain_len_ratio: f64,
    /// Hard incentive invariants matched and the ratio is in band.
    pub within_tolerance: bool,
}

/// Measured §III-A4 collision rate vs the closed forms.
#[derive(Debug, Serialize)]
pub struct SybilCheck {
    /// Ring size `m`.
    pub ring: u32,
    /// Swarm size `N` (including the seeder).
    pub peers: u32,
    /// Trials: designated-payee uploads with a ring requestor.
    pub checks: u64,
    /// Hits: payee landed in the ring too.
    pub collisions: u64,
    /// collisions / checks.
    pub measured_rate: f64,
    /// Conditional closed form `(m−1)/(N−1)` given a ring requestor.
    pub conditional_rate: f64,
    /// Unconditional `P_s = m(m−1)/(N(N−1))` (§III-A4, `ps_exact`).
    pub ps_exact: f64,
    /// measured / conditional ratio (band [0.25, 5.0] — the §II-D2
    /// pending-ledger payee assignment over-represents the ring).
    pub ratio: f64,
    /// Trials happened and the ratio landed in band.
    pub within_band: bool,
}

/// The persisted document: scenarios plus both cross-checks.
#[derive(Debug, Serialize)]
pub struct NetAttacksDoc {
    /// Master seed for every net leg.
    pub seed: u64,
    /// Audited adversarial scenarios.
    pub scenarios: Vec<AttackPoint>,
    /// Net-vs-fluid cross-check (aggressive scenario).
    pub cross_check: FluidCrossCheck,
    /// §III-A4 collision-rate regression (sybil scenario).
    pub sybil: SybilCheck,
    /// Every scenario safe, deterministic, and both checks in band.
    pub all_safe: bool,
}

/// Scenario-specific incentive guarantee, beyond the invariants every
/// run must satisfy (compliant rate 1.0, plaintexts exact, ledgers
/// consistent, zero unreciprocated key releases).
fn scenario_safe(name: &str, r: &SwarmReport) -> bool {
    let base = r.completed_compliant == r.total_compliant
        && r.plaintext_ok
        && r.ledger_ok
        && r.violations.is_empty();
    let attributed = r.false_report_log.len() as u64 == r.false_reports;
    match name {
        // Control leg: the attack engine must not even construct.
        "baseline" => {
            base
                && r.false_reports == 0
                && r.whitewash_rejoins == 0
                && r.sybil_checks == 0
                && r.tracker_queries == u64::from(r.peers)
        }
        // §IV-C: starvation despite large-view re-queries and
        // whitewashed identities; compliant completion unaffected.
        "aggressive-25pct" => {
            base
                && r.completed_free_riders == 0
                && r.tracker_queries > u64::from(r.peers)
                && r.whitewash_rejoins > 0
                && r.false_reports == 0
        }
        // §IV-D: every false report detected and attributed; the gain
        // is bounded by the report count (one key release per forged
        // report at most — the observer books each against its txn).
        "collusion-ring" => {
            base && r.false_reports > 0 && attributed && r.colluder_gain <= r.false_reports
        }
        // §III-A4: collisions happen and stay fully attributed; the
        // rate band itself is judged in [`sybil_check`].
        "sybil" => base && r.sybil_checks > 0 && attributed,
        _ => base,
    }
}

/// Runs one adversarial scenario twice (determinism gate) and audits it.
fn attack_point(name: &str, cfg: &NetSwarmConfig, meta: &mut RunMeta) -> (AttackPoint, SwarmReport) {
    let t = Instant::now();
    let report = run_swarm(cfg.clone()).expect("mesh transport cannot fail");
    let rerun = run_swarm(cfg.clone()).expect("mesh transport cannot fail");
    meta.note_run(t.elapsed().as_secs_f64());
    let deterministic = report.fingerprint == rerun.fingerprint
        && report.ticks == rerun.ticks
        && report.false_reports == rerun.false_reports
        && report.whitewash_rejoins == rerun.whitewash_rejoins
        && report.completion_times == rerun.completion_times;
    let safe = deterministic && scenario_safe(name, &report);
    let point = AttackPoint {
        scenario: name.to_string(),
        peers: report.peers,
        adversaries: cfg.strategies.len() as u32,
        completed_compliant: report.completed_compliant,
        total_compliant: report.total_compliant,
        adversaries_done: report.completed_free_riders,
        completed_by_strategy: report
            .completed_by_strategy
            .iter()
            .map(|(label, &(done, total))| ((*label).to_string(), done, total))
            .collect(),
        plaintext_ok: report.plaintext_ok,
        ledger_ok: report.ledger_ok,
        violations: report.violations.len(),
        false_reports: report.false_reports,
        colluder_gain: report.colluder_gain,
        altruism_leaked: report.altruism_leaked,
        seeder_leakage: report.seeder_leakage,
        gift_leakage: report.gift_leakage,
        sybil_checks: report.sybil_checks,
        sybil_collisions: report.sybil_collisions,
        whitewash_rejoins: report.whitewash_rejoins,
        tracker_queries: report.tracker_queries,
        uploads: report.uploads,
        key_releases: report.key_releases,
        mean_chain_len: report.mean_chain_len,
        elapsed: report.elapsed,
        fingerprint: format!("{:016x}", report.fingerprint),
        deterministic,
        safe,
    };
    (point, report)
}

/// Fluid-simulator leg of the cross-check: same compliant/free-rider
/// split and piece count, driven to compliant completion. Returns
/// (compliant rate, free-riders done, mean chain length).
fn fluid_leg(compliant: usize, free_riders: usize, pieces: usize, seed: u64) -> (f64, usize, f64) {
    let file = FileSpec::custom(pieces, 64.0 * 1024.0, 64.0 * 1024.0);
    let mut plan: Vec<PeerPlan> = (0..compliant)
        .map(|i| PeerPlan::compliant(0.4 + i as f64 * 0.05, kbps(800.0)))
        .collect();
    for i in 0..free_riders {
        plan.push(PeerPlan::free_rider(0.5 + i as f64 * 0.05, kbps(800.0)));
    }
    let mut sw = TChainSwarm::new(SwarmConfig::paper(file), TChainConfig::default(), plan, seed);
    sw.run_until_done();
    let rate = sw.completion_times(true).len() as f64 / compliant as f64;
    let fr_done =
        sw.base().peers.iter().filter(|p| !p.compliant && p.done_time.is_some()).count();
    (rate, fr_done, sw.chain_stats().mean_length())
}

/// Cross-checks the aggressive net scenario against the fluid
/// free-rider driver: the incentive argument — compliant completion,
/// free-rider starvation — must agree exactly; chain statistics agree
/// in shape (ratio band [0.25, 4.0], as in `net_swarm`).
fn cross_check(net: &AttackPoint, pieces: usize, seed: u64, meta: &mut RunMeta) -> FluidCrossCheck {
    let t = Instant::now();
    let (sim_rate, sim_fr_done, sim_mcl) =
        fluid_leg(net.total_compliant as usize, net.adversaries as usize, pieces, seed);
    meta.note_run(t.elapsed().as_secs_f64());
    let net_rate = if net.total_compliant == 0 {
        1.0
    } else {
        f64::from(net.completed_compliant) / f64::from(net.total_compliant)
    };
    let ratio = if sim_mcl > 0.0 { net.mean_chain_len / sim_mcl } else { 0.0 };
    let within = net_rate == 1.0
        && sim_rate == 1.0
        && net.adversaries_done == 0
        && sim_fr_done == 0
        && net.violations == 0
        && (0.25..=4.0).contains(&ratio);
    FluidCrossCheck {
        seed,
        net_compliant_rate: net_rate,
        sim_compliant_rate: sim_rate,
        net_free_riders_done: net.adversaries_done,
        sim_free_riders_done: sim_fr_done,
        net_mean_chain_len: net.mean_chain_len,
        sim_mean_chain_len: sim_mcl,
        chain_len_ratio: ratio,
        within_tolerance: within,
    }
}

/// Compares the measured conditional collision rate against
/// `(m−1)/(N−1)` and records the unconditional `ps_exact` alongside.
fn sybil_check(net: &AttackPoint, ring: u32) -> SybilCheck {
    let n = net.peers;
    let measured = if net.sybil_checks > 0 {
        net.sybil_collisions as f64 / net.sybil_checks as f64
    } else {
        0.0
    };
    let conditional = f64::from(ring - 1) / f64::from(n - 1);
    let ratio = if conditional > 0.0 { measured / conditional } else { 0.0 };
    SybilCheck {
        ring,
        peers: n,
        checks: net.sybil_checks,
        collisions: net.sybil_collisions,
        measured_rate: measured,
        conditional_rate: conditional,
        ps_exact: ps_exact(n as usize, ring as usize, 8.min(n as usize)),
        ratio,
        within_band: net.sybil_checks > 0 && (0.25..=5.0).contains(&ratio),
    }
}

/// Runs the attack experiment at the canonical seed.
pub fn run(scale: Scale) -> NetAttacksDoc {
    run_with_seed(scale, 0xA77C)
}

/// Runs the attack experiment under `seed` (the CI job uses two).
pub fn run_with_seed(scale: Scale, seed: u64) -> NetAttacksDoc {
    let (peers, pieces, piece_len, max_ticks) = match scale {
        Scale::Quick => (32u32, 24usize, 1024usize, 8_000u64),
        Scale::Paper => (48, 48, 2048, 12_000),
    };
    let aggressive = peers / 4; // 25 % of the swarm (§IV-C scenario).
    let ring = (peers / 8).max(3); // §IV-D collusion ring.
    let sybil_ring = peers / 4; // §III-A4 measurement ring.
    let base = NetSwarmConfig {
        peers,
        pieces,
        piece_len,
        seed,
        max_ticks,
        ..NetSwarmConfig::default()
    };
    let top_ids = |n: u32, s: fn(u32) -> Strategy| -> Vec<(u32, Strategy)> {
        (peers - n..peers).map(|id| (id, s(id))).collect()
    };
    let mut meta = RunMeta::default();
    let (baseline, _) = attack_point("baseline", &base, &mut meta);
    let (aggressive_pt, _) = attack_point(
        "aggressive-25pct",
        &NetSwarmConfig {
            strategies: top_ids(aggressive, |_| Strategy::aggressive_free_rider()),
            ..base.clone()
        },
        &mut meta,
    );
    let (collusion_pt, _) = attack_point(
        "collusion-ring",
        &NetSwarmConfig {
            strategies: top_ids(ring, |_| Strategy::colluding_free_rider(GroupId(0))),
            ..base.clone()
        },
        &mut meta,
    );
    // Collude-only ring: population stays fixed, so the §III-A4 rate is
    // measured against a constant (m, N).
    let (sybil_pt, _) = attack_point(
        "sybil",
        &NetSwarmConfig {
            strategies: top_ids(sybil_ring, |_| {
                Strategy::FreeRider(FreeRiderConfig {
                    collude: Some(GroupId(0)),
                    ..FreeRiderConfig::default()
                })
            }),
            ..base.clone()
        },
        &mut meta,
    );
    let cross = cross_check(&aggressive_pt, pieces, seed, &mut meta);
    let sybil = sybil_check(&sybil_pt, sybil_ring);
    let scenarios = vec![baseline, aggressive_pt, collusion_pt, sybil_pt];
    let all_safe = scenarios.iter().all(|p| p.safe && p.deterministic)
        && cross.within_tolerance
        && sybil.within_band;

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                format!("{}", p.adversaries),
                format!("{}/{}", p.completed_compliant, p.total_compliant),
                p.adversaries_done.to_string(),
                p.violations.to_string(),
                p.false_reports.to_string(),
                p.colluder_gain.to_string(),
                format!("{}/{}", p.sybil_collisions, p.sybil_checks),
                p.whitewash_rejoins.to_string(),
                p.tracker_queries.to_string(),
                if p.safe && p.deterministic { "ok" } else { "UNSAFE" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "net_attacks: strategic adversaries on the wire (§IV-C / §IV-D)",
        &[
            "scenario", "adv", "compliant", "adv done", "viols", "false rpt", "gain",
            "sybil", "whitewash", "tracker q", "verdict",
        ],
        &rows,
    );
    println!(
        "cross-check vs fluid free-rider driver: compliant {:.2}/{:.2}, \
         free-riders {}/{}, chain-length ratio {:.2} -> {}",
        cross.net_compliant_rate,
        cross.sim_compliant_rate,
        cross.net_free_riders_done,
        cross.sim_free_riders_done,
        cross.chain_len_ratio,
        if cross.within_tolerance { "within tolerance" } else { "OUT OF TOLERANCE" }
    );
    println!(
        "sybil §III-A4: measured {:.3} vs conditional (m-1)/(N-1) = {:.3} \
         (ratio {:.2}, band 0.25-5.0, unconditional Ps = {:.4}) -> {}",
        sybil.measured_rate,
        sybil.conditional_rate,
        sybil.ratio,
        sybil.ps_exact,
        if sybil.within_band { "within band" } else { "OUT OF BAND" }
    );
    let doc = NetAttacksDoc { seed, scenarios, cross_check: cross, sybil, all_safe };
    persist("net_attacks", scale.name(), &doc, &meta);
    doc
}
