//! Fig. 7: 25 % free-riders (large-view + whitewash) in a flash crowd —
//! compliant vs free-rider completion times per protocol.

use crate::output::{fmt_opt, persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_metrics::Summary;

/// One Fig. 7 point.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Protocol legend name.
    pub proto: String,
    /// Swarm size (leechers incl. free-riders).
    pub swarm: usize,
    /// Compliant completion time.
    pub compliant: Summary,
    /// Free-rider completion time over finished lineages (`None` mean →
    /// nobody finished; the T-Chain result).
    pub free_rider: Option<Summary>,
    /// Fraction of free-rider lineages that finished within the horizon.
    pub fr_finish_fraction: f64,
}

/// The shared engine for Figs. 7 and 8.
pub fn run_with_mode(scale: Scale, mode: RiderMode, tag: &str, title: &str) -> Vec<Point> {
    let horizon = match scale {
        Scale::Quick => 8_000.0,
        Scale::Paper => 50_000.0,
    };
    let mut points = Vec::new();
    let mut meta = RunMeta::default();
    let mut cells = Vec::new();
    for proto in Proto::main_four() {
        for &n in &scale.swarm_sizes() {
            for r in 0..scale.runs() {
                cells.push((proto, n, (n as u64) << 8 | r as u64 | 0x70));
            }
        }
    }
    let sw = sweep(
        tag,
        &cells,
        |&(proto, n, seed)| (format!("{} n={} 25% FR", proto.name(), n), seed),
        |&(proto, n, seed)| {
            let plan = flash_plan(n, 0.25, mode, seed);
            run_proto(
                proto,
                scale.file_mib(),
                plan,
                seed,
                Horizon::ExtendForFreeRiders(horizon),
                RunOpts::default(),
            )
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for proto in Proto::main_four() {
        for &n in &scale.swarm_sizes() {
            let mut ct = Vec::new();
            let mut frt = Vec::new();
            let mut finished = 0usize;
            let mut total = 0usize;
            for _ in 0..scale.runs() {
                let Some(out) = outs.next().flatten() else {
                    continue;
                };
                meta.absorb(&out);
                ct.extend(out.mean_compliant());
                frt.extend(out.mean_free_rider());
                finished += out.free_rider_times.len();
                total += out.free_rider_times.len() + out.unfinished_free_riders;
            }
            points.push(Point {
                proto: proto.name().to_string(),
                swarm: n,
                compliant: Summary::of(&ct),
                free_rider: if frt.is_empty() { None } else { Some(Summary::of(&frt)) },
                fr_finish_fraction: if total == 0 { 0.0 } else { finished as f64 / total as f64 },
            });
        }
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.proto.clone(),
                p.swarm.to_string(),
                format!("{}", p.compliant),
                fmt_opt(p.free_rider.as_ref().map(|s| s.mean)),
                format!("{:.0}%", p.fr_finish_fraction * 100.0),
            ]
        })
        .collect();
    print_table(title, &["protocol", "swarm", "compliant (s)", "free-rider (s)", "FR done"], &rows);
    persist(tag, scale.name(), &points, &meta);
    points
}

/// Runs Fig. 7 (aggressive free-riders, no collusion).
pub fn run(scale: Scale) -> Vec<Point> {
    run_with_mode(
        scale,
        RiderMode::Aggressive,
        "fig07",
        "Fig. 7: completion times with 25% free-riders (large-view + whitewash)",
    )
}
