//! Ablations of T-Chain's design choices (DESIGN.md §4): flow-control
//! `k`, opportunistic seeding, direct-reciprocity preference and piece
//! size. Each is removed/swept in isolation against the same workload.

use crate::output::{persist, print_table, RunMeta};
use crate::scale::Scale;
use crate::scenario::{flash_plan, Proto, RiderMode};
use serde::Serialize;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_metrics::Summary;
use tchain_proto::{FileSpec, SwarmConfig};

/// One ablation row.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Compliant completion time.
    pub completion: Summary,
    /// Mean uplink utilization.
    pub utilization: f64,
    /// Fraction of transactions using direct reciprocity.
    pub direct_fraction: f64,
}

fn run_variant(
    scale: Scale,
    label: &str,
    cfg: TChainConfig,
    spec: FileSpec,
    fr: f64,
    out: &mut Vec<Row>,
    meta: &mut RunMeta,
) {
    let mut times = Vec::new();
    let mut utils = Vec::new();
    let mut direct = 0u64;
    let mut indirect = 0u64;
    for r in 0..scale.runs().min(4) {
        let seed = 0xAB00 | r as u64;
        let plan = flash_plan(scale.standard_swarm() / 2, fr, RiderMode::Aggressive, seed);
        let mut sw = TChainSwarm::new(SwarmConfig::paper(spec), cfg, plan, seed);
        let wall = std::time::Instant::now();
        sw.run_until_done();
        meta.note_run(wall.elapsed().as_secs_f64());
        meta.absorb_metrics(&sw.metrics());
        let ct = sw.completion_times(true);
        if !ct.is_empty() {
            times.push(ct.iter().sum::<f64>() / ct.len() as f64);
        }
        utils.push(sw.base().mean_uplink_utilization());
        let (d, i) = sw.reciprocity_split();
        direct += d;
        indirect += i;
    }
    out.push(Row {
        variant: label.to_string(),
        completion: Summary::of(&times),
        utilization: utils.iter().sum::<f64>() / utils.len().max(1) as f64,
        direct_fraction: direct as f64 / (direct + indirect).max(1) as f64,
    });
}

/// Runs all ablations.
pub fn run(scale: Scale) -> Vec<Row> {
    let spec = Proto::TChain.file_spec(scale.file_mib());
    let base = TChainConfig::default();
    let mut rows = Vec::new();
    let mut meta = RunMeta::default();
    // Flow-control k sweep (§II-D2 fixes k = 2).
    for k in [1u32, 2, 4, 8] {
        run_variant(
            scale,
            &format!("k = {k} (25% free-riders)"),
            TChainConfig { k_pending: k, ..base },
            spec,
            0.25,
            &mut rows,
            &mut meta,
        );
    }
    // Opportunistic seeding off (§II-D3).
    run_variant(scale, "opportunistic seeding ON", base, spec, 0.0, &mut rows, &mut meta);
    run_variant(
        scale,
        "opportunistic seeding OFF",
        TChainConfig { opportunistic_seeding: false, ..base },
        spec,
        0.0,
        &mut rows,
        &mut meta,
    );
    // Direct-reciprocity preference off: pure pay-it-forward.
    run_variant(scale, "direct reciprocity ON", base, spec, 0.0, &mut rows, &mut meta);
    run_variant(
        scale,
        "direct reciprocity OFF",
        TChainConfig { direct_reciprocity: false, ..base },
        spec,
        0.0,
        &mut rows,
        &mut meta,
    );
    // Piece-size sweep (§IV-A uses 64 KB).
    for kib in [32.0, 64.0, 128.0, 256.0] {
        let pieces = (spec.file_size() / (kib * 1024.0)).ceil() as usize;
        let s = FileSpec::custom(pieces, kib * 1024.0, kib * 1024.0);
        run_variant(scale, &format!("piece size {kib:.0} KB"), base, s, 0.0, &mut rows, &mut meta);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{}", r.completion),
                format!("{:.0}%", r.utilization * 100.0),
                format!("{:.0}%", r.direct_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Ablations: T-Chain design choices",
        &["variant", "completion (s)", "uplink", "direct recip."],
        &table,
    );
    persist("ablations", scale.name(), &rows, &meta);
    rows
}
