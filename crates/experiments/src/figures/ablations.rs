//! Ablations of T-Chain's design choices (DESIGN.md §4): flow-control
//! `k`, opportunistic seeding, direct-reciprocity preference and piece
//! size. Each is removed/swept in isolation against the same workload.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, Proto, RiderMode};
use serde::Serialize;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_metrics::Summary;
use tchain_proto::{FileSpec, SwarmConfig};

/// One ablation row.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Variant label.
    pub variant: String,
    /// Compliant completion time.
    pub completion: Summary,
    /// Mean uplink utilization.
    pub utilization: f64,
    /// Fraction of transactions using direct reciprocity.
    pub direct_fraction: f64,
}

/// One ablation variant: a config/file-spec/workload combination whose
/// `runs` repeats become individual runner cells.
struct Variant {
    label: String,
    cfg: TChainConfig,
    spec: FileSpec,
    fr: f64,
}

/// Runs all ablations.
pub fn run(scale: Scale) -> Vec<Row> {
    let spec = Proto::TChain.file_spec(scale.file_mib());
    let base = TChainConfig::default();
    let mut rows = Vec::new();
    let mut meta = RunMeta::default();
    let mut variants = Vec::new();
    // Flow-control k sweep (§II-D2 fixes k = 2).
    for k in [1u32, 2, 4, 8] {
        variants.push(Variant {
            label: format!("k = {k} (25% free-riders)"),
            cfg: TChainConfig { k_pending: k, ..base },
            spec,
            fr: 0.25,
        });
    }
    // Opportunistic seeding off (§II-D3).
    variants.push(Variant {
        label: "opportunistic seeding ON".into(),
        cfg: base,
        spec,
        fr: 0.0,
    });
    variants.push(Variant {
        label: "opportunistic seeding OFF".into(),
        cfg: TChainConfig { opportunistic_seeding: false, ..base },
        spec,
        fr: 0.0,
    });
    // Direct-reciprocity preference off: pure pay-it-forward.
    variants.push(Variant { label: "direct reciprocity ON".into(), cfg: base, spec, fr: 0.0 });
    variants.push(Variant {
        label: "direct reciprocity OFF".into(),
        cfg: TChainConfig { direct_reciprocity: false, ..base },
        spec,
        fr: 0.0,
    });
    // Piece-size sweep (§IV-A uses 64 KB).
    for kib in [32.0, 64.0, 128.0, 256.0] {
        let pieces = (spec.file_size() / (kib * 1024.0)).ceil() as usize;
        variants.push(Variant {
            label: format!("piece size {kib:.0} KB"),
            cfg: base,
            spec: FileSpec::custom(pieces, kib * 1024.0, kib * 1024.0),
            fr: 0.0,
        });
    }
    let runs = scale.runs().min(4);
    let mut cells = Vec::new();
    for vi in 0..variants.len() {
        for r in 0..runs {
            cells.push((vi, 0xAB00 | r as u64));
        }
    }
    let sw = sweep(
        "ablations",
        &cells,
        |&(vi, seed)| (variants[vi].label.clone(), seed),
        |&(vi, seed)| {
            let v = &variants[vi];
            let plan = flash_plan(scale.standard_swarm() / 2, v.fr, RiderMode::Aggressive, seed);
            let mut sw = TChainSwarm::new(SwarmConfig::paper(v.spec), v.cfg, plan, seed);
            let wall = std::time::Instant::now();
            sw.run_until_done();
            let ct = sw.completion_times(true);
            let time =
                (!ct.is_empty()).then(|| ct.iter().sum::<f64>() / ct.len() as f64);
            let util = sw.base().mean_uplink_utilization();
            let (d, i) = sw.reciprocity_split();
            (time, util, d, i, wall.elapsed().as_secs_f64(), sw.metrics())
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for v in &variants {
        let mut times = Vec::new();
        let mut utils = Vec::new();
        let mut direct = 0u64;
        let mut indirect = 0u64;
        for _ in 0..runs {
            let Some((time, util, d, i, wall, metrics)) = outs.next().flatten() else {
                continue;
            };
            meta.note_run(wall);
            meta.absorb_metrics(&metrics);
            times.extend(time);
            utils.push(util);
            direct += d;
            indirect += i;
        }
        rows.push(Row {
            variant: v.label.clone(),
            completion: Summary::of(&times),
            utilization: utils.iter().sum::<f64>() / utils.len().max(1) as f64,
            direct_fraction: direct as f64 / (direct + indirect).max(1) as f64,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{}", r.completion),
                format!("{:.0}%", r.utilization * 100.0),
                format!("{:.0}%", r.direct_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Ablations: T-Chain design choices",
        &["variant", "completion (s)", "uplink", "direct recip."],
        &table,
    );
    persist("ablations", scale.name(), &rows, &meta);
    rows
}
