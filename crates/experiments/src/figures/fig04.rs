//! Fig. 4: T-Chain under (a) file-size and (b) swarm-size sweeps.

use crate::output::{persist, print_table, RunMeta};
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_metrics::Summary;

/// The two sweeps of Fig. 4.
#[derive(Debug, Serialize)]
pub struct Data {
    /// Fig. 4(a): `(file MiB, completion)` at the standard swarm size.
    pub file_sweep: Vec<(f64, Summary)>,
    /// Fig. 4(b): `(swarm size, completion)` at the standard file size.
    pub swarm_sweep: Vec<(usize, Summary)>,
}

/// Runs Fig. 4 and returns the two series.
pub fn run(scale: Scale) -> Data {
    let runs = scale.runs().min(4); // sweeps multiply quickly
    let mut meta = RunMeta::default();
    let mut file_sweep = Vec::new();
    for &mib in &scale.file_sweep_mib() {
        let mut times = Vec::new();
        for r in 0..runs {
            let seed = (mib as u64) << 8 | r as u64;
            let plan = flash_plan(scale.standard_swarm(), 0.0, RiderMode::Aggressive, seed);
            let out =
                run_proto(Proto::TChain, mib, plan, seed, Horizon::CompliantDone, RunOpts::default());
            meta.absorb(&out);
            times.extend(out.mean_compliant());
        }
        file_sweep.push((mib, Summary::of(&times)));
    }
    let mut swarm_sweep = Vec::new();
    for &n in &scale.swarm_sweep() {
        let mut times = Vec::new();
        for r in 0..runs {
            let seed = (n as u64) << 8 | r as u64 | 0xF4;
            let plan = flash_plan(n, 0.0, RiderMode::Aggressive, seed);
            let out = run_proto(
                Proto::TChain,
                scale.file_mib(),
                plan,
                seed,
                Horizon::CompliantDone,
                RunOpts::default(),
            );
            meta.absorb(&out);
            times.extend(out.mean_compliant());
        }
        swarm_sweep.push((n, Summary::of(&times)));
    }
    let rows: Vec<Vec<String>> =
        file_sweep.iter().map(|(m, s)| vec![format!("{m}"), format!("{s}")]).collect();
    print_table("Fig. 4(a): T-Chain completion time vs file size", &["MiB", "completion (s)"], &rows);
    let rows: Vec<Vec<String>> =
        swarm_sweep.iter().map(|(n, s)| vec![format!("{n}"), format!("{s}")]).collect();
    print_table("Fig. 4(b): T-Chain completion time vs swarm size", &["swarm", "completion (s)"], &rows);
    let data = Data { file_sweep, swarm_sweep };
    persist("fig04", scale.name(), &data, &meta);
    data
}
