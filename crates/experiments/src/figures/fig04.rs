//! Fig. 4: T-Chain under (a) file-size and (b) swarm-size sweeps.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_metrics::Summary;

/// The two sweeps of Fig. 4.
#[derive(Debug, Serialize)]
pub struct Data {
    /// Fig. 4(a): `(file MiB, completion)` at the standard swarm size.
    pub file_sweep: Vec<(f64, Summary)>,
    /// Fig. 4(b): `(swarm size, completion)` at the standard file size.
    pub swarm_sweep: Vec<(usize, Summary)>,
}

/// One runner cell of either sweep.
struct Cell {
    mib: f64,
    n: usize,
    seed: u64,
}

/// Runs Fig. 4 and returns the two series.
pub fn run(scale: Scale) -> Data {
    let runs = scale.runs().min(4); // sweeps multiply quickly
    let mut meta = RunMeta::default();
    let mut cells = Vec::new();
    for &mib in &scale.file_sweep_mib() {
        for r in 0..runs {
            let seed = (mib as u64) << 8 | r as u64;
            cells.push(Cell { mib, n: scale.standard_swarm(), seed });
        }
    }
    for &n in &scale.swarm_sweep() {
        for r in 0..runs {
            let seed = (n as u64) << 8 | r as u64 | 0xF4;
            cells.push(Cell { mib: scale.file_mib(), n, seed });
        }
    }
    let sw = sweep(
        "fig04",
        &cells,
        |c| (format!("T-Chain {} MiB n={}", c.mib, c.n), c.seed),
        |c| {
            let plan = flash_plan(c.n, 0.0, RiderMode::Aggressive, c.seed);
            run_proto(Proto::TChain, c.mib, plan, c.seed, Horizon::CompliantDone, RunOpts::default())
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    let mut collect = |meta: &mut RunMeta| {
        let mut times = Vec::new();
        for _ in 0..runs {
            if let Some(out) = outs.next().flatten() {
                meta.absorb(&out);
                times.extend(out.mean_compliant());
            }
        }
        Summary::of(&times)
    };
    let mut file_sweep = Vec::new();
    for &mib in &scale.file_sweep_mib() {
        let s = collect(&mut meta);
        file_sweep.push((mib, s));
    }
    let mut swarm_sweep = Vec::new();
    for &n in &scale.swarm_sweep() {
        let s = collect(&mut meta);
        swarm_sweep.push((n, s));
    }
    let rows: Vec<Vec<String>> =
        file_sweep.iter().map(|(m, s)| vec![format!("{m}"), format!("{s}")]).collect();
    print_table("Fig. 4(a): T-Chain completion time vs file size", &["MiB", "completion (s)"], &rows);
    let rows: Vec<Vec<String>> =
        swarm_sweep.iter().map(|(n, s)| vec![format!("{n}"), format!("{s}")]).collect();
    print_table("Fig. 4(b): T-Chain completion time vs swarm size", &["swarm", "completion (s)"], &rows);
    let data = Data { file_sweep, swarm_sweep };
    persist("fig04", scale.name(), &data, &meta);
    data
}
