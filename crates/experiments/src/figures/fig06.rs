//! Fig. 6: (a) piece differences between neighbor pairs over time (the
//! paper crawled a live BitTorrent swarm; we instrument a simulated one —
//! see DESIGN.md "Substitutions"), and (b) the effect of pre-occupied
//! initial pieces on T-Chain completion time.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto, trace_plan, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_baselines::{Baseline, BaselineConfig, BaselineSwarm};
use tchain_metrics::Summary;
use tchain_proto::{Role, SwarmConfig};
use tchain_sim::SimRng;

/// Fig. 6 data.
#[derive(Debug, Serialize)]
pub struct Data {
    /// Fig. 6(a): `(time, mean piece difference, total pieces)` samples.
    pub piece_differences: Vec<(f64, f64)>,
    /// Total pieces in the measured swarm.
    pub total_pieces: usize,
    /// Fig. 6(b): `(initial fraction, completion)` sweep.
    pub initial_fraction_sweep: Vec<(f64, Summary)>,
}

/// Runs both halves of Fig. 6.
pub fn run(scale: Scale) -> Data {
    // (a) Instrumented BitTorrent swarm under trace arrivals: sample the
    // piece difference across random alive leecher pairs periodically.
    let seed = 66;
    let n = scale.standard_swarm();
    let spec = Proto::Baseline(Baseline::BitTorrent).file_spec(scale.file_mib());
    let mut meta = RunMeta::default();
    let mut crawl = sweep(
        "fig06",
        &[()],
        |_| ("BitTorrent instrumented crawl".to_string(), seed),
        |_| {
            let mut sw = BaselineSwarm::new(
                SwarmConfig::paper(spec),
                BaselineConfig::default(),
                Baseline::BitTorrent,
                trace_plan(n, 0.0, RiderMode::Aggressive, seed),
                seed,
            );
            let wall = std::time::Instant::now();
            let mut sampler = SimRng::new(seed ^ 0xD1FF);
            let mut piece_differences = Vec::new();
            let horizon = match scale {
                Scale::Quick => 1200.0,
                Scale::Paper => 6000.0,
            };
            let step = horizon / 24.0;
            let mut t = step;
            while t <= horizon {
                sw.run_to(t);
                let alive: Vec<_> = sw
                    .base()
                    .peers
                    .iter_alive()
                    .filter(|p| p.role == Role::Leecher)
                    .map(|p| p.id)
                    .collect();
                if alive.len() >= 2 {
                    let mut total = 0usize;
                    let mut count = 0usize;
                    for _ in 0..40 {
                        let (Some(&a), Some(&b)) = (sampler.choose(&alive), sampler.choose(&alive))
                        else {
                            break; // unreachable: `alive` has ≥ 2 entries
                        };
                        if a == b {
                            continue;
                        }
                        total +=
                            sw.base().peers.get(a).have.difference(&sw.base().peers.get(b).have);
                        count += 1;
                    }
                    if count > 0 {
                        piece_differences.push((t, total as f64 / count as f64));
                    }
                }
                t += step;
            }
            (piece_differences, wall.elapsed().as_secs_f64())
        },
    );
    meta.note_failures(&crawl.failures);
    let piece_differences = match crawl.cells.pop().flatten() {
        Some((pd, wall)) => {
            meta.note_run(wall);
            pd
        }
        None => Vec::new(),
    };
    // (b) Pre-occupied initial pieces sweep for T-Chain.
    const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.9];
    let runs = scale.runs().min(4);
    let mut cells = Vec::new();
    for frac in FRACTIONS {
        for r in 0..runs {
            cells.push((frac, 0x6B00 | r as u64));
        }
    }
    let sw = sweep(
        "fig06",
        &cells,
        |&(frac, seed)| (format!("T-Chain initial={frac}"), seed),
        |&(frac, seed)| {
            let plan = flash_plan(scale.standard_swarm(), 0.0, RiderMode::Aggressive, seed);
            run_proto(
                Proto::TChain,
                scale.file_mib(),
                plan,
                seed,
                Horizon::CompliantDone,
                RunOpts { initial_piece_fraction: frac, ..Default::default() },
            )
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    let mut initial_fraction_sweep = Vec::new();
    for frac in FRACTIONS {
        let mut times = Vec::new();
        for _ in 0..runs {
            if let Some(out) = outs.next().flatten() {
                meta.absorb(&out);
                times.extend(out.mean_compliant());
            }
        }
        initial_fraction_sweep.push((frac, Summary::of(&times)));
    }
    let rows: Vec<Vec<String>> = piece_differences
        .iter()
        .map(|(t, d)| vec![format!("{t:.0}"), format!("{d:.0}")])
        .collect();
    print_table(
        "Fig. 6(a): mean piece difference between neighbor pairs (simulated crawl)",
        &["t(s)", "diff pieces"],
        &rows,
    );
    let rows: Vec<Vec<String>> = initial_fraction_sweep
        .iter()
        .map(|(f, s)| vec![format!("{:.0}%", f * 100.0), format!("{s}")])
        .collect();
    print_table(
        "Fig. 6(b): T-Chain completion vs pre-occupied initial pieces",
        &["initial", "completion (s)"],
        &rows,
    );
    let data = Data {
        piece_differences,
        total_pieces: spec.pieces,
        initial_fraction_sweep,
    };
    persist("fig06", scale.name(), &data, &meta);
    data
}
