//! Fig. 8: as Fig. 7, with all T-Chain free-riders colluding (false
//! reception reports). Collusion lets them finish — extremely slowly —
//! while compliant leechers are unaffected.

use crate::figures::fig07::{run_with_mode, Point};
use crate::scale::Scale;
use crate::scenario::RiderMode;

/// Runs Fig. 8 (colluding free-riders).
pub fn run(scale: Scale) -> Vec<Point> {
    run_with_mode(
        scale,
        RiderMode::Colluding,
        "fig08",
        "Fig. 8: completion times with 25% colluding free-riders",
    )
}
