//! Fig. 10: number of active chains over time, tracking active leechers,
//! under (a) a flash crowd and (b) trace arrivals.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, trace_plan, Proto, RiderMode};
use serde::Serialize;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_proto::SwarmConfig;

/// One scenario's chain census.
#[derive(Debug, Serialize)]
pub struct Census {
    /// Scenario label.
    pub scenario: String,
    /// `(time, active chains)`.
    pub chains: Vec<(f64, f64)>,
    /// `(time, alive leechers)`.
    pub leechers: Vec<(f64, f64)>,
}

/// Runs both halves of Fig. 10.
pub fn run(scale: Scale) -> Vec<Census> {
    let spec = Proto::TChain.file_spec(scale.file_mib());
    let mut meta = RunMeta::default();
    // (a) flash crowd run to completion; (b) trace arrivals, fixed horizon.
    let seed = 100;
    let horizon = match scale {
        Scale::Quick => 2_500.0,
        Scale::Paper => 8_000.0,
    };
    let cells = [("flash crowd", seed, None), ("trace", seed + 1, Some(horizon))];
    let sw = sweep(
        "fig10",
        &cells,
        |&(label, seed, _)| (label.to_string(), seed),
        |&(label, seed, stop)| {
            let plan = match stop {
                None => flash_plan(scale.standard_swarm(), 0.0, RiderMode::Aggressive, seed),
                Some(_) => {
                    trace_plan(scale.standard_swarm() * 2, 0.0, RiderMode::Aggressive, seed)
                }
            };
            let mut sw =
                TChainSwarm::new(SwarmConfig::paper(spec), TChainConfig::default(), plan, seed);
            let wall = std::time::Instant::now();
            match stop {
                None => sw.run_until_done(),
                Some(t) => sw.run_to(t),
            }
            let census = Census {
                scenario: label.into(),
                chains: sw.chain_series().downsample(24).iter().collect(),
                leechers: sw.leecher_series().downsample(24).iter().collect(),
            };
            (census, wall.elapsed().as_secs_f64(), sw.metrics())
        },
    );
    meta.note_failures(&sw.failures);
    let mut out = Vec::new();
    for (census, wall, metrics) in sw.cells.into_iter().flatten() {
        meta.note_run(wall);
        meta.absorb_metrics(&metrics);
        out.push(census);
    }
    for c in &out {
        let rows: Vec<Vec<String>> = c
            .chains
            .iter()
            .zip(c.leechers.iter())
            .map(|(ch, le)| {
                vec![format!("{:.0}", ch.0), format!("{:.0}", ch.1), format!("{:.0}", le.1)]
            })
            .collect();
        print_table(
            &format!("Fig. 10 ({}): active chains and leechers over time", c.scenario),
            &["t(s)", "chains", "leechers"],
            &rows,
        );
    }
    persist("fig10", scale.name(), &out, &meta);
    out
}
