//! net_telemetry: swarm telemetry demo and acceptance run over the
//! executable `tchain-net` runtime.
//!
//! Not a paper figure — the PR 7 observability experiment. Runs one
//! flash-crowd swarm three ways at the same seed:
//!
//! 1. telemetry **off** (baseline),
//! 2. telemetry **off** again — the two fingerprints must agree
//!    bit-for-bit (the disabled path stays deterministic),
//! 3. telemetry **on** — the fingerprint must equal the baseline's
//!    (Lamport stamps ride the wire as metadata the fingerprint and
//!    chaos draws never see),
//!
//! then a fourth chaos run with telemetry on to exercise the flight
//! recorder. The telemetry run's per-peer causal rings are written as
//! one JSONL file per peer, merged into a single causally ordered
//! trace (`merged.jsonl` + a Perfetto-loadable `trace.json` with one
//! track per peer and flow arrows), checked for causal consistency
//! (no arrow may point backward in Lamport order), and the swarm
//! aggregate is exposed as a Prometheus text exposition (`.prom`).

use crate::output::{persist, print_table, results_dir, RunMeta};
use crate::scale::Scale;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;
use tchain_net::{run_swarm, SwarmConfig, SwarmReport};
use tchain_obs::{merge_traces, to_causal_chrome_trace, to_jsonl, validate_causal};
use tchain_sim::ChaosPlan;

/// Per-peer telemetry row in the persisted document.
#[derive(Debug, Serialize)]
pub struct PeerRow {
    /// Peer id (0 is the seeder).
    pub peer: u32,
    /// Piece bodies served.
    pub uploads: u64,
    /// Pieces obtained (reciprocations + gifts).
    pub downloads: u64,
    /// Uploads minus downloads.
    pub goodwill: i64,
    /// Median piece round-trip (upload → report), virtual ms.
    pub piece_rtt_p50_ms: Option<u64>,
    /// Median request→key latency (data → key), virtual ms.
    pub key_latency_p50_ms: Option<u64>,
    /// Causal trace events recorded in this peer's ring.
    pub trace_events: usize,
}

/// The persisted document.
#[derive(Debug, Serialize)]
pub struct NetTelemetryDoc {
    /// Master seed of all four runs.
    pub seed: u64,
    /// Peers in the swarm (including the seeder).
    pub peers: u32,
    /// Baseline delivered-frame fingerprint (hex).
    pub fingerprint: String,
    /// Two telemetry-disabled runs agreed bit-for-bit.
    pub disabled_deterministic: bool,
    /// The telemetry-enabled run kept the baseline fingerprint.
    pub telemetry_invisible: bool,
    /// Records in the merged causal trace.
    pub causal_records: usize,
    /// Matched send→receive flow arrows (all strictly forward).
    pub causal_arrows: usize,
    /// Jain fairness index over upload/download ratios.
    pub fairness_index: f64,
    /// Incentive chains opened / mean length / longest.
    pub chains_started: usize,
    /// Mean transactions per chain.
    pub mean_chain_len: f64,
    /// Longest chain observed.
    pub max_chain_len: u32,
    /// Terminations by cause.
    pub terminations: BTreeMap<String, u64>,
    /// Per-peer metric rows.
    pub per_peer: Vec<PeerRow>,
    /// Bytes of Prometheus text exposition written.
    pub prom_bytes: usize,
    /// Flight-recorder captures from the chaos leg.
    pub flight_dumps: usize,
    /// Every acceptance invariant held.
    pub safe: bool,
}

fn write_artifact(dir: &Path, name: &str, body: &str) {
    let path = dir.join(name);
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
    }
}

fn timed_run(cfg: SwarmConfig, meta: &mut RunMeta) -> SwarmReport {
    let t = Instant::now();
    let report = run_swarm(cfg).expect("mesh transport cannot fail");
    meta.note_run(t.elapsed().as_secs_f64());
    report
}

/// Runs the telemetry acceptance at the default seed.
pub fn run(scale: Scale) -> NetTelemetryDoc {
    run_with_seed(scale, 0x7E1E)
}

/// Runs the telemetry acceptance at an explicit seed (CI runs two).
pub fn run_with_seed(scale: Scale, seed: u64) -> NetTelemetryDoc {
    let (peers, pieces, piece_len) = match scale {
        Scale::Quick => (16u32, 24usize, 1024usize),
        Scale::Paper => (24u32, 48usize, 2048usize),
    };
    let base = SwarmConfig {
        peers,
        pieces,
        piece_len,
        seed,
        max_ticks: 40_000,
        trace_capacity: 1 << 15,
        ..SwarmConfig::default()
    };
    let mut meta = RunMeta::default();

    let baseline = timed_run(base.clone(), &mut meta);
    let rerun = timed_run(base.clone(), &mut meta);
    let disabled_deterministic = baseline.fingerprint == rerun.fingerprint
        && baseline.ticks == rerun.ticks
        && baseline.completion_times == rerun.completion_times;

    let traced = timed_run(SwarmConfig { telemetry: true, ..base.clone() }, &mut meta);
    let telemetry_invisible = traced.fingerprint == baseline.fingerprint
        && traced.ticks == baseline.ticks
        && traced.completion_times == baseline.completion_times;

    // Chaos leg: corruption trips quarantines, which trip the recorder.
    let chaotic = timed_run(
        SwarmConfig {
            telemetry: true,
            chaos: ChaosPlan::corrupting(seed ^ 0xF11, 0.05),
            ..base.clone()
        },
        &mut meta,
    );

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    }
    let prefix = format!("net_telemetry.{}", scale.name());

    // Per-peer causal rings → one JSONL each, then the merged trace.
    let rings: Vec<Vec<tchain_obs::TraceRecord>> =
        traced.peer_rings.iter().map(|(_, r)| r.clone()).collect();
    for (id, ring) in &traced.peer_rings {
        write_artifact(&dir, &format!("{prefix}.peer{id}.jsonl"), &to_jsonl(ring));
    }
    let merged = merge_traces(&rings).unwrap_or_default();
    let causal = validate_causal(&merged);
    if let Err(e) = &causal {
        eprintln!("net_telemetry: causal validation FAILED: {e}");
    }
    write_artifact(&dir, &format!("{prefix}.merged.jsonl"), &to_jsonl(&merged));
    write_artifact(&dir, &format!("{prefix}.trace.json"), &to_causal_chrome_trace(&merged));

    let tel = traced.telemetry.as_ref().expect("telemetry was enabled");
    let prom = tel.to_prometheus();
    write_artifact(&dir, &format!("{prefix}.prom"), &prom);
    for (i, dump) in chaotic.flight_dumps.iter().enumerate() {
        write_artifact(&dir, &format!("{prefix}.flight{i}.jsonl"), &dump.to_jsonl());
    }

    let mut registry = tchain_obs::StatsRegistry::new();
    tel.export_stats("net_telemetry", &mut registry);
    meta.absorb_metrics(&registry.snapshot());

    let ring_sizes: BTreeMap<u32, usize> =
        traced.peer_rings.iter().map(|(id, r)| (*id, r.len())).collect();
    let per_peer: Vec<PeerRow> = tel
        .peers
        .iter()
        .map(|p| PeerRow {
            peer: p.peer,
            uploads: p.uploads(),
            downloads: p.downloads(),
            goodwill: p.goodwill,
            piece_rtt_p50_ms: p.piece_rtt.quantile_le(0.5),
            key_latency_p50_ms: p.request_key_latency.quantile_le(0.5),
            trace_events: ring_sizes.get(&p.peer).copied().unwrap_or(0),
        })
        .collect();

    let safe = traced.ok()
        && chaotic.ok()
        && disabled_deterministic
        && telemetry_invisible
        && causal.is_ok()
        && causal.as_ref().map(|&n| n > 0).unwrap_or(false);

    let doc = NetTelemetryDoc {
        seed,
        peers,
        fingerprint: format!("{:016x}", baseline.fingerprint),
        disabled_deterministic,
        telemetry_invisible,
        causal_records: merged.len(),
        causal_arrows: causal.unwrap_or(0),
        fairness_index: tel.fairness_index(),
        chains_started: traced.chains_started,
        mean_chain_len: traced.mean_chain_len,
        max_chain_len: traced.max_chain_len,
        terminations: tel.terminations.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        per_peer,
        prom_bytes: prom.len(),
        flight_dumps: chaotic.flight_dumps.len(),
        safe,
    };

    let rows: Vec<Vec<String>> = doc
        .per_peer
        .iter()
        .map(|p| {
            vec![
                p.peer.to_string(),
                p.uploads.to_string(),
                p.downloads.to_string(),
                p.goodwill.to_string(),
                p.piece_rtt_p50_ms.map_or("-".into(), |v| v.to_string()),
                p.key_latency_p50_ms.map_or("-".into(), |v| v.to_string()),
                p.trace_events.to_string(),
            ]
        })
        .collect();
    print_table(
        "net_telemetry: per-peer metrics (channel mesh, causal tracing on)",
        &["peer", "uploads", "downloads", "goodwill", "rtt p50", "key p50", "events"],
        &rows,
    );
    println!(
        "net_telemetry seed {seed:#x}: fingerprint {} | disabled-deterministic {} | \
         telemetry-invisible {} | {} causal records, {} arrows | J = {:.4} | \
         {} flight dumps | safe = {}",
        doc.fingerprint,
        doc.disabled_deterministic,
        doc.telemetry_invisible,
        doc.causal_records,
        doc.causal_arrows,
        doc.fairness_index,
        doc.flight_dumps,
        doc.safe,
    );
    persist("net_telemetry", scale.name(), &doc, &meta);
    doc
}
