//! Table II: the qualitative comparison of incentive schemes, regenerated
//! from micro-experiments.
//!
//! Each attack row runs a small swarm per protocol and scores the
//! free-riders' *progress ratio* — pieces gained per unit time relative
//! to compliant leechers. `√` (immune) when the ratio is negligible,
//! blank (medium) when attackers are slowed several-fold, `×` when the
//! attack pays. The EigenTrust and Dandelion columns come from the
//! `tchain-baselines` models of those schemes; structural rows
//! (simplicity, TTP reliance) are properties of the designs themselves.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, Proto, RiderMode};
use serde::Serialize;
use tchain_attacks::{FreeRiderConfig, GroupId, PeerPlan, Strategy};
use tchain_baselines::dandelion::CreditServer;
use tchain_baselines::eigentrust::{Actor, EigenTrustModel};
use tchain_baselines::{BaselineConfig, BaselineSwarm};
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_proto::{Role, SwarmConfig};

/// A measured Table II cell.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// `√` / `·` (medium) / `×`.
    pub mark: String,
    /// The measured attacker progress ratio behind the mark.
    pub ratio: f64,
}

/// One Table II row across the protocol columns.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Feature / attack name.
    pub feature: String,
    /// Cells keyed in column order (BT, PropShare, FairTorrent, T-Chain,
    /// EigenTrust, Dandelion).
    pub cells: Vec<Cell>,
}

fn mark(ratio: f64) -> Cell {
    let mark = if ratio < 0.07 {
        "√".to_string()
    } else if ratio < 0.5 {
        "·".to_string()
    } else {
        "×".to_string()
    };
    Cell { mark, ratio }
}

/// Runs one mini-swarm and returns the free-riders' progress ratio —
/// (FR pieces/time) / (compliant pieces/time) — plus the run's wall
/// clock and metric snapshot for the caller's [`RunMeta`].
pub fn progress_ratio(
    proto: Proto,
    fr: FreeRiderConfig,
    colluding: bool,
    seed: u64,
) -> (f64, f64, tchain_obs::MetricMap) {
    let n = 36;
    let mut plan = flash_plan(n, 0.0, RiderMode::Aggressive, seed);
    for i in 0..8usize {
        let strategy = if colluding {
            Strategy::colluding_free_rider(GroupId(0))
        } else {
            Strategy::FreeRider(fr)
        };
        plan.push(PeerPlan { at: 0.6 + i as f64 * 0.01, capacity: 100_000.0, strategy, crash_at: None });
    }
    let spec = proto.file_spec(2.0);
    let horizon = 900.0;
    let wall = std::time::Instant::now();
    let (fr_rate, compliant_rate, metrics) = match proto {
        Proto::TChain => {
            let mut sw = TChainSwarm::new(
                SwarmConfig::paper(spec),
                TChainConfig::default(),
                plan,
                seed,
            );
            sw.run_to(horizon);
            let (f, c) = rates(sw.base(), horizon);
            (f, c, sw.metrics())
        }
        Proto::Baseline(b) => {
            let mut sw = BaselineSwarm::new(
                SwarmConfig::paper(spec),
                BaselineConfig::default(),
                b,
                plan,
                seed,
            );
            sw.run_to(horizon);
            let (f, c) = rates(sw.base(), horizon);
            (f, c, sw.metrics())
        }
    };
    let ratio = if compliant_rate <= 0.0 { 0.0 } else { fr_rate / compliant_rate };
    (ratio, wall.elapsed().as_secs_f64(), metrics)
}

fn rates(base: &tchain_proto::SwarmBase, horizon: f64) -> (f64, f64) {
    let mut fr_pieces = 0.0;
    let mut fr_time = 0.0;
    let mut c_pieces = 0.0;
    let mut c_time = 0.0;
    for p in base.peers.iter() {
        if p.role != Role::Leecher {
            continue;
        }
        let res = p.residence(horizon).max(1.0);
        if p.compliant {
            c_pieces += p.pieces_down as f64;
            c_time += res;
        } else {
            fr_pieces += p.pieces_down as f64;
            fr_time += res;
        }
    }
    (fr_pieces / fr_time.max(1.0), c_pieces / c_time.max(1.0))
}

/// EigenTrust column: attacker service ratio under the given behaviours.
fn eigentrust_ratio(attacker: Actor, rounds: usize) -> f64 {
    let mut actors = vec![Actor::Honest; 12];
    actors.extend(std::iter::repeat_n(attacker, 4));
    let mut m = EigenTrustModel::new(actors, 3);
    for _ in 0..rounds {
        m.round();
    }
    let honest: f64 = (0..12).map(|i| m.received(i)).sum::<f64>() / 12.0;
    let att: f64 = (12..16).map(|i| m.received(i)).sum::<f64>() / 4.0;
    if honest <= 0.0 {
        0.0
    } else {
        att / honest
    }
}

/// Dandelion column: whitewash farming ratio (credits farmed per identity
/// cycle relative to an honest peer's earnings).
fn dandelion_whitewash_ratio() -> f64 {
    let mut s = CreditServer::new(5);
    let honest = s.register();
    let mut farmed = 0.0;
    for _ in 0..10 {
        let fresh = s.register();
        while s.settle(honest, fresh) {
            farmed += 1.0;
        }
    }
    // An honest peer earns service one-for-one; the farmer got 50 pieces
    // for zero uploads.
    farmed / 50.0
}

/// Regenerates Table II.
pub fn run(scale: Scale) -> Vec<Row> {
    let plain = FreeRiderConfig::default();
    let large_view = FreeRiderConfig { large_view: true, ..Default::default() };
    let whitewash = FreeRiderConfig { large_view: true, whitewash: true, ..Default::default() };
    let protos = Proto::main_four();
    let mut rows = Vec::new();
    let mut meta = RunMeta::default();

    let attack_rows: [(&str, FreeRiderConfig, bool); 4] = [
        ("Exploiting Altruism / Cheating", plain, false),
        ("Large-view-exploit", large_view, false),
        ("Sybil or Whitewashing", whitewash, false),
        ("Collusion (false reports)", whitewash, true),
    ];
    let mut jobs = Vec::new();
    for &(name, cfg, colluding) in &attack_rows {
        for &p in protos.iter() {
            jobs.push((name, p, cfg, colluding));
        }
    }
    let sw = sweep(
        "table2",
        &jobs,
        |&(name, p, _, _)| (format!("{name} vs {}", p.name()), 0x72),
        |&(_, p, cfg, colluding)| progress_ratio(p, cfg, colluding, 0x72),
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for (name, _, _) in attack_rows {
        let mut cells: Vec<Cell> = Vec::new();
        for _ in protos.iter() {
            // A panicked mini-swarm scores as NaN (rendered bare, like the
            // structural rows) rather than sinking the whole table.
            let ratio = match outs.next().flatten() {
                Some((ratio, wall, metrics)) => {
                    meta.note_run(wall);
                    meta.absorb_metrics(&metrics);
                    ratio
                }
                None => f64::NAN,
            };
            cells.push(mark(ratio));
        }
        // EigenTrust / Dandelion model columns.
        let et = match name {
            "Collusion (false reports)" => eigentrust_ratio(Actor::Colluder, 20),
            _ => eigentrust_ratio(Actor::FreeRider, 20),
        };
        cells.push(mark(et));
        let dd = match name {
            "Sybil or Whitewashing" => dandelion_whitewash_ratio(),
            _ => 0.0, // credit accounting blocks plain free-riding
        };
        cells.push(mark(dd));
        rows.push(Row { feature: name.to_string(), cells });
    }
    // Structural rows: properties of the designs (no run needed).
    let structural = [
        ("Simplicity & Scalability (no TTP)", ["√", "√", "√", "√", "×", "×"]),
        ("Flexible Newcomer Bootstrapping", ["×", "×", "√", "√", "×", "×"]),
        ("Asymmetric Interest", ["×", "·", "·", "√", "√", "√"]),
    ];
    for (name, marks) in structural {
        rows.push(Row {
            feature: name.to_string(),
            cells: marks.iter().map(|m| Cell { mark: m.to_string(), ratio: f64::NAN }).collect(),
        });
    }
    let header = ["feature", "Original BT", "PropShare", "FairTorrent", "T-Chain", "EigenTrust", "Dandelion"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut v = vec![r.feature.clone()];
            v.extend(r.cells.iter().map(|c| {
                if c.ratio.is_nan() {
                    c.mark.clone()
                } else {
                    format!("{} ({:.2})", c.mark, c.ratio)
                }
            }));
            v
        })
        .collect();
    print_table(
        "Table II: incentive-scheme comparison (√ immune, · medium, × vulnerable; measured attacker/compliant progress ratio in parentheses)",
        &header,
        &table,
    );
    persist("table2", scale.name(), &rows, &meta);
    rows
}
