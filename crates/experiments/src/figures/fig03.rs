//! Fig. 3: completion time and uplink utilization vs swarm size, no
//! free-riders, all four protocols plus the fluid optimum.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_metrics::Summary;
use tchain_workloads::CapacityClasses;

/// One data point of Fig. 3.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Protocol legend name.
    pub proto: String,
    /// Swarm size.
    pub swarm: usize,
    /// Mean ± CI completion time of compliant leechers (Fig. 3(a)).
    pub completion: Summary,
    /// Mean ± CI uplink utilization (Fig. 3(b)).
    pub utilization: Summary,
}

/// One runner cell: a single `(protocol, swarm size, repeat)` simulation.
struct Cell {
    proto: Proto,
    n: usize,
    seed: u64,
}

/// Runs Fig. 3 and returns its points (also printed and saved).
pub fn run(scale: Scale) -> Vec<Point> {
    let mut points = Vec::new();
    let mut meta = RunMeta::default();
    let optimal =
        Proto::TChain.file_spec(scale.file_mib()).file_size()
            / CapacityClasses::default().mean_bytes_per_sec();
    let mut cells = Vec::new();
    for proto in Proto::main_four() {
        for &n in &scale.swarm_sizes() {
            for r in 0..scale.runs() {
                cells.push(Cell { proto, n, seed: (n as u64) << 8 | r as u64 });
            }
        }
    }
    let file_mib = scale.file_mib();
    let sw = sweep(
        "fig03",
        &cells,
        |c| (format!("{} n={}", c.proto.name(), c.n), c.seed),
        |c| {
            let plan = flash_plan(c.n, 0.0, RiderMode::Aggressive, c.seed);
            run_proto(c.proto, file_mib, plan, c.seed, Horizon::CompliantDone, RunOpts::default())
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for proto in Proto::main_four() {
        for &n in &scale.swarm_sizes() {
            let mut times = Vec::new();
            let mut utils = Vec::new();
            for _ in 0..scale.runs() {
                if let Some(out) = outs.next().flatten() {
                    meta.absorb(&out);
                    if let Some(m) = out.mean_compliant() {
                        times.push(m);
                    }
                    utils.push(out.uplink_utilization);
                }
            }
            points.push(Point {
                proto: proto.name().to_string(),
                swarm: n,
                completion: Summary::of(&times),
                utilization: Summary::of(&utils),
            });
        }
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.proto.clone(),
                p.swarm.to_string(),
                format!("{}", p.completion),
                format!("{:.1}%", p.utilization.mean * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 3: avg download completion time (s) and uplink utilization vs swarm size",
        &["protocol", "swarm", "completion", "uplink util"],
        &rows,
    );
    println!("Optimal (fluid bound file/mean-upload): {optimal:.1} s");
    persist("fig03", scale.name(), &points, &meta);
    points
}
