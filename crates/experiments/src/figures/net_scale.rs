//! net_scale: the indexed scheduler and churn layer at N ∈ {16, 64, 256}.
//!
//! Not a paper figure — the PR 8 scale experiment. Sweeps swarm size
//! with and without a membership churn schedule (staggered joins, a
//! flash crowd, a voluntary §II-B4 departure wave, all proportional to
//! N), audits every frame, and reruns each point at the same seed to
//! pin bit-identity. At N = 64 the sweep additionally replays the
//! no-churn point under the legacy linear-scan scheduler and demands a
//! byte-identical frame-stream fingerprint — the in-tree parity oracle
//! for the timer-wheel rewrite — and records the wall-clock speedup of
//! the indexed path at every N as the scan cost grows quadratic.

use crate::output::{persist, print_table, RunMeta};
use crate::scale::Scale;
use serde::Serialize;
use std::time::Instant;
use tchain_net::{run_swarm, SchedMode, SwarmConfig};
use tchain_sim::ChurnPlan;

/// One (N, churn) cell of the sweep.
#[derive(Debug, Serialize)]
pub struct ScalePoint {
    /// Scenario label.
    pub scenario: String,
    /// Peers at boot (churn arrivals on top).
    pub peers: u32,
    /// Whether a churn schedule ran.
    pub churn: bool,
    /// Mid-run arrivals from the churn schedule.
    pub churn_joins: u64,
    /// Voluntary §II-B4 departures from the churn schedule.
    pub churn_departs: u64,
    /// Compliant leechers that completed / in the scenario.
    pub completed_compliant: u32,
    /// Compliant leechers in the scenario (boot + arrivals − departed).
    pub total_compliant: u32,
    /// Every held piece matched the source bytes.
    pub plaintext_ok: bool,
    /// Unreciprocated key releases (must stay 0).
    pub violations: usize,
    /// Every survivor's §II-D2 ledger matched its unreported txns.
    pub ledger_ok: bool,
    /// Key releases over the §II-B4 escrow path.
    pub escrow_transfers: u64,
    /// Ticks executed.
    pub ticks: u64,
    /// Wall-clock seconds for the audited indexed run.
    pub wall_s: f64,
    /// Harness ticks per wall-clock second (indexed scheduler).
    pub ticks_per_s: f64,
    /// Order-sensitive digest of every delivered frame (hex).
    pub fingerprint: String,
    /// Same-seed rerun produced a bit-identical fingerprint.
    pub deterministic: bool,
    /// Legacy linear-scan wall-clock seconds (parity cells only).
    pub legacy_wall_s: Option<f64>,
    /// Indexed fingerprint == legacy fingerprint (parity cells only).
    pub legacy_parity: Option<bool>,
    /// Completion + plaintexts + ledger + zero violations + determinism
    /// (+ parity where measured).
    pub safe: bool,
}

/// The persisted document.
#[derive(Debug, Serialize)]
pub struct NetScaleDoc {
    /// Master seed of the sweep.
    pub seed: u64,
    /// Audited (N, churn) cells.
    pub points: Vec<ScalePoint>,
    /// Every cell preserved every safety property.
    pub all_safe: bool,
}

/// A churn schedule proportional to swarm size: N/8 staggered joins
/// early, an N/8 flash crowd mid-run, and 15 % of the compliant peers
/// departing voluntarily once the swarm is warm.
fn churn_for(peers: u32) -> ChurnPlan {
    let wave = (peers / 8).max(2);
    ChurnPlan::none()
        .with_joins(10.0, wave, 2.0)
        .with_flash_crowd(30.0, wave)
        .with_departures(55.0, 0.15)
}

fn scale_point(
    peers: u32,
    churn: bool,
    with_legacy: bool,
    base: &SwarmConfig,
    meta: &mut RunMeta,
) -> ScalePoint {
    let cfg = SwarmConfig {
        peers,
        churn: if churn { churn_for(peers) } else { ChurnPlan::none() },
        ..base.clone()
    };
    let t = Instant::now();
    let report = run_swarm(cfg.clone()).expect("mesh transport cannot fail");
    let wall_s = t.elapsed().as_secs_f64();
    let rerun = run_swarm(cfg.clone()).expect("mesh transport cannot fail");
    meta.note_run(wall_s);
    let deterministic = report.fingerprint == rerun.fingerprint
        && report.ticks == rerun.ticks
        && report.completion_times == rerun.completion_times;

    let (legacy_wall_s, legacy_parity) = if with_legacy {
        let t = Instant::now();
        let legacy = run_swarm(SwarmConfig { sched: SchedMode::LegacyLinear, ..cfg })
            .expect("mesh transport cannot fail");
        let lw = t.elapsed().as_secs_f64();
        meta.note_run(lw);
        (Some(lw), Some(legacy.fingerprint == report.fingerprint && legacy.ticks == report.ticks))
    } else {
        (None, None)
    };

    let safe = report.completed_compliant == report.total_compliant
        && report.plaintext_ok
        && report.violations.is_empty()
        && report.ledger_ok
        && deterministic
        && legacy_parity.unwrap_or(true);
    ScalePoint {
        scenario: format!("n{peers}{}", if churn { "-churn" } else { "" }),
        peers,
        churn,
        churn_joins: report.churn_joins,
        churn_departs: report.churn_departs,
        completed_compliant: report.completed_compliant,
        total_compliant: report.total_compliant,
        plaintext_ok: report.plaintext_ok,
        violations: report.violations.len(),
        ledger_ok: report.ledger_ok,
        escrow_transfers: report.escrow_transfers,
        ticks: report.ticks,
        wall_s,
        ticks_per_s: report.ticks as f64 / wall_s.max(1e-9),
        fingerprint: format!("{:016x}", report.fingerprint),
        deterministic,
        legacy_wall_s,
        legacy_parity,
        safe,
    }
}

/// Runs the scale sweep at the default seed.
pub fn run(scale: Scale) -> NetScaleDoc {
    run_with_seed(scale, 0x5CA1E)
}

/// Runs the scale sweep at an explicit seed (the CI job uses two so a
/// fluke seed cannot hide a scheduler divergence).
pub fn run_with_seed(scale: Scale, seed: u64) -> NetScaleDoc {
    let (pieces, piece_len, sizes): (usize, usize, &[u32]) = match scale {
        Scale::Quick => (8, 256, &[16, 64, 256]),
        Scale::Paper => (16, 1024, &[16, 64, 256]),
    };
    let base = SwarmConfig {
        pieces,
        piece_len,
        seed,
        max_ticks: 40_000,
        trace_capacity: 0,
        ..SwarmConfig::default()
    };
    let mut meta = RunMeta::default();
    let mut points = Vec::new();
    for &n in sizes {
        // Legacy parity oracle at N = 64: big enough that a scheduling
        // divergence cannot hide, cheap enough to run the O(N·ticks)
        // scan twice per sweep. (N = 256 legacy runs live in BENCH_net.)
        let with_legacy = n == 64;
        points.push(scale_point(n, false, with_legacy, &base, &mut meta));
        points.push(scale_point(n, true, false, &base, &mut meta));
    }
    let all_safe = points.iter().all(|p| p.safe);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                format!("{}/{}", p.completed_compliant, p.total_compliant),
                format!("{}+{}−{}", p.peers, p.churn_joins, p.churn_departs),
                p.violations.to_string(),
                if p.ledger_ok { "ok" } else { "DRIFT" }.to_string(),
                p.escrow_transfers.to_string(),
                format!("{:.0}", p.ticks_per_s),
                match p.legacy_parity {
                    Some(true) => "bit-equal".to_string(),
                    Some(false) => "DIVERGED".to_string(),
                    None => "-".to_string(),
                },
                if p.deterministic { "yes" } else { "NO" }.to_string(),
                if p.safe { "ok" } else { "UNSAFE" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "net_scale: swarm size × churn (indexed scheduler, audited)",
        &[
            "scenario", "compliant", "peers±churn", "violations", "ledger", "escrow",
            "ticks/s", "legacy", "deterministic", "safety",
        ],
        &rows,
    );
    println!("net_scale seed {seed:#x}: {} cells, all_safe = {all_safe}", points.len());
    let doc = NetScaleDoc { seed, points, all_safe };
    persist("net_scale", scale.name(), &doc, &meta);
    doc
}
