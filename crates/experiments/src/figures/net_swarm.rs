//! net_swarm: the executable `tchain-net` runtime, end to end.
//!
//! Not a paper figure — the PR 4 system experiment. Boots in-process
//! swarms of real [`tchain_net::PeerRuntime`]s on the deterministic
//! channel mesh (genuine ChaCha20 ciphertexts, framed wire messages,
//! §II-B key releases audited frame-by-frame) across four scenarios:
//! clean flash crowd, free-riding, lossy control plane, and
//! depart-on-complete (§II-B4 escrow). Then cross-checks the net
//! runtime against the fluid simulator on a shared scenario shape.
//!
//! **Cross-check tolerance** (also asserted in `tests/net_swarm.rs`):
//! the two stacks share protocol semantics, not clocks or piece
//! scheduling, so exact-match is only demanded where the incentive
//! argument demands it — every compliant leecher completes (rate 1.0 in
//! both), free-riders starve (0 completions in both), and zero
//! unreciprocated key releases on the wire. Chain statistics are
//! shape-level: the net/fluid mean-chain-length ratio must land in
//! [0.25, 4.0]; dimensionless, seeds averaged, documented in DESIGN.md
//! §8.

use crate::output::{persist, print_table, RunMeta};
use crate::scale::Scale;
use serde::Serialize;
use std::time::Instant;
use tchain_attacks::PeerPlan;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_net::{run_swarm, NetConfig, SwarmConfig as NetSwarmConfig};
use tchain_proto::{FileSpec, SwarmConfig};
use tchain_sim::{kbps, FaultPlan};

/// One net-runtime scenario's audited outcome.
#[derive(Debug, Serialize)]
pub struct NetPoint {
    /// Scenario label.
    pub scenario: String,
    /// Peers including the seeder.
    pub peers: u32,
    /// Free-riding leechers.
    pub free_riders: u32,
    /// Pieces in the file.
    pub pieces: usize,
    /// Compliant leechers that completed / total.
    pub completed_compliant: u32,
    /// Compliant leechers in the scenario.
    pub total_compliant: u32,
    /// Free-riders that assembled the whole file (must stay 0).
    pub completed_free_riders: u32,
    /// Every decrypted piece matched the source bytes.
    pub plaintext_ok: bool,
    /// Unreciprocated key releases seen by the observer (must stay 0).
    pub violations: usize,
    /// Chains opened on the wire.
    pub chains_started: usize,
    /// Mean uploads per chain.
    pub mean_chain_len: f64,
    /// Longest chain.
    pub max_chain_len: u32,
    /// §II-B3 unencrypted terminations.
    pub chains_terminated: usize,
    /// Encrypted uploads / gifts / reports / key releases on the wire.
    pub uploads: u64,
    /// §II-B3 gift uploads.
    pub gifts: u64,
    /// Reception reports.
    pub reports: u64,
    /// Key releases.
    pub key_releases: u64,
    /// Key releases over the §II-B4 escrow path.
    pub escrow_transfers: u64,
    /// Transport-clock seconds to drain.
    pub elapsed: f64,
    /// Order-sensitive digest of every delivered frame (hex).
    pub fingerprint: String,
}

/// Net-vs-fluid comparison on the shared scenario shape.
#[derive(Debug, Serialize)]
pub struct CrossCheck {
    /// Seed shared by both runs.
    pub seed: u64,
    /// Net: completed compliant / total compliant.
    pub net_compliant_rate: f64,
    /// Fluid: completed compliant / total compliant.
    pub sim_compliant_rate: f64,
    /// Net free-riders that finished (starvation check).
    pub net_free_riders_done: u32,
    /// Fluid free-riders that finished.
    pub sim_free_riders_done: usize,
    /// Net mean uploads per chain.
    pub net_mean_chain_len: f64,
    /// Fluid mean transactions per ended chain.
    pub sim_mean_chain_len: f64,
    /// net/sim mean-chain-length ratio (tolerance band [0.25, 4.0]).
    pub chain_len_ratio: f64,
    /// All hard invariants matched and the ratio is in band.
    pub within_tolerance: bool,
}

/// The persisted document: scenarios plus the cross-check.
#[derive(Debug, Serialize)]
pub struct NetSwarmDoc {
    /// Audited net-runtime scenarios.
    pub scenarios: Vec<NetPoint>,
    /// Net-vs-fluid cross-check.
    pub cross_check: CrossCheck,
}

fn net_point(name: &str, cfg: NetSwarmConfig, meta: &mut RunMeta) -> NetPoint {
    let t = Instant::now();
    let report = run_swarm(cfg).expect("mesh transport cannot fail");
    meta.note_run(t.elapsed().as_secs_f64());
    NetPoint {
        scenario: name.to_string(),
        peers: report.peers,
        free_riders: report.free_riders,
        pieces: report.pieces,
        completed_compliant: report.completed_compliant,
        total_compliant: report.total_compliant,
        completed_free_riders: report.completed_free_riders,
        plaintext_ok: report.plaintext_ok,
        violations: report.violations.len(),
        chains_started: report.chains_started,
        mean_chain_len: report.mean_chain_len,
        max_chain_len: report.max_chain_len,
        chains_terminated: report.chains_terminated,
        uploads: report.uploads,
        gifts: report.gifts,
        reports: report.reports,
        key_releases: report.key_releases,
        escrow_transfers: report.escrow_transfers,
        elapsed: report.elapsed,
        fingerprint: format!("{:016x}", report.fingerprint),
    }
}

/// Fluid-simulator leg of the cross-check: a flash crowd with the same
/// compliant/free-rider split and piece count, driven to compliant
/// completion. Returns (compliant rate, free-riders done, mean chain
/// length over ended chains).
fn fluid_leg(compliant: usize, free_riders: usize, pieces: usize, seed: u64) -> (f64, usize, f64) {
    let file = FileSpec::custom(pieces, 64.0 * 1024.0, 64.0 * 1024.0);
    let mut plan: Vec<PeerPlan> = (0..compliant)
        .map(|i| PeerPlan::compliant(0.4 + i as f64 * 0.05, kbps(800.0)))
        .collect();
    for i in 0..free_riders {
        plan.push(PeerPlan::free_rider(0.5 + i as f64 * 0.05, kbps(800.0)));
    }
    let mut sw = TChainSwarm::new(SwarmConfig::paper(file), TChainConfig::default(), plan, seed);
    sw.run_until_done();
    let rate = sw.completion_times(true).len() as f64 / compliant as f64;
    let fr_done =
        sw.base().peers.iter().filter(|p| !p.compliant && p.done_time.is_some()).count();
    (rate, fr_done, sw.chain_stats().mean_length())
}

/// Builds the cross-check from the free-rider net scenario and the
/// matching fluid run.
fn cross_check(net: &NetPoint, seed: u64, meta: &mut RunMeta) -> CrossCheck {
    let t = Instant::now();
    let (sim_rate, sim_fr_done, sim_mcl) = fluid_leg(
        net.total_compliant as usize,
        net.free_riders as usize,
        net.pieces,
        seed,
    );
    meta.note_run(t.elapsed().as_secs_f64());
    let net_rate = if net.total_compliant == 0 {
        1.0
    } else {
        f64::from(net.completed_compliant) / f64::from(net.total_compliant)
    };
    let ratio = if sim_mcl > 0.0 { net.mean_chain_len / sim_mcl } else { 0.0 };
    let within = net_rate == 1.0
        && sim_rate == 1.0
        && net.completed_free_riders == 0
        && sim_fr_done == 0
        && net.violations == 0
        && (0.25..=4.0).contains(&ratio);
    CrossCheck {
        seed,
        net_compliant_rate: net_rate,
        sim_compliant_rate: sim_rate,
        net_free_riders_done: net.completed_free_riders,
        sim_free_riders_done: sim_fr_done,
        net_mean_chain_len: net.mean_chain_len,
        sim_mean_chain_len: sim_mcl,
        chain_len_ratio: ratio,
        within_tolerance: within,
    }
}

/// Runs the net-swarm experiment and the sim-vs-net cross-check.
pub fn run(scale: Scale) -> NetSwarmDoc {
    let (peers, pieces, piece_len) = match scale {
        Scale::Quick => (16u32, 24usize, 1024usize),
        Scale::Paper => (48u32, 64usize, 4096usize),
    };
    let seed = 0x4E75;
    let base = NetSwarmConfig {
        peers,
        pieces,
        piece_len,
        seed,
        ..NetSwarmConfig::default()
    };
    let mut meta = RunMeta::default();
    let scenarios = vec![
        net_point("clean", base.clone(), &mut meta),
        net_point(
            "free-rider",
            base.clone().with_free_riders(2),
            &mut meta,
        ),
        net_point(
            "lossy-10pct",
            NetSwarmConfig {
                plan: FaultPlan::lossy(seed ^ 0x1055, 0.10),
                ..base.clone()
            },
            &mut meta,
        ),
        net_point(
            "departure-escrow",
            NetSwarmConfig {
                net: NetConfig { depart_on_complete: true, ..NetConfig::default() },
                ..base.clone()
            },
            &mut meta,
        ),
    ];
    let cross = cross_check(&scenarios[1], seed, &mut meta);
    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                format!("{}", p.peers),
                format!("{}/{}", p.completed_compliant, p.total_compliant),
                p.completed_free_riders.to_string(),
                if p.plaintext_ok { "ok" } else { "MISMATCH" }.to_string(),
                p.violations.to_string(),
                format!("{:.2}", p.mean_chain_len),
                p.chains_terminated.to_string(),
                p.escrow_transfers.to_string(),
                format!("{:.0}", p.elapsed),
            ]
        })
        .collect();
    print_table(
        "net_swarm: executable peer runtime (channel mesh, audited key releases)",
        &[
            "scenario", "peers", "compliant", "FR done", "plaintext", "violations",
            "chain len", "gifts-end", "escrows", "t (s)",
        ],
        &rows,
    );
    println!(
        "cross-check vs fluid sim: compliant {:.2}/{:.2}, free-riders {}/{}, \
         chain-length ratio {:.2} (band 0.25–4.0) -> {}",
        cross.net_compliant_rate,
        cross.sim_compliant_rate,
        cross.net_free_riders_done,
        cross.sim_free_riders_done,
        cross.chain_len_ratio,
        if cross.within_tolerance { "within tolerance" } else { "OUT OF TOLERANCE" }
    );
    let doc = NetSwarmDoc { scenarios, cross_check: cross };
    persist("net_swarm", scale.name(), &doc, &meta);
    doc
}
