//! One module per paper figure/table; each exposes `run(Scale)` printing
//! the paper-style rows and persisting JSON under `results/`.

pub mod ablations;
pub mod analysis_sec3;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod loss_sweep;
pub mod net_attacks;
pub mod net_chaos;
pub mod net_explore;
pub mod net_scale;
pub mod net_swarm;
pub mod net_telemetry;
pub mod overhead;
pub mod streaming;
pub mod table2;
pub mod trace;
