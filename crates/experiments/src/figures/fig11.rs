//! Fig. 11: (a) cumulative chains created by the seeder vs by leechers
//! (opportunistic seeding) in a flash crowd; (b) the opportunistic
//! fraction vs free-rider share under trace arrivals.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, trace_plan, Proto, RiderMode};
use serde::Serialize;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_proto::SwarmConfig;

/// Fig. 11 data.
#[derive(Debug, Serialize)]
pub struct Data {
    /// Fig. 11(a): `(time, cumulative seeder chains, cumulative leecher
    /// chains)`.
    pub cumulative: Vec<(f64, u64, u64)>,
    /// Fig. 11(b): `(free-rider %, opportunistic fraction)`.
    pub opportunistic_by_fr: Vec<(u32, f64)>,
}

/// Runs both halves of Fig. 11.
pub fn run(scale: Scale) -> Data {
    let spec = Proto::TChain.file_spec(scale.file_mib());
    // (a) manual stepping to sample cumulative origins.
    let seed = 110;
    let mut meta = RunMeta::default();
    let mut stepping = sweep(
        "fig11",
        &[()],
        |_| ("chains by origin (flash crowd)".to_string(), seed),
        |_| {
            let mut sw = TChainSwarm::new(
                SwarmConfig::paper(spec),
                TChainConfig::default(),
                flash_plan(scale.standard_swarm(), 0.0, RiderMode::Aggressive, seed),
                seed,
            );
            let wall = std::time::Instant::now();
            let mut cumulative = Vec::new();
            let mut next_sample = 0.0;
            loop {
                sw.step();
                let now = sw.base().clock.now();
                if now >= next_sample {
                    let s = sw.chain_stats();
                    cumulative.push((now, s.created_by_seeder, s.created_by_leechers));
                    next_sample += 25.0;
                }
                let done = sw.base().peers.iter().all(|p| {
                    p.role != tchain_proto::Role::Leecher || p.done_time.is_some() || !p.alive()
                });
                if (done && now > 20.0) || now > 20_000.0 {
                    break;
                }
            }
            (cumulative, wall.elapsed().as_secs_f64(), sw.metrics())
        },
    );
    meta.note_failures(&stepping.failures);
    let cumulative = match stepping.cells.pop().flatten() {
        Some((cumulative, wall, metrics)) => {
            meta.note_run(wall);
            meta.absorb_metrics(&metrics);
            cumulative
        }
        None => Vec::new(),
    };
    // (b) trace with free-rider sweep.
    let cells: Vec<(u32, u64)> =
        [0u32, 25, 50].iter().map(|&p| (p, 0xB0 | p as u64)).collect();
    let sw = sweep(
        "fig11",
        &cells,
        |&(fr_pct, seed)| (format!("opportunistic {fr_pct}% FR trace"), seed),
        |&(fr_pct, seed)| {
            let n = scale.standard_swarm();
            let mut sw = TChainSwarm::new(
                SwarmConfig::paper(spec),
                TChainConfig::default(),
                trace_plan(n, fr_pct as f64 / 100.0, RiderMode::Aggressive, seed),
                seed,
            );
            let horizon = match scale {
                Scale::Quick => 2_000.0,
                Scale::Paper => 8_000.0,
            };
            let wall = std::time::Instant::now();
            sw.run_to(horizon);
            (
                (fr_pct, sw.chain_stats().opportunistic_fraction()),
                wall.elapsed().as_secs_f64(),
                sw.metrics(),
            )
        },
    );
    meta.note_failures(&sw.failures);
    let mut opportunistic_by_fr = Vec::new();
    for (point, wall, metrics) in sw.cells.into_iter().flatten() {
        meta.note_run(wall);
        meta.absorb_metrics(&metrics);
        opportunistic_by_fr.push(point);
    }
    let rows: Vec<Vec<String>> = cumulative
        .iter()
        .step_by((cumulative.len() / 20).max(1))
        .map(|(t, s, l)| vec![format!("{t:.0}"), s.to_string(), l.to_string()])
        .collect();
    print_table(
        "Fig. 11(a): cumulative chains by origin (flash crowd)",
        &["t(s)", "by seeder", "by leechers"],
        &rows,
    );
    let rows: Vec<Vec<String>> = opportunistic_by_fr
        .iter()
        .map(|(p, f)| vec![format!("{p}%"), format!("{:.2}", f)])
        .collect();
    print_table(
        "Fig. 11(b): fraction of chains from opportunistic seeding vs free-rider share (trace)",
        &["free-riders", "opportunistic fraction"],
        &rows,
    );
    let data = Data { cumulative, opportunistic_by_fr };
    persist("fig11", scale.name(), &data, &meta);
    data
}
