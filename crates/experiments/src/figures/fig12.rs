//! Fig. 12: fairness-factor CDFs without and with 25 % free-riders.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{run_proto, trace_plan, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_metrics::Cdf;

/// One protocol's fairness CDF under one free-rider share.
#[derive(Debug, Serialize)]
pub struct Curve {
    /// Protocol legend name.
    pub proto: String,
    /// Free-rider percentage (0 or 25).
    pub fr_pct: u32,
    /// Deciles of the fairness factor (q10..q100).
    pub deciles: Vec<f64>,
    /// Fraction of leechers whose factor exceeds 1.25 (taking notably
    /// more than they give — the Fig. 12(b) divergence).
    pub over_125: f64,
}

/// Runs Fig. 12.
pub fn run(scale: Scale) -> Vec<Curve> {
    let (measure, _) = scale.trace_completions();
    let pop = scale.fairness_population();
    let horizon = match scale {
        Scale::Quick => 20_000.0,
        Scale::Paper => 100_000.0,
    };
    let mut curves = Vec::new();
    let mut meta = RunMeta::default();
    const FR_PCTS: [u32; 2] = [0, 25];
    let runs = scale.runs().min(3);
    let mut cells = Vec::new();
    for fr_pct in FR_PCTS {
        for proto in Proto::main_four() {
            for r in 0..runs {
                cells.push((proto, fr_pct, (fr_pct as u64) << 8 | r as u64 | 0xC0));
            }
        }
    }
    let sw = sweep(
        "fig12",
        &cells,
        |&(proto, fr_pct, seed)| (format!("{} fairness {fr_pct}% FR", proto.name()), seed),
        |&(proto, fr_pct, seed)| {
            let frac = fr_pct as f64 / 100.0;
            let arrivals = ((measure as f64 * 1.3) / (1.0 - frac).max(0.2)).ceil() as usize;
            let plan = trace_plan(arrivals, frac, RiderMode::Aggressive, seed);
            run_proto(
                proto,
                scale.trace_file_mib(),
                plan,
                seed,
                Horizon::CompliantCount(measure, horizon),
                RunOpts::default(),
            )
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for fr_pct in FR_PCTS {
        for proto in Proto::main_four() {
            let mut factors = Vec::new();
            for _ in 0..runs {
                let Some(out) = outs.next().flatten() else {
                    continue;
                };
                meta.absorb(&out);
                // Last `pop` finished compliant leechers (steady state).
                let skip = out.fairness.len().saturating_sub(pop);
                factors.extend(out.fairness.iter().copied().skip(skip));
            }
            let cdf = Cdf::new(factors);
            let deciles: Vec<f64> =
                (1..=10).map(|d| cdf.quantile(d as f64 / 10.0)).collect();
            curves.push(Curve {
                proto: proto.name().to_string(),
                fr_pct,
                over_125: 1.0 - cdf.at(1.25),
                deciles,
            });
        }
    }
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            vec![
                c.proto.clone(),
                format!("{}%", c.fr_pct),
                format!("{:.2}", c.deciles[4]), // median
                format!("{:.2}", c.deciles[8]), // p90
                format!("{:.0}%", c.over_125 * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig. 12: fairness factor (downloaded/uploaded) of compliant leechers",
        &["protocol", "free-riders", "median", "p90", ">1.25"],
        &rows,
    );
    persist("fig12", scale.name(), &curves, &meta);
    curves
}
