//! §III-A4/§III-B analytical tables: bootstrapping trajectories,
//! proposition checks and the collusion probability.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use serde::Serialize;
use tchain_analysis::bootstrap::{trajectory, BootstrapParams, BootstrapState, PieceDistribution};
use tchain_analysis::collusion::{ps_exact, ps_monte_carlo, ps_paper};
use tchain_analysis::propositions::{prop31_condition, prop32_condition};

/// Analytical results bundle.
#[derive(Debug, Serialize)]
pub struct Data {
    /// `(t, BT un-bootstrapped fraction, T-Chain fraction)`.
    pub trajectories: Vec<(usize, f64, f64)>,
    /// ω′ and ω″ for M = 100.
    pub omegas: (f64, f64),
    /// Proposition III.1 holds in the flash-crowd example.
    pub prop31: bool,
    /// Proposition III.2 holds when Kω″ > δ.
    pub prop32: bool,
    /// `(N, m, b, paper Ps, exact Ps, Monte-Carlo Ps)` rows.
    pub collusion: Vec<(usize, usize, usize, f64, f64, f64)>,
}

/// Evaluates the §III models and prints their tables.
pub fn run(scale: Scale) -> Data {
    let mut meta = RunMeta::default();
    let mut cell = sweep(
        "analysis",
        &[()],
        |_| ("§III analytical models".to_string(), 42),
        |_| {
            let wall = std::time::Instant::now();
            let d = PieceDistribution::uniform(100);
            let p = BootstrapParams::default();
            let s0 = BootstrapState { x: 300.0, y: 0.0, n: 600.0 };
            let bt = trajectory(s0, &p, None, 30);
            let tc = trajectory(s0, &p, Some(&d), 30);
            let trajectories: Vec<(usize, f64, f64)> =
                (0..=30).step_by(3).map(|t| (t, bt[t], tc[t])).collect();
            let omegas = (d.omega_prime(), d.omega_double_prime());
            let prop31 = prop31_condition(
                BootstrapState { x: 100.0, y: 200.0, n: 600.0 },
                300.0,
                600.0,
                &p,
                &d,
            );
            let k = (p.delta / omegas.1).ceil() + 1.0;
            let p_big_k = BootstrapParams { k_chains: k, ..p };
            let prop32 = prop32_condition(600.0, 0.2, 0.3, &p_big_k, &d);
            let mut collusion = Vec::new();
            for (n, m, b) in [(1000usize, 10usize, 50usize), (1000, 50, 50), (1000, 250, 50)] {
                collusion.push((
                    n,
                    m,
                    b,
                    ps_paper(n, m, b),
                    ps_exact(n, m, b),
                    ps_monte_carlo(n, m, b, 100_000, 42),
                ));
            }
            let data = Data { trajectories, omegas, prop31, prop32, collusion };
            (data, k, wall.elapsed().as_secs_f64())
        },
    );
    meta.note_failures(&cell.failures);
    let (data, k) = match cell.cells.pop().flatten() {
        Some((data, k, wall)) => {
            meta.note_run(wall);
            (data, k)
        }
        None => (
            Data {
                trajectories: Vec::new(),
                omegas: (0.0, 0.0),
                prop31: false,
                prop32: false,
                collusion: Vec::new(),
            },
            0.0,
        ),
    };
    let rows: Vec<Vec<String>> = data
        .trajectories
        .iter()
        .map(|(t, b, c)| vec![t.to_string(), format!("{b:.3}"), format!("{c:.3}")])
        .collect();
    print_table(
        "§III-B: un-bootstrapped fraction over timeslots (model)",
        &["t", "BitTorrent", "T-Chain"],
        &rows,
    );
    println!("ω' = {:.3}, ω'' = {:.4} (M = 100)", data.omegas.0, data.omegas.1);
    println!("Proposition III.1 example holds: {}", data.prop31);
    println!("Proposition III.2 (Kω''>δ with K = {k}): {}", data.prop32);
    let rows: Vec<Vec<String>> = data
        .collusion
        .iter()
        .map(|(n, m, b, pp, pe, pm)| {
            vec![
                format!("{n}"),
                format!("{m}"),
                format!("{b}"),
                format!("{pp:.2e}"),
                format!("{pe:.2e}"),
                format!("{pm:.2e}"),
            ]
        })
        .collect();
    print_table(
        "§III-A4: collusion success probability",
        &["N", "m", "b", "paper", "exact", "monte-carlo"],
        &rows,
    );
    persist("analysis", scale.name(), &data, &meta);
    data
}
