//! §III-C overhead accounting, with the cipher throughput *measured* on
//! this machine (same code path as the `crypto` criterion bench).

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use serde::Serialize;
use tchain_analysis::EncryptionOverhead;
use tchain_crypto::Keyring;

/// Measured overhead summary.
#[derive(Debug, Serialize)]
pub struct Data {
    /// Measured ChaCha20 throughput, bytes/second.
    pub cipher_bytes_per_sec: f64,
    /// Encryption+decryption overhead fraction for a 1 GB file at 8 Mbps
    /// (the paper's §III-C1 scenario; paper: < 1.2 %).
    pub encryption_overhead: f64,
    /// Key-storage overhead fraction for 1 GB / 128 KB pieces / 256-bit
    /// keys (paper: ~0.02 %).
    pub space_overhead: f64,
    /// Chain latency: piece-upload slots for a 100-transaction chain
    /// (paper §III-C2: n + 2).
    pub chain_slots_100: u64,
}

/// Measures the cipher and prints the §III-C table.
pub fn run(scale: Scale) -> Data {
    let mut meta = RunMeta::default();
    let mut cell = sweep(
        "overhead",
        &[()],
        |_| ("cipher throughput measurement".to_string(), 0),
        |_| {
            let wall = std::time::Instant::now();
            let mut ring = Keyring::new(1);
            let (_, key) = ring.mint();
            let mut buf = vec![0u8; 4 * 1024 * 1024];
            // Warm-up + measure.
            key.apply(&mut buf);
            let start = std::time::Instant::now();
            let reps = 8;
            for _ in 0..reps {
                key.apply(&mut buf);
            }
            let secs = start.elapsed().as_secs_f64();
            let throughput = (reps * buf.len()) as f64 / secs;
            let enc = EncryptionOverhead::from_throughput(throughput);
            let gb = 1024.0 * 1024.0 * 1024.0;
            let data = Data {
                cipher_bytes_per_sec: throughput,
                encryption_overhead: enc.overhead_fraction(gb, 1_000_000.0),
                space_overhead: tchain_analysis::overhead::space_overhead_fraction(
                    gb,
                    128.0 * 1024.0,
                    32.0,
                ),
                chain_slots_100: tchain_analysis::overhead::chain_completion_slots(100),
            };
            (data, wall.elapsed().as_secs_f64())
        },
    );
    meta.note_failures(&cell.failures);
    let data = match cell.cells.pop().flatten() {
        Some((data, wall)) => {
            meta.note_run(wall);
            data
        }
        None => Data {
            cipher_bytes_per_sec: 0.0,
            encryption_overhead: 0.0,
            space_overhead: 0.0,
            chain_slots_100: 0,
        },
    };
    print_table(
        "§III-C overheads (measured cipher)",
        &["metric", "value", "paper"],
        &[
            vec![
                "cipher throughput".into(),
                format!("{:.0} MB/s", data.cipher_bytes_per_sec / 1e6),
                "179 MB/s (0.715 ms / 128 KB)".into(),
            ],
            vec![
                "encryption overhead (1 GB @ 8 Mbps)".into(),
                format!("{:.2}%", data.encryption_overhead * 100.0),
                "< 1.2%".into(),
            ],
            vec![
                "key storage overhead".into(),
                format!("{:.3}%", data.space_overhead * 100.0),
                "~0.02%".into(),
            ],
            vec![
                "chain latency (100 txns)".into(),
                format!("{} piece slots", data.chain_slots_100),
                "n + 2".into(),
            ],
        ],
    );
    persist("overhead", scale.name(), &data, &meta);
    data
}
