//! net_chaos: byzantine chaos against the executable `tchain-net`
//! runtime.
//!
//! Not a paper figure — the PR 6 robustness experiment. Sweeps frame
//! corruption from 0 to 10 %, a mixed byzantine plan (corruption,
//! duplication, reordering, mid-stream resets), and crash-restart of a
//! quarter of the compliant leechers, each over the in-process channel
//! mesh with real ChaCha20 ciphertexts on the wire. Every scenario is
//! audited frame-by-frame and must preserve the T-Chain safety
//! properties: all compliant leechers assemble byte-identical files and
//! zero key releases travel without a reciprocation behind them. Each
//! scenario is also run twice at the same seed and the frame-stream
//! fingerprints compared — chaos injection must stay deterministic.

use crate::output::{persist, print_table, RunMeta};
use crate::scale::Scale;
use serde::Serialize;
use std::time::Instant;
use tchain_net::{run_swarm, SwarmConfig};
use tchain_sim::ChaosPlan;

/// One chaos scenario's audited outcome.
#[derive(Debug, Serialize)]
pub struct ChaosPoint {
    /// Scenario label.
    pub scenario: String,
    /// Probability a frame is corrupted/duplicated/reordered/reset.
    pub chaos_rate: f64,
    /// Fraction of compliant leechers crash-restarted (0 when none).
    pub crash_fraction: f64,
    /// Peers including the seeder.
    pub peers: u32,
    /// Compliant leechers that completed.
    pub completed_compliant: u32,
    /// Compliant leechers in the scenario.
    pub total_compliant: u32,
    /// Every held piece matched the source bytes.
    pub plaintext_ok: bool,
    /// Unreciprocated key releases (must stay 0).
    pub violations: usize,
    /// Injections the chaos layer performed.
    pub chaos_injects: u64,
    /// Frames/streams receivers rejected as malformed or reset.
    pub frame_rejects: u64,
    /// Quarantines imposed by the strike policy.
    pub quarantines: u64,
    /// Abrupt crashes executed / checkpoint rejoins completed.
    pub crashes: u64,
    /// Checkpoint rejoins completed.
    pub rejoins: u64,
    /// Key releases over the §II-B4 escrow path.
    pub escrow_transfers: u64,
    /// Transport-clock seconds to drain.
    pub elapsed: f64,
    /// Ticks executed.
    pub ticks: u64,
    /// Order-sensitive digest of every delivered frame (hex).
    pub fingerprint: String,
    /// Same-seed rerun produced a bit-identical fingerprint.
    pub deterministic: bool,
    /// Completion + plaintexts + zero violations + determinism.
    pub safe: bool,
}

/// The persisted document.
#[derive(Debug, Serialize)]
pub struct NetChaosDoc {
    /// Master seed of the sweep.
    pub seed: u64,
    /// Audited chaos scenarios.
    pub points: Vec<ChaosPoint>,
    /// Every scenario preserved every safety property.
    pub all_safe: bool,
}

fn chaos_point(
    name: &str,
    chaos_rate: f64,
    crash_fraction: f64,
    cfg: SwarmConfig,
    meta: &mut RunMeta,
) -> ChaosPoint {
    let t = Instant::now();
    let report = run_swarm(cfg.clone()).expect("mesh transport cannot fail");
    let rerun = run_swarm(cfg).expect("mesh transport cannot fail");
    meta.note_run(t.elapsed().as_secs_f64());
    let deterministic = report.fingerprint == rerun.fingerprint
        && report.ticks == rerun.ticks
        && report.chaos_injects == rerun.chaos_injects;
    let safe = report.completed_compliant == report.total_compliant
        && report.plaintext_ok
        && report.violations.is_empty()
        && deterministic;
    ChaosPoint {
        scenario: name.to_string(),
        chaos_rate,
        crash_fraction,
        peers: report.peers,
        completed_compliant: report.completed_compliant,
        total_compliant: report.total_compliant,
        plaintext_ok: report.plaintext_ok,
        violations: report.violations.len(),
        chaos_injects: report.chaos_injects,
        frame_rejects: report.frame_rejects,
        quarantines: report.quarantines,
        crashes: report.crashes,
        rejoins: report.rejoins,
        escrow_transfers: report.escrow_transfers,
        elapsed: report.elapsed,
        ticks: report.ticks,
        fingerprint: format!("{:016x}", report.fingerprint),
        deterministic,
        safe,
    }
}

/// Runs the chaos sweep at the default seed.
pub fn run(scale: Scale) -> NetChaosDoc {
    run_with_seed(scale, 0xC405)
}

/// Runs the chaos sweep at an explicit seed (the CI acceptance job runs
/// two different seeds so a fluke seed cannot hide a safety violation).
pub fn run_with_seed(scale: Scale, seed: u64) -> NetChaosDoc {
    let (peers, pieces, piece_len) = match scale {
        Scale::Quick => (10u32, 24usize, 1024usize),
        Scale::Paper => (20u32, 48usize, 2048usize),
    };
    let base = SwarmConfig {
        peers,
        pieces,
        piece_len,
        seed,
        max_ticks: 40_000,
        ..SwarmConfig::default()
    };
    let mut meta = RunMeta::default();
    let mut points = Vec::new();
    for (i, rate) in [0.0, 0.02, 0.05, 0.10].into_iter().enumerate() {
        points.push(chaos_point(
            &format!("corrupt-{}pct", (rate * 100.0) as u32),
            rate,
            0.0,
            SwarmConfig {
                chaos: ChaosPlan::corrupting(seed ^ (0xC0 + i as u64), rate),
                ..base.clone()
            },
            &mut meta,
        ));
    }
    points.push(chaos_point(
        "byzantine-mix-8pct",
        0.08,
        0.0,
        SwarmConfig { chaos: ChaosPlan::byzantine(seed ^ 0xB12A, 0.08), ..base.clone() },
        &mut meta,
    ));
    points.push(chaos_point(
        "crash-restart-25pct",
        0.02,
        0.25,
        SwarmConfig {
            chaos: ChaosPlan::corrupting(seed ^ 0xC4A5, 0.02)
                .with_crash_restart(8.0, 0.25, 6.0),
            ..base.clone()
        },
        &mut meta,
    ));
    let all_safe = points.iter().all(|p| p.safe);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                format!("{}/{}", p.completed_compliant, p.total_compliant),
                if p.plaintext_ok { "ok" } else { "MISMATCH" }.to_string(),
                p.violations.to_string(),
                p.chaos_injects.to_string(),
                p.frame_rejects.to_string(),
                p.quarantines.to_string(),
                format!("{}/{}", p.rejoins, p.crashes),
                if p.deterministic { "yes" } else { "NO" }.to_string(),
                if p.safe { "ok" } else { "UNSAFE" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "net_chaos: byzantine injection + crash-restart (channel mesh, audited)",
        &[
            "scenario", "compliant", "plaintext", "violations", "injects", "rejects",
            "quarantines", "rejoin/crash", "deterministic", "safety",
        ],
        &rows,
    );
    println!(
        "net_chaos seed {seed:#x}: {} scenarios, all_safe = {all_safe}",
        points.len()
    );
    let doc = NetChaosDoc { seed, points, all_safe };
    persist("net_chaos", scale.name(), &doc, &meta);
    doc
}
