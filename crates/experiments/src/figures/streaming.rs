//! Streaming extension (§VI future work): T-Chain with windowed-rarest
//! piece selection, judged by playback metrics.
//!
//! The paper closes by naming streaming as the first future application.
//! This experiment runs the same swarm under the paper's Local-Rarest-
//! First and under a sliding playback window, then simulates playback
//! (constant piece rate after a startup buffer) over each watched
//! leecher's completion log: startup delay, rebuffering events and
//! stalled time.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, Proto, RiderMode};
use serde::Serialize;
use tchain_core::{PieceSelection, TChainConfig, TChainSwarm};
use tchain_metrics::Summary;
use tchain_proto::{PieceId, SwarmConfig};
use tchain_sim::NodeId;

/// Playback simulation of one leecher's completion log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Playback {
    /// Seconds from join until the startup buffer filled in order.
    pub startup_delay: f64,
    /// Number of mid-stream stalls.
    pub rebuffer_events: u32,
    /// Total stalled seconds after playback started.
    pub rebuffer_time: f64,
}

/// Simulates playback: `buffer` pieces must be available in order before
/// play starts; afterwards one piece is consumed every `piece_duration`
/// seconds, stalling whenever the next piece has not arrived.
pub fn simulate_playback(
    completions: &[(PieceId, f64)],
    pieces: usize,
    buffer: usize,
    piece_duration: f64,
    join_time: f64,
) -> Option<Playback> {
    if completions.len() < pieces {
        return None;
    }
    let mut arrival = vec![f64::INFINITY; pieces];
    for &(p, t) in completions {
        let i = p.index();
        if i < pieces {
            arrival[i] = arrival[i].min(t);
        }
    }
    // In-order availability time of piece i = max arrival over 0..=i.
    let mut inorder = arrival.clone();
    for i in 1..pieces {
        inorder[i] = inorder[i].max(inorder[i - 1]);
    }
    let start = inorder[buffer.min(pieces - 1)];
    if !start.is_finite() {
        return None;
    }
    let mut clock = start;
    let mut rebuffer_events = 0;
    let mut rebuffer_time = 0.0;
    for &ready in inorder.iter().take(pieces).skip(buffer + 1) {
        clock += piece_duration;
        if ready > clock {
            rebuffer_events += 1;
            rebuffer_time += ready - clock;
            clock = ready;
        }
    }
    Some(Playback { startup_delay: start - join_time, rebuffer_events, rebuffer_time })
}

/// One policy's aggregated playback results.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Policy label.
    pub policy: String,
    /// Startup delay.
    pub startup: Summary,
    /// Rebuffer events per viewer.
    pub rebuffers: Summary,
    /// Stalled seconds per viewer.
    pub stalled: Summary,
    /// Download completion time (the price paid for in-order arrival).
    pub completion: Summary,
}

/// Runs the streaming comparison.
pub fn run(scale: Scale) -> Vec<Row> {
    let n = scale.standard_swarm() / 2;
    let spec = Proto::TChain.file_spec(scale.file_mib());
    // Playback consumes the file at ~70% of the mean download rate, with
    // a 16-piece startup buffer.
    let piece_duration = spec.piece_size / (0.7 * 100_000.0);
    let buffer = 16usize.min(spec.pieces / 4).max(1);
    let policies = [
        ("LRF (paper)", PieceSelection::Rarest),
        ("window = 32", PieceSelection::Streaming { window: 32 }),
        ("window = 8", PieceSelection::Streaming { window: 8 }),
    ];
    let mut rows = Vec::new();
    let mut meta = RunMeta::default();
    let runs = scale.runs().min(3);
    let mut cells = Vec::new();
    for (label, policy) in policies {
        for r in 0..runs {
            cells.push((label, policy, 0x57 | (r as u64) << 8));
        }
    }
    let sw = sweep(
        "streaming",
        &cells,
        |&(label, _, seed)| (label.to_string(), seed),
        |&(_, policy, seed)| {
            let plan = flash_plan(n, 0.0, RiderMode::Aggressive, seed);
            let cfg = TChainConfig { piece_selection: policy, ..Default::default() };
            let mut sw = TChainSwarm::new(SwarmConfig::paper(spec), cfg, plan, seed);
            // Watch a sample of viewers (every 6th leecher).
            let viewers: Vec<NodeId> = (1..=n as u32).step_by(6).map(NodeId).collect();
            for &v in &viewers {
                sw.telemetry_mut().watch(v);
            }
            let wall = std::time::Instant::now();
            sw.run_until_done();
            let completion: Vec<f64> = sw.completion_times(true);
            let mut playbacks = Vec::new();
            for &v in &viewers {
                let Some(tl) = sw.telemetry().timeline(v) else { continue };
                let join = sw.base().peers.get(v).join_time;
                if let Some(pb) =
                    simulate_playback(&tl.completions, spec.pieces, buffer, piece_duration, join)
                {
                    playbacks.push(pb);
                }
            }
            (playbacks, completion, wall.elapsed().as_secs_f64(), sw.metrics())
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for (label, _) in policies {
        let mut startup = Vec::new();
        let mut rebuf = Vec::new();
        let mut stalled = Vec::new();
        let mut completion = Vec::new();
        for _ in 0..runs {
            let Some((playbacks, ct, wall, metrics)) = outs.next().flatten() else {
                continue;
            };
            meta.note_run(wall);
            meta.absorb_metrics(&metrics);
            completion.extend(ct);
            for pb in playbacks {
                startup.push(pb.startup_delay);
                rebuf.push(pb.rebuffer_events as f64);
                stalled.push(pb.rebuffer_time);
            }
        }
        rows.push(Row {
            policy: label.to_string(),
            startup: Summary::of(&startup),
            rebuffers: Summary::of(&rebuf),
            stalled: Summary::of(&stalled),
            completion: Summary::of(&completion),
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{}", r.startup),
                format!("{:.1}", r.rebuffers.mean),
                format!("{:.1}", r.stalled.mean),
                format!("{}", r.completion),
            ]
        })
        .collect();
    print_table(
        "Streaming extension (§VI): playback under LRF vs windowed-rarest",
        &["policy", "startup (s)", "rebuffers", "stalled (s)", "download (s)"],
        &table,
    );
    persist("streaming", scale.name(), &rows, &meta);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn playback_of_instant_download_never_stalls() {
        let completions: Vec<(PieceId, f64)> =
            (0..10).map(|i| (PieceId(i), 1.0 + i as f64 * 0.01)).collect();
        let pb = simulate_playback(&completions, 10, 2, 10.0, 0.0).unwrap();
        assert_eq!(pb.rebuffer_events, 0);
        assert_eq!(pb.rebuffer_time, 0.0);
        assert!((pb.startup_delay - 1.02).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_arrival_stalls_playback() {
        // Piece 5 arrives very late; a fast consumer must stall on it.
        let mut completions: Vec<(PieceId, f64)> =
            (0..10).map(|i| (PieceId(i), i as f64)).collect();
        completions[5].1 = 100.0;
        let pb = simulate_playback(&completions, 10, 1, 0.5, 0.0).unwrap();
        assert!(pb.rebuffer_events >= 1);
        assert!(pb.rebuffer_time > 50.0);
    }

    #[test]
    fn incomplete_download_yields_none() {
        let completions = vec![(PieceId(0), 1.0)];
        assert!(simulate_playback(&completions, 10, 2, 1.0, 0.0).is_none());
    }
}
