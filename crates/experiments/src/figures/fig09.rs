//! Fig. 9: trace-driven arrivals, free-rider fraction 0–50 % — compliant
//! completion time per protocol (steady state: first K completions minus
//! a warm-up prefix).

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{run_proto, trace_plan, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_metrics::Summary;

/// One Fig. 9 point.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Protocol legend name.
    pub proto: String,
    /// Free-rider percentage.
    pub fr_pct: u32,
    /// Steady-state compliant completion time.
    pub compliant: Summary,
}

/// Runs Fig. 9.
pub fn run(scale: Scale) -> Vec<Point> {
    let (measure, exclude) = scale.trace_completions();
    let horizon = match scale {
        Scale::Quick => 20_000.0,
        Scale::Paper => 100_000.0,
    };
    let mut points = Vec::new();
    let mut meta = RunMeta::default();
    const FR_PCTS: [u32; 4] = [0, 10, 25, 50];
    let runs = scale.runs().min(3);
    let mut cells = Vec::new();
    for proto in Proto::main_four() {
        for fr_pct in FR_PCTS {
            for r in 0..runs {
                cells.push((proto, fr_pct, (fr_pct as u64) << 8 | r as u64 | 0x90));
            }
        }
    }
    let sw = sweep(
        "fig09",
        &cells,
        |&(proto, fr_pct, seed)| (format!("{} {fr_pct}% FR trace", proto.name()), seed),
        |&(proto, fr_pct, seed)| {
            let frac = fr_pct as f64 / 100.0;
            // Enough arrivals that `measure` compliant leechers can finish
            // despite the free-rider share.
            let arrivals = ((measure as f64 * 1.3) / (1.0 - frac).max(0.2)).ceil() as usize;
            let plan = trace_plan(arrivals, frac, RiderMode::Aggressive, seed);
            run_proto(
                proto,
                scale.trace_file_mib(),
                plan,
                seed,
                Horizon::CompliantCount(measure, horizon),
                RunOpts::default(),
            )
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for proto in Proto::main_four() {
        for fr_pct in FR_PCTS {
            let mut times = Vec::new();
            for _ in 0..runs {
                let Some(out) = outs.next().flatten() else {
                    continue;
                };
                meta.absorb(&out);
                let steady: Vec<f64> = out
                    .compliant_times
                    .iter()
                    .copied()
                    .skip(exclude)
                    .take(measure.saturating_sub(exclude))
                    .collect();
                if !steady.is_empty() {
                    times.push(steady.iter().sum::<f64>() / steady.len() as f64);
                }
            }
            points.push(Point {
                proto: proto.name().to_string(),
                fr_pct,
                compliant: Summary::of(&times),
            });
        }
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![p.proto.clone(), format!("{}%", p.fr_pct), format!("{}", p.compliant)])
        .collect();
    print_table(
        "Fig. 9: steady-state compliant completion time vs free-rider share (trace arrivals)",
        &["protocol", "free-riders", "completion (s)"],
        &rows,
    );
    persist("fig09", scale.name(), &points, &meta);
    points
}
