//! Trace demo: one small flash-crowd T-Chain run with event tracing and
//! phase profiling on.
//!
//! Not a paper figure — the observability showcase. Writes three
//! artifacts under `results/`:
//!
//! - `trace.<scale>.jsonl` — the structured event log, one JSON record
//!   per line (see DESIGN.md "Observability" for the taxonomy);
//! - `trace.<scale>.trace.json` — the same events as a Chrome
//!   `trace_event` document, loadable in Perfetto / `chrome://tracing`;
//! - `trace.<scale>.json` — the run summary with the per-phase profile
//!   and the unified metric snapshot.

use crate::output::{persist, print_table, results_dir, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts, RunOutcome};
use serde::Serialize;
use tchain_obs::{to_chrome_trace, to_jsonl};

/// Event-ring capacity for the demo: comfortably above what the small
/// swarm emits, so nothing is overwritten and the JSONL log is complete.
pub const RING_CAPACITY: usize = 1 << 16;

/// Run summary persisted as `results/trace.<scale>.json`.
#[derive(Debug, Serialize)]
pub struct Data {
    /// Leechers in the traced swarm.
    pub swarm: u64,
    /// Events captured in the ring (after any overwrite).
    pub events_recorded: u64,
    /// High-water mark of the event ring.
    pub peak_event_depth: u64,
    /// Simulated seconds covered by the trace.
    pub sim_time: f64,
}

/// Runs the traced flash crowd and writes the trace artifacts.
pub fn run(scale: Scale) -> RunOutcome {
    let n = (scale.standard_swarm() / 4).max(12);
    let seed = 0x7ACE;
    let mut meta = RunMeta::default();
    let mut cell = sweep(
        "trace",
        &[()],
        |_| (format!("traced flash crowd n={n}"), seed),
        |_| {
            let plan = flash_plan(n, 0.25, RiderMode::Aggressive, seed);
            run_proto(
                Proto::TChain,
                scale.file_mib().min(2.0),
                plan,
                seed,
                Horizon::CompliantDone,
                RunOpts { trace_capacity: Some(RING_CAPACITY), profile: true, ..Default::default() },
            )
        },
    );
    meta.note_failures(&cell.failures);
    let out = cell.cells.pop().flatten().unwrap_or_default();
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    }
    for (suffix, body) in [
        ("jsonl", to_jsonl(&out.trace_records)),
        ("trace.json", to_chrome_trace(&out.trace_records)),
    ] {
        let path = dir.join(format!("trace.{}.{suffix}", scale.name()));
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: failed to write {}: {e}", path.display()),
        }
    }
    print!("{}", out.phases.render_table());
    let rows: Vec<Vec<String>> = out
        .metrics
        .iter()
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    print_table("trace run: unified metric snapshot", &["metric", "value"], &rows);
    meta.absorb(&out);
    let data = Data {
        swarm: n as u64,
        events_recorded: out.trace_records.len() as u64,
        peak_event_depth: out.peak_event_depth as u64,
        sim_time: out.sim_time,
    };
    persist("trace", scale.name(), &data, &meta);
    out
}
