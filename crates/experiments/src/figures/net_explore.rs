//! net_explore: PCT schedule exploration over the executable
//! `tchain-net` runtime.
//!
//! Not a paper figure — the PR 10 correctness-tooling experiment. For
//! every scenario in the explore grid (chaos × churn × attack at
//! search-friendly sizes) it runs a budgeted PCT interleaving search:
//! randomized per-peer priorities with depth-bounded change points
//! drive the harness through adversarial run orders, and every run is
//! audited against the full oracle set (key-release legality, §II-D2
//! ledger conservation, plaintext integrity, escrow-backed completion,
//! quarantine evidence). A failing schedule is delta-debug-shrunk to a
//! minimal witness and dumped under `results/` for replay.
//!
//! Each scenario also proves replayability: one sampled schedule is
//! re-run twice from its recording and all three fingerprints must be
//! bit-identical. Under `RUSTFLAGS="--cfg tchain_canary"` the binary
//! flips into drill mode: the seeded `restore()` ledger mutation must
//! be *found* in the crash scenario and shrunk to ≤ 50 choices —
//! proving the searcher has teeth, not just green lights.

use crate::output::{persist, print_table, RunMeta};
use crate::scale::Scale;
use serde::Serialize;
use std::time::Instant;
use tchain_net::explore::{
    canary_armed, explore, run_with_plan, scenario_config, scenarios, ExploreConfig,
};
use tchain_obs::OracleKind;
use tchain_sim::ExplorePlan;

/// Witnesses at or below this size count as "shrunk" for the canary
/// drill (the acceptance bound; real shrinks land far lower).
pub const SHRUNK_WITNESS_MAX: usize = 50;

/// One scenario's search outcome.
#[derive(Debug, Serialize)]
pub struct ExplorePoint {
    /// Scenario grid name.
    pub scenario: String,
    /// PCT runs executed (stops early at the first failure).
    pub runs: u32,
    /// PCT run budget for the scenario.
    pub budget: u32,
    /// Scheduling decision points searched across all runs.
    pub decisions: u64,
    /// An oracle failed somewhere in the budget.
    pub violation: bool,
    /// Failed oracles of the shrunk witness (`pass` when clean).
    pub oracles: String,
    /// Recorded choices before shrinking (when a failure was found).
    pub original_len: Option<usize>,
    /// Choices in the shrunk witness.
    pub witness_len: Option<usize>,
    /// Replay runs the shrinker spent.
    pub shrink_runs: Option<u32>,
    /// Witness file dumped under `results/`.
    pub witness_file: Option<String>,
    /// Record → replay → replay kept one bit-identical fingerprint.
    pub replay_identical: bool,
    /// Wall seconds the scenario's search took.
    pub wall_s: f64,
    /// This build's expectation held (clean search normally; found +
    /// shrunk ledger bug for the crash scenario under the canary).
    pub safe: bool,
}

/// The persisted document.
#[derive(Debug, Serialize)]
pub struct NetExploreDoc {
    /// Master seed of the sweep (swarm seeds and search seeds fork
    /// from it).
    pub seed: u64,
    /// Whether this build carries the `tchain_canary` mutation.
    pub canary: bool,
    /// PCT depth used throughout.
    pub depth: u32,
    /// Per-scenario PCT run budget.
    pub budget: u32,
    /// Scenario outcomes.
    pub points: Vec<ExplorePoint>,
    /// Every scenario met this build's expectation.
    pub all_safe: bool,
}

/// SplitMix64, for forking per-scenario search seeds from the master.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn explore_point(
    scenario: &str,
    seed: u64,
    index: u64,
    cfg: &ExploreConfig,
    scale: Scale,
    meta: &mut RunMeta,
) -> ExplorePoint {
    let base = scenario_config(scenario, seed).expect("grid scenario");
    let search_seed = splitmix64(seed ^ (index << 8));
    let t = Instant::now();
    let out = explore(scenario, &base, search_seed, cfg);

    // Replayability proof: sample one fresh perturbed run, then replay
    // its recorded schedule twice; all three fingerprints must agree.
    let probe = ExplorePlan::Pct {
        seed: splitmix64(search_seed ^ 0xF1D0),
        depth: cfg.depth,
        est_steps: cfg.est_steps,
    };
    let recorded = run_with_plan(&base, &probe);
    let sched = recorded.schedule.clone().unwrap_or_default();
    let replay_a = run_with_plan(&base, &ExplorePlan::Replay(sched.clone()));
    let replay_b = run_with_plan(&base, &ExplorePlan::Replay(sched));
    let replay_identical = replay_a.fingerprint == recorded.fingerprint
        && replay_b.fingerprint == recorded.fingerprint
        && replay_a.ticks == recorded.ticks
        && replay_b.ticks == recorded.ticks;
    let wall_s = t.elapsed().as_secs_f64();
    meta.note_run(wall_s);

    let mut witness_file = None;
    let dir = crate::output::results_dir();
    let name = format!("net_explore.{}.{scenario}.witness", scale.name());
    let path = dir.join(&name);
    if let Some(failure) = &out.failure {
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, failure.witness.to_text()));
        match write {
            Ok(()) => witness_file = Some(name),
            Err(e) => eprintln!("warning: failed to dump witness {}: {e}", path.display()),
        }
    } else {
        // A clean search must not leave a stale witness from an earlier
        // (e.g. canary-drill) run lying around for CI to upload.
        let _ = std::fs::remove_file(&path);
    }

    // What counts as expected depends on the build: a clean search
    // normally; under the canary the crash scenario must instead
    // *find* the seeded ledger bug and shrink it within bounds.
    let drill = canary_armed() && scenario == "crash";
    let safe = replay_identical
        && if drill {
            out.failure.as_ref().is_some_and(|f| {
                f.witness.oracles.contains(&OracleKind::Ledger)
                    && f.witness.schedule.len() <= SHRUNK_WITNESS_MAX
            })
        } else {
            out.failure.is_none()
        };
    let failure = out.failure.as_ref();
    ExplorePoint {
        scenario: scenario.to_string(),
        runs: out.runs,
        budget: cfg.budget,
        decisions: out.decisions,
        violation: failure.is_some(),
        oracles: failure.map_or_else(
            || "pass".to_string(),
            |f| {
                f.witness
                    .oracles
                    .iter()
                    .map(OracleKind::as_str)
                    .collect::<Vec<_>>()
                    .join(",")
            },
        ),
        original_len: failure.map(|f| f.original_len),
        witness_len: failure.map(|f| f.witness.schedule.len()),
        shrink_runs: failure.map(|f| f.shrink_runs),
        witness_file,
        replay_identical,
        wall_s,
        safe,
    }
}

/// Runs the exploration sweep at the default seed.
pub fn run(scale: Scale) -> NetExploreDoc {
    run_with_seed(scale, 0xE5B0)
}

/// Runs the exploration sweep at an explicit seed (CI uses two) with
/// the scale's default budget.
pub fn run_with_seed(scale: Scale, seed: u64) -> NetExploreDoc {
    run_with_budget(scale, seed, None)
}

/// Runs the exploration sweep with an explicit per-scenario PCT run
/// budget (`None` = the scale default: 12 quick, 48 paper).
pub fn run_with_budget(scale: Scale, seed: u64, budget: Option<u32>) -> NetExploreDoc {
    let budget = budget.unwrap_or(match scale {
        Scale::Quick => 12,
        Scale::Paper => 48,
    });
    let cfg = ExploreConfig { budget, ..ExploreConfig::default() };
    let mut meta = RunMeta::default();
    let mut points = Vec::new();
    for (i, scenario) in scenarios().iter().enumerate() {
        points.push(explore_point(scenario, seed, i as u64, &cfg, scale, &mut meta));
    }
    let all_safe = points.iter().all(|p| p.safe);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                format!("{}/{}", p.runs, p.budget),
                p.decisions.to_string(),
                p.oracles.clone(),
                p.witness_len
                    .map_or_else(|| "-".to_string(), |n| {
                        format!("{} (from {})", n, p.original_len.unwrap_or(0))
                    }),
                if p.replay_identical { "bit-equal" } else { "DIVERGED" }.to_string(),
                if p.safe { "ok" } else { "UNSAFE" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "net_explore: PCT schedule search, depth {}{}",
            cfg.depth,
            if canary_armed() { " [CANARY DRILL]" } else { "" }
        ),
        &["scenario", "runs", "decisions", "oracles", "witness", "replay", "safety"],
        &rows,
    );
    println!(
        "net_explore seed {seed:#x}: {} scenarios, canary = {}, all_safe = {all_safe}",
        points.len(),
        canary_armed(),
    );
    let doc = NetExploreDoc {
        seed,
        canary: canary_armed(),
        depth: cfg.depth,
        budget,
        points,
        all_safe,
    };
    persist("net_explore", scale.name(), &doc, &meta);
    doc
}
