//! Fig. 5: per-piece timelines (encrypted received vs keys received) for
//! the slowest (400 Kbps) and fastest (1200 Kbps) leechers.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, Proto, RiderMode};
use serde::Serialize;
use tchain_core::{TChainConfig, TChainSwarm};
use tchain_proto::SwarmConfig;
use tchain_sim::{kbps, NodeId};

/// One leecher's Fig. 5 data.
#[derive(Debug, Serialize)]
pub struct Timeline {
    /// Leecher capacity label (Kbps).
    pub capacity_kbps: f64,
    /// `(time, cumulative encrypted pieces)` samples.
    pub encrypted: Vec<(f64, f64)>,
    /// `(time, cumulative keys)` samples.
    pub decrypted: Vec<(f64, f64)>,
}

/// Runs Fig. 5 for the two capacity extremes.
pub fn run(scale: Scale) -> Vec<Timeline> {
    let seed = 55;
    let mut meta = RunMeta::default();
    let mut cell = sweep(
        "fig05",
        &[()],
        |_| ("T-Chain piece timelines".to_string(), seed),
        |_| {
            let plan = flash_plan(scale.standard_swarm(), 0.0, RiderMode::Aggressive, seed);
            // NodeIds are assigned in arrival order (seeder is 0); pick the
            // first leecher of each extreme capacity.
            let slow = plan.iter().position(|p| (p.capacity - kbps(400.0)).abs() < 1.0);
            let fast = plan.iter().position(|p| (p.capacity - kbps(1200.0)).abs() < 1.0);
            let spec = Proto::TChain.file_spec(scale.file_mib());
            let mut sw =
                TChainSwarm::new(SwarmConfig::paper(spec), TChainConfig::default(), plan, seed);
            let mut targets = Vec::new();
            for (idx, cap) in [(slow, 400.0), (fast, 1200.0)] {
                if let Some(i) = idx {
                    let id = NodeId(i as u32 + 1);
                    sw.telemetry_mut().watch(id);
                    targets.push((id, cap));
                }
            }
            let wall = std::time::Instant::now();
            sw.run_until_done();
            let mut out = Vec::new();
            for (id, cap) in targets {
                // A watched id with no samples (e.g. the peer never exchanged
                // a piece) just drops out of the figure.
                let Some(tl) = sw.telemetry().timeline(id) else {
                    continue;
                };
                out.push(Timeline {
                    capacity_kbps: cap,
                    encrypted: tl.encrypted.downsample(24).iter().collect(),
                    decrypted: tl.decrypted.downsample(24).iter().collect(),
                });
            }
            (out, wall.elapsed().as_secs_f64())
        },
    );
    meta.note_failures(&cell.failures);
    let out = match cell.cells.pop().flatten() {
        Some((out, wall)) => {
            meta.note_run(wall);
            out
        }
        None => Vec::new(),
    };
    for t in &out {
        let rows: Vec<Vec<String>> = t
            .encrypted
            .iter()
            .zip(t.decrypted.iter())
            .map(|(e, d)| {
                vec![format!("{:.0}", e.0), format!("{:.0}", e.1), format!("{:.0}", d.1)]
            })
            .collect();
        print_table(
            &format!("Fig. 5: {} Kbps leecher piece timeline", t.capacity_kbps),
            &["t(s)", "encrypted", "keys"],
            &rows,
        );
    }
    persist("fig05", scale.name(), &out, &meta);
    out
}
