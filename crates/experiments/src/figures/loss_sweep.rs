//! Loss sweep: control-plane loss rate vs completion-time degradation.
//!
//! Not a paper figure — a robustness experiment for the fault-injection
//! subsystem. Sweeps the control-plane drop probability over a fault-free
//! flash crowd and reports, per protocol, how much the mean compliant
//! completion time degrades and what the recovery machinery (timeouts,
//! retransmissions, watchdog, §II-B4 escrow) had to do to keep chains
//! closing. T-Chain's three-message control plane (report → key) is the
//! exposed surface; the baselines only lose tracker queries and unchoke
//! offers, so they bracket the cost of T-Chain's extra round trips.

use crate::output::{persist, print_table, RunMeta};
use crate::runner::sweep;
use crate::scale::Scale;
use crate::scenario::{flash_plan, run_proto_with_faults, Horizon, Proto, RiderMode, RunOpts};
use serde::Serialize;
use tchain_baselines::Baseline;
use tchain_metrics::{RecoveryCounters, Summary};
use tchain_sim::FaultPlan;

/// One sweep point: a protocol at one loss rate, aggregated over seeds.
#[derive(Debug, Serialize)]
pub struct Point {
    /// Protocol legend name.
    pub proto: String,
    /// Configured control-plane drop probability, percent.
    pub loss_pct: u32,
    /// Mean ± CI compliant completion time.
    pub completion: Summary,
    /// Compliant leechers that never finished (summed over runs).
    pub unfinished: usize,
    /// Recovery counters merged over runs.
    pub recovery: RecoveryCounters,
}

/// Runs the loss sweep for T-Chain and the FairTorrent baseline.
pub fn run(scale: Scale) -> Vec<Point> {
    let n = match scale {
        Scale::Quick => 50,
        Scale::Paper => 200,
    };
    let protos = [Proto::Baseline(Baseline::FairTorrent), Proto::TChain];
    let losses: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];
    let mut points = Vec::new();
    let mut meta = RunMeta::default();
    let runs = scale.runs().min(3);
    let mut cells = Vec::new();
    for (pi, &proto) in protos.iter().enumerate() {
        for (li, &loss) in losses.iter().enumerate() {
            for r in 0..runs {
                let seed = ((li as u64) << 10) ^ ((pi as u64) << 6) ^ (r as u64) ^ 0xFA7;
                cells.push((proto, loss, seed));
            }
        }
    }
    let sw = sweep(
        "loss_sweep",
        &cells,
        |&(proto, loss, seed)| (format!("{} loss={loss}", proto.name()), seed),
        |&(proto, loss, seed)| {
            let plan = flash_plan(n, 0.0, RiderMode::Aggressive, seed);
            let faults = if loss == 0.0 {
                FaultPlan::none()
            } else {
                FaultPlan::lossy(seed ^ 0x1055, loss)
            };
            run_proto_with_faults(
                proto,
                scale.file_mib(),
                plan,
                seed,
                Horizon::CompliantDone,
                RunOpts::default(),
                faults,
            )
        },
    );
    meta.note_failures(&sw.failures);
    let mut outs = sw.cells.into_iter();
    for &proto in protos.iter() {
        for &loss in losses.iter() {
            let mut times = Vec::new();
            let mut unfinished = 0usize;
            let mut recovery = RecoveryCounters::default();
            for _ in 0..runs {
                let Some(out) = outs.next().flatten() else {
                    continue;
                };
                meta.absorb(&out);
                if let Some(m) = out.mean_compliant() {
                    times.push(m);
                }
                unfinished += out.unfinished_compliant;
                recovery.merge(&out.recovery);
            }
            points.push(Point {
                proto: proto.name().to_string(),
                loss_pct: (loss * 100.0).round() as u32,
                completion: Summary::of(&times),
                unfinished,
                recovery,
            });
        }
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.proto.clone(),
                format!("{}%", p.loss_pct),
                format!("{}", p.completion),
                p.unfinished.to_string(),
                p.recovery.ctrl_dropped.to_string(),
                p.recovery.retransmissions.to_string(),
                p.recovery.keys_escrowed.to_string(),
                p.recovery.watchdog_closures.to_string(),
            ]
        })
        .collect();
    print_table(
        "Loss sweep: completion-time degradation vs control-plane loss rate",
        &["protocol", "loss", "completion (s)", "DNF", "dropped", "retx", "escrows", "watchdog"],
        &rows,
    );
    persist("loss_sweep", scale.name(), &points, &meta);
    points
}
