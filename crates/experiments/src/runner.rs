//! Deterministic parallel experiment runner.
//!
//! Every figure expands its sweep into a flat list of *cells* — one
//! `(scenario, seed)` simulation each — and hands them to [`sweep`],
//! which executes them on a work-stealing `std::thread::scope` pool and
//! reassembles the results in canonical (submission) order. Because each
//! cell owns its RNG, its swarm, its tracer ring and its
//! [`crate::RunOutcome`], and because every aggregation step (CDFs,
//! [`crate::RunMeta`] merges, table rows) happens single-threaded after
//! the pool joins, the persisted `results/*.json` and trace JSONL are
//! identical for any worker count — including 1, which runs the exact
//! same guarded code path inline.
//!
//! Worker count: `--jobs N` on any experiment binary (see
//! [`parse_jobs_args`]), the `TCHAIN_JOBS` environment variable, or the
//! machine's available parallelism, in that precedence order.
//!
//! A cell that panics does not torch the sweep: the panic is caught,
//! the cell's slot stays empty ([`None`]) and a [`FailedCell`] record —
//! scenario label, seed, panic message — is kept both on the returned
//! [`Sweep`] and in a process-wide registry that `--bin all` drains into
//! its end-of-run summary ([`take_failures`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::Serialize;

/// Process-wide `--jobs` override (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide failed-cell registry, drained by [`take_failures`].
static FAILURES: Mutex<Vec<FailedCell>> = Mutex::new(Vec::new());

/// Forces the worker count for subsequent [`sweep`] calls (the `--jobs`
/// flag). `0` clears the override.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Scans process arguments for `--jobs N` / `--jobs=N` and applies the
/// override. Every experiment binary calls this first; unknown arguments
/// are left alone for the binary's own parsing.
pub fn parse_jobs_args() {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let a = &args[i];
        let parsed = if let Some(v) = a.strip_prefix("--jobs=") {
            v.parse::<usize>().ok()
        } else if a == "--jobs" {
            args.get(i + 1).and_then(|v| v.parse::<usize>().ok())
        } else {
            None
        };
        if let Some(n) = parsed {
            set_jobs(n.max(1));
            return;
        }
        i += 1;
    }
}

/// The worker count [`sweep`] will use: the [`set_jobs`] override if
/// present, else `TCHAIN_JOBS`, else available parallelism.
pub fn effective_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("TCHAIN_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One cell that panicked during a sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FailedCell {
    /// Figure / experiment the cell belongs to.
    pub figure: String,
    /// Scenario label (protocol, parameters).
    pub scenario: String,
    /// The cell's seed.
    pub seed: u64,
    /// Panic payload, stringified.
    pub panic: String,
}

/// Result of one [`sweep`]: per-cell outputs in canonical (submission)
/// order, with `None` slots for panicked cells, plus their records.
#[derive(Debug)]
pub struct Sweep<T> {
    /// One slot per submitted cell, in submission order.
    pub cells: Vec<Option<T>>,
    /// Panicked cells, in submission order.
    pub failures: Vec<FailedCell>,
}

impl<T> Sweep<T> {
    /// The completed outcomes in canonical order (panicked cells skipped).
    pub fn into_ok(self) -> Vec<T> {
        self.cells.into_iter().flatten().collect()
    }
}

/// Drains the process-wide failed-cell registry (used by `--bin all` for
/// its end-of-sweep summary).
pub fn take_failures() -> Vec<FailedCell> {
    std::mem::take(&mut *FAILURES.lock().unwrap_or_else(|e| e.into_inner()))
}

fn record_failures(fs: &[FailedCell]) {
    if fs.is_empty() {
        return;
    }
    FAILURES.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(fs);
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs every cell through `worker` on up to [`effective_jobs`] scoped
/// threads and returns the outputs in canonical submission order.
///
/// `describe` labels a cell for failure reporting as `(scenario, seed)`.
/// Workers steal the next unclaimed index from a shared counter, so the
/// schedule adapts to uneven cell costs; determinism comes from the
/// index-addressed reassembly, never from the schedule. With one worker
/// (or one cell) everything runs inline on the calling thread through
/// the same panic-guarded path.
pub fn sweep<J, T>(
    figure: &str,
    cells: &[J],
    describe: impl Fn(&J) -> (String, u64) + Sync,
    worker: impl Fn(&J) -> T + Sync,
) -> Sweep<T>
where
    J: Sync,
    T: Send,
{
    let n = cells.len();
    let workers = effective_jobs().clamp(1, n.max(1));
    let mut slots: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
    let guarded = |cell: &J| -> Result<T, String> {
        catch_unwind(AssertUnwindSafe(|| worker(cell))).map_err(panic_message)
    };
    if workers <= 1 {
        for (slot, cell) in slots.iter_mut().zip(cells.iter()) {
            *slot = Some(guarded(cell));
        }
    } else {
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<T, String>)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut local: Vec<(usize, Result<T, String>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, guarded(&cells[i])));
                    }
                    collected.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
                });
            }
        });
        for (i, r) in collected.into_inner().unwrap_or_else(|e| e.into_inner()) {
            slots[i] = Some(r);
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (cell, slot) in cells.iter().zip(slots) {
        match slot {
            Some(Ok(v)) => out.push(Some(v)),
            Some(Err(panic)) => {
                let (scenario, seed) = describe(cell);
                failures.push(FailedCell { figure: figure.to_string(), scenario, seed, panic });
                out.push(None);
            }
            // Unreachable: every index < n is claimed exactly once.
            None => out.push(None),
        }
    }
    record_failures(&failures);
    Sweep { cells: out, failures }
}

/// [`sweep`] for a single guarded cell (figures that are one simulation).
pub fn guarded_run<T: Send>(figure: &str, scenario: &str, seed: u64, f: impl Fn() -> T + Sync) -> Option<T> {
    sweep(figure, &[()], |_| (scenario.to_string(), seed), |_| f()).cells.pop().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide override/registry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Forced worker counts for tests, restoring the previous override.
    fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let prev = JOBS_OVERRIDE.swap(n, Ordering::SeqCst);
        let r = f();
        JOBS_OVERRIDE.store(prev, Ordering::SeqCst);
        r
    }

    #[test]
    fn canonical_order_is_kept_for_any_worker_count() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cells: Vec<u64> = (0..37).collect();
        let run = |jobs| {
            with_jobs(jobs, || {
                sweep("t", &cells, |&c| (format!("c{c}"), c), |&c| c * 3).into_ok()
            })
        };
        let seq = run(1);
        assert_eq!(seq, cells.iter().map(|c| c * 3).collect::<Vec<_>>());
        for jobs in [2, 3, 8] {
            assert_eq!(run(jobs), seq, "jobs={jobs} must reassemble canonically");
        }
        take_failures();
    }

    #[test]
    fn panicking_cell_is_recorded_not_fatal() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cells: Vec<u64> = (0..6).collect();
        let sw = with_jobs(3, || {
            sweep(
                "boom",
                &cells,
                |&c| (format!("cell {c}"), c),
                |&c| {
                    if c == 4 {
                        panic!("cell {c} exploded");
                    }
                    c + 1
                },
            )
        });
        assert_eq!(sw.cells.len(), 6);
        assert!(sw.cells[4].is_none());
        assert_eq!(sw.cells[5], Some(6));
        assert_eq!(sw.failures.len(), 1);
        assert_eq!(sw.failures[0].seed, 4);
        assert_eq!(sw.failures[0].figure, "boom");
        assert!(sw.failures[0].panic.contains("exploded"));
        // The process-wide registry saw it too.
        let drained = take_failures();
        assert!(drained.iter().any(|f| f.figure == "boom" && f.seed == 4));
    }

    #[test]
    fn effective_jobs_is_positive() {
        assert!(effective_jobs() >= 1);
    }

    #[test]
    fn guarded_run_returns_value_or_none() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(guarded_run("g", "ok", 1, || 41 + 1), Some(42));
        let r: Option<u32> = guarded_run("g", "bad", 2, || panic!("nope"));
        assert!(r.is_none());
        take_failures();
    }

    #[test]
    fn empty_cell_list_is_fine() {
        let sw = sweep("empty", &[] as &[u64], |&c| (String::new(), c), |&c| c);
        assert!(sw.cells.is_empty());
        assert!(sw.failures.is_empty());
    }
}
