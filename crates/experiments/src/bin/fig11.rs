//! Regenerates the paper's fig11 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig11 | scale: {}]", scale.name());
    tchain_experiments::figures::fig11::run(scale);
}
