//! Scale sweep over the executable peer runtime (`tchain-net`):
//! N ∈ {16, 64, 256} with and without a proportional churn schedule,
//! plus the indexed-vs-legacy scheduler parity oracle at N = 64.
//! `--quick` / `--paper` flags or `TCHAIN_SCALE=quick|paper`; `--seed N`
//! reruns the sweep at a different master seed (the CI job uses two).
//!
//! Exits nonzero if any cell violates a safety property — completion,
//! byte-exact plaintexts, zero unreciprocated key releases, ledger
//! consistency, same-seed bit-identity, scheduler parity — so CI can
//! gate on it directly.
fn main() {
    tchain_experiments::parse_jobs_args();
    let mut scale = tchain_experiments::Scale::from_env();
    let mut seed = 0x5CA1Eu64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = tchain_experiments::Scale::Quick,
            "--paper" => scale = tchain_experiments::Scale::Paper,
            "--seed" => {
                if let Some(v) = args.next() {
                    seed = parse_seed(&v);
                }
            }
            _ => {}
        }
    }
    println!("[net_scale | scale: {} | seed: {seed:#x}]", scale.name());
    let doc = tchain_experiments::figures::net_scale::run_with_seed(scale, seed);
    if !doc.all_safe {
        eprintln!("net_scale: SAFETY VIOLATION — see table above");
        std::process::exit(1);
    }
}

fn parse_seed(v: &str) -> u64 {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(s) => s,
        Err(_) => {
            eprintln!("net_scale: bad --seed {v:?}, expected a u64");
            std::process::exit(2);
        }
    }
}
