//! Regenerates the paper's fig10 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig10 | scale: {}]", scale.name());
    tchain_experiments::figures::fig10::run(scale);
}
