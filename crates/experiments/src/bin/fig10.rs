//! Regenerates the paper's fig10 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig10 | scale: {}]", scale.name());
    tchain_experiments::figures::fig10::run(scale);
}
