//! PCT schedule exploration over the executable peer runtime
//! (`tchain-net`): a budgeted interleaving search across the
//! chaos × churn × attack scenario grid, with delta-debug shrinking of
//! any failing schedule to a replayable witness under `results/`.
//! `--quick` / `--paper` flags or `TCHAIN_SCALE=quick|paper`; `--seed N`
//! reruns at a different master seed (the CI job uses two);
//! `--budget N` overrides the per-scenario PCT run budget.
//!
//! Exits nonzero if any scenario misses this build's expectation:
//! normally that is *zero* oracle violations plus bit-identical
//! schedule replay; under `RUSTFLAGS="--cfg tchain_canary"` (the
//! mutation drill) the crash scenario must instead FIND the seeded
//! restore() ledger bug and shrink its witness to ≤ 50 choices.
fn main() {
    tchain_experiments::parse_jobs_args();
    let mut scale = tchain_experiments::Scale::from_env();
    let mut seed = 0xE5B0u64;
    let mut budget = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = tchain_experiments::Scale::Quick,
            "--paper" => scale = tchain_experiments::Scale::Paper,
            "--seed" => {
                if let Some(v) = args.next() {
                    seed = parse_num(&v, "--seed");
                }
            }
            "--budget" => {
                if let Some(v) = args.next() {
                    budget = Some(parse_num(&v, "--budget") as u32);
                }
            }
            _ => {}
        }
    }
    let canary = tchain_net::canary_armed();
    println!(
        "[net_explore | scale: {} | seed: {seed:#x}{}]",
        scale.name(),
        if canary { " | CANARY DRILL" } else { "" }
    );
    let doc = tchain_experiments::figures::net_explore::run_with_budget(scale, seed, budget);
    if !doc.all_safe {
        if canary {
            eprintln!(
                "net_explore: CANARY DRILL FAILED — the seeded restore() ledger bug was \
                 not found and shrunk within budget"
            );
        } else {
            eprintln!("net_explore: ORACLE VIOLATION — see table above and results/ witnesses");
        }
        std::process::exit(1);
    }
    if canary {
        println!("net_explore: canary drill passed — the seeded bug was found and shrunk");
    }
}

fn parse_num(v: &str, flag: &str) -> u64 {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(s) => s,
        Err(_) => {
            eprintln!("net_explore: bad {flag} {v:?}, expected a u64");
            std::process::exit(2);
        }
    }
}
