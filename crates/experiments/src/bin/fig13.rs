//! Regenerates the paper's fig13 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig13 | scale: {}]", scale.name());
    tchain_experiments::figures::fig13::run(scale);
}
