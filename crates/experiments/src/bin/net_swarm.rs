//! Executable peer-runtime swarm (`tchain-net`) with a sim-vs-net
//! cross-check. `--quick` / `--paper` flags or `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let mut scale = tchain_experiments::Scale::from_env();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => scale = tchain_experiments::Scale::Quick,
            "--paper" => scale = tchain_experiments::Scale::Paper,
            _ => {}
        }
    }
    println!("[net_swarm | scale: {}]", scale.name());
    tchain_experiments::figures::net_swarm::run(scale);
}
