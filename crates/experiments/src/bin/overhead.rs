//! Regenerates the paper's overhead data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[overhead | scale: {}]", scale.name());
    tchain_experiments::figures::overhead::run(scale);
}
