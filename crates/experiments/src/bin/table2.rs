//! Regenerates Table II. `TCHAIN_SCALE=quick|paper`.
fn main() {
    let scale = tchain_experiments::Scale::from_env();
    println!("[table2 | scale: {}]", scale.name());
    tchain_experiments::figures::table2::run(scale);
}
