//! Regenerates Table II. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[table2 | scale: {}]", scale.name());
    tchain_experiments::figures::table2::run(scale);
}
