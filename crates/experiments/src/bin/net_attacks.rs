//! Strategic adversaries on the executable peer runtime
//! (`tchain-net`): §IV-C aggressive free-riders (large-view tracker
//! hammering + whitewash identity resets) and §IV-D collusion rings
//! filing false reports, plus the §III-A4 Sybil collision-rate
//! regression. `--quick` / `--paper` flags or
//! `TCHAIN_SCALE=quick|paper`; `--seed N` reruns the suite at a
//! different master seed (the CI acceptance job uses two).
//!
//! Exits nonzero if any scenario violates the compliant-peer incentive
//! guarantee, so CI can gate on it directly.
fn main() {
    tchain_experiments::parse_jobs_args();
    let mut scale = tchain_experiments::Scale::from_env();
    let mut seed = 0xA77Cu64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = tchain_experiments::Scale::Quick,
            "--paper" => scale = tchain_experiments::Scale::Paper,
            "--seed" => {
                if let Some(v) = args.next() {
                    seed = parse_seed(&v);
                }
            }
            _ => {}
        }
    }
    println!("[net_attacks | scale: {} | seed: {seed:#x}]", scale.name());
    let doc = tchain_experiments::figures::net_attacks::run_with_seed(scale, seed);
    if !doc.all_safe {
        eprintln!("net_attacks: INCENTIVE GUARANTEE VIOLATED — see table above");
        std::process::exit(1);
    }
}

fn parse_seed(v: &str) -> u64 {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(s) => s,
        Err(_) => {
            eprintln!("net_attacks: bad --seed {v:?}, expected a u64");
            std::process::exit(2);
        }
    }
}
