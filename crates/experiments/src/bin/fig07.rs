//! Regenerates the paper's fig07 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig07 | scale: {}]", scale.name());
    tchain_experiments::figures::fig07::run(scale);
}
