//! Regenerates the paper's fig05 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig05 | scale: {}]", scale.name());
    tchain_experiments::figures::fig05::run(scale);
}
