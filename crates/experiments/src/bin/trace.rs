//! Traced flash-crowd demo (observability). `TCHAIN_SCALE=quick|paper`.
//!
//! - `trace` — run the traced swarm, write `results/trace.<scale>.jsonl`
//!   (structured event log), `results/trace.<scale>.trace.json`
//!   (Perfetto-loadable) and the run summary JSON.
//! - `trace check <file.jsonl>` — validate a previously written event
//!   log against the schema; exits nonzero on the first bad line.
fn main() {
    tchain_experiments::parse_jobs_args();
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("check") {
        let Some(path) = args.get(2) else {
            eprintln!("usage: trace check <file.jsonl>");
            std::process::exit(2);
        };
        let jsonl = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace check: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match tchain_obs::validate_jsonl(&jsonl) {
            Ok(n) => println!("{path}: {n} records OK"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let scale = tchain_experiments::Scale::from_env();
    println!("[trace | scale: {}]", scale.name());
    tchain_experiments::figures::trace::run(scale);
}
