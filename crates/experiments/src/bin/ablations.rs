//! Runs the T-Chain design-choice ablations. `TCHAIN_SCALE=quick|paper`.
fn main() {
    let scale = tchain_experiments::Scale::from_env();
    println!("[ablations | scale: {}]", scale.name());
    tchain_experiments::figures::ablations::run(scale);
}
