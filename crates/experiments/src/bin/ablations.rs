//! Runs the T-Chain design-choice ablations. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[ablations | scale: {}]", scale.name());
    tchain_experiments::figures::ablations::run(scale);
}
