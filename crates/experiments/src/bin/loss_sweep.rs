//! Control-plane loss sweep (robustness). `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[loss_sweep | scale: {}]", scale.name());
    tchain_experiments::figures::loss_sweep::run(scale);
}
