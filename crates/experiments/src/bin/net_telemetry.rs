//! Swarm telemetry acceptance over the executable peer runtime
//! (`tchain-net`): causal cross-peer tracing, per-peer metric
//! histograms and Prometheus exposition. `--quick` / `--paper` flags or
//! `TCHAIN_SCALE=quick|paper`; `--seed N` reruns at a different master
//! seed (the CI acceptance job uses two).
//!
//! - `net_telemetry` — run the acceptance; exits nonzero if any
//!   invariant fails (safety, disabled-run bit-identity, fingerprint
//!   preservation under telemetry, causal consistency of the merge).
//! - `net_telemetry check <merged.jsonl> <exposition.prom>` — validate
//!   previously written artifacts: the merged trace against the JSONL
//!   schema (strict per-origin Lamport monotonicity included) and the
//!   exposition for the headline series; exits nonzero on failure.
fn main() {
    tchain_experiments::parse_jobs_args();
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("check") {
        check(args.get(2), args.get(3));
        return;
    }
    let mut scale = tchain_experiments::Scale::from_env();
    let mut seed = 0x7E1Eu64;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = tchain_experiments::Scale::Quick,
            "--paper" => scale = tchain_experiments::Scale::Paper,
            "--seed" => {
                if let Some(v) = it.next() {
                    seed = parse_seed(v);
                }
            }
            _ => {}
        }
    }
    println!("[net_telemetry | scale: {} | seed: {seed:#x}]", scale.name());
    let doc = tchain_experiments::figures::net_telemetry::run_with_seed(scale, seed);
    if !doc.safe {
        eprintln!("net_telemetry: ACCEPTANCE FAILURE — see output above");
        std::process::exit(1);
    }
}

fn check(merged: Option<&String>, prom: Option<&String>) {
    let (Some(merged), Some(prom)) = (merged, prom) else {
        eprintln!("usage: net_telemetry check <merged.jsonl> <exposition.prom>");
        std::process::exit(2);
    };
    let jsonl = read_or_die(merged);
    match tchain_obs::validate_jsonl(&jsonl) {
        Ok(n) => println!("{merged}: {n} records OK"),
        Err(e) => {
            eprintln!("{merged}: {e}");
            std::process::exit(1);
        }
    }
    let exposition = read_or_die(prom);
    for needle in [
        "# TYPE tchain_fairness_index gauge",
        "tchain_fairness_index ",
        "# TYPE tchain_chain_length histogram",
        "tchain_chain_length_bucket",
        "tchain_peer_uploads",
        "tchain_peer_goodwill",
    ] {
        if !exposition.contains(needle) {
            eprintln!("{prom}: missing expected series {needle:?}");
            std::process::exit(1);
        }
    }
    println!("{prom}: exposition OK ({} bytes)", exposition.len());
}

fn read_or_die(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("net_telemetry check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_seed(v: &str) -> u64 {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(s) => s,
        Err(_) => {
            eprintln!("net_telemetry: bad --seed {v:?}, expected a u64");
            std::process::exit(2);
        }
    }
}
