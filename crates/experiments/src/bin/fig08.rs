//! Regenerates the paper's fig08 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig08 | scale: {}]", scale.name());
    tchain_experiments::figures::fig08::run(scale);
}
