//! Runs the §VI streaming extension comparison. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[streaming | scale: {}]", scale.name());
    tchain_experiments::figures::streaming::run(scale);
}
