//! Regenerates the paper's fig04 data. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[fig04 | scale: {}]", scale.name());
    tchain_experiments::figures::fig04::run(scale);
}
