//! Runs the entire experiment suite in figure order.
//!
//! Each figure expands into a flat list of `(scenario, seed)` cells and
//! runs them on the deterministic parallel runner; `--jobs N` (or
//! `TCHAIN_JOBS`) sets the worker count, defaulting to the machine's
//! available parallelism. Results are byte-identical for any worker
//! count. Cells that panic are skipped and summarized at the end.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!(
        "[all experiments | scale: {} | jobs: {}]",
        scale.name(),
        tchain_experiments::effective_jobs()
    );
    use tchain_experiments::figures as f;
    f::fig03::run(scale);
    f::fig04::run(scale);
    f::fig05::run(scale);
    f::fig06::run(scale);
    f::fig07::run(scale);
    f::fig08::run(scale);
    f::fig09::run(scale);
    f::fig10::run(scale);
    f::fig11::run(scale);
    f::fig12::run(scale);
    f::fig13::run(scale);
    f::table2::run(scale);
    f::ablations::run(scale);
    f::streaming::run(scale);
    f::overhead::run(scale);
    f::analysis_sec3::run(scale);
    f::loss_sweep::run(scale);
    f::trace::run(scale);
    let failures = tchain_experiments::take_failures();
    if failures.is_empty() {
        println!("\nall experiments completed; no failed cells");
    } else {
        eprintln!("\n{} cell(s) panicked and were skipped:", failures.len());
        for f in &failures {
            eprintln!("  [{}] {} (seed {:#x}): {}", f.figure, f.scenario, f.seed, f.panic);
        }
        std::process::exit(1);
    }
}
