//! Runs the entire experiment suite in figure order.
fn main() {
    let scale = tchain_experiments::Scale::from_env();
    println!("[all experiments | scale: {}]", scale.name());
    use tchain_experiments::figures as f;
    f::fig03::run(scale);
    f::fig04::run(scale);
    f::fig05::run(scale);
    f::fig06::run(scale);
    f::fig07::run(scale);
    f::fig08::run(scale);
    f::fig09::run(scale);
    f::fig10::run(scale);
    f::fig11::run(scale);
    f::fig12::run(scale);
    f::fig13::run(scale);
    f::table2::run(scale);
    f::ablations::run(scale);
    f::streaming::run(scale);
    f::overhead::run(scale);
    f::analysis_sec3::run(scale);
    f::loss_sweep::run(scale);
    f::trace::run(scale);
}
