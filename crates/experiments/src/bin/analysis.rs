//! Regenerates the §III analytical tables. `TCHAIN_SCALE=quick|paper`.
fn main() {
    tchain_experiments::parse_jobs_args();
    let scale = tchain_experiments::Scale::from_env();
    println!("[analysis | scale: {}]", scale.name());
    tchain_experiments::figures::analysis_sec3::run(scale);
}
