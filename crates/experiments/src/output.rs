//! Result persistence and table printing.
//!
//! Every figure binary prints the paper-style rows to stdout *and* writes
//! a JSON document under `results/` so EXPERIMENTS.md numbers are
//! regenerable and diffable.

use serde::Serialize;
use std::path::PathBuf;

use tchain_obs::{MetricMap, PhaseProfile};

use crate::runner::FailedCell;
use crate::scenario::RunOutcome;

/// Aggregated observability bookkeeping for one figure's batch of runs,
/// persisted next to the figure data by [`persist`].
///
/// The persisted envelope separates the *simulation-determined* fields
/// (`runs`, `peak_event_depth`, `metrics`, `failed_cells`) from the
/// *host-measured* ones (`wall_clock_s`, `phases`): the former are
/// byte-identical for any `--jobs` worker count, the latter vary from
/// run to run and are emitted on a single strippable `"host"` line (see
/// [`deterministic_view`]) or omitted entirely with
/// `TCHAIN_HOST_META=off`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunMeta {
    /// Simulator runs absorbed into this record.
    pub runs: u64,
    /// Summed host wall-clock seconds across those runs.
    pub wall_clock_s: f64,
    /// Largest event-ring high-water mark seen (0 with tracing off).
    pub peak_event_depth: u64,
    /// Per-phase main-loop profile merged across runs (empty unless
    /// profiling was on).
    pub phases: PhaseProfile,
    /// Named metrics from the stats registry, summed across runs.
    pub metrics: MetricMap,
    /// Cells that panicked and were skipped by the runner.
    pub failed: Vec<FailedCell>,
}

impl RunMeta {
    /// Folds one run's bookkeeping into the batch record.
    pub fn absorb(&mut self, out: &RunOutcome) {
        self.runs += 1;
        self.wall_clock_s += out.wall_clock_s;
        self.peak_event_depth = self.peak_event_depth.max(out.peak_event_depth as u64);
        self.phases.merge(&out.phases);
        self.absorb_metrics(&out.metrics);
    }

    /// Counts a run driven outside [`crate::run_proto`] (figure modules
    /// that step a swarm directly), with its measured wall clock.
    pub fn note_run(&mut self, wall_clock_s: f64) {
        self.runs += 1;
        self.wall_clock_s += wall_clock_s;
    }

    /// Sums a driver metric snapshot into the batch (for directly-driven
    /// swarms, pairs with [`RunMeta::note_run`]).
    pub fn absorb_metrics(&mut self, metrics: &MetricMap) {
        for (k, &v) in metrics {
            let slot = self.metrics.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
    }

    /// Records a sweep's panicked cells into the batch (they are part of
    /// the persisted run summary, not a reason to abort the figure).
    pub fn note_failures(&mut self, failures: &[FailedCell]) {
        self.failed.extend_from_slice(failures);
    }
}

/// Directory for experiment outputs (repo-root `results/`, overridable
/// with `TCHAIN_RESULTS`).
pub fn results_dir() -> PathBuf {
    std::env::var("TCHAIN_RESULTS").map(PathBuf::from).unwrap_or_else(|_| {
        // Resolve relative to the workspace root when run via cargo.
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("results");
        p
    })
}

/// Serializes a figure's data to `results/<name>.<scale>.json`.
pub fn save<T: Serialize>(name: &str, scale: &str, data: &T) -> std::io::Result<PathBuf> {
    let json = to_json(data)?;
    write_results_file(name, scale, json)
}

/// Serializes a figure's data plus its [`RunMeta`] as a two-field
/// document `{"meta": …, "data": …}` to `results/<name>.<scale>.json`.
pub fn save_with_meta<T: Serialize>(
    name: &str,
    scale: &str,
    data: &T,
    meta: &RunMeta,
) -> std::io::Result<PathBuf> {
    write_results_file(name, scale, meta_document(data, meta)?)
}

/// Hand-assembled `{"meta": {"host": …, "sim": …}, "data": …}` envelope.
///
/// The two meta halves are built field-by-field from compactly
/// serialized owned values — not via a borrowed wrapper struct — so the
/// meta section's bytes do not depend on the serializer's pretty-printer
/// and the host-measured fields stay on one strippable line (see
/// [`deterministic_view`]). `TCHAIN_HOST_META=off` omits that line,
/// making the whole document byte-identical across repeated runs.
fn meta_document<T: Serialize>(data: &T, meta: &RunMeta) -> std::io::Result<String> {
    let sim = format!(
        "{{\n\"runs\": {},\n\"peak_event_depth\": {},\n\"failed_cells\": {},\n\"metrics\": {}\n}}",
        meta.runs,
        meta.peak_event_depth,
        to_compact(&meta.failed)?,
        to_compact(&meta.metrics)?,
    );
    let host_line = if host_meta_enabled() {
        format!(
            "\"host\": {{\"wall_clock_s\":{},\"phases\":{}}},\n",
            to_compact(&meta.wall_clock_s)?,
            to_compact(&meta.phases)?,
        )
    } else {
        String::new()
    };
    Ok(format!(
        "{{\n\"meta\": {{\n{host_line}\"sim\": {sim}\n}},\n\"data\": {}\n}}",
        to_json(data)?
    ))
}

fn to_compact<T: Serialize>(value: &T) -> std::io::Result<String> {
    serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn host_meta_enabled() -> bool {
    !matches!(
        std::env::var("TCHAIN_HOST_META").as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    )
}

/// Strips the host-measured line from a persisted results document,
/// leaving exactly the bytes that must be identical for any `--jobs`
/// worker count (and equal to a `TCHAIN_HOST_META=off` document). The
/// line filter relies on [`meta_document`] emitting the host object on
/// one line that starts with `"host": `.
pub fn deterministic_view(doc: &str) -> String {
    doc.lines()
        .filter(|l| !l.trim_start().starts_with("\"host\": "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Saves a figure document with run metadata; failures are reported on
/// stderr instead of panicking so a long sweep still prints its tables.
pub fn persist<T: Serialize>(name: &str, scale: &str, data: &T, meta: &RunMeta) {
    if let Err(e) = save_with_meta(name, scale, data, meta) {
        eprintln!("warning: failed to write results/{name}.{scale}.json: {e}");
    }
}

fn to_json<T: Serialize>(data: &T) -> std::io::Result<String> {
    serde_json::to_string_pretty(data)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

fn write_results_file(name: &str, scale: &str, json: String) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.{scale}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Prints a fixed-width table: header then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats an optional mean (e.g. free-riders that never finished print
/// as `DNF`).
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "DNF".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or toggle `TCHAIN_HOST_META`.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("tchain-results-test");
        std::env::set_var("TCHAIN_RESULTS", &dir);
        let path = save("unit", "quick", &vec![1.0, 2.0]).unwrap();
        let back: Vec<f64> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1.0, 2.0]);
        std::env::remove_var("TCHAIN_RESULTS");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_meta_absorbs_runs() {
        let mut meta = RunMeta::default();
        let mut out = RunOutcome { wall_clock_s: 0.5, peak_event_depth: 7, ..Default::default() };
        out.metrics.insert("txns.completed".into(), 3);
        meta.absorb(&out);
        out.peak_event_depth = 4;
        meta.absorb(&out);
        assert_eq!(meta.runs, 2);
        assert_eq!(meta.peak_event_depth, 7, "peak takes the max");
        assert_eq!(meta.metrics["txns.completed"], 6, "metrics sum");
        assert!((meta.wall_clock_s - 1.0).abs() < 1e-12);
        meta.note_run(0.25);
        assert_eq!(meta.runs, 3);
    }

    #[test]
    fn meta_envelope_has_fixed_shape() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let meta = RunMeta { runs: 2, ..Default::default() };
        let doc = meta_document(&vec![1u64, 2], &meta).unwrap();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"meta\""));
        assert!(doc.contains("\"data\""));
        assert!(doc.contains("\"runs\""));
        assert!(doc.contains("\"host\""));
        assert!(doc.contains("\"sim\""));
        assert!(doc.contains("\"failed_cells\""));
    }

    #[test]
    fn host_line_is_exactly_the_nondeterministic_part() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let meta = RunMeta { runs: 3, wall_clock_s: 1.25, ..Default::default() };
        let doc = meta_document(&vec![7u64], &meta).unwrap();
        // The host object lives on a single line…
        let host_lines: Vec<&str> =
            doc.lines().filter(|l| l.trim_start().starts_with("\"host\": ")).collect();
        assert_eq!(host_lines.len(), 1);
        assert!(host_lines[0].contains("wall_clock_s"));
        // …and stripping it yields the TCHAIN_HOST_META=off document.
        let stripped = deterministic_view(&doc);
        assert!(!stripped.contains("wall_clock_s"));
        std::env::set_var("TCHAIN_HOST_META", "off");
        let off = meta_document(&vec![7u64], &meta).unwrap();
        std::env::remove_var("TCHAIN_HOST_META");
        assert_eq!(stripped, off);
        // Two metas differing only in host measurements agree after the strip.
        let slower = RunMeta { runs: 3, wall_clock_s: 99.0, ..Default::default() };
        let doc2 = meta_document(&vec![7u64], &slower).unwrap();
        assert_ne!(doc, doc2);
        assert_eq!(deterministic_view(&doc), deterministic_view(&doc2));
    }

    #[test]
    fn failed_cells_are_persisted() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut meta = RunMeta::default();
        meta.note_failures(&[crate::runner::FailedCell {
            figure: "figXX".into(),
            scenario: "T-Chain n=50".into(),
            seed: 42,
            panic: "boom".into(),
        }]);
        let doc = meta_document(&Vec::<u64>::new(), &meta).unwrap();
        assert!(doc.contains("figXX"));
        assert!(doc.contains("boom"));
    }

    #[test]
    fn fmt_opt_handles_dnf() {
        assert_eq!(fmt_opt(Some(12.34)), "12.3");
        assert_eq!(fmt_opt(None), "DNF");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
