//! Result persistence and table printing.
//!
//! Every figure binary prints the paper-style rows to stdout *and* writes
//! a JSON document under `results/` so EXPERIMENTS.md numbers are
//! regenerable and diffable.

use serde::Serialize;
use std::path::PathBuf;

/// Directory for experiment outputs (repo-root `results/`, overridable
/// with `TCHAIN_RESULTS`).
pub fn results_dir() -> PathBuf {
    std::env::var("TCHAIN_RESULTS").map(PathBuf::from).unwrap_or_else(|_| {
        // Resolve relative to the workspace root when run via cargo.
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.pop();
        p.pop();
        p.push("results");
        p
    })
}

/// Serializes a figure's data to `results/<name>.<scale>.json`.
pub fn save<T: Serialize>(name: &str, scale: &str, data: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.{scale}.json"));
    let json = serde_json::to_string_pretty(data).expect("serializable figure data");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Prints a fixed-width table: header then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats an optional mean (e.g. free-riders that never finished print
/// as `DNF`).
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "DNF".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("tchain-results-test");
        std::env::set_var("TCHAIN_RESULTS", &dir);
        let path = save("unit", "quick", &vec![1.0, 2.0]).unwrap();
        let back: Vec<f64> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1.0, 2.0]);
        std::env::remove_var("TCHAIN_RESULTS");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_opt_handles_dnf() {
        assert_eq!(fmt_opt(Some(12.34)), "12.3");
        assert_eq!(fmt_opt(None), "DNF");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
