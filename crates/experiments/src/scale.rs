//! Experiment scaling: paper-faithful parameters vs. a quick profile.
//!
//! The paper's runs (600–10,000 leechers, 128 MB files, 30 seeds) take
//! CPU-hours; the default **quick** profile shrinks sizes ~4–10× while
//! preserving every shape the figures argue about (who wins, by what
//! factor, where crossovers sit). Select with the `TCHAIN_SCALE`
//! environment variable: `quick` (default) or `paper`. EXPERIMENTS.md
//! records which profile produced each number.

/// Experiment scaling profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk sizes, few seeds; minutes for the whole suite.
    Quick,
    /// The paper's §IV-A parameters; CPU-hours.
    Paper,
}

impl Scale {
    /// Reads `TCHAIN_SCALE` (`quick`/`paper`); defaults to quick.
    pub fn from_env() -> Self {
        match std::env::var("TCHAIN_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "paper" => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Profile name for result files.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// Seeded runs per data point (§IV-A: 30).
    pub fn runs(&self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Paper => 30,
        }
    }

    /// Swarm sizes for Figs. 3/7/8 (paper: 200–1000).
    pub fn swarm_sizes(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![50, 100, 150, 200],
            Scale::Paper => vec![200, 400, 600, 800, 1000],
        }
    }

    /// Shared file size in MiB (paper: 128).
    pub fn file_mib(&self) -> f64 {
        match self {
            Scale::Quick => 8.0,
            Scale::Paper => 128.0,
        }
    }

    /// The "standard" swarm size for single-swarm figures (paper: 600).
    pub fn standard_swarm(&self) -> usize {
        match self {
            Scale::Quick => 120,
            Scale::Paper => 600,
        }
    }

    /// File sizes for Fig. 4(a) in MiB (paper: 32–1024).
    pub fn file_sweep_mib(&self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![2.0, 4.0, 8.0, 16.0],
            Scale::Paper => vec![32.0, 64.0, 128.0, 256.0, 512.0, 1024.0],
        }
    }

    /// Swarm sizes for Fig. 4(b) (paper: 10–10,000).
    pub fn swarm_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![10, 30, 100, 300, 1000],
            Scale::Paper => vec![10, 50, 200, 600, 2000, 6000, 10_000],
        }
    }

    /// File size for the trace-driven experiments (Figs. 9/12) in MiB.
    /// Quick scale uses a larger file than [`Scale::file_mib`] because the
    /// §II-D2 ledger waste free-riders cause is *constant per donor pair*
    /// (≤ k pieces): with too few pieces it dominates artificially; see
    /// EXPERIMENTS.md.
    pub fn trace_file_mib(&self) -> f64 {
        match self {
            Scale::Quick => 16.0,
            Scale::Paper => 128.0,
        }
    }

    /// (measured, excluded) compliant completions for the trace
    /// experiments (paper: first 1000, excluding the first 500).
    pub fn trace_completions(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (200, 80),
            Scale::Paper => (1000, 500),
        }
    }

    /// Fairness CDF population (paper: last 500 compliant leechers).
    pub fn fairness_population(&self) -> usize {
        match self {
            Scale::Quick => 100,
            Scale::Paper => 500,
        }
    }

    /// Fig. 13's observation window in seconds (paper: first 1000 s).
    pub fn small_file_window(&self) -> f64 {
        match self {
            Scale::Quick => 400.0,
            Scale::Paper => 1000.0,
        }
    }

    /// Fig. 13's churn swarm size (paper: 1000).
    pub fn small_file_swarm(&self) -> usize {
        match self {
            Scale::Quick => 150,
            Scale::Paper => 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quick() {
        // (Environment is not set in tests.)
        if std::env::var("TCHAIN_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
    }

    #[test]
    fn paper_profile_matches_paper() {
        let s = Scale::Paper;
        assert_eq!(s.runs(), 30);
        assert_eq!(s.file_mib(), 128.0);
        assert_eq!(s.standard_swarm(), 600);
        assert_eq!(s.trace_completions(), (1000, 500));
        assert_eq!(s.fairness_population(), 500);
        assert!(s.swarm_sizes().contains(&1000));
        assert!(s.swarm_sweep().contains(&10_000));
    }

    #[test]
    fn quick_profile_is_smaller_everywhere() {
        let q = Scale::Quick;
        let p = Scale::Paper;
        assert!(q.runs() < p.runs());
        assert!(q.file_mib() < p.file_mib());
        assert!(q.standard_swarm() < p.standard_swarm());
        assert!(q.swarm_sizes().iter().max() < p.swarm_sizes().iter().max());
    }
}
