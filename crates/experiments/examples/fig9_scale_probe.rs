//! Verifies the Fig. 9 quick-scale deviation: the §II-D2 ledger waste is
//! constant per donor/free-rider pair, so T-Chain's 50%-free-rider point
//! improves as the piece count grows toward paper scale.
use tchain_experiments::*;
fn main() {
    for mib in [8.0, 32.0] {
        for proto in [Proto::TChain, Proto::Baseline(tchain_baselines::Baseline::BitTorrent)] {
            let mut means = Vec::new();
            for r in 0..2u64 {
                let seed = 0x95 | r;
                let plan = trace_plan(320, 0.5, RiderMode::Aggressive, seed);
                let out = run_proto(proto, mib, plan, seed,
                    Horizon::CompliantCount(120, 40_000.0), RunOpts::default());
                let steady: Vec<f64> = out.compliant_times.iter().copied().skip(40).take(80).collect();
                if !steady.is_empty() {
                    means.push(steady.iter().sum::<f64>() / steady.len() as f64);
                }
            }
            let m = means.iter().sum::<f64>() / means.len().max(1) as f64;
            println!("{mib} MiB  {:<12} {m:.0} s", proto.name());
        }
    }
}
