//! T-Chain protocol parameters.

/// How a requestor chooses which piece to ask for.
///
/// The paper's file-sharing instantiation uses Local-Rarest-First
/// (§II-A); §VI names streaming as future work, which needs (near-)
/// in-order arrival — [`PieceSelection::Streaming`] restricts rarest-
/// first to a sliding window ahead of the playback frontier, the
/// standard windowed-rarest policy of P2P streaming systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PieceSelection {
    /// Local-Rarest-First over the whole file (the paper's default).
    Rarest,
    /// Rarest-first restricted to `window` pieces past the first missing
    /// piece, so pieces arrive nearly in order.
    Streaming {
        /// Window size in pieces (≥ 1).
        window: u32,
    },
}

/// Tunables of the T-Chain protocol layer (on top of the generic
/// [`tchain_proto::SwarmConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TChainConfig {
    /// Flow-control bound `k` (§II-D2): a neighbor with `k` or more
    /// pending (un-reciprocated) pieces from us is neither served nor
    /// designated as a payee. The paper fixes `k = 2`.
    pub k_pending: u32,
    /// Concurrent chain-initiation uploads the seeder keeps in flight
    /// ("the seeder will likely initiate as many chains as possible given
    /// its upload … capacities", §II-B1 fn. 3).
    pub seeder_slots: usize,
    /// Seconds an `AwaitingReciprocation` transaction may stall before the
    /// sweep declares the chain dead (free-riding, §IV-F: "each instance
    /// of free-riding will terminate a chain").
    pub stall_timeout: f64,
    /// Enable opportunistic seeding (§II-D3). On by default; the ablation
    /// benchmark turns it off.
    pub opportunistic_seeding: bool,
    /// Prefer direct reciprocity when the requestor has a piece the donor
    /// needs (§II-B2). On by default; ablation can disable it to force
    /// pure pay-it-forward.
    pub direct_reciprocity: bool,
    /// Replace each finishing leecher with a fresh compliant newcomer of
    /// the same capacity (the §IV-I churn model).
    pub replace_on_finish: bool,
    /// Fraction of the file granted to each compliant leecher at join
    /// time, as randomly selected pre-occupied pieces (Fig. 6(b)).
    pub initial_piece_fraction: f64,
    /// Seconds between chain/leecher census samples for Fig. 10/11.
    pub sample_period: f64,
    /// Seconds of no progress after which a whitewashing free-rider
    /// abandons its identity and rejoins fresh.
    pub whitewash_patience: f64,
    /// Requestor piece-selection policy.
    pub piece_selection: PieceSelection,
    /// Seconds before the first retransmission of an unacknowledged
    /// report/key under fault injection; subsequent attempts back off by
    /// [`TChainConfig::retry_backoff`].
    pub retry_base: f64,
    /// Multiplicative backoff factor between retransmissions (≥ 1).
    pub retry_backoff: f64,
    /// Retransmission attempts before the sender gives up and leaves the
    /// transaction to the watchdog.
    pub max_retries: u32,
    /// Seconds between watchdog sweeps that close transactions stuck on
    /// crashed participants and trigger §II-B4 escrow repair. The
    /// watchdog only runs once a fault (crash or active plan) exists.
    pub watchdog_period: f64,
}

impl Default for TChainConfig {
    fn default() -> Self {
        TChainConfig {
            k_pending: 2,
            seeder_slots: 10,
            stall_timeout: 60.0,
            opportunistic_seeding: true,
            direct_reciprocity: true,
            replace_on_finish: false,
            initial_piece_fraction: 0.0,
            sample_period: 5.0,
            whitewash_patience: 45.0,
            piece_selection: PieceSelection::Rarest,
            retry_base: 2.0,
            retry_backoff: 2.0,
            max_retries: 6,
            watchdog_period: 5.0,
        }
    }
}

impl TChainConfig {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values (zero `k`, non-positive timeouts, or
    /// an initial piece fraction outside `[0, 1]`).
    pub fn validate(&self) {
        assert!(self.k_pending >= 1, "k must be at least 1");
        assert!(self.seeder_slots >= 1, "seeder needs at least one slot");
        assert!(self.stall_timeout > 0.0, "stall timeout must be positive");
        assert!(
            (0.0..=1.0).contains(&self.initial_piece_fraction),
            "initial piece fraction in [0,1]"
        );
        assert!(self.sample_period > 0.0, "sample period must be positive");
        assert!(self.whitewash_patience > 0.0, "whitewash patience must be positive");
        if let PieceSelection::Streaming { window } = self.piece_selection {
            assert!(window >= 1, "streaming window of at least one piece");
        }
        assert!(self.retry_base > 0.0, "retry base must be positive");
        assert!(self.retry_backoff >= 1.0, "retry backoff must not shrink");
        assert!(self.watchdog_period > 0.0, "watchdog period must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TChainConfig::default();
        assert_eq!(c.k_pending, 2, "§II-D2 fixes k = 2");
        assert!(c.opportunistic_seeding);
        assert!(c.direct_reciprocity);
        assert!(!c.replace_on_finish);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "streaming window")]
    fn zero_window_rejected() {
        TChainConfig {
            piece_selection: PieceSelection::Streaming { window: 0 },
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        TChainConfig { k_pending: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "initial piece fraction")]
    fn bad_fraction_rejected() {
        TChainConfig { initial_piece_fraction: 1.5, ..Default::default() }.validate();
    }
}
