//! The T-Chain swarm driver — the paper's protocol, end to end.
//!
//! Implements §II (basic protocol, incentives, additional features) and the
//! attack responses of §III-A on top of the `tchain-proto` substrate:
//!
//! * **Initiation** — the seeder keeps [`TChainConfig::seeder_slots`]
//!   chain-opening uploads in flight, each to a randomly chosen interested
//!   neighbor (§II-B1).
//! * **Continuation** — when an encrypted piece arrives, a compliant
//!   requestor immediately reciprocates toward the designated payee,
//!   becoming the donor of the next transaction (§II-B2). Donors prefer
//!   *direct* reciprocity (designating themselves) and fall back to
//!   *indirect* (a random interested neighbor).
//! * **Termination** — when no payee exists the upload goes out
//!   unencrypted, releasing the recipient (§II-B3).
//! * **Newcomer bootstrapping** — a piece both the newcomer and the payee
//!   need is chosen, and the newcomer reciprocates by forwarding it
//!   re-encrypted (§II-D1).
//! * **Flow control** — a donor stops serving (and stops designating as
//!   payee) any neighbor with `k` pending un-reciprocated pieces (§II-D2).
//! * **Opportunistic seeding** — an idle leecher with a completed piece
//!   and no obligations opens a fresh chain itself (§II-D3).
//! * **Departure handling** — payees are reassigned and keys escrowed per
//!   §II-B4; broken chains are closed and counted.
//! * **Attacks** — free-riders hoard encrypted pieces (cheating), mount
//!   the large-view exploit and whitewash; colluders send false reception
//!   reports (§III-A4, §IV-C/D).
//!
//! One faithful-but-surprising consequence of §II-B3: when a swarm drains
//! down to the seeder plus a single remaining leecher, the termination
//! rule makes the seeder upload unencrypted pieces — even to a free-rider.
//! The paper notes free-riders "do not control newcomers' arrivals", i.e.
//! the exploit matters only in degenerate, nearly-empty swarms; measure
//! free-rider outcomes over the populated phase of a run (as §IV-C does).

use crate::arena::{Arena, Handle};
use crate::config::{PieceSelection, TChainConfig};
use crate::telemetry::Telemetry;
use crate::txn::{Chain, ChainEnd, ChainId, ChainOrigin, ChainStats, Transaction, TxnId, TxnState};
use std::collections::{HashMap, HashSet, VecDeque};
use tchain_attacks::{ColluderRegistry, PeerPlan, Strategy};
use tchain_crypto::Keyring;
use tchain_metrics::{RecoveryCounters, TimeSeries};
use tchain_obs::{
    trace_event, EndCause, Event, ExportStats, MetricMap, Phase, PhaseProfile, PhaseProfiler,
    RetryMsg, StatsRegistry, Tracer,
};
use tchain_proto::{ControlMsg, Envelope, PieceId, Role, SendOutcome, SwarmBase, SwarmConfig};
use tchain_sim::{DelayQueue, FaultPlan, Flow, NodeId, Periodic};

/// Maps the driver's [`ChainEnd`] onto the observability crate's
/// dependency-free mirror.
fn obs_cause(c: ChainEnd) -> EndCause {
    match c {
        ChainEnd::NoPayee => EndCause::NoPayee,
        ChainEnd::Departure => EndCause::Departure,
        ChainEnd::Stalled => EndCause::Stalled,
        ChainEnd::Collusion => EndCause::Collusion,
        ChainEnd::Crash => EndCause::Crash,
    }
}

/// Which control message a pending retransmission would re-send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetryKind {
    /// The reception report payee → donor (§II-B2 step 3).
    Report {
        /// The report is a collusion lie (§IV-D).
        falsified: bool,
    },
    /// The decryption key donor → requestor (§II-B2 step 4).
    Key,
}

/// One armed retransmission timer. Stale entries (the transaction moved
/// on or died) are no-ops when they fire.
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    txn: TxnId,
    kind: RetryKind,
    attempt: u32,
}

/// Per-peer protocol state, parallel to the [`tchain_proto::PeerTable`].
#[derive(Debug)]
struct PeerState {
    strategy: Strategy,
    /// Capacity the peer would contribute if compliant (kept for
    /// whitewash rejoins and churn replacements).
    planned_capacity: f64,
    /// Donor-side ledger (§II-D2): encrypted pieces uploaded to each
    /// neighbor and not yet covered by a reciprocation report.
    pending_to: HashMap<NodeId, u32>,
    /// Encrypted pieces received and not yet keyed (self is requestor).
    obligations: Vec<TxnId>,
    /// Pieces in flight toward us or held encrypted — excluded from our
    /// piece requests so donors do not upload duplicates.
    expecting: HashSet<PieceId>,
    /// Last time this peer completed a piece (whitewash trigger clock).
    last_progress: f64,
    /// The attacker's first identity and original join time (self for
    /// fresh peers) — lets experiments report a whitewashing free-rider's
    /// *true* download duration across identity resets.
    lineage: (NodeId, f64),
}

impl Default for PeerState {
    fn default() -> Self {
        PeerState {
            strategy: Strategy::default(),
            planned_capacity: 0.0,
            pending_to: HashMap::new(),
            obligations: Vec::new(),
            expecting: HashSet::new(),
            last_progress: 0.0,
            lineage: (NodeId(u32::MAX), 0.0),
        }
    }
}

/// A deferred join: churn replacement or whitewash rejoin, possibly
/// carrying pieces across identities.
#[derive(Debug)]
struct PendingJoin {
    at: f64,
    plan: PeerPlan,
    carry: Vec<PieceId>,
    /// Whitewash continuity: the attacker's original identity and first
    /// join time, threaded through identity resets.
    lineage: Option<(NodeId, f64)>,
}

/// The T-Chain protocol driver.
///
/// ```
/// use tchain_core::{TChainSwarm, TChainConfig};
/// use tchain_proto::{FileSpec, SwarmConfig};
/// use tchain_attacks::PeerPlan;
/// use tchain_sim::kbps;
///
/// let file = FileSpec::custom(16, 64.0 * 1024.0, 64.0 * 1024.0);
/// let plan: Vec<PeerPlan> =
///     (0..8).map(|i| PeerPlan::compliant(i as f64, kbps(800.0))).collect();
/// let mut swarm = TChainSwarm::new(SwarmConfig::paper(file), TChainConfig::default(), plan, 1);
/// swarm.run_until_done();
/// assert_eq!(swarm.completion_times(true).len(), 8);
/// ```
#[derive(Debug)]
pub struct TChainSwarm {
    base: SwarmBase,
    cfg: TChainConfig,
    seeder: NodeId,
    states: Vec<PeerState>,
    plan: Vec<PeerPlan>,
    next_arrival: usize,
    pending_joins: Vec<PendingJoin>,
    txns: Arena<Transaction>,
    chains: Arena<Chain>,
    stats: ChainStats,
    keyring: Keyring,
    colluders: ColluderRegistry,
    awaiting: VecDeque<(TxnId, f64)>,
    telemetry: Telemetry,
    chain_series: TimeSeries,
    leecher_series: TimeSeries,
    sample_timer: Periodic,
    rechoke_timer: Periodic,
    completed_buf: Vec<Flow>,
    txns_completed: u64,
    txns_aborted: u64,
    direct_txns: u64,
    indirect_txns: u64,
    false_reports: u64,
    recovery: RecoveryCounters,
    retries: DelayQueue<RetryEntry>,
    /// Parents whose payee crashed mid-reciprocation, queued for §II-B4
    /// reassignment at the next watchdog sweep.
    repair_queue: Vec<TxnId>,
    watchdog: Periodic,
    /// The watchdog only runs when a fault can actually occur (active
    /// plan or a scheduled crash), keeping fault-free runs bit-identical.
    watchdog_enabled: bool,
    planned_crashes: Vec<(f64, NodeId)>,
    /// Per-phase wall-clock profiler for [`TChainSwarm::step`]; disabled
    /// (branch-only) unless [`TChainSwarm::enable_profiling`] is called.
    profiler: PhaseProfiler,
}

impl TChainSwarm {
    /// Builds a swarm: one seeder plus the planned leecher arrivals.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TChainConfig::validate`]).
    pub fn new(scfg: SwarmConfig, cfg: TChainConfig, plan: Vec<PeerPlan>, seed: u64) -> Self {
        Self::with_faults(scfg, cfg, plan, seed, FaultPlan::none())
    }

    /// Builds a swarm with a fault-injection plan. [`FaultPlan::none()`]
    /// reproduces [`TChainSwarm::new`] bit for bit: the fault layer draws
    /// no randomness and the recovery machinery stays dormant.
    pub fn with_faults(
        scfg: SwarmConfig,
        cfg: TChainConfig,
        mut plan: Vec<PeerPlan>,
        seed: u64,
        fplan: FaultPlan,
    ) -> Self {
        cfg.validate();
        plan.sort_by(|a, b| a.at.total_cmp(&b.at));
        let any_crash = plan.iter().any(|p| p.crash_at.is_some());
        let mut base = SwarmBase::with_faults(scfg, seed, fplan);
        let watchdog_enabled = base.faults.active() || any_crash;
        let seeder = base.admit_seeder();
        let mut sw = TChainSwarm {
            base,
            cfg,
            seeder,
            states: Vec::new(),
            plan,
            next_arrival: 0,
            pending_joins: Vec::new(),
            txns: Arena::new(),
            chains: Arena::new(),
            stats: ChainStats::default(),
            keyring: Keyring::new(seed ^ 0x4B45_5952_494E_4721),
            colluders: ColluderRegistry::new(),
            awaiting: VecDeque::new(),
            telemetry: Telemetry::new(),
            chain_series: TimeSeries::new(),
            leecher_series: TimeSeries::new(),
            sample_timer: Periodic::new(cfg.sample_period),
            rechoke_timer: Periodic::new(10.0),
            completed_buf: Vec::new(),
            txns_completed: 0,
            txns_aborted: 0,
            direct_txns: 0,
            indirect_txns: 0,
            false_reports: 0,
            recovery: RecoveryCounters::default(),
            retries: DelayQueue::new(),
            repair_queue: Vec::new(),
            watchdog: Periodic::new(cfg.watchdog_period),
            watchdog_enabled,
            planned_crashes: Vec::new(),
            profiler: PhaseProfiler::disabled(),
        };
        sw.ensure_state(seeder);
        sw
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying swarm substrate (peers, mesh, flows, clock).
    pub fn base(&self) -> &SwarmBase {
        &self.base
    }

    /// The seeder's id.
    pub fn seeder(&self) -> NodeId {
        self.seeder
    }

    /// Protocol configuration.
    pub fn config(&self) -> &TChainConfig {
        &self.cfg
    }

    /// Chain statistics (Figs. 10/11).
    pub fn chain_stats(&self) -> &ChainStats {
        &self.stats
    }

    /// `(time, active chains)` census samples.
    pub fn chain_series(&self) -> &TimeSeries {
        &self.chain_series
    }

    /// `(time, alive leechers)` census samples.
    pub fn leecher_series(&self) -> &TimeSeries {
        &self.leecher_series
    }

    /// Completed transactions so far.
    pub fn txns_completed(&self) -> u64 {
        self.txns_completed
    }

    /// Aborted transactions so far.
    pub fn txns_aborted(&self) -> u64 {
        self.txns_aborted
    }

    /// `(direct, indirect)` reciprocity counts over started transactions.
    pub fn reciprocity_split(&self) -> (u64, u64) {
        (self.direct_txns, self.indirect_txns)
    }

    /// False reception reports accepted (collusion successes, §IV-D).
    pub fn false_reports(&self) -> u64 {
        self.false_reports
    }

    /// Recovery/fault counters: driver-side retry and repair tallies
    /// merged with the fault layer's delivery statistics.
    pub fn recovery_counters(&self) -> RecoveryCounters {
        let mut c = self.recovery;
        let fs = self.base.faults.stats();
        c.ctrl_sent = fs.sent;
        c.ctrl_dropped = fs.dropped + fs.partition_dropped;
        c.ctrl_delayed = fs.delayed;
        c.tracker_dropped = fs.tracker_dropped;
        c
    }

    /// Turns on structured event tracing with a ring buffer of `capacity`
    /// records. Tracing only *observes* the run — wall-clock time never
    /// feeds back into protocol decisions, so traced and untraced runs
    /// with the same seed stay bit-identical.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.base.enable_tracing(capacity);
    }

    /// Turns on per-phase wall-clock profiling of [`TChainSwarm::step`].
    pub fn enable_profiling(&mut self) {
        self.profiler = PhaseProfiler::enabled();
    }

    /// The event tracer (disabled unless
    /// [`TChainSwarm::enable_tracing`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.base.trace
    }

    /// Per-phase timing summary accumulated so far (empty when profiling
    /// is off).
    pub fn profile(&self) -> PhaseProfile {
        self.profiler.profile()
    }

    /// Every counter the run can report, as one flat named-metric map:
    /// chain statistics, recovery/fault counters, flow-scheduler and
    /// fault-layer tallies, transaction totals and tracer gauges.
    pub fn metrics(&self) -> MetricMap {
        let mut reg = StatsRegistry::new();
        self.stats.export_stats("chains.", &mut reg);
        self.recovery_counters().export_stats("recovery.", &mut reg);
        self.base.flows.stats().export_stats("flows.", &mut reg);
        reg.set("txns.completed", self.txns_completed);
        reg.set("txns.aborted", self.txns_aborted);
        reg.set("txns.direct", self.direct_txns);
        reg.set("txns.indirect", self.indirect_txns);
        reg.set("txns.false_reports", self.false_reports);
        if self.base.trace.is_enabled() {
            reg.set("trace.emitted", self.base.trace.emitted());
            reg.set("trace.peak_depth", self.base.trace.peak_depth() as u64);
            reg.set("trace.overwritten", self.base.trace.overwritten());
        }
        reg.snapshot()
    }

    /// Transactions currently live (for leak checks).
    pub fn live_transactions(&self) -> usize {
        self.txns.len()
    }

    /// Chains currently live (for leak checks).
    pub fn live_chains(&self) -> usize {
        self.chains.len()
    }

    /// Telemetry recorder; call [`Telemetry::watch`] before running to
    /// capture a peer's Fig. 5 piece timeline.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Telemetry recorder (read side).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Download completion times (seconds from join to finish) of leechers
    /// that finished, filtered to compliant or free-riding peers.
    pub fn completion_times(&self, compliant: bool) -> Vec<f64> {
        self.base
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher && p.compliant == compliant)
            .filter_map(|p| p.done_time.map(|d| d - p.join_time))
            .collect()
    }

    /// Free-rider outcomes by attacker *lineage* (whitewash resets
    /// collapse onto the first identity): completed download durations,
    /// and the number of lineages that never finished.
    pub fn free_rider_results(&self) -> (Vec<f64>, usize) {
        let mut durations: std::collections::HashMap<NodeId, f64> =
            std::collections::HashMap::new();
        let mut lineages: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        for p in self.base.peers.iter() {
            if p.role != Role::Leecher || p.compliant {
                continue;
            }
            let (root, first_join) = self.states[p.id.index()].lineage;
            lineages.insert(root);
            if let Some(d) = p.done_time {
                let dur = d - first_join;
                durations
                    .entry(root)
                    .and_modify(|v| *v = v.min(dur))
                    .or_insert(dur);
            }
        }
        let unfinished = lineages.len() - durations.len();
        (durations.into_values().collect(), unfinished)
    }

    /// Leechers (by compliance) that joined but never finished.
    pub fn unfinished(&self, compliant: bool) -> usize {
        self.base
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher && p.compliant == compliant)
            .filter(|p| p.done_time.is_none())
            .count()
    }

    /// Fairness factors (downloaded/uploaded pieces, §IV-H) of finished
    /// compliant leechers.
    pub fn fairness_factors(&self) -> Vec<f64> {
        self.base
            .peers
            .iter()
            .filter(|p| p.role == Role::Leecher && p.compliant && p.done_time.is_some())
            .filter_map(|p| p.fairness_factor())
            .collect()
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Runs until every planned compliant leecher finished (or departed),
    /// or until `max_time`.
    pub fn run_until_done(&mut self) {
        loop {
            self.step();
            let now = self.base.clock.now();
            if now >= self.base.cfg.max_time {
                break;
            }
            if self.next_arrival >= self.plan.len() && self.pending_joins.is_empty() {
                let any_compliant_left = self.base.peers.iter().any(|p| {
                    p.role == Role::Leecher && p.compliant && p.done_time.is_none() && p.alive()
                });
                if !any_compliant_left {
                    break;
                }
            }
        }
    }

    /// Runs until simulated time `t`.
    pub fn run_to(&mut self, t: f64) {
        while self.base.clock.now() < t {
            self.step();
        }
    }

    /// Advances the simulation by one step.
    pub fn step(&mut self) {
        let now = self.base.clock.tick();
        let p = self.profiler.begin();
        self.process_crashes(now);
        self.process_arrivals(now);
        self.profiler.end(Phase::Membership, p);
        if self.rechoke_timer.fire(now) {
            let p = self.profiler.begin();
            self.free_rider_round(now);
            self.refill_round();
            self.profiler.end(Phase::Rechoke, p);
        }
        let p = self.profiler.begin();
        self.seeder_round(now);
        if self.cfg.opportunistic_seeding {
            self.opportunistic_round(now);
        }
        self.profiler.end(Phase::ChainRounds, p);
        let mut completed = std::mem::take(&mut self.completed_buf);
        completed.clear();
        let p = self.profiler.begin();
        self.base.flows.advance(self.base.cfg.dt, &mut completed);
        self.profiler.end(Phase::FlowAdvance, p);
        let p = self.profiler.begin();
        for f in completed.drain(..) {
            self.on_upload_complete(f, now);
        }
        self.profiler.end(Phase::Completions, p);
        self.completed_buf = completed;
        // Delayed control messages whose delivery time has come (empty on
        // the fault-free path: everything was delivered synchronously).
        let p = self.profiler.begin();
        while let Some(env) = self.base.poll_control() {
            self.handle_ctrl(env, now);
        }
        self.profiler.end(Phase::ControlDrain, p);
        // Retransmission timers (armed only under active faults).
        let p = self.profiler.begin();
        while let Some(e) = self.retries.pop_due(now) {
            self.fire_retry(e, now);
        }
        self.profiler.end(Phase::Retries, p);
        let p = self.profiler.begin();
        self.stall_sweep(now);
        self.profiler.end(Phase::StallSweep, p);
        if self.watchdog_enabled && self.watchdog.fire(now) {
            let p = self.profiler.begin();
            self.watchdog_sweep(now);
            self.profiler.end(Phase::Watchdog, p);
        }
        if self.sample_timer.fire(now) {
            let p = self.profiler.begin();
            self.chain_series.push(now, self.stats.active as f64);
            let leechers = self
                .base
                .peers
                .iter_alive()
                .filter(|p| p.role == Role::Leecher)
                .count();
            self.leecher_series.push(now, leechers as f64);
            self.profiler.end(Phase::Sampling, p);
        }
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn ensure_state(&mut self, id: NodeId) {
        if id.index() >= self.states.len() {
            self.states.resize_with(id.index() + 1, PeerState::default);
        }
    }

    /// Fires due crash events: per-peer schedules from [`PeerPlan::crash_at`]
    /// and fraction-of-swarm events from the [`FaultPlan`]. No-op (and
    /// branch-only) when neither exists.
    fn process_crashes(&mut self, now: f64) {
        if !self.planned_crashes.is_empty() {
            let mut i = 0;
            while i < self.planned_crashes.len() {
                if self.planned_crashes[i].0 <= now {
                    let (_, id) = self.planned_crashes.swap_remove(i);
                    if self.base.peers.alive(id) {
                        self.crash_peer(id, now);
                    }
                } else {
                    i += 1;
                }
            }
        }
        if self.base.faults.crash_due(now) {
            let alive: Vec<NodeId> = self
                .base
                .peers
                .iter_alive()
                .filter(|p| p.role == Role::Leecher)
                .map(|p| p.id)
                .collect();
            let victims = self.base.faults.crash_victims(now, &alive);
            for v in victims {
                if self.base.peers.alive(v) {
                    self.crash_peer(v, now);
                }
            }
        }
    }

    fn process_arrivals(&mut self, now: f64) {
        while self.next_arrival < self.plan.len() && self.plan[self.next_arrival].at <= now {
            let p = self.plan[self.next_arrival];
            self.next_arrival += 1;
            self.admit_plan(p, Vec::new(), now);
        }
        if !self.pending_joins.is_empty() {
            let due: Vec<PendingJoin> = {
                let mut due = Vec::new();
                let mut i = 0;
                while i < self.pending_joins.len() {
                    if self.pending_joins[i].at <= now {
                        due.push(self.pending_joins.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                due
            };
            for j in due {
                self.admit_plan_lineage(j.plan, j.carry, now, j.lineage);
            }
        }
    }

    fn admit_plan(&mut self, plan: PeerPlan, carry: Vec<PieceId>, now: f64) -> NodeId {
        self.admit_plan_lineage(plan, carry, now, None)
    }

    fn admit_plan_lineage(
        &mut self,
        plan: PeerPlan,
        mut carry: Vec<PieceId>,
        now: f64,
        lineage: Option<(NodeId, f64)>,
    ) -> NodeId {
        let compliant = plan.strategy.uploads();
        // Fig. 6(b): compliant leechers may start with pre-occupied pieces.
        if compliant && self.cfg.initial_piece_fraction > 0.0 && carry.is_empty() {
            let n = (self.cfg.initial_piece_fraction * self.base.cfg.file.pieces as f64) as usize;
            let all: Vec<u32> = (0..self.base.cfg.file.pieces as u32).collect();
            carry = self.base.rng.sample(&all, n).into_iter().map(PieceId).collect();
        }
        let id = self.base.admit_with_pieces(
            Role::Leecher,
            plan.effective_capacity(),
            compliant,
            carry.iter().copied(),
        );
        self.ensure_state(id);
        let st = &mut self.states[id.index()];
        st.strategy = plan.strategy;
        st.planned_capacity = plan.capacity;
        st.last_progress = now;
        st.lineage = lineage.unwrap_or((id, now));
        if let Some(fr) = plan.strategy.free_rider() {
            if let Some(g) = fr.collude {
                self.colluders.register(id, g);
            }
        }
        if let Some(at) = plan.crash_at {
            self.planned_crashes.push((at.max(now), id));
            self.watchdog_enabled = true;
        }
        id
    }

    fn finish_peer(&mut self, id: NodeId, now: f64) {
        self.base.peers.get_mut(id).done_time = Some(now);
        if self.cfg.replace_on_finish {
            let cap = self.states[id.index()].planned_capacity;
            self.pending_joins.push(PendingJoin {
                at: now + self.base.cfg.dt,
                plan: PeerPlan::compliant(now + self.base.cfg.dt, cap),
                carry: Vec::new(),
                lineage: None,
            });
        }
        self.remove_peer(id, now);
    }

    /// Departure (completion, whitewash or forced): §II-B4 cleanup.
    fn remove_peer(&mut self, id: NodeId, now: f64) {
        let (out, inb) = self.base.depart(id);
        self.colluders.unregister(id);
        // Outbound flows: `id` was uploading — those transactions die, and
        // any parent they were reciprocating dies too (the obligated
        // requestor is gone).
        for f in out {
            let t = Handle::unpack(f.tag);
            let Some(txn) = self.txns.get(t) else { continue };
            let (req, piece, parent, donor, enc) =
                (txn.requestor, txn.piece, txn.parent, txn.donor, txn.encrypted());
            debug_assert_eq!(donor, id);
            if self.base.peers.alive(req) {
                self.states[req.index()].expecting.remove(&piece);
            }
            if enc {
                self.pending_dec(donor, req);
            }
            self.txn_terminal(t, TxnState::Aborted, ChainEnd::Departure);
            if let Some(p) = parent {
                // `id` owed this reciprocation; it will never come.
                if let Some(ptxn) = self.txns.get(p) {
                    let (pd, pr) = (ptxn.donor, ptxn.requestor);
                    debug_assert_eq!(pr, id);
                    self.pending_dec(pd, pr);
                    self.txn_terminal(p, TxnState::Aborted, ChainEnd::Departure);
                }
            }
        }
        // Inbound flows: pieces were being uploaded *to* `id`.
        for f in inb {
            let t = Handle::unpack(f.tag);
            let Some(txn) = self.txns.get(t) else { continue };
            let (donor, req, parent, enc) = (txn.donor, txn.requestor, txn.parent, txn.encrypted());
            debug_assert_eq!(req, id);
            if enc {
                self.pending_dec(donor, req);
            }
            self.txn_terminal(t, TxnState::Aborted, ChainEnd::Departure);
            if let Some(p) = parent {
                // The uploader was reciprocating toward the departed payee;
                // per §II-B4 the original donor designates a new payee.
                self.attempt_reciprocation(p, now);
            }
        }
        // Obligations this peer held die with it (donor ledgers keep the
        // pending marks; the stall sweep will close the chains).
        let obls = std::mem::take(&mut self.states[id.index()].obligations);
        for t in obls {
            self.txn_terminal(t, TxnState::Aborted, ChainEnd::Departure);
        }
    }

    /// Abrupt crash: unlike [`TChainSwarm::remove_peer`] there is no
    /// goodbye. In-flight uploads abort (the transport notices a dead TCP
    /// endpoint), but protocol-level obligations of the crashed peer stay
    /// live — the watchdog discovers them by timeout, and §II-B4 repair of
    /// interrupted reciprocations is deferred to the next sweep.
    fn crash_peer(&mut self, id: NodeId, now: f64) {
        self.recovery.crashes += 1;
        trace_event!(self.base.trace, now, Event::PeerCrash { peer: id.0 });
        let (out, inb) = self.base.depart(id);
        self.colluders.unregister(id);
        // Outbound flows: the crasher was uploading; the transport-level
        // abort is observable, so those transactions close immediately.
        for f in out {
            let t = Handle::unpack(f.tag);
            let Some(txn) = self.txns.get(t) else { continue };
            let (req, piece, donor, enc) = (txn.requestor, txn.piece, txn.donor, txn.encrypted());
            if self.base.peers.alive(req) {
                self.states[req.index()].expecting.remove(&piece);
            }
            if enc {
                self.pending_dec(donor, req);
            }
            // The parent this upload was reciprocating is NOT closed here:
            // its donor cannot see the crash and learns of it only when
            // the watchdog times the transaction out.
            self.txn_terminal(t, TxnState::Aborted, ChainEnd::Crash);
        }
        // Inbound flows: pieces were being uploaded *to* the crasher; the
        // uploader sees the reset and the original donor repairs per
        // §II-B4 at the next watchdog sweep.
        for f in inb {
            let t = Handle::unpack(f.tag);
            let Some(txn) = self.txns.get(t) else { continue };
            let (donor, req, parent, enc) = (txn.donor, txn.requestor, txn.parent, txn.encrypted());
            if enc {
                self.pending_dec(donor, req);
            }
            self.txn_terminal(t, TxnState::Aborted, ChainEnd::Crash);
            if let Some(p) = parent {
                self.repair_queue.push(p);
            }
        }
        // Obligations (encrypted pieces the crasher owed reciprocation
        // for) are deliberately left live: nobody was notified.
    }

    // ------------------------------------------------------------------
    // Ledger helpers (§II-D2)
    // ------------------------------------------------------------------

    fn pending_of(&self, donor: NodeId, to: NodeId) -> u32 {
        self.states[donor.index()].pending_to.get(&to).copied().unwrap_or(0)
    }

    fn pending_inc(&mut self, donor: NodeId, to: NodeId) {
        *self.states[donor.index()].pending_to.entry(to).or_insert(0) += 1;
    }

    fn pending_dec(&mut self, donor: NodeId, to: NodeId) {
        if let Some(c) = self.states[donor.index()].pending_to.get_mut(&to) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.states[donor.index()].pending_to.remove(&to);
            }
        }
    }

    /// Flow-control eligibility: fewer than `k` pending pieces (§II-D2).
    fn ledger_ok(&self, donor: NodeId, to: NodeId) -> bool {
        self.pending_of(donor, to) < self.cfg.k_pending
    }

    // ------------------------------------------------------------------
    // Transaction planning
    // ------------------------------------------------------------------

    /// Exclusive upper bound on selectable piece indices for `chooser`:
    /// unlimited under rarest-first, playback frontier + window under the
    /// streaming policy (§VI extension).
    fn selection_bound(&self, chooser: NodeId) -> u32 {
        match self.cfg.piece_selection {
            PieceSelection::Rarest => u32::MAX,
            PieceSelection::Streaming { window } => self
                .base
                .peers
                .get(chooser)
                .have
                .first_missing()
                .map(|p| p.0.saturating_add(window))
                .unwrap_or(u32::MAX),
        }
    }

    /// Picks the payee for a transaction `donor → requestor` carrying
    /// `piece` (§II-B2): the donor itself when direct reciprocity applies,
    /// otherwise a random eligible neighbor. Returns the payee (or `None`)
    /// plus whether any *interested* neighbor was excluded purely by the
    /// §II-D2 flow-control ledger — callers must distinguish "nobody wants
    /// anything from the requestor" (genuine §II-B3 termination) from
    /// "interested neighbors exist but are over their pending cap"
    /// (defer instead of gifting an unencrypted piece, which free-riders
    /// could otherwise farm).
    fn select_payee(
        &mut self,
        donor: NodeId,
        requestor: NodeId,
        piece: PieceId,
    ) -> (Option<NodeId>, bool) {
        // Direct reciprocity: the requestor has a piece the donor needs.
        if self.cfg.direct_reciprocity && donor != self.seeder {
            let d = self.base.peers.get(donor);
            let r = self.base.peers.get(requestor);
            if !d.have.is_complete() {
                let wants_direct = d
                    .have
                    .missing_from(&r.have)
                    .any(|p| !self.states[donor.index()].expecting.contains(&p));
                if wants_direct {
                    return (Some(donor), false);
                }
            }
        }
        // Indirect: a random neighbor of the donor needing at least one of
        // the requestor's pieces (including the piece about to arrive).
        let mut chosen: Option<NodeId> = None;
        let mut count = 0usize;
        let mut banned_interested = false;
        let neighbors: Vec<NodeId> = self.base.mesh.neighbors(donor).to_vec();
        for x in neighbors {
            if x == requestor || x == donor || !self.base.peers.alive(x) {
                continue;
            }
            let px = self.base.peers.get(x);
            if px.role != Role::Leecher || px.have.is_complete() {
                continue;
            }
            let wants =
                !px.have.has(piece) || px.have.wants_from(&self.base.peers.get(requestor).have);
            if !wants {
                continue;
            }
            if !self.ledger_ok(donor, x) {
                banned_interested = true;
                continue;
            }
            count += 1;
            if self.base.rng.below(count) == 0 {
                chosen = Some(x);
            }
        }
        (chosen, banned_interested)
    }

    /// Plans an initiation upload from `donor`'s own pieces to
    /// `requestor`: returns `(piece, payee)`. Handles the §II-D1 newcomer
    /// case (piece must be needed by requestor *and* payee). `None` when
    /// the donor has nothing the requestor can take.
    fn plan_upload(&mut self, donor: NodeId, requestor: NodeId) -> Option<(PieceId, Option<NodeId>)> {
        let newcomer = self.base.peers.get(requestor).have.count() == 0;
        if newcomer {
            // Choose payee first, then a piece both need.
            let mut candidates: Vec<NodeId> = self
                .base
                .mesh
                .neighbors(donor)
                .iter()
                .copied()
                .filter(|&x| x != requestor && x != donor && self.base.peers.alive(x))
                .filter(|&x| {
                    let px = self.base.peers.get(x);
                    px.role == Role::Leecher && !px.have.is_complete()
                })
                .filter(|&x| self.ledger_ok(donor, x))
                .collect();
            self.base.rng.shuffle(&mut candidates);
            let bound = self.selection_bound(requestor);
            for x in candidates {
                let piece = {
                    let r_have = &self.base.peers.get(requestor).have;
                    let d_have = &self.base.peers.get(donor).have;
                    let x_have = &self.base.peers.get(x).have;
                    let expecting = &self.states[requestor.index()].expecting;
                    self.base.mesh.lrf_pick_where(
                        requestor,
                        r_have,
                        d_have,
                        &mut self.base.rng,
                        |p| p.0 < bound && !x_have.has(p) && !expecting.contains(&p),
                    )
                };
                if let Some(p) = piece {
                    return Some((p, Some(x)));
                }
            }
            // Interested-but-banned neighbors exist: defer rather than
            // hand out an unencrypted piece (free-riders would farm it).
            let any_banned = self
                .base
                .mesh
                .neighbors(donor)
                .iter()
                .any(|&x| {
                    x != requestor
                        && x != donor
                        && self.base.peers.alive(x)
                        && self.base.peers.get(x).role == Role::Leecher
                        && !self.base.peers.get(x).have.is_complete()
                        && !self.ledger_ok(donor, x)
                });
            if any_banned {
                return None;
            }
            // No payee/piece combination: an unencrypted bootstrap upload
            // (the §II-B3 tiny-swarm case).
            let bound = self.selection_bound(requestor);
            let piece = {
                let r_have = &self.base.peers.get(requestor).have;
                let d_have = &self.base.peers.get(donor).have;
                let expecting = &self.states[requestor.index()].expecting;
                self.base.mesh.lrf_pick_where(
                    requestor,
                    r_have,
                    d_have,
                    &mut self.base.rng,
                    |p| p.0 < bound && !expecting.contains(&p),
                )
            };
            return piece.map(|p| (p, None));
        }
        let bound = self.selection_bound(requestor);
        let piece = {
            let r_have = &self.base.peers.get(requestor).have;
            let d_have = &self.base.peers.get(donor).have;
            let expecting = &self.states[requestor.index()].expecting;
            self.base.mesh.lrf_pick_where(requestor, r_have, d_have, &mut self.base.rng, |p| {
                p.0 < bound && !expecting.contains(&p)
            })
        }?;
        let (payee, banned) = self.select_payee(donor, requestor, piece);
        if payee.is_none() && banned {
            return None;
        }
        Some((piece, payee))
    }

    /// Creates a transaction and starts its upload flow.
    #[allow(clippy::too_many_arguments)]
    fn start_txn(
        &mut self,
        chain: ChainId,
        donor: NodeId,
        requestor: NodeId,
        piece: PieceId,
        payee: Option<NodeId>,
        parent: Option<TxnId>,
        now: f64,
    ) -> TxnId {
        let encrypted = payee.is_some();
        let key = if encrypted { Some(self.keyring.mint().0) } else { None };
        let forward = encrypted && self.base.peers.get(requestor).have.count() == 0;
        if let Some(c) = self.chains.get_mut(chain) {
            c.txns += 1;
            c.live_txns += 1;
        }
        match payee {
            Some(p) if p == donor => self.direct_txns += 1,
            Some(_) => self.indirect_txns += 1,
            None => {}
        }
        let t = self.txns.insert(Transaction {
            chain,
            donor,
            requestor,
            payee,
            piece,
            key,
            parent,
            state: TxnState::Uploading,
            started: now,
            awaiting_since: now,
            key_escrowed: false,
            forward_encrypted: forward,
            child_active: false,
            collusion: false,
        });
        trace_event!(
            self.base.trace,
            now,
            Event::TxnStart {
                txn: t.pack(),
                chain: chain.pack(),
                donor: donor.0,
                requestor: requestor.0,
                payee: payee.map(|p| p.0),
                piece: piece.0,
            }
        );
        self.base.flows.start(donor, requestor, self.base.cfg.file.piece_size, 1.0, t.pack());
        self.states[requestor.index()].expecting.insert(piece);
        if encrypted {
            self.pending_inc(donor, requestor);
        }
        t
    }

    /// Retires a transaction; closes its chain when it was the last live
    /// transaction.
    fn txn_terminal(&mut self, t: TxnId, state: TxnState, cause: ChainEnd) {
        let Some(txn) = self.txns.remove(t) else { return };
        trace_event!(
            self.base.trace,
            self.base.clock.now(),
            Event::TxnEnd {
                txn: t.pack(),
                chain: txn.chain.pack(),
                completed: state == TxnState::Completed,
                cause: obs_cause(cause),
            }
        );
        if let Some(parent) = txn.parent {
            if let Some(ptxn) = self.txns.get_mut(parent) {
                ptxn.child_active = false;
            }
        }
        match state {
            TxnState::Completed => self.txns_completed += 1,
            TxnState::Aborted => self.txns_aborted += 1,
            _ => unreachable!("terminal states only"),
        }
        if txn.requestor.index() < self.states.len() {
            self.states[txn.requestor.index()].obligations.retain(|&o| o != t);
        }
        if let Some(c) = self.chains.get_mut(txn.chain) {
            c.live_txns = c.live_txns.saturating_sub(1);
            if c.live_txns == 0 {
                match self.chains.remove(txn.chain) {
                    Some(chain) => {
                        trace_event!(
                            self.base.trace,
                            self.base.clock.now(),
                            Event::ChainClose {
                                chain: txn.chain.pack(),
                                length: chain.txns,
                                cause: obs_cause(cause),
                            }
                        );
                        self.stats.record_end(cause, chain.txns)
                    }
                    // A stale chain handle (repaired/duplicated bookkeeping
                    // under fault injection): count it rather than panic.
                    None => self.recovery.orphaned_txns += 1,
                }
            }
        } else {
            self.recovery.orphaned_txns += 1;
        }
    }

    fn new_chain(&mut self, origin: ChainOrigin, now: f64) -> ChainId {
        let id = self.chains.insert(Chain { origin, created_at: now, txns: 0, live_txns: 0 });
        trace_event!(
            self.base.trace,
            now,
            Event::ChainOpen { chain: id.pack(), seeder: origin == ChainOrigin::Seeder }
        );
        self.stats.active += 1;
        match origin {
            ChainOrigin::Seeder => self.stats.created_by_seeder += 1,
            ChainOrigin::Opportunistic => self.stats.created_by_leechers += 1,
        }
        id
    }

    // ------------------------------------------------------------------
    // Chain initiation (§II-B1, §II-D3)
    // ------------------------------------------------------------------

    fn seeder_round(&mut self, now: f64) {
        let seeder = self.seeder;
        let mut guard = 0;
        while self.base.flows.count_from(seeder) < self.cfg.seeder_slots {
            guard += 1;
            if guard > self.cfg.seeder_slots * 4 {
                break;
            }
            let mut requestor = None;
            let mut count = 0usize;
            let neighbors: Vec<NodeId> = self.base.mesh.neighbors(seeder).to_vec();
            for x in neighbors {
                if !self.base.peers.alive(x) {
                    continue;
                }
                let px = self.base.peers.get(x);
                if px.role != Role::Leecher || px.have.is_complete() {
                    continue;
                }
                if !self.ledger_ok(seeder, x) {
                    continue;
                }
                count += 1;
                if self.base.rng.below(count) == 0 {
                    requestor = Some(x);
                }
            }
            let Some(r) = requestor else { break };
            let Some((piece, payee)) = self.plan_upload(seeder, r) else { break };
            let chain = self.new_chain(ChainOrigin::Seeder, now);
            self.start_txn(chain, seeder, r, piece, payee, None, now);
        }
    }

    fn opportunistic_round(&mut self, now: f64) {
        let ids: Vec<NodeId> = self
            .base
            .peers
            .iter_alive()
            .filter(|p| p.role == Role::Leecher && p.compliant)
            .filter(|p| p.have.count() >= 1 && !p.have.is_complete())
            .map(|p| p.id)
            .collect();
        for b in ids {
            if !self.states[b.index()].obligations.is_empty() {
                continue;
            }
            if self.base.flows.count_from(b) > 0 {
                continue;
            }
            // Pick a requestor needing one of B's pieces.
            let mut requestor = None;
            let mut count = 0usize;
            let neighbors: Vec<NodeId> = self.base.mesh.neighbors(b).to_vec();
            for x in neighbors {
                if !self.base.peers.alive(x) || x == b {
                    continue;
                }
                let px = self.base.peers.get(x);
                if px.role != Role::Leecher || px.have.is_complete() {
                    continue;
                }
                if !self.ledger_ok(b, x) {
                    continue;
                }
                if !px.have.wants_from(&self.base.peers.get(b).have) {
                    continue;
                }
                count += 1;
                if self.base.rng.below(count) == 0 {
                    requestor = Some(x);
                }
            }
            let Some(c) = requestor else { continue };
            let Some((piece, payee)) = self.plan_upload(b, c) else { continue };
            let chain = self.new_chain(ChainOrigin::Opportunistic, now);
            self.start_txn(chain, b, c, piece, payee, None, now);
        }
    }

    // ------------------------------------------------------------------
    // Upload completions and the exchange protocol (§II-B2)
    // ------------------------------------------------------------------

    fn on_upload_complete(&mut self, f: Flow, now: f64) {
        let t = Handle::unpack(f.tag);
        let Some(txn) = self.txns.get(t) else { return };
        let (donor, requestor, piece, payee, parent, encrypted) =
            (txn.donor, txn.requestor, txn.piece, txn.payee, txn.parent, txn.encrypted());
        trace_event!(
            self.base.trace,
            now,
            Event::UploadDone { txn: t.pack(), donor: donor.0, requestor: requestor.0 }
        );
        // The donor spent a piece upload's worth of bandwidth.
        self.base.peers.get_mut(donor).pieces_up += 1;
        // This upload reciprocates `parent`: the payee (this upload's
        // requestor) reports to the parent's donor, who releases the key.
        if let Some(p) = parent {
            self.send_report(p, false, 0, now);
        }
        if !self.base.peers.alive(requestor) {
            // The recipient departed in the same step (e.g. its file
            // completed via the parent's key release).
            if encrypted {
                self.pending_dec(donor, requestor);
            }
            self.txn_terminal(t, TxnState::Aborted, ChainEnd::Departure);
            return;
        }
        if !encrypted {
            // Unencrypted upload: the recipient is released from any
            // obligation and the chain terminates (§II-B3).
            self.states[requestor.index()].expecting.remove(&piece);
            self.txn_terminal(t, TxnState::Completed, ChainEnd::NoPayee);
            self.complete_piece_for(requestor, piece, now);
            return;
        }
        {
            // The report for `parent` above may have cascaded (a finished
            // peer departing can abort transactions); recover instead of
            // panicking if `t` was swept away.
            let Some(txn) = self.txns.get_mut(t) else {
                self.recovery.orphaned_txns += 1;
                return;
            };
            txn.state = TxnState::AwaitingReciprocation;
            txn.awaiting_since = now;
        }
        self.awaiting.push_back((t, now));
        self.states[requestor.index()].obligations.push(t);
        self.telemetry.on_encrypted(requestor, now);
        match self.states[requestor.index()].strategy {
            Strategy::Compliant => self.attempt_reciprocation(t, now),
            Strategy::FreeRider(_) => {
                // Cheating (§III-A2): hoard the encrypted piece. Colluders
                // short-circuit with a false report when the payee is a
                // conspirator (§III-A4).
                if let Some(p) = payee {
                    if self.base.peers.alive(p) && self.colluders.same_group(requestor, p) {
                        self.send_report(t, true, 0, now);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The control plane: reports and keys (§II-B2 steps 3–4)
    //
    // Without faults every send routes `Route::Now` and the whole
    // report → key → decrypt sequence runs synchronously, in exactly the
    // order the pre-fault driver executed it. Under an active plan a send
    // may be delayed (queued on the substrate) or dropped, and the sender
    // arms an exponential-backoff retransmission timer.
    // ------------------------------------------------------------------

    /// The parent's payee sends the reception report to the parent's
    /// donor (truthfully after a real reciprocation, or `falsified` by a
    /// colluder, §IV-D). When the donor already departed the key sits in
    /// escrow with the payee (§II-B4) and no network hop is needed for
    /// the report — the payee *is* the reporter.
    fn send_report(&mut self, parent: TxnId, falsified: bool, attempt: u32, now: f64) {
        let Some(p) = self.txns.get(parent) else { return };
        if p.state != TxnState::AwaitingReciprocation {
            return;
        }
        let (donor, payee, escrowed) = (p.donor, p.payee, p.key_escrowed);
        let reporter = payee.unwrap_or(donor);
        if !self.base.peers.alive(donor) || escrowed {
            if !escrowed {
                self.recovery.keys_escrowed += 1;
                trace_event!(self.base.trace, now, Event::KeyEscrowed { txn: parent.pack() });
                if let Some(t) = self.txns.get_mut(parent) {
                    t.key_escrowed = true;
                }
            }
            self.handle_report(parent, falsified, now);
            return;
        }
        trace_event!(
            self.base.trace,
            now,
            Event::ReportSent { txn: parent.pack(), from: reporter.0, to: donor.0, falsified }
        );
        let env = Envelope {
            from: reporter,
            to: donor,
            msg: ControlMsg::Report { txn: parent.pack(), falsified },
            sent_at: now,
        };
        match self.base.send_control(env) {
            SendOutcome::Delivered(env) => self.handle_ctrl(env, now),
            SendOutcome::Scheduled(_) | SendOutcome::Dropped => {
                // Colluders do not retransmit their lies; compliant payees
                // retry with backoff until the cap.
                if !falsified {
                    self.arm_retry(parent, RetryKind::Report { falsified }, attempt, now);
                }
            }
        }
    }

    /// Dispatches a delivered control message.
    fn handle_ctrl(&mut self, env: Envelope, now: f64) {
        match env.msg {
            ControlMsg::Report { txn, falsified } => {
                self.handle_report(Handle::unpack(txn), falsified, now);
            }
            ControlMsg::Key { txn } => self.deliver_key(Handle::unpack(txn), now),
        }
    }

    /// The donor (or escrow-holding payee) accepted a reception report
    /// and releases the key toward the requestor. Duplicate reports for a
    /// transaction already in [`TxnState::KeyInFlight`] re-send the key —
    /// the natural recovery when the first key message was lost.
    fn handle_report(&mut self, parent: TxnId, falsified: bool, now: f64) {
        let Some(p) = self.txns.get_mut(parent) else { return };
        match p.state {
            TxnState::AwaitingReciprocation => {
                p.state = TxnState::KeyInFlight;
                p.awaiting_since = now;
                p.collusion = falsified;
                if falsified {
                    self.false_reports += 1;
                }
                self.send_key(parent, 0, now);
            }
            TxnState::KeyInFlight => self.send_key(parent, 0, now),
            _ => {}
        }
    }

    /// Sends the decryption key to the requestor: from the donor, or from
    /// the escrow-holding payee when the donor is gone (§II-B4).
    fn send_key(&mut self, parent: TxnId, attempt: u32, now: f64) {
        let Some(p) = self.txns.get(parent) else { return };
        let (donor, requestor, payee, escrowed) = (p.donor, p.requestor, p.payee, p.key_escrowed);
        let via_escrow = escrowed || !self.base.peers.alive(donor);
        let from = if via_escrow {
            if !escrowed {
                self.recovery.keys_escrowed += 1;
                trace_event!(self.base.trace, now, Event::KeyEscrowed { txn: parent.pack() });
                if let Some(t) = self.txns.get_mut(parent) {
                    t.key_escrowed = true;
                }
            }
            payee.unwrap_or(donor)
        } else {
            donor
        };
        trace_event!(
            self.base.trace,
            now,
            Event::KeySent {
                txn: parent.pack(),
                from: from.0,
                to: requestor.0,
                escrowed: via_escrow,
            }
        );
        let env = Envelope {
            from,
            to: requestor,
            msg: ControlMsg::Key { txn: parent.pack() },
            sent_at: now,
        };
        match self.base.send_control(env) {
            SendOutcome::Delivered(env) => self.handle_ctrl(env, now),
            SendOutcome::Scheduled(_) | SendOutcome::Dropped => {
                self.arm_retry(parent, RetryKind::Key, attempt, now);
            }
        }
    }

    /// The key arrived: the transaction completes and the requestor
    /// decrypts. Stale deliveries (duplicate keys, or the transaction was
    /// closed by the watchdog meanwhile) are no-ops.
    fn deliver_key(&mut self, parent: TxnId, now: f64) {
        let Some(p) = self.txns.get(parent) else { return };
        if !matches!(p.state, TxnState::KeyInFlight | TxnState::AwaitingReciprocation) {
            return;
        }
        let (donor, requestor, piece, collusion) = (p.donor, p.requestor, p.piece, p.collusion);
        trace_event!(
            self.base.trace,
            now,
            Event::KeyDelivered { txn: parent.pack(), requestor: requestor.0, piece: piece.0 }
        );
        let cause = if collusion { ChainEnd::Collusion } else { ChainEnd::NoPayee };
        self.pending_dec(donor, requestor);
        self.txn_terminal(parent, TxnState::Completed, cause);
        if self.base.peers.alive(requestor) {
            self.telemetry.on_decrypted(requestor, now);
            self.states[requestor.index()].expecting.remove(&piece);
            self.complete_piece_for(requestor, piece, now);
        }
    }

    /// Arms a retransmission timer with exponential backoff. Dormant
    /// without an active fault plan — on the fault-free path every send
    /// is delivered synchronously and no timer is ever armed.
    fn arm_retry(&mut self, t: TxnId, kind: RetryKind, attempt: u32, now: f64) {
        if !self.base.faults.active() {
            return;
        }
        if attempt >= self.cfg.max_retries {
            self.recovery.retry_exhausted += 1;
            return;
        }
        let delay = self.cfg.retry_base * self.cfg.retry_backoff.powi(attempt as i32);
        self.retries.push(now + delay, RetryEntry { txn: t, kind, attempt });
    }

    /// A retransmission timer fired: re-send if the transaction is still
    /// waiting on that message; otherwise the entry is stale and ignored.
    fn fire_retry(&mut self, e: RetryEntry, now: f64) {
        let Some(p) = self.txns.get(e.txn) else { return };
        match e.kind {
            RetryKind::Report { falsified } => {
                if p.state == TxnState::AwaitingReciprocation {
                    self.recovery.retransmissions += 1;
                    trace_event!(
                        self.base.trace,
                        now,
                        Event::Retry {
                            txn: e.txn.pack(),
                            msg: RetryMsg::Report,
                            attempt: e.attempt + 1,
                        }
                    );
                    self.send_report(e.txn, falsified, e.attempt + 1, now);
                }
            }
            RetryKind::Key => {
                if p.state == TxnState::KeyInFlight {
                    self.recovery.retransmissions += 1;
                    trace_event!(
                        self.base.trace,
                        now,
                        Event::Retry { txn: e.txn.pack(), msg: RetryMsg::Key, attempt: e.attempt + 1 }
                    );
                    self.send_key(e.txn, e.attempt + 1, now);
                }
            }
        }
    }

    /// Watchdog sweep (runs every [`TChainConfig::watchdog_period`] when
    /// faults are possible): repairs reciprocations interrupted by a
    /// payee crash (§II-B4 reassignment), escrows keys whose donor died
    /// with the key in flight, closes transactions stuck on a crashed
    /// requestor, and re-kicks key deliveries that exhausted their
    /// retries.
    fn watchdog_sweep(&mut self, now: f64) {
        // Deferred §II-B4 repair: the original donor designates a new
        // payee for reciprocations cut short by a payee crash.
        let repairs = std::mem::take(&mut self.repair_queue);
        for t in repairs {
            let Some(txn) = self.txns.get(t) else { continue };
            if txn.state == TxnState::AwaitingReciprocation && !txn.child_active {
                self.recovery.payees_reassigned += 1;
                trace_event!(self.base.trace, now, Event::PayeeReassigned { txn: t.pack() });
                self.attempt_reciprocation(t, now);
            }
        }
        let live: Vec<TxnId> = self.txns.iter().map(|(h, _)| h).collect();
        for t in live {
            let Some(txn) = self.txns.get(t) else { continue };
            if !matches!(txn.state, TxnState::AwaitingReciprocation | TxnState::KeyInFlight) {
                continue;
            }
            let (donor, requestor, state) = (txn.donor, txn.requestor, txn.state);
            if !self.base.peers.alive(requestor) {
                // The obligated requestor crashed: nothing can complete
                // this transaction; close it and account the chain.
                self.recovery.watchdog_closures += 1;
                self.recovery.broken_chains += 1;
                trace_event!(self.base.trace, now, Event::WatchdogClose { txn: t.pack() });
                self.pending_dec(donor, requestor);
                self.txn_terminal(t, TxnState::Aborted, ChainEnd::Crash);
            } else if state == TxnState::KeyInFlight {
                let stuck = now - txn.awaiting_since > self.cfg.stall_timeout;
                if !self.base.peers.alive(donor) && !txn.key_escrowed {
                    // Donor crashed mid key-release: §II-B4 escrow takes
                    // over (send_key notices the dead donor).
                    self.send_key(t, 0, now);
                } else if stuck {
                    // All retries lost; give the key a fresh budget so the
                    // transaction terminates with probability one.
                    if let Some(txn) = self.txns.get_mut(t) {
                        txn.awaiting_since = now;
                    }
                    self.recovery.retransmissions += 1;
                    self.send_key(t, 0, now);
                }
            }
        }
    }

    /// The requestor of `t` (compliant) reciprocates toward the designated
    /// payee, reassigning the payee per §II-B4 when needed.
    fn attempt_reciprocation(&mut self, t: TxnId, now: f64) {
        let Some(txn) = self.txns.get(t) else { return };
        if txn.state != TxnState::AwaitingReciprocation || txn.child_active {
            return;
        }
        let (donor, r, piece, forward, chain) =
            (txn.donor, txn.requestor, txn.piece, txn.forward_encrypted, txn.chain);
        if !self.base.peers.alive(r) {
            return;
        }
        // Encrypted transactions always carry a payee; if repair ever
        // leaves one without, release the key rather than panic.
        let Some(mut payee) = txn.payee else {
            self.recovery.orphaned_txns += 1;
            self.release_without_reciprocation(t, now, ChainEnd::NoPayee);
            return;
        };
        for _attempt in 0..8 {
            // Is the current payee usable?
            let usable = payee != r
                && self.base.peers.alive(payee)
                && self.ledger_ok(r, payee)
                && {
                    let ph = &self.base.peers.get(payee).have;
                    !ph.is_complete()
                        && if forward {
                            !ph.has(piece)
                        } else {
                            ph.wants_from(&self.base.peers.get(r).have)
                        }
                };
            if usable {
                // Choose the reciprocation piece.
                let piece2 = if forward {
                    Some(piece)
                } else {
                    let bound = self.selection_bound(payee);
                    let p_have = &self.base.peers.get(payee).have;
                    let r_have = &self.base.peers.get(r).have;
                    let expecting = &self.states[payee.index()].expecting;
                    self.base.mesh.lrf_pick_where(payee, p_have, r_have, &mut self.base.rng, |p| {
                        p.0 < bound && !expecting.contains(&p)
                    })
                };
                if let Some(p2) = piece2 {
                    // §II-B1: if the payee is not a neighbor, connect first.
                    if !self.base.mesh.are_neighbors(r, payee) {
                        self.base.mesh.connect(r, payee, &self.base.peers);
                    }
                    // For the reciprocation the upload must happen; if no
                    // payee is available (even if only because of ledger
                    // bans) the upload goes out unencrypted (§II-B3).
                    let (child_payee, _banned) = self.select_payee(r, payee, p2);
                    self.start_txn(chain, r, payee, p2, child_payee, Some(t), now);
                    if let Some(txn) = self.txns.get_mut(t) {
                        txn.child_active = true;
                    }
                    return;
                }
            }
            // Reassign: the donor picks a new payee (§II-B4); if the donor
            // left, the escrowed key is released outright.
            if self.base.peers.alive(donor) {
                match self.select_payee_excluding(donor, r, piece, payee) {
                    Ok(np) => {
                        payee = np;
                        if let Some(txn) = self.txns.get_mut(t) {
                            txn.payee = Some(np);
                        }
                        continue;
                    }
                    Err(true) => {
                        // Interested neighbors exist but are over their
                        // pending cap: defer; the sweep retries later.
                        return;
                    }
                    Err(false) => {
                        self.release_without_reciprocation(t, now, ChainEnd::NoPayee);
                        return;
                    }
                }
            } else {
                self.release_without_reciprocation(t, now, ChainEnd::Departure);
                return;
            }
        }
        // Could not converge on a payee: release (extremely rare).
        self.release_without_reciprocation(t, now, ChainEnd::NoPayee);
    }

    /// Payee reselection that avoids the just-failed payee. `Ok(payee)` on
    /// success, `Err(true)` when interested-but-banned neighbors force a
    /// deferral, `Err(false)` when nobody is interested at all.
    fn select_payee_excluding(
        &mut self,
        donor: NodeId,
        requestor: NodeId,
        piece: PieceId,
        exclude: NodeId,
    ) -> Result<NodeId, bool> {
        for _ in 0..4 {
            let (p, banned) = self.select_payee(donor, requestor, piece);
            let Some(p) = p else { return Err(banned) };
            if p != exclude {
                return Ok(p);
            }
            // Direct reciprocity returned the excluded payee: the donor
            // itself was the failed payee; no reassignment possible.
            if p == donor {
                return Err(false);
            }
        }
        Err(false)
    }

    /// No payee can be found for an owed reciprocation: in the spirit of
    /// §II-B3's termination, the donor releases the key and the chain ends.
    fn release_without_reciprocation(&mut self, t: TxnId, now: f64, cause: ChainEnd) {
        let Some(txn) = self.txns.get(t) else { return };
        let (donor, requestor, piece) = (txn.donor, txn.requestor, txn.piece);
        self.pending_dec(donor, requestor);
        self.txn_terminal(t, TxnState::Completed, cause);
        if self.base.peers.alive(requestor) {
            self.telemetry.on_decrypted(requestor, now);
            self.states[requestor.index()].expecting.remove(&piece);
            self.complete_piece_for(requestor, piece, now);
        }
    }

    fn complete_piece_for(&mut self, id: NodeId, piece: PieceId, now: f64) {
        if !self.base.peers.alive(id) {
            return;
        }
        self.telemetry.on_complete(id, piece, now);
        self.states[id.index()].last_progress = now;
        let done = self.base.grant_piece(id, piece);
        if done {
            self.finish_peer(id, now);
        }
    }

    // ------------------------------------------------------------------
    // Sweeps and attacker behaviour
    // ------------------------------------------------------------------

    /// Closes chains whose requestor never reciprocated (free-riding).
    fn stall_sweep(&mut self, now: f64) {
        while let Some(&(t, since)) = self.awaiting.front() {
            if now - since < self.cfg.stall_timeout {
                break;
            }
            self.awaiting.pop_front();
            let Some(txn) = self.txns.get(t) else { continue };
            if txn.state != TxnState::AwaitingReciprocation {
                continue;
            }
            let requestor = txn.requestor;
            let stalled = !self.base.peers.alive(requestor)
                || self.states[requestor.index()].strategy.is_free_rider();
            if stalled {
                // The free-rider keeps the (useless) encrypted piece; the
                // donor's ledger keeps the pending marks — the ban of
                // §II-D2. The piece may be re-served by someone else.
                if self.base.peers.alive(requestor) {
                    let piece = txn.piece;
                    self.states[requestor.index()].expecting.remove(&piece);
                }
                self.txn_terminal(t, TxnState::Aborted, ChainEnd::Stalled);
            } else {
                // A compliant requestor is deferred (payees over the
                // pending cap) or mid-retry: try again and re-arm.
                self.attempt_reciprocation(t, now);
                if self.txns.get(t).is_some() {
                    self.awaiting.push_back((t, now));
                }
            }
        }
    }

    fn refill_round(&mut self) {
        let ids: Vec<NodeId> = self
            .base
            .peers
            .iter_alive()
            .filter(|p| p.role == Role::Leecher)
            .map(|p| p.id)
            .collect();
        for id in ids {
            self.base.maybe_refill(id);
        }
    }

    fn free_rider_round(&mut self, now: f64) {
        let riders: Vec<NodeId> = self
            .base
            .peers
            .iter_alive()
            .filter(|p| !p.compliant)
            .map(|p| p.id)
            .collect();
        for id in riders {
            let Strategy::FreeRider(frc) = self.states[id.index()].strategy else { continue };
            if frc.whitewash && now - self.states[id.index()].last_progress > self.cfg.whitewash_patience
            {
                // Abandon this identity, keep the downloaded pieces, and
                // rejoin shortly as a "newcomer".
                let carry: Vec<PieceId> = self.base.peers.get(id).have.iter_set().collect();
                let plan = PeerPlan {
                    at: now + 5.0,
                    capacity: self.states[id.index()].planned_capacity,
                    strategy: self.states[id.index()].strategy,
                    crash_at: None,
                };
                let lineage = self.states[id.index()].lineage;
                self.remove_peer(id, now);
                self.pending_joins.push(PendingJoin {
                    at: now + 5.0,
                    plan,
                    carry,
                    lineage: Some(lineage),
                });
                continue;
            }
            if frc.large_view {
                self.base.acquire_neighbors(id, usize::MAX);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_proto::FileSpec;
    use tchain_sim::kbps;

    fn small_file(pieces: usize) -> FileSpec {
        FileSpec::custom(pieces, tchain_sim::kib(64.0), tchain_sim::kib(64.0))
    }

    fn flash_plan(n: usize, cap_kbps: f64) -> Vec<PeerPlan> {
        (0..n).map(|i| PeerPlan::compliant(0.5 + i as f64 * 0.01, kbps(cap_kbps))).collect()
    }

    #[test]
    fn tiny_swarm_single_leecher_gets_unencrypted_file() {
        // §II-B3 extreme case: one seeder, one leecher → the seeder
        // effectively uploads the file unencrypted.
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(8)),
            TChainConfig::default(),
            vec![PeerPlan::compliant(1.0, kbps(400.0))],
            7,
        );
        sw.run_until_done();
        let times = sw.completion_times(true);
        assert_eq!(times.len(), 1, "the lone leecher finishes");
        assert_eq!(sw.unfinished(true), 0);
    }

    #[test]
    fn compliant_swarm_all_finish() {
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(32)),
            TChainConfig::default(),
            flash_plan(20, 800.0),
            11,
        );
        sw.run_until_done();
        assert_eq!(sw.completion_times(true).len(), 20, "everyone finishes");
        assert!(sw.txns_completed() > 0);
        // Chains were actually used: both seeder and opportunistic.
        assert!(sw.chain_stats().created_by_seeder > 0);
    }

    #[test]
    fn free_riders_never_finish_without_collusion() {
        // §IV-C headline: "not a single free-rider completed the download".
        let mut plan = flash_plan(16, 800.0);
        for i in 0..4 {
            plan.push(PeerPlan::free_rider(0.6 + i as f64 * 0.01, kbps(800.0)));
        }
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(32)),
            TChainConfig::default(),
            plan,
            13,
        );
        // Measure while the swarm is populated, as §IV-C does. (Once every
        // compliant leecher has drained, a tiny swarm degenerates to the
        // §II-B3 seeder-to-single-leecher case and the seeder legitimately
        // uploads unencrypted pieces — see the module docs.)
        sw.run_until_done();
        assert_eq!(sw.completion_times(true).len(), 16, "compliant leechers finish");
        assert_eq!(sw.completion_times(false).len(), 0, "free-riders never do");
    }

    #[test]
    fn colluding_free_riders_can_finish_but_slowly() {
        use tchain_attacks::GroupId;
        let mut plan = flash_plan(24, 800.0);
        for i in 0..8 {
            plan.push(PeerPlan {
                at: 0.6 + i as f64 * 0.01,
                capacity: kbps(800.0),
                strategy: Strategy::colluding_free_rider(GroupId(0)),
                crash_at: None,
            });
        }
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(16)),
            TChainConfig { whitewash_patience: 1e9, ..Default::default() },
            plan,
            17,
        );
        sw.run_to(8000.0);
        let compliant = sw.completion_times(true);
        assert_eq!(compliant.len(), 24);
        assert!(sw.false_reports() > 0, "collusion produced false reports");
        // Colluders make *some* progress (unlike plain free-riders), even
        // if most never finish in this window.
        let colluder_pieces: u64 = sw
            .base()
            .peers
            .iter()
            .filter(|p| !p.compliant)
            .map(|p| p.pieces_down)
            .sum();
        assert!(colluder_pieces > 0, "collusion yields some pieces");
        if !sw.completion_times(false).is_empty() {
            let mean_c = compliant.iter().sum::<f64>() / compliant.len() as f64;
            let fr = sw.completion_times(false);
            let mean_f = fr.iter().sum::<f64>() / fr.len() as f64;
            assert!(mean_f > mean_c, "colluders are slower than compliant leechers");
        }
    }

    #[test]
    fn direct_and_indirect_reciprocity_both_occur() {
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(32)),
            TChainConfig::default(),
            flash_plan(20, 800.0),
            19,
        );
        sw.run_until_done();
        let (direct, indirect) = sw.reciprocity_split();
        assert!(direct > 0, "direct reciprocity used");
        assert!(indirect > 0, "indirect reciprocity used");
    }

    #[test]
    fn fairness_factors_near_one_without_free_riders() {
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(32)),
            TChainConfig::default(),
            flash_plan(20, 800.0),
            23,
        );
        sw.run_until_done();
        let ff = sw.fairness_factors();
        assert!(!ff.is_empty());
        let mean = ff.iter().sum::<f64>() / ff.len() as f64;
        assert!((0.5..2.0).contains(&mean), "fairness factor mean {mean} should be near 1");
    }

    #[test]
    fn pending_ledger_bans_unresponsive_neighbors() {
        let mut plan = flash_plan(8, 800.0);
        plan.push(PeerPlan::free_rider(0.6, kbps(800.0)));
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(16)),
            TChainConfig { whitewash_patience: 1e9, ..Default::default() },
            plan,
            29,
        );
        sw.run_to(500.0);
        // The free-rider accumulated pending marks at some donor and the
        // ledger caps them at k.
        let fr = sw
            .base()
            .peers
            .iter()
            .find(|p| !p.compliant)
            .map(|p| p.id)
            .expect("free-rider joined");
        let max_pending = sw
            .states
            .iter()
            .flat_map(|s| s.pending_to.get(&fr).copied())
            .max()
            .unwrap_or(0);
        assert!(max_pending <= sw.cfg.k_pending, "ledger bound respected: {max_pending}");
    }

    #[test]
    fn chains_close_when_swarm_drains() {
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(16)),
            TChainConfig::default(),
            flash_plan(10, 800.0),
            31,
        );
        sw.run_until_done();
        sw.run_to(sw.base().clock.now() + sw.cfg.stall_timeout * 2.0);
        assert_eq!(sw.chains.len(), 0, "no chains outlive the swarm");
        assert_eq!(sw.txns.len(), 0, "no transactions outlive the swarm");
        assert_eq!(sw.chain_stats().active, 0);
    }

    #[test]
    fn initial_piece_fraction_preloads_peers() {
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(32)),
            TChainConfig { initial_piece_fraction: 0.5, ..Default::default() },
            flash_plan(6, 800.0),
            37,
        );
        sw.run_to(2.0);
        for p in sw.base().peers.iter().filter(|p| p.role == Role::Leecher) {
            assert!(p.have.count() >= 16, "half the pieces preloaded, got {}", p.have.count());
        }
    }

    #[test]
    fn churn_replacement_keeps_population() {
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(4)),
            TChainConfig { replace_on_finish: true, ..Default::default() },
            flash_plan(6, 1200.0),
            41,
        );
        sw.run_to(400.0);
        let finished = sw.completion_times(true).len();
        assert!(finished > 6, "replacements joined and finished too: {finished}");
    }

    #[test]
    fn stall_sweep_closes_free_rider_chains() {
        let mut plan = flash_plan(8, 800.0);
        plan.push(PeerPlan::free_rider(0.6, kbps(800.0)));
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(16)),
            TChainConfig { whitewash_patience: 1e9, stall_timeout: 30.0, ..Default::default() },
            plan,
            47,
        );
        sw.run_to(600.0);
        assert!(
            sw.chain_stats().ended_stalled > 0,
            "free-riding must terminate chains via the sweep (§IV-F)"
        );
        // Opportunistic seeding compensates: compliant leechers finish.
        assert_eq!(sw.completion_times(true).len(), 8);
    }

    #[test]
    fn departures_do_not_leak_transactions() {
        // High churn: replacements join constantly; after draining, no
        // transaction or chain may remain live.
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(8)),
            TChainConfig { replace_on_finish: true, ..Default::default() },
            flash_plan(10, 1200.0),
            53,
        );
        sw.run_to(300.0);
        assert!(sw.completion_times(true).len() > 10, "churn kept the swarm busy");
        // Consistency: created == ended + active at all times.
        let s = *sw.chain_stats();
        assert_eq!(s.created_total(), s.ended + s.active);
        assert!(sw.txns_aborted() > 0, "departures abort in-flight transactions");
    }

    #[test]
    fn streaming_window_orders_arrivals() {
        use crate::config::PieceSelection;
        let mk = |policy| {
            let mut sw = TChainSwarm::new(
                SwarmConfig::paper(small_file(64)),
                TChainConfig { piece_selection: policy, ..Default::default() },
                flash_plan(12, 800.0),
                59,
            );
            let target = tchain_sim::NodeId(1);
            sw.telemetry_mut().watch(target);
            sw.run_until_done();
            let tl = sw.telemetry().timeline(target).unwrap().clone();
            // Mean absolute displacement between completion order and
            // piece index: lower = more in-order.
            let n = tl.completions.len().max(1);
            tl.completions
                .iter()
                .enumerate()
                .map(|(i, (p, _))| (p.index() as f64 - i as f64).abs())
                .sum::<f64>()
                / n as f64
        };
        let lrf = mk(PieceSelection::Rarest);
        let windowed = mk(PieceSelection::Streaming { window: 8 });
        assert!(
            windowed < lrf * 0.5,
            "windowed selection must arrive far more in-order: {windowed:.1} vs {lrf:.1}"
        );
    }

    #[test]
    fn telemetry_timelines_track_backlog() {
        let mut sw = TChainSwarm::new(
            SwarmConfig::paper(small_file(32)),
            TChainConfig::default(),
            flash_plan(12, 400.0),
            43,
        );
        // The first planned leecher will be admitted as NodeId(1); watch it
        // from the very beginning so both timelines are complete.
        let target = tchain_sim::NodeId(1);
        sw.telemetry_mut().watch(target);
        sw.run_until_done();
        let tl = sw.telemetry().timeline(target).unwrap();
        if let (Some((_, enc)), Some((_, dec))) = (tl.encrypted.last(), tl.decrypted.last()) {
            assert!(enc >= dec, "encrypted line leads the key line");
        }
    }
}
