//! # tchain-core — the T-Chain incentive protocol
//!
//! The paper's primary contribution: Triangle Chaining (T-Chain), a
//! distributed fairness-enforcing incentive mechanism that couples a
//! symmetric-key **almost-fair exchange** with **pay-it-forward**
//! reciprocation.
//!
//! In each transaction a donor uploads an *encrypted* piece to a requestor
//! and names a payee; the decryption key is released only when the payee
//! reports that the requestor reciprocated. Fulfilling one transaction
//! starts the next, producing chains of multi-lateral exchanges with
//! barrier-free (yet non-exploitable) newcomer bootstrapping.
//!
//! * [`TChainSwarm`] — the full protocol driver over the `tchain-proto`
//!   substrate (see module docs of [`driver`] for the §-by-§ map).
//! * [`Transaction`]/[`Chain`]/[`ChainStats`] — the Table I objects.
//! * [`TChainConfig`] — protocol knobs (flow-control `k`, opportunistic
//!   seeding, stall sweeps, churn).
//! * [`Telemetry`] — opt-in piece timelines (Fig. 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod config;
pub mod driver;
mod telemetry;
mod txn;

pub use config::{PieceSelection, TChainConfig};
pub use driver::TChainSwarm;
pub use telemetry::{PieceTimeline, Telemetry};
pub use txn::{Chain, ChainEnd, ChainId, ChainOrigin, ChainStats, Transaction, TxnId, TxnState};
