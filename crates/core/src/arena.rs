//! A generational slot arena.
//!
//! Transactions and chains are born and die by the millions over a long
//! run; the arena recycles slots so memory stays proportional to the
//! number of *live* objects, while generation counters make stale handles
//! (e.g. a stall-sweep entry for an already-completed transaction)
//! detectably invalid instead of silently aliasing a recycled slot.

/// Handle into an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    slot: u32,
    gen: u32,
}

impl Handle {
    /// Packs the handle into a `u64` (for flow tags).
    pub fn pack(self) -> u64 {
        (self.slot as u64) << 32 | self.gen as u64
    }

    /// Unpacks a handle previously packed with [`Handle::pack`].
    pub fn unpack(v: u64) -> Self {
        Handle { slot: (v >> 32) as u32, gen: v as u32 }
    }
}

/// Slot arena with generation-checked handles and O(1) alloc/free.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Option<T>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena { slots: Vec::new(), gens: Vec::new(), free: Vec::new(), live: 0 }
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a value, returning its handle.
    pub fn insert(&mut self, value: T) -> Handle {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(value);
                Handle { slot, gen: self.gens[slot as usize] }
            }
            None => {
                self.slots.push(Some(value));
                self.gens.push(0);
                Handle { slot: (self.slots.len() - 1) as u32, gen: 0 }
            }
        }
    }

    /// Immutable access; `None` for stale or freed handles.
    pub fn get(&self, h: Handle) -> Option<&T> {
        if self.gens.get(h.slot as usize) == Some(&h.gen) {
            self.slots[h.slot as usize].as_ref()
        } else {
            None
        }
    }

    /// Mutable access; `None` for stale or freed handles.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        if self.gens.get(h.slot as usize) == Some(&h.gen) {
            self.slots[h.slot as usize].as_mut()
        } else {
            None
        }
    }

    /// Removes a value, bumping the slot's generation. `None` if stale.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        if self.gens.get(h.slot as usize) != Some(&h.gen) {
            return None;
        }
        let v = self.slots[h.slot as usize].take()?;
        self.gens[h.slot as usize] = self.gens[h.slot as usize].wrapping_add(1);
        self.free.push(h.slot);
        self.live -= 1;
        Some(v)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over live values with their handles.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            s.as_ref().map(|v| (Handle { slot: i as u32, gen: self.gens[i] }, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let h = a.insert("x");
        assert_eq!(a.get(h), Some(&"x"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(h), Some("x"));
        assert_eq!(a.get(h), None);
        assert!(a.is_empty());
    }

    #[test]
    fn stale_handles_rejected_after_reuse() {
        let mut a = Arena::new();
        let h1 = a.insert(1);
        a.remove(h1);
        let h2 = a.insert(2);
        // Slot reused but generation bumped.
        assert_ne!(h1, h2);
        assert_eq!(a.get(h1), None);
        assert_eq!(a.get(h2), Some(&2));
        assert_eq!(a.remove(h1), None, "double remove is a no-op");
    }

    #[test]
    fn pack_roundtrip() {
        let mut a = Arena::new();
        a.insert(0u8);
        let h = a.insert(1u8);
        a.remove(Handle::unpack(h.pack()));
        assert_eq!(a.len(), 1);
        let h3 = a.insert(3u8);
        assert_eq!(Handle::unpack(h3.pack()), h3);
    }

    #[test]
    fn iter_sees_only_live() {
        let mut a = Arena::new();
        let h1 = a.insert(1);
        let _h2 = a.insert(2);
        let h3 = a.insert(3);
        a.remove(h1);
        let mut vals: Vec<i32> = a.iter().map(|(_, &v)| v).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![2, 3]);
        assert_eq!(a.get(h3), Some(&3));
    }

    #[test]
    fn memory_is_reused() {
        let mut a = Arena::new();
        let mut handles = Vec::new();
        for round in 0..100 {
            for i in 0..50 {
                handles.push(a.insert(round * 50 + i));
            }
            for h in handles.drain(..) {
                a.remove(h);
            }
        }
        // 5000 inserts but only 50 slots ever allocated.
        assert!(a.slots.len() <= 50);
    }
}
