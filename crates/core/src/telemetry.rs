//! Per-peer piece timelines (Fig. 5) and swarm census series (Fig. 10).

use std::collections::HashMap;
use tchain_metrics::TimeSeries;
use tchain_proto::PieceId;
use tchain_sim::NodeId;

/// Cumulative encrypted-pieces-received vs. keys-received timelines for a
/// single leecher — the two lines of Fig. 5. The vertical gap between them
/// is the reciprocation backlog; its growth for a 400 Kbps leecher is the
/// paper's illustration of upload-bandwidth-limited key arrival.
#[derive(Debug, Clone, Default)]
pub struct PieceTimeline {
    /// `(time, cumulative encrypted pieces received)`.
    pub encrypted: TimeSeries,
    /// `(time, cumulative decryption keys received)` — i.e. pieces
    /// actually completed.
    pub decrypted: TimeSeries,
    /// `(piece, completion time)` in completion order — the raw material
    /// for the streaming extension's playback metrics.
    pub completions: Vec<(PieceId, f64)>,
}

/// Opt-in recorder: experiments register the peers they care about before
/// the run; everything else stays unrecorded so big runs stay lean.
#[derive(Debug, Default)]
pub struct Telemetry {
    timelines: HashMap<NodeId, PieceTimeline>,
    enc_counts: HashMap<NodeId, u64>,
    dec_counts: HashMap<NodeId, u64>,
}

impl Telemetry {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording `id`'s piece timeline.
    pub fn watch(&mut self, id: NodeId) {
        self.timelines.entry(id).or_default();
        self.enc_counts.entry(id).or_insert(0);
        self.dec_counts.entry(id).or_insert(0);
    }

    /// Whether `id` is being recorded.
    pub fn watching(&self, id: NodeId) -> bool {
        self.timelines.contains_key(&id)
    }

    /// Records an encrypted-piece arrival for a watched peer (no-op for
    /// unwatched peers).
    pub fn on_encrypted(&mut self, id: NodeId, now: f64) {
        if let Some(tl) = self.timelines.get_mut(&id) {
            let c = self.enc_counts.entry(id).or_insert(0);
            *c += 1;
            tl.encrypted.push(now, *c as f64);
        }
    }

    /// Records a key arrival (piece decrypted) for a watched peer.
    pub fn on_decrypted(&mut self, id: NodeId, now: f64) {
        if let Some(tl) = self.timelines.get_mut(&id) {
            let c = self.dec_counts.entry(id).or_insert(0);
            *c += 1;
            tl.decrypted.push(now, *c as f64);
        }
    }

    /// Records a completed piece (decrypted or received plain) for a
    /// watched peer.
    pub fn on_complete(&mut self, id: NodeId, piece: PieceId, now: f64) {
        if let Some(tl) = self.timelines.get_mut(&id) {
            tl.completions.push((piece, now));
        }
    }

    /// The recorded timeline for `id`, if watched.
    pub fn timeline(&self, id: NodeId) -> Option<&PieceTimeline> {
        self.timelines.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwatched_peers_cost_nothing() {
        let mut t = Telemetry::new();
        t.on_encrypted(NodeId(1), 0.0);
        t.on_decrypted(NodeId(1), 1.0);
        assert!(t.timeline(NodeId(1)).is_none());
        assert!(!t.watching(NodeId(1)));
    }

    #[test]
    fn watched_peer_accumulates() {
        let mut t = Telemetry::new();
        t.watch(NodeId(2));
        t.on_encrypted(NodeId(2), 1.0);
        t.on_encrypted(NodeId(2), 2.0);
        t.on_decrypted(NodeId(2), 3.0);
        t.on_complete(NodeId(2), PieceId(5), 3.0);
        let tl = t.timeline(NodeId(2)).unwrap();
        assert_eq!(tl.encrypted.last(), Some((2.0, 2.0)));
        assert_eq!(tl.decrypted.last(), Some((3.0, 1.0)));
        assert_eq!(tl.completions, vec![(PieceId(5), 3.0)]);
        // Encrypted line leads the decrypted line, as in Fig. 5.
        assert!(tl.encrypted.last().unwrap().1 >= tl.decrypted.last().unwrap().1);
    }
}
