//! Transactions and chains (§II-B, Table I).
//!
//! The jth transaction `t_j` involves a donor `D_j`, a requestor `R_j` and
//! a payee `P_j`: the donor uploads an encrypted piece to the requestor,
//! who must reciprocate by uploading a piece to the payee before the
//! decryption key is released. The payee of `t_j` is the requestor of
//! `t_{j+1}`; the sequence forms a *chain* with initiation, continuation
//! and termination phases (Fig. 1).

use crate::arena::Handle;
use tchain_crypto::KeyId;
use tchain_proto::PieceId;
use tchain_sim::NodeId;

/// Handle of a transaction in the driver's arena.
pub type TxnId = Handle;
/// Handle of a chain in the driver's arena.
pub type ChainId = Handle;

/// Lifecycle of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// The donor's (encrypted) piece is in flight to the requestor.
    Uploading,
    /// The piece arrived; the requestor owes reciprocation before the key
    /// is released.
    AwaitingReciprocation,
    /// Reciprocation was reported but the key-release message is still in
    /// flight (only reachable under fault injection; the instantaneous
    /// model goes straight to `Completed`).
    KeyInFlight,
    /// Reciprocation reported (or the upload was unencrypted); the key was
    /// released and the requestor completed the piece.
    Completed,
    /// Broken by departure, stall or cancellation.
    Aborted,
}

/// One triangle transaction.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// The chain this transaction extends.
    pub chain: ChainId,
    /// Uploader (`D_j`).
    pub donor: NodeId,
    /// Recipient who owes reciprocation (`R_j`).
    pub requestor: NodeId,
    /// Where the requestor must reciprocate (`P_j`); `None` for an
    /// unencrypted termination upload (§II-B3), which releases the
    /// requestor from any obligation.
    pub payee: Option<NodeId>,
    /// The piece uploaded donor → requestor (`p_{ij}`).
    pub piece: PieceId,
    /// The donor's key for this piece; `None` when unencrypted.
    pub key: Option<KeyId>,
    /// The transaction this upload reciprocates, if any (`t_{j-1}`).
    pub parent: Option<TxnId>,
    /// Current lifecycle state.
    pub state: TxnState,
    /// When the donor started uploading.
    pub started: f64,
    /// When the piece arrived at the requestor (start of the awaiting
    /// phase; meaningful once state ≥ `AwaitingReciprocation`).
    pub awaiting_since: f64,
    /// Donor departed after uploading; the key is held in escrow by the
    /// payee and released on reciprocation without the donor (§II-B4).
    pub key_escrowed: bool,
    /// Newcomer bootstrapping (§II-D1): the requestor has no completed
    /// pieces and will reciprocate by forwarding this very piece,
    /// re-encrypted under its own key.
    pub forward_encrypted: bool,
    /// A reciprocation upload for this transaction is currently in flight
    /// (guards against double-reciprocating on sweep retries).
    pub child_active: bool,
    /// The reception report that closed this transaction was falsified
    /// (collusion, §IV-D) — recorded when the report is accepted so the
    /// eventual key release ends the chain with the right cause.
    pub collusion: bool,
}

impl Transaction {
    /// Whether the upload was encrypted (requires reciprocation).
    pub fn encrypted(&self) -> bool {
        self.key.is_some()
    }

    /// Whether this transaction uses direct reciprocity (payee == donor).
    pub fn direct(&self) -> bool {
        self.payee == Some(self.donor)
    }
}

/// Who started a chain (Fig. 11 attributes chains to the seeder vs.
/// leechers' opportunistic seeding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainOrigin {
    /// Initiated by the seeder (initiation phase, §II-B1).
    Seeder,
    /// Initiated by a leecher via opportunistic seeding (§II-D3).
    Opportunistic,
}

/// Why a chain ended (the paper's chain-termination discussion, §II-B3
/// and §IV-F/G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainEnd {
    /// A donor uploaded an unencrypted piece because no payee existed
    /// (§II-B3's termination phase).
    NoPayee,
    /// A participant departed mid-transaction and no repair was possible.
    Departure,
    /// The requestor never reciprocated (free-riding); swept after the
    /// stall timeout.
    Stalled,
    /// A false reception report short-circuited the exchange (§IV-D);
    /// the chain has no continuation.
    Collusion,
    /// A participant crashed abruptly (fault injection); the chain could
    /// not be repaired via the §II-B4 escrow path.
    Crash,
}

/// A live chain.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Who initiated it.
    pub origin: ChainOrigin,
    /// Creation time.
    pub created_at: f64,
    /// Transactions spawned so far (chain length).
    pub txns: u32,
    /// Transactions currently live (chain ends when this returns to 0).
    pub live_txns: u32,
}

/// Aggregate chain statistics for Figs. 10 and 11.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChainStats {
    /// Chains created by the seeder (cumulative).
    pub created_by_seeder: u64,
    /// Chains created by leechers via opportunistic seeding (cumulative).
    pub created_by_leechers: u64,
    /// Chains currently active.
    pub active: u64,
    /// Ended chains by cause.
    pub ended_no_payee: u64,
    /// Ended due to departures.
    pub ended_departure: u64,
    /// Ended by the stall sweep (free-riding).
    pub ended_stalled: u64,
    /// Ended by collusion short-circuits.
    pub ended_collusion: u64,
    /// Ended by abrupt peer crashes (fault injection).
    pub ended_crash: u64,
    /// Sum of chain lengths (transactions) over ended chains.
    pub total_txns_ended: u64,
    /// Number of ended chains (for mean-length computation).
    pub ended: u64,
}

impl tchain_obs::ExportStats for ChainStats {
    fn export_stats(&self, prefix: &str, reg: &mut tchain_obs::StatsRegistry) {
        reg.add(&format!("{prefix}created_by_seeder"), self.created_by_seeder);
        reg.add(&format!("{prefix}created_by_leechers"), self.created_by_leechers);
        reg.add(&format!("{prefix}active"), self.active);
        reg.add(&format!("{prefix}ended_no_payee"), self.ended_no_payee);
        reg.add(&format!("{prefix}ended_departure"), self.ended_departure);
        reg.add(&format!("{prefix}ended_stalled"), self.ended_stalled);
        reg.add(&format!("{prefix}ended_collusion"), self.ended_collusion);
        reg.add(&format!("{prefix}ended_crash"), self.ended_crash);
        reg.add(&format!("{prefix}total_txns_ended"), self.total_txns_ended);
        reg.add(&format!("{prefix}ended"), self.ended);
    }
}

impl ChainStats {
    /// Cumulative chains created.
    pub fn created_total(&self) -> u64 {
        self.created_by_seeder + self.created_by_leechers
    }

    /// Mean transactions per ended chain.
    pub fn mean_length(&self) -> f64 {
        if self.ended == 0 {
            0.0
        } else {
            self.total_txns_ended as f64 / self.ended as f64
        }
    }

    /// Fraction of created chains that came from opportunistic seeding
    /// (Fig. 11(b)).
    pub fn opportunistic_fraction(&self) -> f64 {
        let total = self.created_total();
        if total == 0 {
            0.0
        } else {
            self.created_by_leechers as f64 / total as f64
        }
    }

    /// Records an ended chain.
    pub fn record_end(&mut self, cause: ChainEnd, length: u32) {
        self.ended += 1;
        self.total_txns_ended += length as u64;
        self.active = self.active.saturating_sub(1);
        match cause {
            ChainEnd::NoPayee => self.ended_no_payee += 1,
            ChainEnd::Departure => self.ended_departure += 1,
            ChainEnd::Stalled => self.ended_stalled += 1,
            ChainEnd::Collusion => self.ended_collusion += 1,
            ChainEnd::Crash => self.ended_crash += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;

    #[test]
    fn txn_flags() {
        let mut chains: Arena<Chain> = Arena::new();
        let c = chains.insert(Chain {
            origin: ChainOrigin::Seeder,
            created_at: 0.0,
            txns: 1,
            live_txns: 1,
        });
        let donor = NodeId(1);
        let t = Transaction {
            chain: c,
            donor,
            requestor: NodeId(2),
            payee: Some(donor),
            piece: PieceId(0),
            key: Some(KeyId(0)),
            parent: None,
            state: TxnState::Uploading,
            started: 0.0,
            awaiting_since: 0.0,
            key_escrowed: false,
            forward_encrypted: false,
            child_active: false,
            collusion: false,
        };
        assert!(t.encrypted());
        assert!(t.direct());
        let plain = Transaction { key: None, payee: None, ..t };
        assert!(!plain.encrypted());
        assert!(!plain.direct());
    }

    #[test]
    fn chain_stats_accounting() {
        let mut s = ChainStats {
            created_by_seeder: 3,
            created_by_leechers: 1,
            active: 4,
            ..Default::default()
        };
        s.record_end(ChainEnd::NoPayee, 10);
        s.record_end(ChainEnd::Stalled, 2);
        assert_eq!(s.active, 2);
        assert_eq!(s.ended, 2);
        assert_eq!(s.mean_length(), 6.0);
        assert_eq!(s.created_total(), 4);
        assert_eq!(s.opportunistic_fraction(), 0.25);
        assert_eq!(s.ended_no_payee, 1);
        assert_eq!(s.ended_stalled, 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = ChainStats::default();
        assert_eq!(s.mean_length(), 0.0);
        assert_eq!(s.opportunistic_fraction(), 0.0);
    }
}
