//! # tchain-bench — criterion benchmarks
//!
//! Three suites (`cargo bench -p tchain-bench`):
//!
//! * `crypto` — ChaCha20 piece encryption (the §III-C1 overhead number,
//!   measured rather than cited);
//! * `substrate` — flow-scheduler, mesh/LRF and bitfield hot paths;
//! * `figures` — one scaled-down end-to-end simulation per paper figure,
//!   so regressions in any protocol driver show up as bench regressions.
//!
//! Helpers here build the small scenarios the `figures` suite runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tchain_attacks::PeerPlan;
use tchain_experiments::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};

/// A tiny flash-crowd scenario for figure benches.
pub fn tiny_plan(n: usize, fr: f64, seed: u64) -> Vec<PeerPlan> {
    flash_plan(n, fr, RiderMode::Aggressive, seed)
}

/// Runs one scaled-down figure scenario to completion and returns the
/// number of finished compliant leechers (consumed by `black_box`).
pub fn bench_run(proto: Proto, n: usize, fr: f64, seed: u64) -> usize {
    let plan = tiny_plan(n, fr, seed);
    let out = run_proto(proto, 1.0, plan, seed, Horizon::CompliantDone, RunOpts::default());
    out.compliant_times.len()
}

/// Times one swarm run on the channel mesh with telemetry on or off and
/// returns `(wall_clock_s, report)`.
fn timed_swarm(telemetry: bool) -> (f64, tchain_net::SwarmReport) {
    let cfg = tchain_net::SwarmConfig {
        peers: 8,
        seed: 0x7E1E,
        telemetry,
        trace_capacity: 1 << 14,
        ..tchain_net::SwarmConfig::default()
    };
    let start = std::time::Instant::now();
    let report = tchain_net::run_swarm(cfg).expect("channel mesh cannot fail");
    (start.elapsed().as_secs_f64(), report)
}

/// Measures the cost of causal tracing + per-peer metrics on the net
/// runtime: the same 8-peer swarm with telemetry off and on, plus the
/// PR 7 invariant that the stamps never move the delivered-frame
/// fingerprint. Returns the JSON fragment folded into `BENCH_obs.json`.
fn telemetry_overhead_json() -> String {
    let (off_s, off) = timed_swarm(false);
    let (on_s, on) = timed_swarm(true);
    let trace_events: usize = on.peer_rings.iter().map(|(_, r)| r.len()).sum();
    format!(
        "{{\"peers\":8,\"off_s\":{:.6},\"on_s\":{:.6},\"overhead_pct\":{:.1},\"fingerprint_preserved\":{},\"trace_events\":{},\"fairness_index\":{:.6}}}",
        off_s,
        on_s,
        100.0 * (on_s - off_s) / off_s.max(1e-9),
        on.fingerprint == off.fingerprint && on.ticks == off.ticks,
        trace_events,
        on.telemetry.as_ref().map(|t| t.fairness_index()).unwrap_or(0.0),
    )
}

/// Runs a scaled-down traced+profiled flash crowd and returns the
/// machine-readable `BENCH_obs.json` payload: wall clock, event-ring
/// stats, the per-phase main-loop profile and the net-runtime telemetry
/// overhead. Hand-formatted JSON so the bench crate needs no serde.
pub fn obs_summary_json() -> String {
    let seed = 0xB0B5;
    let plan = tiny_plan(16, 0.25, seed);
    let out = run_proto(
        Proto::TChain,
        1.0,
        plan,
        seed,
        Horizon::CompliantDone,
        RunOpts { trace_capacity: Some(1 << 14), profile: true, ..Default::default() },
    );
    let phases: Vec<String> = out
        .phases
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"phase\":\"{}\",\"calls\":{},\"total_ns\":{},\"max_ns\":{}}}",
                p.phase, p.calls, p.total_ns, p.max_ns
            )
        })
        .collect();
    format!(
        "{{\"wall_clock_s\":{:.6},\"sim_time\":{:.3},\"events_recorded\":{},\"peak_event_depth\":{},\"compliant_finished\":{},\"phases\":[{}],\"net_telemetry\":{}}}\n",
        out.wall_clock_s,
        out.sim_time,
        out.trace_records.len(),
        out.peak_event_depth,
        out.compliant_times.len(),
        phases.join(","),
        telemetry_overhead_json(),
    )
}

/// Writes [`obs_summary_json`] to `BENCH_obs.json` in the workspace root
/// (next to the other bench trajectories).
pub fn write_obs_summary() -> std::io::Result<std::path::PathBuf> {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_obs.json");
    std::fs::write(&p, obs_summary_json())?;
    Ok(p)
}

/// Measures the deterministic parallel experiment runner: the same cell
/// list swept with 1 worker and with the machine's parallelism, plus a
/// cross-check that both sweeps produced deterministically equal
/// outcomes. Returns the machine-readable `BENCH_runner.json` payload
/// (hand-formatted, no serde).
pub fn runner_summary_json() -> String {
    use tchain_experiments::{set_jobs, sweep, take_failures};
    let mut cells = Vec::new();
    for proto in [Proto::TChain, Proto::Baseline(tchain_baselines::Baseline::BitTorrent)] {
        for seed in 0xBE00u64..0xBE04 {
            cells.push((proto, seed));
        }
    }
    let run = |jobs: usize| {
        set_jobs(jobs);
        let t = std::time::Instant::now();
        let outs = sweep(
            "bench-runner",
            &cells,
            |c| (format!("{} seed={:#x}", c.0.name(), c.1), c.1),
            |c| {
                let plan = tiny_plan(12, 0.25, c.1);
                run_proto(c.0, 1.0, plan, c.1, Horizon::CompliantDone, RunOpts::default())
            },
        )
        .into_ok();
        let secs = t.elapsed().as_secs_f64();
        set_jobs(0);
        (outs, secs)
    };
    let (seq, sequential_s) = run(1);
    let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2);
    let (par, parallel_s) = run(jobs);
    take_failures();
    let identical = seq.len() == par.len()
        && seq.len() == cells.len()
        && seq.iter().zip(&par).all(|(a, b)| a.deterministic_eq(b));
    format!(
        "{{\"cells\":{},\"jobs_sequential\":1,\"jobs_parallel\":{},\"sequential_s\":{:.6},\"parallel_s\":{:.6},\"speedup\":{:.3},\"outcomes_identical\":{}}}\n",
        cells.len(),
        jobs,
        sequential_s,
        parallel_s,
        sequential_s / parallel_s.max(1e-9),
        identical,
    )
}

/// Writes [`runner_summary_json`] to `BENCH_runner.json` in the
/// workspace root (next to `BENCH_obs.json`).
pub fn write_runner_summary() -> std::io::Result<std::path::PathBuf> {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_runner.json");
    std::fs::write(&p, runner_summary_json())?;
    Ok(p)
}

/// Pushes `frames` bulk `PieceData` frames point-to-point through `t`
/// and returns the per-backend JSON record, or `None` when the backend
/// cannot complete the run (e.g. loopback sockets unavailable in a
/// sandbox).
fn net_backend_json<T: tchain_net::Transport>(
    t: &mut T,
    frames: u64,
    payload: usize,
) -> Option<String> {
    use tchain_net::Frame;
    use tchain_proto::PieceId;
    use tchain_sim::NodeId;

    t.register(NodeId(1)).ok()?;
    t.register(NodeId(2)).ok()?;
    let body = vec![0xA5u8; payload];
    let start = std::time::Instant::now();
    for i in 0..frames {
        let frame = Frame::PieceData { piece: PieceId((i % 1024) as u32), payload: body.clone() };
        t.send(NodeId(1), NodeId(2), frame).ok()?;
    }
    let mut delivered = 0u64;
    let mut idle = 0u32;
    while delivered < frames {
        let got = t.advance().ok()?;
        delivered += got.len() as u64;
        if got.is_empty() {
            idle += 1;
            if idle > 20_000 {
                return None;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        } else {
            idle = 0;
        }
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let mib = t.stats().bytes_delivered as f64 / (1024.0 * 1024.0);
    Some(format!(
        "{{\"backend\":\"{}\",\"available\":true,\"reliable\":{},\"elapsed_s\":{:.6},\"frames_per_s\":{:.1},\"mib_per_s\":{:.2}}}",
        t.backend(),
        t.reliable(),
        secs,
        delivered as f64 / secs,
        mib / secs,
    ))
}

/// Times one 256-peer swarm with a long idle tail (tiny file, one churn
/// arrival late in the run) under the given scheduler and returns
/// `(wall_clock_s, report)`. The idle tail is the scale stressor: the
/// legacy scheduler linear-scans all 256 peers every tick of it, the
/// indexed timer wheel sleeps them.
fn timed_scale_swarm(sched: tchain_net::SchedMode) -> (f64, tchain_net::SwarmReport) {
    let cfg = tchain_net::SwarmConfig {
        peers: 256,
        pieces: 4,
        piece_len: 64,
        seed: 0x5CA1E,
        sched,
        churn: tchain_sim::ChurnPlan::none().with_joins(2000.0, 1, 1.0),
        max_ticks: 30_000,
        trace_capacity: 0,
        ..tchain_net::SwarmConfig::default()
    };
    let start = std::time::Instant::now();
    let report = tchain_net::run_swarm(cfg).expect("channel mesh cannot fail");
    (start.elapsed().as_secs_f64(), report)
}

/// Measures harness scheduling throughput at N = 256: the same churning
/// swarm under the indexed timer wheel and the legacy linear scan. The
/// two runs must agree bit-for-bit on the frame stream (the parity
/// claim), and the indexed path must clear 4× the legacy ticks/s (the
/// PR 8 scale claim). Returns the JSON fragment folded into
/// `BENCH_net.json`.
fn scale_summary_json() -> String {
    use tchain_net::SchedMode;
    let (idx_s, idx) = timed_scale_swarm(SchedMode::Indexed);
    let (lin_s, lin) = timed_scale_swarm(SchedMode::LegacyLinear);
    let idx_tps = idx.ticks as f64 / idx_s.max(1e-9);
    let lin_tps = lin.ticks as f64 / lin_s.max(1e-9);
    format!(
        "{{\"peers\":256,\"ticks\":{},\"indexed_s\":{:.6},\"legacy_s\":{:.6},\"indexed_ticks_per_s\":{:.1},\"legacy_ticks_per_s\":{:.1},\"speedup\":{:.2},\"fingerprint_match\":{},\"safe\":{}}}",
        idx.ticks,
        idx_s,
        lin_s,
        idx_tps,
        lin_tps,
        idx_tps / lin_tps.max(1e-9),
        idx.fingerprint == lin.fingerprint && idx.ticks == lin.ticks,
        idx.violations.is_empty() && idx.plaintext_ok && idx.ledger_ok,
    )
}

/// Measures raw `tchain-net` transport throughput — one sender pushing a
/// fixed batch of bulk piece frames to one receiver — through both
/// backends: the deterministic [`tchain_net::ChannelMesh`] and the real
/// [`tchain_net::TcpLoopback`] sockets. The TCP leg degrades to
/// `"available":false` in sandboxes without loopback networking, same
/// skip the backend's own tests take. Returns the machine-readable
/// `BENCH_net.json` payload (hand-formatted, no serde).
pub fn net_summary_json() -> String {
    use tchain_net::{ChannelMesh, TcpLoopback};
    use tchain_sim::FaultPlan;

    const FRAMES: u64 = 256;
    const PAYLOAD: usize = 64 * 1024;

    let mesh = {
        let mut t = ChannelMesh::new(FaultPlan::none(), 1e-3);
        net_backend_json(&mut t, FRAMES, PAYLOAD)
            .unwrap_or_else(|| "{\"backend\":\"channel_mesh\",\"available\":false}".into())
    };
    let tcp = TcpLoopback::new()
        .ok()
        .and_then(|mut t| net_backend_json(&mut t, FRAMES, PAYLOAD))
        .unwrap_or_else(|| "{\"backend\":\"tcp_loopback\",\"available\":false}".into());
    format!(
        "{{\"frames\":{FRAMES},\"payload_bytes\":{PAYLOAD},\"backends\":[{mesh},{tcp}],\"scale\":{}}}\n",
        scale_summary_json()
    )
}

/// Writes [`net_summary_json`] to `BENCH_net.json` in the workspace
/// root (next to the other bench trajectories).
pub fn write_net_summary() -> std::io::Result<std::path::PathBuf> {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_net.json");
    std::fs::write(&p, net_summary_json())?;
    Ok(p)
}

/// Runs one chaos scenario through the net harness and returns its JSON
/// record: wall clock, tick count, injection/reject/quarantine totals
/// and whether every safety property held.
fn chaos_scenario_json(name: &str, chaos: tchain_sim::ChaosPlan) -> String {
    let cfg = tchain_net::SwarmConfig {
        peers: 8,
        seed: 0xC4A0,
        chaos,
        max_ticks: 20_000,
        ..tchain_net::SwarmConfig::default()
    };
    let start = std::time::Instant::now();
    let report = tchain_net::run_swarm(cfg).expect("channel mesh cannot fail");
    let secs = start.elapsed().as_secs_f64();
    let safe = report.completed_compliant == report.total_compliant
        && report.plaintext_ok
        && report.violations.is_empty();
    format!(
        "{{\"scenario\":\"{name}\",\"wall_clock_s\":{secs:.6},\"ticks\":{},\"chaos_injects\":{},\"frame_rejects\":{},\"quarantines\":{},\"crashes\":{},\"rejoins\":{},\"safe\":{safe}}}",
        report.ticks,
        report.chaos_injects,
        report.frame_rejects,
        report.quarantines,
        report.crashes,
        report.rejoins,
    )
}

/// Measures the chaos layer end to end: a clean control run, sustained
/// 5 % frame corruption, the full byzantine taxonomy at 8 %, and a
/// crash-restart of a quarter of the leechers — each an audited swarm on
/// the channel mesh. The `safe` flag per scenario is the headline: chaos
/// must cost ticks, never correctness. Returns the machine-readable
/// `BENCH_chaos.json` payload (hand-formatted, no serde).
pub fn chaos_summary_json() -> String {
    use tchain_sim::ChaosPlan;
    let scenarios = [
        chaos_scenario_json("clean", ChaosPlan::none()),
        chaos_scenario_json("corrupt-5pct", ChaosPlan::corrupting(0xC4A1, 0.05)),
        chaos_scenario_json("byzantine-8pct", ChaosPlan::byzantine(0xC4A2, 0.08)),
        chaos_scenario_json(
            "crash-restart-25pct",
            ChaosPlan::corrupting(0xC4A3, 0.02).with_crash_restart(8.0, 0.25, 6.0),
        ),
    ];
    format!("{{\"scenarios\":[{}]}}\n", scenarios.join(","))
}

/// Writes [`chaos_summary_json`] to `BENCH_chaos.json` in the workspace
/// root (next to the other bench trajectories).
pub fn write_chaos_summary() -> std::io::Result<std::path::PathBuf> {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_chaos.json");
    std::fs::write(&p, chaos_summary_json())?;
    Ok(p)
}

/// Runs one adversarial swarm through the net harness and returns its
/// JSON record: wall clock, tick throughput, the audit-ledger totals
/// and whether the compliant-peer incentive guarantee held.
fn attacks_scenario_json(name: &str, strategies: Vec<(u32, tchain_net::Strategy)>) -> String {
    let cfg = tchain_net::SwarmConfig {
        peers: 32,
        pieces: 24,
        piece_len: 1024,
        seed: 0xA77C,
        max_ticks: 8_000,
        strategies,
        ..tchain_net::SwarmConfig::default()
    };
    let start = std::time::Instant::now();
    let report = tchain_net::run_swarm(cfg).expect("channel mesh cannot fail");
    let secs = start.elapsed().as_secs_f64();
    let safe = report.completed_compliant == report.total_compliant
        && report.plaintext_ok
        && report.ledger_ok
        && report.violations.is_empty()
        && report.false_report_log.len() as u64 == report.false_reports
        && report.colluder_gain <= report.false_reports;
    format!(
        "{{\"scenario\":\"{name}\",\"wall_clock_s\":{secs:.6},\"ticks\":{},\"ticks_per_s\":{:.1},\"false_reports\":{},\"colluder_gain\":{},\"whitewash_rejoins\":{},\"tracker_queries\":{},\"sybil_collisions\":{},\"safe\":{safe}}}",
        report.ticks,
        report.ticks as f64 / secs.max(1e-9),
        report.false_reports,
        report.colluder_gain,
        report.whitewash_rejoins,
        report.tracker_queries,
        report.sybil_collisions,
    )
}

/// Measures the adversary engine's harness cost: a clean 32-peer
/// control run against the same swarm with 25 % aggressive free-riders
/// (§IV-C large-view + whitewash) and with a §IV-D collusion ring. The
/// `safe` flag per scenario is the headline — strategic manipulation
/// must cost the attackers, never the compliant peers — and the tick
/// throughput ratio prices the engine itself. Returns the
/// machine-readable `BENCH_attacks.json` payload (hand-formatted, no
/// serde).
pub fn attacks_summary_json() -> String {
    use tchain_net::{GroupId, Strategy};
    let scenarios = [
        attacks_scenario_json("clean", Vec::new()),
        attacks_scenario_json(
            "aggressive-25pct",
            (24..32).map(|id| (id, Strategy::aggressive_free_rider())).collect(),
        ),
        attacks_scenario_json(
            "collusion-ring",
            (28..32).map(|id| (id, Strategy::colluding_free_rider(GroupId(0)))).collect(),
        ),
    ];
    format!("{{\"scenarios\":[{}]}}\n", scenarios.join(","))
}

/// Writes [`attacks_summary_json`] to `BENCH_attacks.json` in the
/// workspace root (next to the other bench trajectories).
pub fn write_attacks_summary() -> std::io::Result<std::path::PathBuf> {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_attacks.json");
    std::fs::write(&p, attacks_summary_json())?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenarios_run() {
        assert_eq!(bench_run(Proto::TChain, 8, 0.0, 1), 8);
        assert_eq!(
            bench_run(Proto::Baseline(tchain_baselines::Baseline::BitTorrent), 8, 0.0, 1),
            8
        );
    }

    #[test]
    fn runner_summary_populates_bench_trajectory() {
        let json = runner_summary_json();
        assert!(json.contains("\"jobs_parallel\""));
        assert!(json.contains("\"speedup\""));
        // The sequential and parallel sweeps must agree cell-for-cell —
        // the determinism claim the bench exists to keep honest.
        assert!(json.contains("\"outcomes_identical\":true"), "sweeps diverged: {json}");
        // Refresh the committed trajectory whenever the suite runs.
        let path = write_runner_summary().expect("write BENCH_runner.json");
        assert!(path.ends_with("BENCH_runner.json"));
    }

    #[test]
    fn net_summary_populates_bench_trajectory() {
        let json = net_summary_json();
        assert!(json.contains("\"backend\":\"channel_mesh\""));
        assert!(json.contains("\"backend\":\"tcp_loopback\""));
        // The in-process mesh has no sockets to fail: it must always
        // produce a throughput number.
        assert!(json.contains("\"frames_per_s\""), "mesh leg ran: {json}");
        // The 256-peer scale leg: the indexed scheduler must reproduce
        // the legacy frame stream exactly and beat it on wall clock.
        // (The committed trajectory pins the ≥4× headline; the test
        // bound is looser so a loaded CI box cannot flake it.)
        assert!(json.contains("\"fingerprint_match\":true"), "schedulers diverged: {json}");
        assert!(json.contains("\"safe\":true"), "scale leg unsafe: {json}");
        let speedup: f64 = json
            .split("\"speedup\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("speedup field");
        assert!(speedup >= 2.0, "indexed scheduler speedup collapsed: {speedup:.2}x");
        // Refresh the committed trajectory whenever the suite runs.
        let path = write_net_summary().expect("write BENCH_net.json");
        assert!(path.ends_with("BENCH_net.json"));
    }

    #[test]
    fn chaos_summary_populates_bench_trajectory() {
        let json = chaos_summary_json();
        // Every scenario — including byzantine injection and
        // crash-restart — must preserve the safety properties.
        assert!(!json.contains("\"safe\":false"), "a chaos scenario went unsafe: {json}");
        assert!(json.contains("\"scenario\":\"crash-restart-25pct\""));
        // The chaotic legs must actually inject, and the clean leg not.
        assert!(json.contains("\"chaos_injects\":0,"), "clean control leg: {json}");
        assert!(json.contains("\"quarantines\":"), "strike policy reported: {json}");
        // Refresh the committed trajectory whenever the suite runs.
        let path = write_chaos_summary().expect("write BENCH_chaos.json");
        assert!(path.ends_with("BENCH_chaos.json"));
    }

    #[test]
    fn attacks_summary_populates_bench_trajectory() {
        let json = attacks_summary_json();
        // Strategic manipulation must never cost the compliant peers.
        assert!(!json.contains("\"safe\":false"), "an attack scenario went unsafe: {json}");
        assert!(json.contains("\"scenario\":\"aggressive-25pct\""));
        // The control leg stays attack-free; the adversarial legs must
        // actually exercise the engine.
        assert!(json.contains("\"false_reports\":0,"), "clean control leg: {json}");
        let collusion = json.split("\"collusion-ring\"").nth(1).expect("collusion leg");
        assert!(!collusion.contains("\"false_reports\":0,"), "ring never collided: {json}");
        assert!(!collusion.contains("\"whitewash_rejoins\":0,"), "ring never reset: {json}");
        // Refresh the committed trajectory whenever the suite runs.
        let path = write_attacks_summary().expect("write BENCH_attacks.json");
        assert!(path.ends_with("BENCH_attacks.json"));
    }

    #[test]
    fn obs_summary_populates_bench_trajectory() {
        let json = obs_summary_json();
        assert!(json.contains("\"wall_clock_s\""));
        assert!(json.contains("\"peak_event_depth\""));
        assert!(json.contains("\"phase\":\"flow_advance\""));
        // The traced run must actually have buffered events.
        assert!(!json.contains("\"events_recorded\":0,"));
        // The telemetry leg must confirm the zero-perturbation claim
        // and record a non-empty causal trace.
        assert!(json.contains("\"fingerprint_preserved\":true"), "stamps perturbed: {json}");
        assert!(!json.contains("\"trace_events\":0,"), "telemetry leg traced: {json}");
        // Refresh the committed trajectory whenever the suite runs.
        let path = write_obs_summary().expect("write BENCH_obs.json");
        assert!(path.ends_with("BENCH_obs.json"));
    }
}
