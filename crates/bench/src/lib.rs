//! # tchain-bench — criterion benchmarks
//!
//! Three suites (`cargo bench -p tchain-bench`):
//!
//! * `crypto` — ChaCha20 piece encryption (the §III-C1 overhead number,
//!   measured rather than cited);
//! * `substrate` — flow-scheduler, mesh/LRF and bitfield hot paths;
//! * `figures` — one scaled-down end-to-end simulation per paper figure,
//!   so regressions in any protocol driver show up as bench regressions.
//!
//! Helpers here build the small scenarios the `figures` suite runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tchain_attacks::PeerPlan;
use tchain_experiments::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};

/// A tiny flash-crowd scenario for figure benches.
pub fn tiny_plan(n: usize, fr: f64, seed: u64) -> Vec<PeerPlan> {
    flash_plan(n, fr, RiderMode::Aggressive, seed)
}

/// Runs one scaled-down figure scenario to completion and returns the
/// number of finished compliant leechers (consumed by `black_box`).
pub fn bench_run(proto: Proto, n: usize, fr: f64, seed: u64) -> usize {
    let plan = tiny_plan(n, fr, seed);
    let out = run_proto(proto, 1.0, plan, seed, Horizon::CompliantDone, RunOpts::default());
    out.compliant_times.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenarios_run() {
        assert_eq!(bench_run(Proto::TChain, 8, 0.0, 1), 8);
        assert_eq!(
            bench_run(Proto::Baseline(tchain_baselines::Baseline::BitTorrent), 8, 0.0, 1),
            8
        );
    }
}
