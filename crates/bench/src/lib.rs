//! # tchain-bench — criterion benchmarks
//!
//! Three suites (`cargo bench -p tchain-bench`):
//!
//! * `crypto` — ChaCha20 piece encryption (the §III-C1 overhead number,
//!   measured rather than cited);
//! * `substrate` — flow-scheduler, mesh/LRF and bitfield hot paths;
//! * `figures` — one scaled-down end-to-end simulation per paper figure,
//!   so regressions in any protocol driver show up as bench regressions.
//!
//! Helpers here build the small scenarios the `figures` suite runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tchain_attacks::PeerPlan;
use tchain_experiments::{flash_plan, run_proto, Horizon, Proto, RiderMode, RunOpts};

/// A tiny flash-crowd scenario for figure benches.
pub fn tiny_plan(n: usize, fr: f64, seed: u64) -> Vec<PeerPlan> {
    flash_plan(n, fr, RiderMode::Aggressive, seed)
}

/// Runs one scaled-down figure scenario to completion and returns the
/// number of finished compliant leechers (consumed by `black_box`).
pub fn bench_run(proto: Proto, n: usize, fr: f64, seed: u64) -> usize {
    let plan = tiny_plan(n, fr, seed);
    let out = run_proto(proto, 1.0, plan, seed, Horizon::CompliantDone, RunOpts::default());
    out.compliant_times.len()
}

/// Runs a scaled-down traced+profiled flash crowd and returns the
/// machine-readable `BENCH_obs.json` payload: wall clock, event-ring
/// stats and the per-phase main-loop profile. Hand-formatted JSON so the
/// bench crate needs no serde.
pub fn obs_summary_json() -> String {
    let seed = 0xB0B5;
    let plan = tiny_plan(16, 0.25, seed);
    let out = run_proto(
        Proto::TChain,
        1.0,
        plan,
        seed,
        Horizon::CompliantDone,
        RunOpts { trace_capacity: Some(1 << 14), profile: true, ..Default::default() },
    );
    let phases: Vec<String> = out
        .phases
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"phase\":\"{}\",\"calls\":{},\"total_ns\":{},\"max_ns\":{}}}",
                p.phase, p.calls, p.total_ns, p.max_ns
            )
        })
        .collect();
    format!(
        "{{\"wall_clock_s\":{:.6},\"sim_time\":{:.3},\"events_recorded\":{},\"peak_event_depth\":{},\"compliant_finished\":{},\"phases\":[{}]}}\n",
        out.wall_clock_s,
        out.sim_time,
        out.trace_records.len(),
        out.peak_event_depth,
        out.compliant_times.len(),
        phases.join(",")
    )
}

/// Writes [`obs_summary_json`] to `BENCH_obs.json` in the workspace root
/// (next to the other bench trajectories).
pub fn write_obs_summary() -> std::io::Result<std::path::PathBuf> {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_obs.json");
    std::fs::write(&p, obs_summary_json())?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenarios_run() {
        assert_eq!(bench_run(Proto::TChain, 8, 0.0, 1), 8);
        assert_eq!(
            bench_run(Proto::Baseline(tchain_baselines::Baseline::BitTorrent), 8, 0.0, 1),
            8
        );
    }

    #[test]
    fn obs_summary_populates_bench_trajectory() {
        let json = obs_summary_json();
        assert!(json.contains("\"wall_clock_s\""));
        assert!(json.contains("\"peak_event_depth\""));
        assert!(json.contains("\"phase\":\"flow_advance\""));
        // The traced run must actually have buffered events.
        assert!(!json.contains("\"events_recorded\":0,"));
        // Refresh the committed trajectory whenever the suite runs.
        let path = write_obs_summary().expect("write BENCH_obs.json");
        assert!(path.ends_with("BENCH_obs.json"));
    }
}
