//! One scaled-down end-to-end run per paper figure. These are regression
//! tripwires for the drivers: each bench exercises the code path that
//! regenerates the corresponding figure (the full-size generators live in
//! `tchain-experiments`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tchain_bench::bench_run;
use tchain_experiments::{
    flash_plan, run_proto, trace_plan, Horizon, Proto, RiderMode, RunOpts,
};

fn sample(c: &mut Criterion, name: &str, mut f: impl FnMut() -> usize) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function(name, |b| b.iter(|| black_box(f())));
    g.finish();
}

fn fig03_clean_swarms(c: &mut Criterion) {
    sample(c, "fig03_tchain", || bench_run(Proto::TChain, 12, 0.0, 3));
    sample(c, "fig03_bittorrent", || {
        bench_run(Proto::Baseline(tchain_baselines::Baseline::BitTorrent), 12, 0.0, 3)
    });
    sample(c, "fig03_propshare", || {
        bench_run(Proto::Baseline(tchain_baselines::Baseline::PropShare), 12, 0.0, 3)
    });
    sample(c, "fig03_fairtorrent", || {
        bench_run(Proto::Baseline(tchain_baselines::Baseline::FairTorrent), 12, 0.0, 3)
    });
}

fn fig04_sweeps(c: &mut Criterion) {
    sample(c, "fig04_file_scaling", || {
        let plan = flash_plan(10, 0.0, RiderMode::Aggressive, 4);
        run_proto(Proto::TChain, 2.0, plan, 4, Horizon::CompliantDone, RunOpts::default())
            .compliant_times
            .len()
    });
}

fn fig07_free_riders(c: &mut Criterion) {
    sample(c, "fig07_tchain_25pct_fr", || {
        let plan = flash_plan(16, 0.25, RiderMode::Aggressive, 7);
        run_proto(
            Proto::TChain,
            1.0,
            plan,
            7,
            Horizon::ExtendForFreeRiders(1200.0),
            RunOpts::default(),
        )
        .compliant_times
        .len()
    });
}

fn fig08_collusion(c: &mut Criterion) {
    sample(c, "fig08_tchain_collusion", || {
        let plan = flash_plan(16, 0.25, RiderMode::Colluding, 8);
        run_proto(
            Proto::TChain,
            1.0,
            plan,
            8,
            Horizon::ExtendForFreeRiders(1200.0),
            RunOpts::default(),
        )
        .compliant_times
        .len()
    });
}

fn fig09_trace(c: &mut Criterion) {
    sample(c, "fig09_trace_arrivals", || {
        let plan = trace_plan(20, 0.25, RiderMode::Aggressive, 9);
        run_proto(Proto::TChain, 1.0, plan, 9, Horizon::Fixed(600.0), RunOpts::default())
            .compliant_times
            .len()
    });
}

fn fig13_small_files(c: &mut Criterion) {
    sample(c, "fig13_two_piece_churn", || {
        let plan = flash_plan(16, 0.0, RiderMode::Aggressive, 13);
        run_proto(
            Proto::TChain,
            1.0,
            plan,
            13,
            Horizon::Fixed(200.0),
            RunOpts { custom_pieces: Some(2), replace_on_finish: true, ..Default::default() },
        )
        .compliant_times
        .len()
    });
}

criterion_group!(
    benches,
    fig03_clean_swarms,
    fig04_sweeps,
    fig07_free_riders,
    fig08_collusion,
    fig09_trace,
    fig13_small_files
);
criterion_main!(benches);
