//! Hot paths of the simulation substrate: weighted water-filling,
//! LRF selection over availability counts, and word-parallel bitfields.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tchain_proto::{Bitfield, Mesh, PeerTable, PieceId, Role};
use tchain_sim::{FlowScheduler, NodeId, SimRng};

fn bench_flow_advance(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_advance");
    for &flows in &[100usize, 1000, 5000] {
        g.bench_function(format!("{flows}_flows"), |b| {
            b.iter_batched(
                || {
                    let mut fs = FlowScheduler::new();
                    for i in 0..flows {
                        let src = NodeId((i % 64) as u32);
                        fs.set_capacity(src, 100_000.0);
                        fs.start(src, NodeId(64 + i as u32), 65536.0, 1.0, 0);
                    }
                    fs
                },
                |mut fs| {
                    let mut done = Vec::new();
                    fs.advance(0.5, &mut done);
                    black_box(done.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_lrf(c: &mut Criterion) {
    let pieces = 2048;
    let mut peers = PeerTable::new();
    let mut mesh = Mesh::new(pieces);
    let mut rng = SimRng::new(1);
    let chooser = peers.add(Role::Leecher, 1.0, 0.0, pieces, true);
    let seeder = peers.add(Role::Seeder, 1.0, 0.0, pieces, true);
    mesh.connect(chooser, seeder, &peers);
    for _ in 0..54 {
        let n = peers.add(Role::Leecher, 1.0, 0.0, pieces, true);
        for p in 0..pieces as u32 {
            if p % 7 == 0 {
                peers.get_mut(n).have.set(PieceId(p));
            }
        }
        mesh.connect(chooser, n, &peers);
    }
    let chooser_have = Bitfield::new(pieces);
    let seeder_have = peers.get(seeder).have.clone();
    c.bench_function("lrf_pick_2048_pieces_55_neighbors", |b| {
        b.iter(|| black_box(mesh.lrf_pick(chooser, &chooser_have, &seeder_have, &mut rng)))
    });
}

fn bench_bitfield(c: &mut Criterion) {
    let pieces = 2048;
    let mut a = Bitfield::new(pieces);
    let mut b2 = Bitfield::new(pieces);
    for i in (0..pieces as u32).step_by(3) {
        a.set(PieceId(i));
    }
    for i in (0..pieces as u32).step_by(2) {
        b2.set(PieceId(i));
    }
    c.bench_function("bitfield_wants_from_2048", |b| {
        b.iter(|| black_box(a.wants_from(&b2)))
    });
    c.bench_function("bitfield_difference_2048", |b| {
        b.iter(|| black_box(a.difference(&b2)))
    });
}

criterion_group!(benches, bench_flow_advance, bench_lrf, bench_bitfield);
criterion_main!(benches);
