//! §III-C1 in practice: encrypting file pieces with the from-scratch
//! ChaCha20. The paper cites 0.715 ms per 128 KB piece; this measures the
//! same quantity for this implementation and machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tchain_crypto::Keyring;

fn bench_piece_encryption(c: &mut Criterion) {
    let mut ring = Keyring::new(7);
    let (_, key) = ring.mint();
    let mut g = c.benchmark_group("chacha20_piece");
    for kb in [16usize, 64, 128, 256] {
        let mut buf = vec![0xABu8; kb * 1024];
        g.throughput(Throughput::Bytes((kb * 1024) as u64));
        g.bench_function(format!("{kb}KB"), |b| {
            b.iter(|| {
                key.apply(black_box(&mut buf));
            })
        });
    }
    g.finish();
}

fn bench_keyring_mint(c: &mut Criterion) {
    c.bench_function("keyring_mint_release", |b| {
        let mut ring = Keyring::new(9);
        b.iter(|| {
            let (id, _) = ring.mint();
            black_box(ring.release(id));
        })
    });
}

criterion_group!(benches, bench_piece_encryption, bench_keyring_mint);
criterion_main!(benches);
