//! # tchain-attacks — free-riding strategies
//!
//! The paper's threat model (§III-A, §IV-C, §IV-D): free-riders contribute
//! **zero upload bandwidth** and additionally mount strategic-manipulation
//! attacks to dodge penalties:
//!
//! * **Large-view exploit** — request a fresh neighbor list from the
//!   tracker *every rechoke period* (vs. only on refill) and accept every
//!   incoming connection, maximizing exposure to optimistic unchokes and
//!   seeder altruism.
//! * **Whitewashing** — discard the current identity as soon as it has
//!   extracted a free piece (resetting FairTorrent deficits and any local
//!   ledgers) and rejoin as a fresh newcomer.
//! * **Sybil identities** — operate several concurrent identities; in
//!   T-Chain these matter only if a transaction's requestor *and* payee
//!   land in the same attacker's hands (§III-A4).
//! * **Collusion** — members of a colluder set send *false reception
//!   reports* on each other's behalf, the only T-Chain-specific loophole
//!   (§III-A4, evaluated in §IV-D).
//!
//! Strategies are *descriptions*; the protocol drivers consult them when a
//! behavioural fork arises (upload nothing, re-query the tracker, lie in a
//! report). Protocols never see the strategy directly — only its effects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use tchain_sim::NodeId;

/// Identifier of a colluder (or Sybil) set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub u32);

/// How a peer behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Follows the protocol faithfully.
    #[default]
    Compliant,
    /// Uploads nothing and optionally mounts the listed manipulations.
    FreeRider(FreeRiderConfig),
}

impl Strategy {
    /// The plain §III-A free-rider: zero upload, no manipulations.
    pub fn zero_upload() -> Self {
        Strategy::FreeRider(FreeRiderConfig::default())
    }

    /// The §IV-C free-rider: zero upload + large-view + whitewashing.
    pub fn aggressive_free_rider() -> Self {
        Strategy::FreeRider(FreeRiderConfig { large_view: true, whitewash: true, collude: None })
    }

    /// The §IV-D free-rider: as above, plus membership in one global
    /// colluder set that sends false reception reports.
    pub fn colluding_free_rider(group: GroupId) -> Self {
        Strategy::FreeRider(FreeRiderConfig {
            large_view: true,
            whitewash: true,
            collude: Some(group),
        })
    }

    /// Whether the peer contributes upload bandwidth.
    pub fn uploads(&self) -> bool {
        matches!(self, Strategy::Compliant)
    }

    /// Whether the peer is a free-rider of any kind.
    pub fn is_free_rider(&self) -> bool {
        matches!(self, Strategy::FreeRider(_))
    }

    /// The free-rider configuration, if any.
    pub fn free_rider(&self) -> Option<&FreeRiderConfig> {
        match self {
            Strategy::FreeRider(c) => Some(c),
            Strategy::Compliant => None,
        }
    }

    /// Whether the strategy mounts any manipulation beyond zero upload
    /// (large-view, whitewashing, or collusion). Drivers use this to gate
    /// attack machinery so manipulation-free runs stay draw-for-draw
    /// identical to their pre-strategy baselines.
    pub fn manipulates(&self) -> bool {
        self.free_rider().is_some_and(FreeRiderConfig::manipulates)
    }
}

/// Manipulation techniques a free-rider layers on top of zero upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreeRiderConfig {
    /// Re-query the tracker every rechoke period and accept all neighbors
    /// (§IV-C "more frequently than in normal BitTorrent operations").
    pub large_view: bool,
    /// Reset identity after extracting a free piece (§IV-C: "restores its
    /// deficit value (to zero), allowing it to be treated as another
    /// newcomer by the deceived neighbor").
    pub whitewash: bool,
    /// Colluder set, for false reception reports in T-Chain (§IV-D).
    pub collude: Option<GroupId>,
}

impl FreeRiderConfig {
    /// Whether any manipulation technique is enabled.
    pub fn manipulates(&self) -> bool {
        self.large_view || self.whitewash || self.collude.is_some()
    }
}

/// Tracks which live identities belong to which colluder set, across
/// whitewashing identity changes.
///
/// Drivers register each identity (and every replacement identity) under
/// the attacker's group; [`ColluderRegistry::same_group`] answers the only
/// question T-Chain's exchange ever poses: *are this transaction's
/// requestor and payee conspiring?*
#[derive(Debug, Default)]
pub struct ColluderRegistry {
    group_of: HashMap<NodeId, GroupId>,
}

impl ColluderRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers identity `id` as a member of `group`.
    pub fn register(&mut self, id: NodeId, group: GroupId) {
        self.group_of.insert(id, group);
    }

    /// Removes a retired identity (whitewash or departure).
    pub fn unregister(&mut self, id: NodeId) {
        self.group_of.remove(&id);
    }

    /// The group of an identity, if it belongs to one.
    pub fn group(&self, id: NodeId) -> Option<GroupId> {
        self.group_of.get(&id).copied()
    }

    /// Whether two identities belong to the same colluder set — the §IV-D
    /// precondition for a false reception report to be sent.
    pub fn same_group(&self, a: NodeId, b: NodeId) -> bool {
        match (self.group(a), self.group(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of registered identities.
    pub fn len(&self) -> usize {
        self.group_of.len()
    }

    /// `true` when no identity is registered.
    pub fn is_empty(&self) -> bool {
        self.group_of.is_empty()
    }
}


/// One planned arrival: who joins, when, with what capacity and behaviour.
///
/// Experiment harnesses build a `Vec<PeerPlan>` from a workload (flash
/// crowd or trace) and hand it to a protocol driver; the driver admits the
/// peer when the clock reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerPlan {
    /// Join time in seconds.
    pub at: f64,
    /// Upload capacity in bytes per second the peer *would* contribute;
    /// free-riders contribute 0 regardless (§IV-C), but the value is kept
    /// so whitewashed rejoins and churn replacements stay consistent.
    pub capacity: f64,
    /// Behaviour.
    pub strategy: Strategy,
    /// Abrupt crash time, if scheduled: the peer dies silently at this
    /// time — no goodbye, no §II-B4 handover — exercising the drivers'
    /// timeout/escrow recovery. Composable with any [`Strategy`], so a
    /// free-rider can also crash mid-attack.
    pub crash_at: Option<f64>,
}

impl PeerPlan {
    /// A compliant leecher.
    pub fn compliant(at: f64, capacity: f64) -> Self {
        PeerPlan { at, capacity, strategy: Strategy::Compliant, crash_at: None }
    }

    /// A §IV-C aggressive free-rider (zero upload, large-view, whitewash).
    pub fn free_rider(at: f64, capacity: f64) -> Self {
        PeerPlan { at, capacity, strategy: Strategy::aggressive_free_rider(), crash_at: None }
    }

    /// Schedules an abrupt crash at the given time.
    pub fn crashing_at(mut self, at: f64) -> Self {
        self.crash_at = Some(at);
        self
    }

    /// Effective upload capacity after applying the strategy.
    pub fn effective_capacity(&self) -> f64 {
        if self.strategy.uploads() {
            self.capacity
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliant_uploads_free_rider_does_not() {
        assert!(Strategy::Compliant.uploads());
        assert!(!Strategy::aggressive_free_rider().uploads());
        assert!(Strategy::aggressive_free_rider().is_free_rider());
        assert!(!Strategy::Compliant.is_free_rider());
    }

    #[test]
    fn zero_upload_has_no_manipulations() {
        let s = Strategy::zero_upload();
        assert!(s.is_free_rider() && !s.uploads());
        assert!(!s.manipulates());
        assert!(Strategy::aggressive_free_rider().manipulates());
        assert!(Strategy::colluding_free_rider(GroupId(0)).manipulates());
        assert!(!Strategy::Compliant.manipulates());
    }

    #[test]
    fn aggressive_config() {
        let c = *Strategy::aggressive_free_rider().free_rider().unwrap();
        assert!(c.large_view && c.whitewash && c.collude.is_none());
    }

    #[test]
    fn colluding_config_carries_group() {
        let s = Strategy::colluding_free_rider(GroupId(3));
        assert_eq!(s.free_rider().unwrap().collude, Some(GroupId(3)));
    }

    #[test]
    fn registry_same_group() {
        let mut r = ColluderRegistry::new();
        let (a, b, c) = (NodeId(1), NodeId(2), NodeId(3));
        r.register(a, GroupId(0));
        r.register(b, GroupId(0));
        r.register(c, GroupId(1));
        assert!(r.same_group(a, b));
        assert!(!r.same_group(a, c));
        assert!(!r.same_group(a, NodeId(99)));
        r.unregister(b);
        assert!(!r.same_group(a, b), "retired identities stop colluding");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn crash_schedule_composes_with_strategies() {
        let p = PeerPlan::compliant(1.0, 100.0);
        assert_eq!(p.crash_at, None, "no crash by default");
        let c = PeerPlan::free_rider(1.0, 100.0).crashing_at(30.0);
        assert_eq!(c.crash_at, Some(30.0));
        assert!(c.strategy.is_free_rider(), "crash composes with free-riding");
        assert_eq!(c.effective_capacity(), 0.0);
    }

    #[test]
    fn whitewash_identity_handover() {
        // An attacker whitewashes: old id retired, new id joins the group.
        let mut r = ColluderRegistry::new();
        let old = NodeId(5);
        r.register(old, GroupId(0));
        let fresh = NodeId(6);
        r.unregister(old);
        r.register(fresh, GroupId(0));
        r.register(NodeId(7), GroupId(0));
        assert!(r.same_group(fresh, NodeId(7)));
        assert!(r.group(old).is_none());
    }
}
