//! Frame codec edge cases: zero-length frames, max-length frames, bogus
//! length prefixes, and delivery split across arbitrary poll boundaries.
//!
//! These run against the public API only — the same surface the chaos
//! layer mutates — and pin down the codec's contract: every input either
//! yields a complete, checksum-verified [`Frame`] or a typed
//! [`FrameError`]; nothing panics and nothing desyncs silently.

use tchain_net::{
    frame_checksum, Frame, FrameDecoder, FrameError, FRAME_HEADER_LEN, MAX_FRAME_BODY,
};
use tchain_proto::wire::Message;
use tchain_proto::PieceId;
use tchain_sim::{NodeId, SimRng};

/// Hand-builds a raw frame with the given kind and body, with a correct
/// checksum unless one is supplied.
fn raw_frame(kind: u8, body: &[u8], checksum: Option<u32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&checksum.unwrap_or_else(|| frame_checksum(kind, body)).to_le_bytes());
    out.extend_from_slice(body);
    out
}

#[test]
fn zero_length_piece_payload_roundtrips() {
    let f = Frame::PieceData { piece: PieceId(9), payload: Vec::new() };
    let mut dec = FrameDecoder::new();
    dec.push(&f.encode());
    assert_eq!(dec.next_frame().expect("decode"), Some(f));
    assert_eq!(dec.next_frame().expect("idle"), None);
    dec.finish().expect("clean stream");
}

#[test]
fn zero_length_body_is_a_typed_error_never_a_panic() {
    // A body_len of 0 is structurally valid framing but no message
    // decodes from zero bytes: control bodies need a tag byte and piece
    // bodies their piece-id header.
    for kind in [1u8, 2u8] {
        let mut dec = FrameDecoder::new();
        dec.push(&raw_frame(kind, &[], None));
        let err = dec.next_frame().expect_err("empty body must not decode");
        assert!(
            matches!(err, FrameError::Control(_) | FrameError::TruncatedBody),
            "kind {kind}: {err:?}"
        );
    }
}

#[test]
fn max_length_frame_survives_split_delivery() {
    // The largest body the codec admits is a PieceData at the ciphertext
    // bound; feed it in ragged ~1 MiB slices to cross many poll calls.
    let payload_len = (MAX_FRAME_BODY - 1024 - 4) as usize;
    let f = Frame::PieceData { piece: PieceId(1), payload: vec![0x5A; payload_len] };
    let enc = f.encode();
    assert_eq!(enc.len(), FRAME_HEADER_LEN + 4 + payload_len);
    let mut dec = FrameDecoder::new();
    let mut fed = 0usize;
    let mut got = None;
    while fed < enc.len() {
        let chunk = (1 << 20) + 7;
        let end = (fed + chunk).min(enc.len());
        dec.push(&enc[fed..end]);
        fed = end;
        if let Some(frame) = dec.next_frame().expect("no error mid-stream") {
            got = Some(frame);
        }
    }
    assert_eq!(got, Some(f));
    dec.finish().expect("clean stream");
}

#[test]
fn length_prefix_past_the_bound_errors_before_any_body_arrives() {
    let mut bytes = (MAX_FRAME_BODY + 1).to_le_bytes().to_vec();
    bytes.push(1);
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    match dec.next_frame() {
        Err(FrameError::Oversized { got }) => assert_eq!(got, MAX_FRAME_BODY + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn length_prefix_larger_than_buffered_bytes_just_waits() {
    // An in-bounds length that exceeds what has arrived is not an error —
    // the decoder parks until the rest of the body shows up.
    let f = Frame::Control(Message::ReceptionReport { requestor: NodeId(3), piece: PieceId(8) });
    let enc = f.encode();
    let mut dec = FrameDecoder::new();
    dec.push(&enc[..FRAME_HEADER_LEN + 1]);
    assert_eq!(dec.next_frame().expect("waiting is not an error"), None);
    assert!(dec.finish().is_err(), "a parked partial frame is a truncated stream");
    dec.push(&enc[FRAME_HEADER_LEN + 1..]);
    assert_eq!(dec.next_frame().expect("decode"), Some(f));
    dec.finish().expect("clean stream");
}

#[test]
fn every_split_point_of_a_small_stream_decodes_identically() {
    let frames = vec![
        Frame::Control(Message::Have { piece: PieceId(5) }),
        Frame::PieceData { piece: PieceId(5), payload: vec![0xEE; 37] },
        Frame::Control(Message::ReceptionReport { requestor: NodeId(2), piece: PieceId(5) }),
    ];
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&f.encode());
    }
    for split in 0..=stream.len() {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for part in [&stream[..split], &stream[split..]] {
            dec.push(part);
            while let Some(f) = dec.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames, "split at {split}");
        dec.finish().expect("clean stream");
    }
}

#[test]
fn random_chunking_never_changes_the_decoded_sequence() {
    // Deterministic fuzz: one valid stream, many RNG-drawn chunkings.
    let frames: Vec<Frame> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                Frame::Control(Message::Have { piece: PieceId(i) })
            } else {
                Frame::PieceData { piece: PieceId(i), payload: vec![i as u8; 11 * i as usize] }
            }
        })
        .collect();
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&f.encode());
    }
    let mut rng = SimRng::new(0xF422);
    for _ in 0..64 {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut fed = 0usize;
        while fed < stream.len() {
            let end = (fed + 1 + rng.below(97)).min(stream.len());
            dec.push(&stream[fed..end]);
            fed = end;
            while let Some(f) = dec.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        dec.finish().expect("clean stream");
    }
}

#[test]
fn corrupt_checksum_is_rejected_with_both_sums_reported() {
    let f = Frame::Control(Message::Have { piece: PieceId(2) });
    let enc = f.encode();
    let body = &enc[FRAME_HEADER_LEN..];
    let bad = raw_frame(enc[4], body, Some(0xDEAD_BEEF));
    let mut dec = FrameDecoder::new();
    dec.push(&bad);
    match dec.next_frame() {
        Err(FrameError::ChecksumMismatch { expected, got }) => {
            assert_eq!(expected, 0xDEAD_BEEF);
            assert_eq!(got, frame_checksum(enc[4], body));
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn unknown_kind_byte_is_rejected() {
    let mut dec = FrameDecoder::new();
    dec.push(&raw_frame(0x7F, &[1, 2, 3], None));
    assert!(matches!(dec.next_frame(), Err(FrameError::UnknownKind(0x7F))));
}

// ---------------------------------------------------------------------
// Structure-aware batched-dispatch fuzz.
//
// The batched read path (`FrameDecoder::drain_frames`, used by the TCP
// transport's per-poll loop) must be observationally identical to the
// one-frame-at-a-time path whatever the wire chunking: frames split
// across reads, many frames merged into one read, and causal-meta
// frames interleaved mid-batch. A seeded generator builds valid streams
// and the tests replay them under random chunkings; a second pass flips
// one byte and demands a typed error with the pre-mutation prefix
// intact.
// ---------------------------------------------------------------------

use tchain_net::CausalMeta;

/// Draws a random valid frame and whether it carries a causal header.
fn gen_frame(rng: &mut SimRng, i: u32) -> (Frame, Option<CausalMeta>) {
    let frame = match rng.below(4) {
        0 => Frame::Control(Message::Have { piece: PieceId(i) }),
        1 => Frame::Control(Message::ReceptionReport { requestor: NodeId(rng.below(40) as u32), piece: PieceId(i) }),
        2 => Frame::PieceData { piece: PieceId(i), payload: vec![i as u8; rng.below(200)] },
        _ => Frame::PieceData { piece: PieceId(i), payload: Vec::new() },
    };
    let meta = (rng.below(2) == 0).then(|| CausalMeta {
        origin: rng.below(64) as u32,
        lamport: rng.below(1 << 20) as u64,
        span: rng.below(1 << 16) as u64,
    });
    (frame, meta)
}

/// Encodes a generated stream, returning the byte stream and the byte
/// offset where each frame starts.
fn encode_stream(items: &[(Frame, Option<CausalMeta>)]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut starts = Vec::with_capacity(items.len());
    for (frame, meta) in items {
        starts.push(bytes.len());
        bytes.extend_from_slice(&frame.encode_with_meta(meta.as_ref()));
    }
    (bytes, starts)
}

#[test]
fn batched_drain_equals_frame_at_a_time_under_random_chunking() {
    let mut rng = SimRng::new(0x0BA7_C4ED);
    for round in 0..48u32 {
        let n = 2 + rng.below(14);
        let items: Vec<_> = (0..n).map(|i| gen_frame(&mut rng, round * 32 + i as u32)).collect();
        let (stream, _) = encode_stream(&items);

        // Reference: one frame at a time, whole stream in one push.
        let mut reference = FrameDecoder::new();
        reference.push(&stream);
        let mut expect = Vec::new();
        while let Some(item) = reference.next_frame_meta().expect("valid stream") {
            expect.push(item);
        }
        reference.finish().expect("clean stream");
        assert_eq!(expect, items, "encode/decode roundtrip");

        // Batched: random split/merged reads, drain after every push.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut fed = 0usize;
        while fed < stream.len() {
            // Wildly different chunk sizes: sub-header slivers,
            // mid-body splits, and multi-frame merges.
            let scale = rng.below(3) * 150;
            let end = (fed + 1 + rng.below(1 + scale)).min(stream.len());
            dec.push(&stream[fed..end]);
            fed = end;
            dec.drain_frames(&mut got).expect("valid stream");
        }
        dec.finish().expect("clean stream");
        assert_eq!(got, items, "round {round}: batched drain diverged from reference");
    }
}

#[test]
fn meta_frames_interleaved_mid_batch_keep_their_headers() {
    // Alternating bare/meta frames delivered as ONE read: the batch
    // walker must attach each causal header to exactly its own frame.
    let items: Vec<(Frame, Option<CausalMeta>)> = (0..12u32)
        .map(|i| {
            let frame = Frame::Control(Message::Have { piece: PieceId(i) });
            let meta = (i % 2 == 1).then(|| CausalMeta {
                origin: i,
                lamport: u64::from(i) * 7 + 1,
                span: u64::from(i),
            });
            (frame, meta)
        })
        .collect();
    let (stream, _) = encode_stream(&items);
    let mut dec = FrameDecoder::new();
    dec.push(&stream);
    let mut got = Vec::new();
    dec.drain_frames(&mut got).expect("valid stream");
    dec.finish().expect("clean stream");
    assert_eq!(got, items);
    assert!(got.iter().step_by(2).all(|(_, m)| m.is_none()));
    assert!(got.iter().skip(1).step_by(2).all(|(_, m)| m.is_some()));
}

#[test]
fn single_bit_flip_yields_typed_error_and_intact_prefix() {
    let mut rng = SimRng::new(0x00F1_1F17);
    for round in 0..64u32 {
        let n = 2 + rng.below(10);
        let items: Vec<_> = (0..n).map(|i| gen_frame(&mut rng, round * 32 + i as u32)).collect();
        let (mut stream, starts) = encode_stream(&items);

        let pos = rng.below(stream.len());
        let bit = 1u8 << rng.below(8);
        stream[pos] ^= bit;
        // Index of the frame the mutation lands in.
        let victim = starts.iter().rposition(|&s| s <= pos).expect("starts[0] == 0");

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut fed = 0usize;
        let mut saw_error = false;
        while fed < stream.len() {
            let end = (fed + 1 + rng.below(300)).min(stream.len());
            dec.push(&stream[fed..end]);
            fed = end;
            match dec.drain_frames(&mut got) {
                Ok(()) => {}
                Err(err) => {
                    // Typed, and recognisably a framing failure.
                    assert!(
                        matches!(
                            err,
                            FrameError::ChecksumMismatch { .. }
                                | FrameError::UnknownKind(_)
                                | FrameError::Oversized { .. }
                                | FrameError::TruncatedBody
                                | FrameError::Control(_)
                        ),
                        "round {round}: unexpected error shape {err:?}"
                    );
                    saw_error = true;
                    break;
                }
            }
        }
        // A flip that enlarges a length prefix within bounds parks the
        // decoder instead — then the truncated stream must fail finish().
        if !saw_error {
            assert!(
                dec.finish().is_err(),
                "round {round}: mutated stream decoded clean at byte {pos} bit {bit:#x}"
            );
        }
        // Every frame wholly before the mutated one survived verbatim,
        // and nothing after the victim ever surfaced.
        assert!(
            got.len() <= victim,
            "round {round}: decoded past the mutation ({} > {victim})",
            got.len()
        );
        assert_eq!(
            got.as_slice(),
            &items[..got.len()],
            "round {round}: pre-mutation prefix corrupted"
        );
    }
}
