//! Frame codec edge cases: zero-length frames, max-length frames, bogus
//! length prefixes, and delivery split across arbitrary poll boundaries.
//!
//! These run against the public API only — the same surface the chaos
//! layer mutates — and pin down the codec's contract: every input either
//! yields a complete, checksum-verified [`Frame`] or a typed
//! [`FrameError`]; nothing panics and nothing desyncs silently.

use tchain_net::{
    frame_checksum, Frame, FrameDecoder, FrameError, FRAME_HEADER_LEN, MAX_FRAME_BODY,
};
use tchain_proto::wire::Message;
use tchain_proto::PieceId;
use tchain_sim::{NodeId, SimRng};

/// Hand-builds a raw frame with the given kind and body, with a correct
/// checksum unless one is supplied.
fn raw_frame(kind: u8, body: &[u8], checksum: Option<u32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&checksum.unwrap_or_else(|| frame_checksum(kind, body)).to_le_bytes());
    out.extend_from_slice(body);
    out
}

#[test]
fn zero_length_piece_payload_roundtrips() {
    let f = Frame::PieceData { piece: PieceId(9), payload: Vec::new() };
    let mut dec = FrameDecoder::new();
    dec.push(&f.encode());
    assert_eq!(dec.next_frame().expect("decode"), Some(f));
    assert_eq!(dec.next_frame().expect("idle"), None);
    dec.finish().expect("clean stream");
}

#[test]
fn zero_length_body_is_a_typed_error_never_a_panic() {
    // A body_len of 0 is structurally valid framing but no message
    // decodes from zero bytes: control bodies need a tag byte and piece
    // bodies their piece-id header.
    for kind in [1u8, 2u8] {
        let mut dec = FrameDecoder::new();
        dec.push(&raw_frame(kind, &[], None));
        let err = dec.next_frame().expect_err("empty body must not decode");
        assert!(
            matches!(err, FrameError::Control(_) | FrameError::TruncatedBody),
            "kind {kind}: {err:?}"
        );
    }
}

#[test]
fn max_length_frame_survives_split_delivery() {
    // The largest body the codec admits is a PieceData at the ciphertext
    // bound; feed it in ragged ~1 MiB slices to cross many poll calls.
    let payload_len = (MAX_FRAME_BODY - 1024 - 4) as usize;
    let f = Frame::PieceData { piece: PieceId(1), payload: vec![0x5A; payload_len] };
    let enc = f.encode();
    assert_eq!(enc.len(), FRAME_HEADER_LEN + 4 + payload_len);
    let mut dec = FrameDecoder::new();
    let mut fed = 0usize;
    let mut got = None;
    while fed < enc.len() {
        let chunk = (1 << 20) + 7;
        let end = (fed + chunk).min(enc.len());
        dec.push(&enc[fed..end]);
        fed = end;
        if let Some(frame) = dec.next_frame().expect("no error mid-stream") {
            got = Some(frame);
        }
    }
    assert_eq!(got, Some(f));
    dec.finish().expect("clean stream");
}

#[test]
fn length_prefix_past_the_bound_errors_before_any_body_arrives() {
    let mut bytes = (MAX_FRAME_BODY + 1).to_le_bytes().to_vec();
    bytes.push(1);
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    match dec.next_frame() {
        Err(FrameError::Oversized { got }) => assert_eq!(got, MAX_FRAME_BODY + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn length_prefix_larger_than_buffered_bytes_just_waits() {
    // An in-bounds length that exceeds what has arrived is not an error —
    // the decoder parks until the rest of the body shows up.
    let f = Frame::Control(Message::ReceptionReport { requestor: NodeId(3), piece: PieceId(8) });
    let enc = f.encode();
    let mut dec = FrameDecoder::new();
    dec.push(&enc[..FRAME_HEADER_LEN + 1]);
    assert_eq!(dec.next_frame().expect("waiting is not an error"), None);
    assert!(dec.finish().is_err(), "a parked partial frame is a truncated stream");
    dec.push(&enc[FRAME_HEADER_LEN + 1..]);
    assert_eq!(dec.next_frame().expect("decode"), Some(f));
    dec.finish().expect("clean stream");
}

#[test]
fn every_split_point_of_a_small_stream_decodes_identically() {
    let frames = vec![
        Frame::Control(Message::Have { piece: PieceId(5) }),
        Frame::PieceData { piece: PieceId(5), payload: vec![0xEE; 37] },
        Frame::Control(Message::ReceptionReport { requestor: NodeId(2), piece: PieceId(5) }),
    ];
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&f.encode());
    }
    for split in 0..=stream.len() {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for part in [&stream[..split], &stream[split..]] {
            dec.push(part);
            while let Some(f) = dec.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames, "split at {split}");
        dec.finish().expect("clean stream");
    }
}

#[test]
fn random_chunking_never_changes_the_decoded_sequence() {
    // Deterministic fuzz: one valid stream, many RNG-drawn chunkings.
    let frames: Vec<Frame> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                Frame::Control(Message::Have { piece: PieceId(i) })
            } else {
                Frame::PieceData { piece: PieceId(i), payload: vec![i as u8; 11 * i as usize] }
            }
        })
        .collect();
    let mut stream = Vec::new();
    for f in &frames {
        stream.extend_from_slice(&f.encode());
    }
    let mut rng = SimRng::new(0xF422);
    for _ in 0..64 {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut fed = 0usize;
        while fed < stream.len() {
            let end = (fed + 1 + rng.below(97)).min(stream.len());
            dec.push(&stream[fed..end]);
            fed = end;
            while let Some(f) = dec.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        dec.finish().expect("clean stream");
    }
}

#[test]
fn corrupt_checksum_is_rejected_with_both_sums_reported() {
    let f = Frame::Control(Message::Have { piece: PieceId(2) });
    let enc = f.encode();
    let body = &enc[FRAME_HEADER_LEN..];
    let bad = raw_frame(enc[4], body, Some(0xDEAD_BEEF));
    let mut dec = FrameDecoder::new();
    dec.push(&bad);
    match dec.next_frame() {
        Err(FrameError::ChecksumMismatch { expected, got }) => {
            assert_eq!(expected, 0xDEAD_BEEF);
            assert_eq!(got, frame_checksum(enc[4], body));
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn unknown_kind_byte_is_rejected() {
    let mut dec = FrameDecoder::new();
    dec.push(&raw_frame(0x7F, &[1, 2, 3], None));
    assert!(matches!(dec.next_frame(), Err(FrameError::UnknownKind(0x7F))));
}
