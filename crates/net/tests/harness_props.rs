//! Property-based tests for the scale layer: the indexed scheduler's
//! total order, and the §II-D2 ledger / §II-B4 escrow invariants under
//! arbitrary churn schedules.
//!
//! The [`TimerWheel`] properties run against the data structure alone —
//! hundreds of cases are cheap. The swarm-level properties each boot a
//! real encrypted swarm per case, so they run fewer cases with tight
//! piece counts; the point is the *randomised schedule*, not volume.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tchain_net::{
    run_swarm, Checkpoint, Content, NetConfig, Outbox, PeerRole, PeerRuntime, SwarmConfig,
    TimerWheel,
};
use tchain_sim::{ChaosPlan, ChurnPlan, NodeId};

/// Quantised wake time: keeps proptest away from NaN/∞ while still
/// exercising duplicate timestamps across distinct peers.
fn grid(t: u8) -> f64 {
    f64::from(t) * 0.25
}

proptest! {
    /// Popping the wheel yields a strictly increasing (time, peer)
    /// sequence — the deterministic total order every indexed run
    /// depends on — regardless of the order timers were armed in.
    #[test]
    fn wheel_pop_order_is_total_and_insertion_independent(
        arms in proptest::collection::vec((0u32..64, 0u8..40), 1..80),
    ) {
        // Last arm per peer wins (schedule() replaces).
        let mut fwd = TimerWheel::new();
        let mut rev = TimerWheel::new();
        for &(p, t) in &arms {
            fwd.schedule(p, grid(t));
        }
        for &(p, t) in arms.iter().rev() {
            // Reverse insertion ends with the *first* element's value
            // armed, so replay the forward tail to converge state.
            rev.schedule(p, grid(t));
        }
        for &(p, t) in &arms {
            rev.schedule(p, grid(t));
        }
        let mut seq_f = Vec::new();
        while let Some(w) = fwd.pop_next() {
            seq_f.push(w);
        }
        let mut seq_r = Vec::new();
        while let Some(w) = rev.pop_next() {
            seq_r.push(w);
        }
        prop_assert_eq!(&seq_f, &seq_r, "pop order depends on insertion history");
        // Strictly increasing under (time, peer): no duplicates, no
        // inversions, every armed peer exactly once.
        for w in seq_f.windows(2) {
            let ((t0, p0), (t1, p1)) = (w[0], w[1]);
            prop_assert!(
                t0 < t1 || (t0 == t1 && p0 < p1),
                "inversion: ({t0}, {p0}) before ({t1}, {p1})"
            );
        }
        let armed: BTreeSet<u32> = arms.iter().map(|&(p, _)| p).collect();
        let popped: BTreeSet<u32> = seq_f.iter().map(|&(_, p)| p).collect();
        prop_assert_eq!(armed, popped);
    }

    /// `hasten` never delays a wake and `cancel` always silences one,
    /// no matter what sequence of operations preceded them.
    #[test]
    fn wheel_hasten_monotone_and_cancel_final(
        ops in proptest::collection::vec((0u32..16, 0u8..3, 0u8..40), 1..60),
    ) {
        let mut wheel = TimerWheel::new();
        let mut model: std::collections::BTreeMap<u32, f64> = Default::default();
        for &(p, op, t) in &ops {
            let at = grid(t);
            match op {
                0 => {
                    wheel.schedule(p, at);
                    model.insert(p, at);
                }
                1 => {
                    wheel.hasten(p, at);
                    let e = model.entry(p).or_insert(at);
                    if at < *e {
                        *e = at;
                    }
                }
                _ => {
                    wheel.cancel(p);
                    model.remove(&p);
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
        }
        for (&p, &at) in &model {
            prop_assert_eq!(wheel.armed_at(p), Some(at), "peer {}", p);
        }
        let mut popped = Vec::new();
        while let Some((at, p)) = wheel.pop_next() {
            popped.push((p, at));
        }
        let expect: Vec<(u32, f64)> = {
            let mut v: Vec<_> = model.into_iter().collect();
            v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            v
        };
        prop_assert_eq!(popped, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any join/leave schedule leaves every surviving peer's §II-D2
    /// k-pending ledger consistent with its unreported donor
    /// transactions, and the swarm still drains to completion with zero
    /// unreciprocated key releases.
    #[test]
    fn churn_preserves_ledger_invariant(
        seed in 1u64..1 << 40,
        join_at in 4u8..20,
        joins in 1u32..4,
        spacing in 1u8..4,
        depart_at in 20u8..40,
        fraction in 0.05f64..0.45,
    ) {
        let cfg = SwarmConfig {
            peers: 8,
            pieces: 12,
            piece_len: 256,
            seed,
            churn: ChurnPlan::none()
                .with_joins(f64::from(join_at), joins, f64::from(spacing))
                .with_departures(f64::from(depart_at), fraction),
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("mesh transport");
        prop_assert!(report.ledger_ok, "ledger drifted from unreported donor txns");
        prop_assert!(
            report.violations.is_empty(),
            "unreciprocated key release under churn: {:?}",
            report.violations
        );
        prop_assert!(report.plaintext_ok);
        prop_assert_eq!(report.churn_joins, u64::from(joins));
        prop_assert_eq!(report.completed_compliant, report.total_compliant);
    }

    /// §II-B4: whatever the departure interleaving — voluntary churn
    /// departures stacked on depart-on-complete — obligations held by
    /// leaving donors are handed off, never dropped, and no payee is
    /// left waiting on a key that a departed peer owed.
    #[test]
    fn escrow_obligations_survive_departure_interleavings(
        seed in 1u64..1 << 40,
        depart_at in 8u8..30,
        fraction in 0.1f64..0.5,
        second_wave in 0u8..2,
    ) {
        let mut churn = ChurnPlan::none().with_departures(f64::from(depart_at), fraction);
        if second_wave == 1 {
            churn = churn.with_departures(f64::from(depart_at) + 9.0, fraction / 2.0);
        }
        let cfg = SwarmConfig {
            peers: 10,
            pieces: 12,
            piece_len: 256,
            seed,
            net: NetConfig { depart_on_complete: true, ..NetConfig::default() },
            churn,
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("mesh transport");
        prop_assert!(
            report.violations.is_empty(),
            "escrow handoff broke an invariant: {:?}",
            report.violations
        );
        prop_assert!(report.plaintext_ok);
        prop_assert!(report.ledger_ok);
        prop_assert!(report.churn_departs > 0, "schedule must actually remove peers");
        // Mass departures must travel the escrow path, not starve it.
        prop_assert!(
            report.escrow_transfers > 0,
            "no §II-B4 escrow transfer despite {} departures",
            report.churn_departs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TCKP v2: whatever state a driven peer has accumulated by a random
    /// crash point, its checkpoint survives the byte codec bitwise, and
    /// the restored incarnation keeps the counters and holdings while
    /// bumping its generation (the keyring/RNG salt input).
    #[test]
    fn checkpoint_v2_roundtrip_survives_random_crash_points(
        seed in 1u64..1 << 40,
        pieces in 2usize..7,
        crash_step in 2u32..48,
    ) {
        let mk = || Content::new(seed ^ 0xC047, pieces, 128);
        let mut seeder =
            PeerRuntime::new(NodeId(0), PeerRole::Seeder, mk(), NetConfig::default(), seed);
        let mut leecher =
            PeerRuntime::new(NodeId(1), PeerRole::Compliant, mk(), NetConfig::default(), seed ^ 1);
        let mut from_seeder = Outbox::new();
        let mut from_leecher = Outbox::new();
        seeder.bootstrap(&[NodeId(1)], &mut from_seeder);
        leecher.bootstrap(&[NodeId(0)], &mut from_leecher);
        let dt = 0.5f64;
        for step in 0..crash_step {
            let now = f64::from(step) * dt;
            // Cross-deliver last round's frames, then tick both sides.
            let inbound_leecher = std::mem::take(&mut from_seeder);
            for (to, f) in inbound_leecher {
                if to == NodeId(1) {
                    leecher.on_frame(now, NodeId(0), f, &mut from_leecher);
                }
            }
            let inbound_seeder = std::mem::take(&mut from_leecher);
            for (to, f) in inbound_seeder {
                if to == NodeId(0) {
                    seeder.on_frame(now, NodeId(1), f, &mut from_seeder);
                }
            }
            seeder.on_tick(now, &mut from_seeder);
            leecher.on_tick(now, &mut from_leecher);
        }
        let cp = leecher.checkpoint();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("decode own encoding");
        prop_assert_eq!(&back, &cp, "TCKP v2 byte round-trip drifted");
        prop_assert_eq!(back.to_bytes(), bytes, "re-encode is not bitwise stable");

        let restored = PeerRuntime::restore(
            &cp,
            mk(),
            NetConfig::default(),
            seed ^ 1,
            cp.generation() + 1,
        )
        .expect("restore from own checkpoint");
        prop_assert_eq!(restored.generation(), cp.generation() + 1);
        prop_assert_eq!(restored.counters(), leecher.counters(), "counters lost in restore");
        prop_assert_eq!(restored.have_count(), cp.held_pieces());
        let content = mk();
        for i in 0..pieces as u32 {
            if let Some(bytes) = restored.piece_bytes(i) {
                prop_assert_eq!(bytes, &content.piece(i)[..], "piece {} corrupted", i);
            }
        }
        if !cfg!(tchain_canary) {
            // A restart forgives k-pending debt; the fresh ledger must be
            // trivially consistent (the canary mutation breaks exactly
            // this, which is how the explore drill finds it).
            prop_assert!(restored.ledger_consistent());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Swarm-level crash-restore: random crash fraction/timing stacked on
    /// a random join wave still drains to completion with every oracle
    /// clean, and the whole run — checkpoints, generation-salted rejoin
    /// keyrings included — is fingerprint-deterministic.
    #[test]
    fn crash_restore_under_churn_keeps_invariants_and_determinism(
        seed in 1u64..1 << 40,
        crash_at in 6u8..20,
        fraction in 0.1f64..0.4,
        restart_after in 2u8..6,
        joins in 0u32..3,
    ) {
        if cfg!(tchain_canary) {
            // The seeded restore() mutation makes these runs fail their
            // ledger oracle on purpose; the drill asserts that elsewhere.
            return;
        }
        let mut churn = ChurnPlan::none();
        if joins > 0 {
            churn = churn.with_joins(8.0, joins, 2.0);
        }
        let cfg = SwarmConfig {
            peers: 8,
            pieces: 10,
            piece_len: 256,
            seed,
            chaos: ChaosPlan::none().with_crash_restart(
                f64::from(crash_at),
                fraction,
                f64::from(restart_after),
            ),
            churn,
            ..SwarmConfig::default()
        };
        let a = run_swarm(cfg.clone()).expect("mesh transport");
        let b = run_swarm(cfg).expect("mesh transport");
        prop_assert_eq!(a.fingerprint, b.fingerprint, "crash-restore made the run nondeterministic");
        prop_assert_eq!(a.ticks, b.ticks);
        prop_assert!(a.crashes > 0, "schedule must actually crash peers");
        prop_assert_eq!(a.rejoins, a.crashes, "every crashed peer must restore and rejoin");
        prop_assert!(a.violations.is_empty(), "key release violation: {:?}", a.violations);
        prop_assert!(a.plaintext_ok);
        prop_assert!(a.ledger_ok, "restored ledgers drifted");
        prop_assert_eq!(a.completed_compliant, a.total_compliant);
    }
}
