//! Property-based tests for the adversary engine: whitewash identity
//! resets — an attacker discarding its wire identity, keeping its loot
//! and rejoining as a "newcomer" — must never corrupt the §II-D2
//! k-pending ledger or the §II-B4 escrow bookkeeping, no matter what
//! churn schedule or byzantine chaos plan they compose with.
//!
//! Each case boots a real encrypted swarm, so the suites run few cases
//! with tight piece counts; the point is the *randomised composition*
//! of whitewash timing against joins, departures, frame corruption and
//! crash-restart — not case volume.

use proptest::prelude::*;
use tchain_net::{run_swarm, FreeRiderConfig, GroupId, Strategy, SwarmConfig};
use tchain_sim::{ChaosPlan, ChurnPlan};

/// A 10-peer swarm whose two highest leecher ids run the given
/// free-rider flavour.
fn adversarial(seed: u64, flavour: Strategy) -> SwarmConfig {
    SwarmConfig {
        peers: 10,
        pieces: 12,
        piece_len: 256,
        seed,
        strategies: vec![(8, flavour), (9, flavour)],
        max_ticks: 900,
        ..SwarmConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whitewash resets composed with an arbitrary join/departure
    /// schedule: every surviving peer's §II-D2 ledger stays consistent
    /// with its unreported donor transactions, no key is ever released
    /// unreciprocated, every compliant leecher completes, and the
    /// whitewashers stay starved across all of their identities.
    #[test]
    fn whitewash_never_corrupts_ledger_under_churn(
        seed in 1u64..1 << 40,
        join_at in 4u8..20,
        joins in 1u32..4,
        spacing in 1u8..4,
        depart_at in 30u8..60,
        fraction in 0.05f64..0.35,
    ) {
        let cfg = SwarmConfig {
            churn: ChurnPlan::none()
                .with_joins(f64::from(join_at), joins, f64::from(spacing))
                .with_departures(f64::from(depart_at), fraction),
            ..adversarial(seed, Strategy::aggressive_free_rider())
        };
        let report = run_swarm(cfg).expect("mesh transport");
        prop_assert!(report.ledger_ok, "ledger drifted from unreported donor txns");
        prop_assert!(
            report.violations.is_empty(),
            "unreciprocated key release under whitewash x churn: {:?}",
            report.violations
        );
        prop_assert!(report.plaintext_ok);
        prop_assert_eq!(report.completed_compliant, report.total_compliant);
        // Whitewashers can still harvest §II-B3 termination gifts as
        // serial "newcomers" — the one legal plaintext channel open to
        // them — so completion is possible but must be *paid for*: the
        // audit ledger has to account for every plaintext piece any
        // attacker identity ever held.
        prop_assert!(
            u64::from(report.completed_free_riders) * report.pieces as u64
                <= report.gift_leakage + report.colluder_gain,
            "{} free-rider completion(s) not covered by {} gifts + {} colluder gain",
            report.completed_free_riders,
            report.gift_leakage,
            report.colluder_gain
        );
        prop_assert_eq!(report.churn_joins, u64::from(joins));
    }

    /// Whitewash resets composed with byzantine frame chaos and a
    /// crash-restart wave: corrupted frames, quarantines, checkpoint
    /// rejoins and whitewash rebirths all reuse pieces of the same
    /// identity plumbing, and none of the combinations may leak a key
    /// or corrupt a ledger.
    #[test]
    fn whitewash_survives_chaos_and_crash_restart(
        seed in 1u64..1 << 40,
        rate in 0.001f64..0.02,
        crash_at in 10u8..40,
        crash_fraction in 0.1f64..0.3,
        restart_after in 2u8..8,
    ) {
        let cfg = SwarmConfig {
            chaos: ChaosPlan::byzantine(seed ^ 0xC4A05, rate).with_crash_restart(
                f64::from(crash_at),
                crash_fraction,
                f64::from(restart_after),
            ),
            ..adversarial(seed, Strategy::aggressive_free_rider())
        };
        let report = run_swarm(cfg).expect("mesh transport");
        prop_assert!(report.ledger_ok, "ledger drifted under whitewash x chaos");
        prop_assert!(
            report.violations.is_empty(),
            "unreciprocated key release under whitewash x chaos: {:?}",
            report.violations
        );
        prop_assert!(report.plaintext_ok);
        prop_assert_eq!(report.completed_compliant, report.total_compliant);
        prop_assert!(
            u64::from(report.completed_free_riders) * report.pieces as u64
                <= report.gift_leakage + report.colluder_gain,
            "attacker completions outran the audited gift/forgery channels"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same-seed determinism holds with the full adversary engine armed:
    /// colluding whitewashers (large-view + identity resets + false
    /// reports) replayed under one seed reproduce the frame stream, the
    /// audit counters and every completion time bit for bit.
    #[test]
    fn armed_adversaries_stay_bit_identical(
        seed in 1u64..1 << 40,
        ring in 2u32..4,
    ) {
        let cfg = |seed| SwarmConfig {
            strategies: (10 - ring..10)
                .map(|id| (id, Strategy::colluding_free_rider(GroupId(0))))
                .collect(),
            ..adversarial(seed, Strategy::zero_upload())
        };
        let a = run_swarm(cfg(seed)).expect("run a");
        let b = run_swarm(cfg(seed)).expect("run b");
        prop_assert_eq!(a.fingerprint, b.fingerprint, "frame-stream digest diverged");
        prop_assert_eq!(a.ticks, b.ticks);
        prop_assert_eq!(a.false_reports, b.false_reports);
        prop_assert_eq!(a.colluder_gain, b.colluder_gain);
        prop_assert_eq!(a.whitewash_rejoins, b.whitewash_rejoins);
        prop_assert_eq!(a.completion_times, b.completion_times);
        prop_assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        prop_assert!(a.ledger_ok);
    }

    /// A collude-only Sybil ring under churn: every §IV-D false report
    /// is detected and attributed to ring members, and the colluders'
    /// key gain never exceeds one release per forged report.
    #[test]
    fn sybil_rings_stay_fully_attributed_under_churn(
        seed in 1u64..1 << 40,
        join_at in 4u8..16,
        joins in 1u32..3,
    ) {
        let collude_only = Strategy::FreeRider(FreeRiderConfig {
            collude: Some(GroupId(0)),
            ..FreeRiderConfig::default()
        });
        let cfg = SwarmConfig {
            strategies: vec![(7, collude_only), (8, collude_only), (9, collude_only)],
            churn: ChurnPlan::none().with_joins(f64::from(join_at), joins, 2.0),
            ..adversarial(seed, Strategy::zero_upload())
        };
        let report = run_swarm(cfg).expect("mesh transport");
        prop_assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        prop_assert!(report.ledger_ok);
        prop_assert_eq!(
            report.false_report_log.len() as u64,
            report.false_reports,
            "every detected false report carries an attribution"
        );
        for &(reporter, donor, requestor, _) in &report.false_report_log {
            prop_assert!((7..10).contains(&reporter), "reporter {} outside the ring", reporter);
            prop_assert!((7..10).contains(&requestor), "requestor {} outside the ring", requestor);
            prop_assert!(!(7..10).contains(&donor), "donor {} inside the ring", donor);
        }
        prop_assert!(report.colluder_gain <= report.false_reports, "gain outran the forgeries");
    }
}
