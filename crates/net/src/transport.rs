//! The [`Transport`] abstraction and its deterministic in-process backend.
//!
//! A transport moves [`Frame`]s between peers in discrete steps. The
//! [`ChannelMesh`] backend is the simulation-grade one: delivery order is
//! a total order over `(delivery time, enqueue sequence)` driven by a
//! virtual tick clock, loss and latency come from `tchain-sim`'s
//! [`FaultPlan`] (control frames share the PR 1 lossy-control-plane model;
//! bulk piece data is reliable-but-delayed, like TCP under a lossy
//! network), and each link is FIFO — a piece-upload header can never be
//! overtaken by its own bulk data. Two meshes built from the same plan
//! deliver byte-identical schedules.

use crate::frame::{Frame, FrameError};
use std::collections::{BTreeMap, BTreeSet};
use tchain_sim::{DelayQueue, FaultPlan, FaultState, NodeId, Route};

/// One delivered frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// The frame.
    pub frame: Frame,
}

/// Errors surfaced by a transport backend.
#[derive(Debug)]
pub enum NetError {
    /// The framing layer rejected a stream.
    Frame(FrameError),
    /// An OS-level I/O failure (TCP backend).
    Io(std::io::Error),
    /// A frame was addressed to a peer the transport has never seen.
    UnknownPeer(NodeId),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "framing: {e}"),
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Delivery counters every backend keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames accepted by `send`.
    pub sent: u64,
    /// Frames handed to recipients.
    pub delivered: u64,
    /// Frames lost (fault plan, disconnected recipient).
    pub dropped: u64,
    /// Payload bytes delivered (frame encodings, header included).
    pub bytes_delivered: u64,
}

/// A step-driven frame mover.
pub trait Transport {
    /// Registers a peer endpoint. Must be called before frames are sent
    /// to or from `id`.
    fn register(&mut self, id: NodeId) -> Result<(), NetError>;

    /// Queues one frame for delivery.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the backend cannot accept the frame.
    fn send(&mut self, from: NodeId, to: NodeId, frame: Frame) -> Result<(), NetError>;

    /// Advances one step and returns the frames delivered during it, in
    /// the backend's delivery order.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] on a transport-level failure.
    fn advance(&mut self) -> Result<Vec<Delivery>, NetError>;

    /// Seconds elapsed on the backend's clock (virtual for the mesh,
    /// wall for TCP).
    fn now(&self) -> f64;

    /// Marks a peer departed: *new* frames addressed to it are dropped.
    /// Frames already in flight — in either direction — still deliver,
    /// like bytes in the pipe of a closing connection: that is what lets
    /// a §II-B4 escrow handoff escape a departing donor, and what keeps
    /// the harness observer's ledger complete when a donation races a
    /// departure within one tick.
    fn disconnect(&mut self, id: NodeId);

    /// Stable backend name for benches and reports.
    fn backend(&self) -> &'static str;

    /// `true` when control frames cannot be silently lost — peers skip
    /// arming retransmission timers on reliable transports, mirroring the
    /// fluid drivers' zero-cost fault-free path.
    fn reliable(&self) -> bool;

    /// Delivery counters.
    fn stats(&self) -> TransportStats;
}

/// Deterministic in-process mesh with seeded loss/latency.
#[derive(Debug)]
pub struct ChannelMesh {
    now: f64,
    tick_dt: f64,
    fault: FaultState,
    queue: DelayQueue<Delivery>,
    /// Per-link FIFO floor: no frame may deliver earlier than the last
    /// frame queued on the same `(from, to)` link.
    link_floor: BTreeMap<(u32, u32), f64>,
    peers: BTreeSet<u32>,
    gone: BTreeSet<u32>,
    stats: TransportStats,
}

impl ChannelMesh {
    /// A mesh advancing `tick_dt` virtual seconds per [`Transport::advance`],
    /// with faults drawn from `plan`'s own seeded stream.
    pub fn new(plan: FaultPlan, tick_dt: f64) -> Self {
        assert!(tick_dt > 0.0, "tick_dt must be positive");
        ChannelMesh {
            now: 0.0,
            tick_dt,
            fault: FaultState::new(plan),
            queue: DelayQueue::new(),
            link_floor: BTreeMap::new(),
            peers: BTreeSet::new(),
            gone: BTreeSet::new(),
            stats: TransportStats::default(),
        }
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn enqueue(&mut self, at: f64, d: Delivery) {
        let key = (d.from.0, d.to.0);
        // FIFO per link: clamp to the latest scheduled delivery, so a
        // latency draw can delay but never reorder a link's stream.
        let floor = self.link_floor.get(&key).copied().unwrap_or(0.0);
        let at = at.max(floor).max(self.now + self.tick_dt);
        self.link_floor.insert(key, at);
        self.queue.push(at, d);
    }
}

impl Transport for ChannelMesh {
    fn register(&mut self, id: NodeId) -> Result<(), NetError> {
        self.peers.insert(id.0);
        Ok(())
    }

    fn send(&mut self, from: NodeId, to: NodeId, frame: Frame) -> Result<(), NetError> {
        if !self.peers.contains(&to.0) {
            return Err(NetError::UnknownPeer(to));
        }
        self.stats.sent += 1;
        if self.gone.contains(&to.0) {
            self.stats.dropped += 1;
            return Ok(());
        }
        let route = match frame {
            // Control plane: subject to the full fault model (loss,
            // partition, latency) — the PR 1 assumption under test.
            Frame::Control(_) => self.fault.route(from, to, self.now),
            // Bulk data rides a reliable stream: delayed and
            // partition-blocked, but never randomly lost.
            Frame::PieceData { .. } => {
                if self.fault.partitioned(from, to, self.now) {
                    Route::Dropped
                } else {
                    Route::Now
                }
            }
        };
        match route {
            Route::Dropped => {
                self.stats.dropped += 1;
            }
            Route::Now => self.enqueue(self.now + self.tick_dt, Delivery { from, to, frame }),
            Route::At(t) => self.enqueue(t, Delivery { from, to, frame }),
        }
        Ok(())
    }

    fn advance(&mut self) -> Result<Vec<Delivery>, NetError> {
        self.now += self.tick_dt;
        let mut out = Vec::new();
        while let Some(d) = self.queue.pop_due(self.now) {
            // Frames already in flight when the recipient departed still
            // arrive (bytes in the pipe of a closing connection): the
            // departed runtime ignores them, but the harness observer must
            // see them — a same-tick donation toward a departing requestor
            // is a transaction the §II-B4 handoff may legitimately name.
            self.stats.delivered += 1;
            self.stats.bytes_delivered += d.frame.encoded_len() as u64;
            out.push(d);
        }
        Ok(out)
    }

    fn now(&self) -> f64 {
        self.now
    }

    fn disconnect(&mut self, id: NodeId) {
        self.gone.insert(id.0);
    }

    fn backend(&self) -> &'static str {
        "channel_mesh"
    }

    fn reliable(&self) -> bool {
        !self.fault.active()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_proto::wire::Message;
    use tchain_proto::PieceId;
    use tchain_sim::LatencyModel;

    fn ctrl(p: u32) -> Frame {
        Frame::Control(Message::Have { piece: PieceId(p) })
    }

    #[test]
    fn delivers_next_tick_in_fifo_order() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        assert!(m.reliable());
        for p in 0..5 {
            m.send(NodeId(1), NodeId(2), ctrl(p)).unwrap();
        }
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 5);
        for (p, d) in got.iter().enumerate() {
            assert_eq!(d.frame, ctrl(p as u32));
        }
        assert!(m.advance().unwrap().is_empty());
        assert_eq!(m.stats().delivered, 5);
    }

    #[test]
    fn unknown_recipient_is_an_error() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        m.register(NodeId(1)).unwrap();
        assert!(matches!(
            m.send(NodeId(1), NodeId(9), ctrl(0)),
            Err(NetError::UnknownPeer(NodeId(9)))
        ));
    }

    #[test]
    fn latency_never_reorders_a_link() {
        let plan = FaultPlan { seed: 3, ..FaultPlan::none() }
            .with_latency(LatencyModel::Uniform { lo: 0.0, hi: 2.0 });
        let mut m = ChannelMesh::new(plan, 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        for p in 0..50 {
            m.send(NodeId(1), NodeId(2), ctrl(p)).unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..100 {
            for d in m.advance().unwrap() {
                if let Frame::Control(Message::Have { piece }) = d.frame {
                    seen.push(piece.0);
                }
            }
        }
        assert_eq!(seen, (0..50).collect::<Vec<_>>(), "per-link FIFO");
    }

    #[test]
    fn bulk_data_survives_control_loss() {
        let mut m = ChannelMesh::new(FaultPlan::lossy(5, 1.0), 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        assert!(!m.reliable());
        m.send(NodeId(1), NodeId(2), ctrl(0)).unwrap();
        m.send(NodeId(1), NodeId(2), Frame::PieceData { piece: PieceId(0), payload: vec![1] })
            .unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 1, "control dropped, data delivered");
        assert!(matches!(got[0].frame, Frame::PieceData { .. }));
        assert_eq!(m.stats().dropped, 1);
    }

    #[test]
    fn disconnect_drops_inbound_only() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        for i in 1..=3 {
            m.register(NodeId(i)).unwrap();
        }
        // 2's outgoing frame is already queued when it departs.
        m.send(NodeId(2), NodeId(3), ctrl(7)).unwrap();
        m.disconnect(NodeId(2));
        m.send(NodeId(1), NodeId(2), ctrl(0)).unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].to, NodeId(3), "escrow-style goodbye still delivers");
    }

    #[test]
    fn same_plan_same_schedule() {
        let plan = FaultPlan::lossy(11, 0.3).with_latency(LatencyModel::Exp { mean: 0.4 });
        let run = || {
            let mut m = ChannelMesh::new(plan.clone(), 0.1);
            m.register(NodeId(1)).unwrap();
            m.register(NodeId(2)).unwrap();
            let mut log = Vec::new();
            for i in 0..40 {
                m.send(NodeId(1), NodeId(2), ctrl(i)).unwrap();
                for d in m.advance().unwrap() {
                    log.push((m.now().to_bits(), format!("{:?}", d.frame)));
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
