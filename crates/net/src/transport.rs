//! The [`Transport`] abstraction and its deterministic in-process backend.
//!
//! A transport moves [`Frame`]s between peers in discrete steps. The
//! [`ChannelMesh`] backend is the simulation-grade one: delivery order is
//! a total order over `(delivery time, enqueue sequence)` driven by a
//! virtual tick clock, loss and latency come from `tchain-sim`'s
//! [`FaultPlan`] (control frames share the PR 1 lossy-control-plane model;
//! bulk piece data is reliable-but-delayed, like TCP under a lossy
//! network), and each link is FIFO — a piece-upload header can never be
//! overtaken by its own bulk data. Two meshes built from the same plan
//! deliver byte-identical schedules.
//!
//! A [`ChaosPlan`] layers *byzantine* behaviour on top of the fault model:
//! frames can be corrupted in flight (bit flips, truncation, bogus length
//! prefixes), duplicated, reordered past the per-link FIFO, or cut off by
//! a mid-stream reset. Corruption is applied to the frame's real wire
//! encoding and re-parsed through [`FrameDecoder`], so what a receiver
//! observes is exactly what the hardened codec produces: either a valid
//! frame (the mutation was survivable) or a typed [`FrameError`] surfaced
//! as a [`FrameReject`] through [`Transport::take_chaos`].

use crate::frame::{CausalMeta, Frame, FrameDecoder, FrameError, MAX_FRAME_BODY};
use std::collections::{BTreeMap, BTreeSet};
use tchain_sim::{
    ChaosAction, ChaosPlan, ChaosState, ChaosStats, DelayQueue, FaultPlan, FaultState,
    FrameMutation, NodeId, Route,
};

/// One delivered frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// The frame.
    pub frame: Frame,
    /// Causal telemetry stamp the sender attached, if any. Never part of
    /// the harness fingerprint — folding uses the bare frame encoding —
    /// so enabling telemetry cannot change a run's identity.
    pub meta: Option<CausalMeta>,
    /// Ground truth from the chaos layer: this delivery is the fabricated
    /// second copy of a duplicated frame, not an action the sender took.
    /// Receivers must ignore it (to them a duplicate is indistinguishable
    /// from a retransmission); the god's-eye observer uses it to keep
    /// chaos noise out of the protocol audit. `TcpLoopback` cannot mark
    /// copies (duplicates ride the real byte stream) and always reports
    /// `false`.
    pub duplicated: bool,
}

/// Errors surfaced by a transport backend.
#[derive(Debug)]
pub enum NetError {
    /// The framing layer rejected a stream.
    Frame(FrameError),
    /// An OS-level I/O failure (TCP backend).
    Io(std::io::Error),
    /// A frame was addressed to a peer the transport has never seen.
    UnknownPeer(NodeId),
    /// The backend lost internal state it relies on (e.g. a connection
    /// table entry vanished) — a bug surfaced as an error, not a panic.
    BackendState(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "framing: {e}"),
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            NetError::BackendState(what) => write!(f, "backend state invariant broken: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Why a receiver rejected traffic from a sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectCause {
    /// The frame failed strict decoding (checksum, bounds, kind, body).
    Malformed(FrameError),
    /// The connection was reset mid-stream; in-flight bytes were lost.
    Reset,
}

/// A frame (or stream) the receiving side refused.
///
/// `from` is the *apparent offender* — the peer whose link produced the
/// garbage. Under injected chaos the sender is innocent, which is exactly
/// the false-accusation ambiguity a real byzantine-tolerant system faces;
/// quarantine policy has to be calibrated to tolerate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameReject {
    /// Apparent offender (the sending side of the link).
    pub from: NodeId,
    /// The receiver that rejected the traffic.
    pub to: NodeId,
    /// What was wrong.
    pub cause: RejectCause,
}

/// What the chaos layer did, in deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosRecord {
    /// An injection decision taken at send time.
    Inject {
        /// Sending peer of the targeted frame.
        from: NodeId,
        /// Receiving peer of the targeted frame.
        to: NodeId,
        /// What was done to it.
        action: ChaosAction,
    },
    /// A receiver-side rejection, surfaced at delivery time.
    Reject(FrameReject),
}

/// Delivery counters every backend keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames accepted by `send`.
    pub sent: u64,
    /// Frames handed to recipients.
    pub delivered: u64,
    /// Frames lost (fault plan, disconnected recipient, chaos).
    pub dropped: u64,
    /// Payload bytes delivered (frame encodings, header included).
    pub bytes_delivered: u64,
}

/// A step-driven frame mover.
pub trait Transport {
    /// Registers a peer endpoint. Must be called before frames are sent
    /// to or from `id`.
    fn register(&mut self, id: NodeId) -> Result<(), NetError>;

    /// Queues one frame for delivery.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the backend cannot accept the frame.
    fn send(&mut self, from: NodeId, to: NodeId, frame: Frame) -> Result<(), NetError>;

    /// Queues one frame with an optional [`CausalMeta`] telemetry stamp.
    ///
    /// The default discards the stamp and forwards to [`Transport::send`]
    /// — a meta-unaware backend stays correct, it just yields deliveries
    /// with `meta: None`. Backends that carry the stamp must not let it
    /// perturb the delivery schedule (chaos/fault draws key on the bare
    /// frame length).
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the backend cannot accept the frame.
    fn send_meta(
        &mut self,
        from: NodeId,
        to: NodeId,
        frame: Frame,
        meta: Option<CausalMeta>,
    ) -> Result<(), NetError> {
        let _ = meta;
        self.send(from, to, frame)
    }

    /// Advances one step and returns the frames delivered during it, in
    /// the backend's delivery order.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] on a transport-level failure.
    fn advance(&mut self) -> Result<Vec<Delivery>, NetError>;

    /// Seconds elapsed on the backend's clock (virtual for the mesh,
    /// wall for TCP).
    fn now(&self) -> f64;

    /// Marks a peer departed. By default the cut is *bidirectional*: new
    /// frames addressed to it **and** new frames it tries to send are
    /// dropped — a departed peer has no working socket in either
    /// direction. Frames already in flight still deliver, like bytes in
    /// the pipe of a closing connection: that is what lets a §II-B4
    /// escrow handoff escape a departing donor, and what keeps the
    /// harness observer's ledger complete when a donation races a
    /// departure within one tick. Backends may offer a half-open mode
    /// (see [`ChannelMesh::set_half_open`]) that restores the historical
    /// receive-only cut for experiments that need it.
    fn disconnect(&mut self, id: NodeId);

    /// Re-admits a previously disconnected peer (crash-restart rejoin).
    /// The default forwards to [`Transport::register`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] when the backend cannot restore the endpoint.
    fn reconnect(&mut self, id: NodeId) -> Result<(), NetError> {
        self.register(id)
    }

    /// Drains the backend's chaos log: injections decided at send time
    /// and receiver-side rejects surfaced at delivery time. Chaos-free
    /// backends return an empty vector.
    fn take_chaos(&mut self) -> Vec<ChaosRecord> {
        Vec::new()
    }

    /// Stable backend name for benches and reports.
    fn backend(&self) -> &'static str;

    /// `true` when control frames cannot be silently lost — peers skip
    /// arming retransmission timers on reliable transports, mirroring the
    /// fluid drivers' zero-cost fault-free path.
    fn reliable(&self) -> bool;

    /// Delivery counters.
    fn stats(&self) -> TransportStats;
}

/// An entry scheduled on the mesh's delivery queue.
#[derive(Debug)]
enum Queued {
    Deliver(Delivery),
    Reject(FrameReject),
}

impl Queued {
    fn link(&self) -> (u32, u32) {
        match self {
            Queued::Deliver(d) => (d.from.0, d.to.0),
            Queued::Reject(r) => (r.from.0, r.to.0),
        }
    }
}

/// Deterministic in-process mesh with seeded loss/latency and optional
/// byzantine chaos.
#[derive(Debug)]
pub struct ChannelMesh {
    now: f64,
    tick_dt: f64,
    fault: FaultState,
    chaos: ChaosState,
    queue: DelayQueue<Queued>,
    /// Per-link FIFO floor: no frame may deliver earlier than the last
    /// frame queued on the same `(from, to)` link.
    link_floor: BTreeMap<(u32, u32), f64>,
    peers: BTreeSet<u32>,
    gone: BTreeSet<u32>,
    half_open: bool,
    records: Vec<ChaosRecord>,
    stats: TransportStats,
}

impl ChannelMesh {
    /// A mesh advancing `tick_dt` virtual seconds per [`Transport::advance`],
    /// with faults drawn from `plan`'s own seeded stream and no chaos.
    pub fn new(plan: FaultPlan, tick_dt: f64) -> Self {
        Self::with_chaos(plan, ChaosPlan::none(), tick_dt)
    }

    /// A mesh with both a fault plan and a byzantine chaos plan, each on
    /// its own seeded stream.
    pub fn with_chaos(plan: FaultPlan, chaos: ChaosPlan, tick_dt: f64) -> Self {
        assert!(tick_dt > 0.0, "tick_dt must be positive");
        ChannelMesh {
            now: 0.0,
            tick_dt,
            fault: FaultState::new(plan),
            chaos: ChaosState::new(chaos),
            queue: DelayQueue::new(),
            link_floor: BTreeMap::new(),
            peers: BTreeSet::new(),
            gone: BTreeSet::new(),
            half_open: false,
            records: Vec::new(),
            stats: TransportStats::default(),
        }
    }

    /// Switches [`Transport::disconnect`] to the historical half-open
    /// mode: only frames *to* a departed peer are dropped, its own sends
    /// still go out. Kept for experiments that model receive-side-only
    /// departure; the default is a full bidirectional cut.
    pub fn set_half_open(&mut self, half_open: bool) {
        self.half_open = half_open;
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Injection counters from the chaos layer.
    pub fn chaos_stats(&self) -> ChaosStats {
        self.chaos.stats()
    }

    fn enqueue(&mut self, at: f64, q: Queued) {
        let key = q.link();
        // FIFO per link: clamp to the latest scheduled delivery, so a
        // latency draw can delay but never reorder a link's stream.
        // Receiver-side rejects obey the same floor — garbage arrives
        // where the stream put it.
        let floor = self.link_floor.get(&key).copied().unwrap_or(0.0);
        let at = at.max(floor).max(self.now + self.tick_dt);
        self.link_floor.insert(key, at);
        self.queue.push(at, q);
    }

    /// Schedules past the per-link floor *without raising it*: the one
    /// deliberate FIFO violation, used by [`ChaosAction::Reorder`] so
    /// later frames on the link overtake this one.
    fn enqueue_reordered(&mut self, at: f64, q: Queued) {
        self.queue.push(at.max(self.now + self.tick_dt), q);
    }

    /// Runs one frame through the chaos layer and schedules the outcome.
    ///
    /// The chaos draw keys on the *bare* frame length (meta excluded), so
    /// attaching telemetry stamps cannot change which frames get hit —
    /// same-seed schedules match with telemetry on or off.
    fn dispatch(&mut self, at: f64, from: NodeId, to: NodeId, frame: Frame, meta: Option<CausalMeta>) {
        if !self.chaos.active() {
            self.enqueue(at, Queued::Deliver(Delivery { from, to, frame, meta, duplicated: false }));
            return;
        }
        let action = self.chaos.action(frame.encoded_len());
        if action != ChaosAction::Deliver {
            self.records.push(ChaosRecord::Inject { from, to, action });
        }
        match action {
            ChaosAction::Deliver => {
                self.enqueue(at, Queued::Deliver(Delivery { from, to, frame, meta, duplicated: false }));
            }
            ChaosAction::Corrupt(mutation) => {
                // Mutation targets the bare wire image; any meta stamp is
                // considered destroyed with the frame.
                let mut bytes = frame.encode();
                apply_mutation(&mut bytes, mutation);
                match redecode(&bytes) {
                    Redecode::Frame(f) => {
                        // The mutation survived strict decoding (e.g. a
                        // truncate that landed exactly on a frame
                        // boundary is impossible, but a checksum
                        // collision is theoretically survivable).
                        self.enqueue(
                            at,
                            Queued::Deliver(Delivery { from, to, frame: f, meta: None, duplicated: false }),
                        );
                    }
                    Redecode::Nothing => {
                        // Truncated to nothing: the frame silently
                        // vanished, indistinguishable from loss.
                        self.stats.dropped += 1;
                    }
                    Redecode::Bad(e) => {
                        let cause = RejectCause::Malformed(e);
                        self.enqueue(at, Queued::Reject(FrameReject { from, to, cause }));
                    }
                }
            }
            ChaosAction::Duplicate => {
                self.enqueue(
                    at,
                    Queued::Deliver(Delivery { from, to, frame: frame.clone(), meta, duplicated: false }),
                );
                self.enqueue(
                    at,
                    Queued::Deliver(Delivery { from, to, frame, meta, duplicated: true }),
                );
            }
            ChaosAction::Reorder => {
                let held = at + self.chaos.reorder_delay();
                self.enqueue_reordered(held, Queued::Deliver(Delivery { from, to, frame, meta, duplicated: false }));
            }
            ChaosAction::Reset => {
                // The stream dies mid-frame: the bytes never arrive, the
                // receiver observes a reset instead.
                self.enqueue(at, Queued::Reject(FrameReject { from, to, cause: RejectCause::Reset }));
            }
        }
    }
}

/// Applies a drawn [`FrameMutation`] to a frame's wire encoding.
pub(crate) fn apply_mutation(bytes: &mut Vec<u8>, m: FrameMutation) {
    match m {
        FrameMutation::BitFlip { offset, mask } => {
            if let Some(b) = bytes.get_mut(offset) {
                *b ^= mask;
            }
        }
        FrameMutation::Truncate { keep } => bytes.truncate(keep),
        FrameMutation::OversizeLen => {
            if bytes.len() >= 4 {
                bytes[..4].copy_from_slice(&(MAX_FRAME_BODY + 1).to_le_bytes());
            }
        }
    }
}

enum Redecode {
    Frame(Frame),
    Nothing,
    Bad(FrameError),
}

/// Re-parses mutated wire bytes exactly as a receiver's decoder would.
fn redecode(bytes: &[u8]) -> Redecode {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    match dec.next_frame() {
        Ok(Some(f)) if dec.buffered() == 0 => Redecode::Frame(f),
        Ok(Some(_)) => Redecode::Bad(FrameError::TruncatedStream),
        Ok(None) => match dec.finish() {
            Ok(()) => Redecode::Nothing,
            Err(e) => Redecode::Bad(e),
        },
        Err(e) => Redecode::Bad(e),
    }
}

impl Transport for ChannelMesh {
    fn register(&mut self, id: NodeId) -> Result<(), NetError> {
        self.peers.insert(id.0);
        // Re-registering a departed peer revives it (crash-restart).
        self.gone.remove(&id.0);
        Ok(())
    }

    fn send(&mut self, from: NodeId, to: NodeId, frame: Frame) -> Result<(), NetError> {
        self.send_meta(from, to, frame, None)
    }

    fn send_meta(
        &mut self,
        from: NodeId,
        to: NodeId,
        frame: Frame,
        meta: Option<CausalMeta>,
    ) -> Result<(), NetError> {
        if !self.peers.contains(&to.0) {
            return Err(NetError::UnknownPeer(to));
        }
        self.stats.sent += 1;
        if self.gone.contains(&to.0) || (!self.half_open && self.gone.contains(&from.0)) {
            self.stats.dropped += 1;
            return Ok(());
        }
        let route = match frame {
            // Control plane: subject to the full fault model (loss,
            // partition, latency) — the PR 1 assumption under test.
            Frame::Control(_) => self.fault.route(from, to, self.now),
            // Bulk data rides a reliable stream: delayed and
            // partition-blocked, but never randomly lost.
            Frame::PieceData { .. } => {
                if self.fault.partitioned(from, to, self.now) {
                    Route::Dropped
                } else {
                    Route::Now
                }
            }
        };
        match route {
            Route::Dropped => {
                self.stats.dropped += 1;
            }
            Route::Now => self.dispatch(self.now + self.tick_dt, from, to, frame, meta),
            Route::At(t) => self.dispatch(t, from, to, frame, meta),
        }
        Ok(())
    }

    fn advance(&mut self) -> Result<Vec<Delivery>, NetError> {
        self.now += self.tick_dt;
        let mut out = Vec::new();
        while let Some(q) = self.queue.pop_due(self.now) {
            match q {
                Queued::Deliver(d) => {
                    // Frames already in flight when the recipient departed
                    // still arrive (bytes in the pipe of a closing
                    // connection): the departed runtime ignores them, but
                    // the harness observer must see them — a same-tick
                    // donation toward a departing requestor is a
                    // transaction the §II-B4 handoff may legitimately name.
                    self.stats.delivered += 1;
                    self.stats.bytes_delivered += d.frame.encoded_len() as u64;
                    out.push(d);
                }
                Queued::Reject(r) => {
                    self.stats.dropped += 1;
                    self.records.push(ChaosRecord::Reject(r));
                }
            }
        }
        Ok(out)
    }

    fn now(&self) -> f64 {
        self.now
    }

    fn disconnect(&mut self, id: NodeId) {
        self.gone.insert(id.0);
    }

    fn take_chaos(&mut self) -> Vec<ChaosRecord> {
        std::mem::take(&mut self.records)
    }

    fn backend(&self) -> &'static str {
        "channel_mesh"
    }

    fn reliable(&self) -> bool {
        !self.fault.active() && !self.chaos.active()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_proto::wire::Message;
    use tchain_proto::PieceId;
    use tchain_sim::LatencyModel;

    fn ctrl(p: u32) -> Frame {
        Frame::Control(Message::Have { piece: PieceId(p) })
    }

    #[test]
    fn delivers_next_tick_in_fifo_order() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        assert!(m.reliable());
        for p in 0..5 {
            m.send(NodeId(1), NodeId(2), ctrl(p)).unwrap();
        }
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 5);
        for (p, d) in got.iter().enumerate() {
            assert_eq!(d.frame, ctrl(p as u32));
        }
        assert!(m.advance().unwrap().is_empty());
        assert_eq!(m.stats().delivered, 5);
        assert!(m.take_chaos().is_empty(), "chaos-free mesh logs nothing");
    }

    #[test]
    fn unknown_recipient_is_an_error() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        m.register(NodeId(1)).unwrap();
        assert!(matches!(
            m.send(NodeId(1), NodeId(9), ctrl(0)),
            Err(NetError::UnknownPeer(NodeId(9)))
        ));
    }

    #[test]
    fn latency_never_reorders_a_link() {
        let plan = FaultPlan { seed: 3, ..FaultPlan::none() }
            .with_latency(LatencyModel::Uniform { lo: 0.0, hi: 2.0 });
        let mut m = ChannelMesh::new(plan, 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        for p in 0..50 {
            m.send(NodeId(1), NodeId(2), ctrl(p)).unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..100 {
            for d in m.advance().unwrap() {
                if let Frame::Control(Message::Have { piece }) = d.frame {
                    seen.push(piece.0);
                }
            }
        }
        assert_eq!(seen, (0..50).collect::<Vec<_>>(), "per-link FIFO");
    }

    #[test]
    fn bulk_data_survives_control_loss() {
        let mut m = ChannelMesh::new(FaultPlan::lossy(5, 1.0), 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        assert!(!m.reliable());
        m.send(NodeId(1), NodeId(2), ctrl(0)).unwrap();
        m.send(NodeId(1), NodeId(2), Frame::PieceData { piece: PieceId(0), payload: vec![1] })
            .unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 1, "control dropped, data delivered");
        assert!(matches!(got[0].frame, Frame::PieceData { .. }));
        assert_eq!(m.stats().dropped, 1);
    }

    #[test]
    fn disconnect_cuts_both_directions_by_default() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        for i in 1..=3 {
            m.register(NodeId(i)).unwrap();
        }
        // 2's outgoing frame is already queued when it departs.
        m.send(NodeId(2), NodeId(3), ctrl(7)).unwrap();
        m.disconnect(NodeId(2));
        // New traffic is dead in both directions.
        m.send(NodeId(1), NodeId(2), ctrl(0)).unwrap();
        m.send(NodeId(2), NodeId(3), ctrl(8)).unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].to, NodeId(3), "escrow-style goodbye still delivers");
        assert_eq!(got[0].frame, ctrl(7));
        assert_eq!(m.stats().dropped, 2);
    }

    #[test]
    fn half_open_mode_restores_send_side_liveness() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        for i in 1..=3 {
            m.register(NodeId(i)).unwrap();
        }
        m.set_half_open(true);
        m.disconnect(NodeId(2));
        m.send(NodeId(1), NodeId(2), ctrl(0)).unwrap();
        m.send(NodeId(2), NodeId(3), ctrl(8)).unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].to, NodeId(3), "half-open: departed peer can still send");
    }

    #[test]
    fn reconnect_revives_a_departed_peer() {
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        m.disconnect(NodeId(2));
        m.send(NodeId(1), NodeId(2), ctrl(0)).unwrap();
        assert!(m.advance().unwrap().is_empty());
        m.reconnect(NodeId(2)).unwrap();
        m.send(NodeId(1), NodeId(2), ctrl(1)).unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].frame, ctrl(1));
    }

    #[test]
    fn corruption_surfaces_as_typed_rejects_not_deliveries() {
        let mut m = ChannelMesh::with_chaos(FaultPlan::none(), ChaosPlan::corrupting(7, 1.0), 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        assert!(!m.reliable(), "chaos makes the transport unreliable");
        for p in 0..32 {
            m.send(NodeId(1), NodeId(2), ctrl(p)).unwrap();
        }
        let got = m.advance().unwrap();
        assert!(got.is_empty(), "every frame was corrupted, none may deliver: {got:?}");
        let records = m.take_chaos();
        let injects = records
            .iter()
            .filter(|r| matches!(r, ChaosRecord::Inject { action: ChaosAction::Corrupt(_), .. }))
            .count();
        let rejects: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                ChaosRecord::Reject(rj) => Some(rj),
                _ => None,
            })
            .collect();
        assert_eq!(injects, 32);
        assert!(!rejects.is_empty());
        for r in &rejects {
            assert_eq!((r.from, r.to), (NodeId(1), NodeId(2)));
            assert!(matches!(r.cause, RejectCause::Malformed(_)));
        }
        // Every corrupted frame is accounted for: it either surfaced as a
        // reject or vanished silently (truncate-to-nothing) — both count
        // as drops, and nothing else was in flight.
        assert_eq!(m.stats().dropped, 32);
        assert!(m.take_chaos().is_empty(), "take_chaos drains");
    }

    #[test]
    fn duplicates_deliver_twice_resets_reject() {
        let dup_only = ChaosPlan { duplicate_prob: 1.0, ..ChaosPlan::corrupting(9, 0.0) };
        let mut m = ChannelMesh::with_chaos(FaultPlan::none(), dup_only, 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        m.send(NodeId(1), NodeId(2), ctrl(4)).unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 2, "duplicated frame arrives twice");
        assert_eq!(got[0].frame, got[1].frame);

        let reset_only = ChaosPlan { reset_prob: 1.0, ..ChaosPlan::corrupting(9, 0.0) };
        let mut m = ChannelMesh::with_chaos(FaultPlan::none(), reset_only, 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        m.send(NodeId(1), NodeId(2), ctrl(4)).unwrap();
        assert!(m.advance().unwrap().is_empty());
        let records = m.take_chaos();
        assert!(records
            .iter()
            .any(|r| matches!(r, ChaosRecord::Reject(rj) if rj.cause == RejectCause::Reset)));
    }

    #[test]
    fn reorder_overtakes_link_fifo() {
        let reorder_only =
            ChaosPlan { reorder_prob: 1.0, reorder_delay: 1.0, ..ChaosPlan::corrupting(5, 0.0) };
        // Only the first frame is reordered; the rest pass a fresh mesh
        // where chaos applies per-frame, so use a plan with p=1 for frame
        // one then observe later clean frames overtaking it.
        let mut m = ChannelMesh::with_chaos(FaultPlan::none(), reorder_only, 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        m.send(NodeId(1), NodeId(2), ctrl(0)).unwrap();
        // All frames get reordered by +1.0s here, but each later send's
        // extra delay lands at a later absolute time, so FIFO *within the
        // reordered set* would still hold. Instead check the floor was
        // not raised: a subsequent clean mesh frame (reorder disabled) is
        // simulated by delivering reject-free after the hold expires.
        let early = m.advance().unwrap();
        assert!(early.is_empty(), "held frame must not deliver next tick");
        let mut seen = Vec::new();
        for _ in 0..20 {
            seen.extend(m.advance().unwrap());
        }
        assert_eq!(seen.len(), 1, "held frame eventually delivers");
        let records = m.take_chaos();
        assert!(records
            .iter()
            .any(|r| matches!(r, ChaosRecord::Inject { action: ChaosAction::Reorder, .. })));
    }

    #[test]
    fn meta_rides_the_mesh_without_perturbing_schedule() {
        let meta = CausalMeta { origin: 1, lamport: 5, span: 77 };
        let mut m = ChannelMesh::new(FaultPlan::none(), 0.1);
        m.register(NodeId(1)).unwrap();
        m.register(NodeId(2)).unwrap();
        m.send_meta(NodeId(1), NodeId(2), ctrl(0), Some(meta)).unwrap();
        m.send(NodeId(1), NodeId(2), ctrl(1)).unwrap();
        let got = m.advance().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].meta, Some(meta));
        assert_eq!(got[1].meta, None);

        // Same chaos seed, with and without stamps: identical frame
        // schedule and chaos decisions.
        let chaos = ChaosPlan::byzantine(21, 0.5);
        let run = |stamp: bool| {
            let mut m = ChannelMesh::with_chaos(FaultPlan::none(), chaos.clone(), 0.1);
            m.register(NodeId(1)).unwrap();
            m.register(NodeId(2)).unwrap();
            let mut log = Vec::new();
            for i in 0..60 {
                let meta = stamp.then_some(CausalMeta { origin: 1, lamport: i as u64 + 1, span: 0 });
                m.send_meta(NodeId(1), NodeId(2), ctrl(i), meta).unwrap();
                for d in m.advance().unwrap() {
                    log.push(format!("{:?}", d.frame));
                }
                for r in m.take_chaos() {
                    log.push(format!("{r:?}"));
                }
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn same_plan_same_schedule() {
        let plan = FaultPlan::lossy(11, 0.3).with_latency(LatencyModel::Exp { mean: 0.4 });
        let run = || {
            let mut m = ChannelMesh::new(plan.clone(), 0.1);
            m.register(NodeId(1)).unwrap();
            m.register(NodeId(2)).unwrap();
            let mut log = Vec::new();
            for i in 0..40 {
                m.send(NodeId(1), NodeId(2), ctrl(i)).unwrap();
                for d in m.advance().unwrap() {
                    log.push((m.now().to_bits(), format!("{:?}", d.frame)));
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn same_chaos_plan_same_injections() {
        let chaos = ChaosPlan::byzantine(21, 0.5);
        let run = || {
            let mut m = ChannelMesh::with_chaos(FaultPlan::none(), chaos.clone(), 0.1);
            m.register(NodeId(1)).unwrap();
            m.register(NodeId(2)).unwrap();
            let mut log = Vec::new();
            for i in 0..60 {
                m.send(NodeId(1), NodeId(2), ctrl(i)).unwrap();
                for d in m.advance().unwrap() {
                    log.push(format!("{:?}", d.frame));
                }
                for r in m.take_chaos() {
                    log.push(format!("{r:?}"));
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
