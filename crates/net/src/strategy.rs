//! Adversary engine: the paper's strategic attackers on the wire.
//!
//! The fluid simulators consult `tchain-attacks::Strategy` at every
//! behavioural fork; this module ports the same vocabulary onto the
//! executable runtime. A [`PeerRuntime`](crate::PeerRuntime) carries a
//! [`Strategy`] and consults it (through the [`NetStrategy`] decision
//! interface) wherever the protocol forks:
//!
//! * **Upload scheduling** — `serve_uploads()` gates reciprocation
//!   obligations, escrow forwarding, `Have` broadcasts and report
//!   handling; a free-rider of any flavour withholds all of them
//!   (§III-A2 zero upload).
//! * **Tracker interaction** — `large_view()` peers re-query the
//!   tracker every [`RECHOKE_PERIOD`] and accept every connection
//!   (§IV-C). The accept-all half is the runtime's default — incoming
//!   `Bitfield`/`NeighborRequest` frames always register the sender —
//!   so the engine only has to drive the outsized re-query schedule.
//! * **Identity lifecycle** — `whitewash()` peers discard their
//!   identity once it has stalled — no new plaintext piece — for
//!   [`WHITEWASH_PATIENCE`] seconds, then rejoin as a fresh newcomer
//!   after [`WHITEWASH_REJOIN_DELAY`] (§IV-C "treated as another
//!   newcomer by the deceived neighbor"). The harness reuses the
//!   crash-restart checkpoint plumbing minus the §II-B4 handoff — a
//!   whitewasher keeps its loot and tells nobody it is leaving.
//! * **Sybil / collusion** — `collusion_group()` names the operator's
//!   [`GroupId`]. The Sybil exploit fires only when a transaction's
//!   requestor *and* payee land in the same group (§III-A4); ring
//!   members then file false `Report` frames on each other's behalf —
//!   the one T-Chain-specific loophole (§IV-D).
//!
//! Strategies stay *descriptions*: the runtime never branches on "am I
//! an attacker", only on the specific capability the fork needs, and
//! manipulation-free swarms construct no attack state at all, so their
//! RNG draw sequences — and hence frame-stream fingerprints — are
//! bit-identical to the pre-engine builds.

pub use tchain_attacks::{ColluderRegistry, FreeRiderConfig, GroupId, Strategy};

/// BitTorrent rechoke period (§IV-C): the cadence at which a large-view
/// free-rider re-queries the tracker for a fresh neighbor list —
/// "much more frequently than in normal BitTorrent operations".
pub const RECHOKE_PERIOD: f64 = 10.0;

/// Seconds without a new piece before a whitewasher concludes its
/// current identity is exhausted (neighbors' §II-D2 ledgers are full of
/// its unreciprocated transactions) and discards it.
pub const WHITEWASH_PATIENCE: f64 = 30.0;

/// Delay between discarding an identity and rejoining under a fresh
/// one — a real whitewasher needs a new port/address, not a new brain.
pub const WHITEWASH_REJOIN_DELAY: f64 = 5.0;

/// The decision interface the runtime consults at behavioural forks.
///
/// Implemented for the shared `tchain-attacks::Strategy` so the fluid
/// drivers and the wire runtime read one vocabulary; a trait (rather
/// than inherent methods) so tests can drive the runtime with bespoke
/// adversaries without growing the shared crate.
pub trait NetStrategy {
    /// Serve reciprocation obligations, escrow forwards, `Have`
    /// broadcasts, donor duties? `false` is §III-A2 zero upload.
    fn serve_uploads(&self) -> bool;
    /// Re-query the tracker every [`RECHOKE_PERIOD`] and accept all
    /// connections (§IV-C)?
    fn large_view(&self) -> bool;
    /// Discard the identity after extracting a free piece (§IV-C)?
    fn whitewash(&self) -> bool;
    /// Colluder/Sybil set, if the operator runs one (§III-A4, §IV-D).
    fn collusion_group(&self) -> Option<GroupId>;
    /// Any manipulation beyond zero upload? Gates the harness's attack
    /// state so manipulation-free runs stay draw-for-draw identical.
    fn manipulates(&self) -> bool {
        self.large_view() || self.whitewash() || self.collusion_group().is_some()
    }
}

impl NetStrategy for Strategy {
    fn serve_uploads(&self) -> bool {
        self.uploads()
    }

    fn large_view(&self) -> bool {
        self.free_rider().is_some_and(|c| c.large_view)
    }

    fn whitewash(&self) -> bool {
        self.free_rider().is_some_and(|c| c.whitewash)
    }

    fn collusion_group(&self) -> Option<GroupId> {
        self.free_rider().and_then(|c| c.collude)
    }
}

/// Stable scenario label for per-strategy report breakdowns.
pub fn strategy_label(s: &Strategy) -> &'static str {
    match s.free_rider() {
        None => "compliant",
        Some(c) if c.collude.is_some() => "colluding",
        Some(c) if c.large_view || c.whitewash => "aggressive",
        Some(_) => "free_rider",
    }
}

/// Per-*operator* attack bookkeeping, tracked across the identity
/// changes a whitewasher cycles through. The harness keeps one of
/// these per manipulating operator; `live_id` names its current wire
/// identity (dead while a whitewash rejoin is pending).
#[derive(Debug, Clone)]
pub struct AttackerState {
    /// Current wire identity, `None` between whitewash and rejoin.
    pub live_id: Option<u32>,
    /// The operator's strategy (survives identity changes).
    pub strategy: Strategy,
    /// Next scheduled large-view tracker re-query.
    pub next_requery: f64,
    /// Piece count at the last observed progress.
    pub progress_pieces: usize,
    /// Time of the last observed progress (or identity birth).
    pub progress_at: f64,
    /// Pieces extracted by the *current* identity (whitewash only
    /// fires once the identity has gained something worth keeping).
    pub pieces_this_identity: usize,
    /// Whitewash rejoins performed so far.
    pub rejoins: u64,
}

impl AttackerState {
    /// Fresh state for an operator whose first identity is `id`.
    pub fn new(id: u32, strategy: Strategy, now: f64) -> Self {
        AttackerState {
            live_id: Some(id),
            strategy,
            next_requery: now + RECHOKE_PERIOD,
            progress_pieces: 0,
            progress_at: now,
            pieces_this_identity: 0,
            rejoins: 0,
        }
    }

    /// Folds the current piece count in; returns `true` on progress.
    pub fn note_progress(&mut self, pieces: usize, now: f64) -> bool {
        if pieces > self.progress_pieces {
            self.pieces_this_identity += pieces - self.progress_pieces;
            self.progress_pieces = pieces;
            self.progress_at = now;
            true
        } else {
            false
        }
    }

    /// Whether the §IV-C whitewash trigger holds: the identity has
    /// stalled — no new plaintext piece — for [`WHITEWASH_PATIENCE`]
    /// seconds (birth counts as progress). A stalled identity is
    /// exhausted either way: its neighbors' §II-D2 ledgers are full of
    /// unreciprocated transactions, so resetting "restores its deficit
    /// value (to zero)" whether or not it managed to extract loot
    /// first — loot just resets the clock and delays the reset.
    pub fn should_whitewash(&self, now: f64) -> bool {
        self.strategy.whitewash() && now - self.progress_at > WHITEWASH_PATIENCE
    }

    /// Re-arms the progress clock for a fresh identity `id` at `now`
    /// (piece holdings carry over — whitewashers keep their loot —
    /// but the per-identity extraction counter resets).
    pub fn rebirth(&mut self, id: u32, pieces: usize, now: f64) {
        self.live_id = Some(id);
        self.progress_pieces = pieces;
        self.progress_at = now;
        self.pieces_this_identity = 0;
        self.rejoins += 1;
        self.next_requery = now + RECHOKE_PERIOD;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_capabilities_map_onto_the_trait() {
        let c = Strategy::Compliant;
        assert!(c.serve_uploads() && !c.large_view() && !c.whitewash());
        assert!(c.collusion_group().is_none() && !NetStrategy::manipulates(&c));

        let plain = Strategy::zero_upload();
        assert!(!plain.serve_uploads() && !NetStrategy::manipulates(&plain));

        let a = Strategy::aggressive_free_rider();
        assert!(!a.serve_uploads() && a.large_view() && a.whitewash());
        assert!(a.collusion_group().is_none() && NetStrategy::manipulates(&a));

        let k = Strategy::colluding_free_rider(GroupId(7));
        assert_eq!(k.collusion_group(), Some(GroupId(7)));
        assert!(NetStrategy::manipulates(&k));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(strategy_label(&Strategy::Compliant), "compliant");
        assert_eq!(strategy_label(&Strategy::zero_upload()), "free_rider");
        assert_eq!(strategy_label(&Strategy::aggressive_free_rider()), "aggressive");
        assert_eq!(strategy_label(&Strategy::colluding_free_rider(GroupId(0))), "colluding");
    }

    #[test]
    fn whitewash_trigger_fires_on_stall_and_progress_delays_it() {
        let mut st = AttackerState::new(5, Strategy::aggressive_free_rider(), 0.0);
        assert!(!st.should_whitewash(WHITEWASH_PATIENCE), "birth counts as progress");
        assert!(st.note_progress(2, 10.0), "extraction resets the clock");
        assert!(!st.note_progress(2, 12.0), "no new pieces");
        assert!(!st.should_whitewash(10.0 + WHITEWASH_PATIENCE));
        assert!(st.should_whitewash(10.0 + WHITEWASH_PATIENCE + 0.1));
        st.rebirth(9, 2, 50.0);
        assert_eq!(st.live_id, Some(9));
        assert_eq!(st.rejoins, 1);
        assert_eq!(st.pieces_this_identity, 0, "per-identity extraction counter resets");
        assert!(!st.should_whitewash(50.0 + WHITEWASH_PATIENCE), "rebirth re-arms the clock");
        assert!(st.should_whitewash(50.0 + WHITEWASH_PATIENCE + 0.1));
    }

    #[test]
    fn compliant_never_whitewashes() {
        let mut st = AttackerState::new(1, Strategy::Compliant, 0.0);
        st.note_progress(4, 1.0);
        assert!(!st.should_whitewash(1e9));
    }
}
