//! Deterministic wake-up scheduling for the swarm harness.
//!
//! The legacy harness loop called `on_tick` on every peer every tick —
//! O(N) per tick even when all but a handful of peers are idle, which
//! is exactly the regime a 256-peer churning swarm spends most of its
//! life in. [`TimerWheel`] replaces that scan with a binary-heap timer
//! index: each peer is *armed* with at most one authoritative wake
//! time, and a tick only visits the peers whose wake time has come due
//! (plus any peers the harness force-readies because a frame arrived).
//!
//! Determinism is the whole point, so ordering is total and explicit:
//! heap entries compare by `(time, peer-id, seq)` with `f64::total_cmp`
//! for the time leg — no partial-order surprises, no insertion-order
//! dependence. Re-arming a peer pushes a fresh heap entry and bumps the
//! authoritative map; stale entries are dropped lazily when popped
//! (standard lazy-deletion heap), so `schedule`/`hasten`/`cancel` are
//! all O(log N) and never rebuild the heap.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Which per-tick peer scheduler the harness runs.
///
/// [`SchedMode::Indexed`] is the production scheduler: a
/// [`TimerWheel`]-armed ready set visits only the peers with due timers
/// or freshly delivered frames, so a mostly-idle 256-peer swarm costs
/// O(active) per tick instead of O(N). [`SchedMode::LegacyLinear`] is
/// the original every-peer scan, kept as the parity oracle: the
/// scale-equivalence test in `tests/net_swarm.rs` pins the two modes to
/// the identical delivered-frame fingerprint (the quiescence invariant
/// documented on `PeerRuntime::next_wake` is what makes that hold), and
/// the oracle stays until that proof ages out. [`SchedMode::Explore`]
/// is the indexed scheduler with its one decision point — which due
/// peer runs next — handed to a `tchain-sim` [`SchedPerturber`]: PCT
/// priority sampling or bit-exact schedule replay (see
/// `crate::explore`). With no perturbation plan it is the indexed
/// scheduler, fingerprint and all.
///
/// [`SchedPerturber`]: tchain_sim::SchedPerturber
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Timer-wheel + ready-set scheduler (default).
    #[default]
    Indexed,
    /// Original O(N)-per-tick scan over every peer. Parity oracle for
    /// equivalence tests and the scale bench's baseline leg.
    LegacyLinear,
    /// Indexed scheduler with the run-order decision point perturbed
    /// (PCT sampling) or replayed from a recorded schedule.
    Explore,
}

/// One pending wake-up: `peer` wants to run at time `at`.
///
/// `seq` is a global insertion counter. It never decides *which* peers
/// run (the authoritative map does) — it only makes the heap's internal
/// order a total one, so two wheels built by different call sequences
/// still pop identically once stale entries are filtered.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Wake {
    at: f64,
    peer: u32,
    seq: u64,
}

impl Eq for Wake {}

impl Ord for Wake {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.peer.cmp(&other.peer))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Wake {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Binary-heap timer index over peers (min-heap by `(time, peer, seq)`).
///
/// Invariant: `armed` maps each scheduled peer to its single
/// authoritative wake time; the heap may additionally hold stale
/// entries from earlier `schedule`/`hasten` calls, which are discarded
/// on pop by checking them against `armed`.
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<std::cmp::Reverse<Wake>>,
    armed: BTreeMap<u32, f64>,
    seq: u64,
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Arms `peer` to wake at `at`, replacing any previous wake time
    /// (later *or* earlier — this is the authoritative reschedule used
    /// after a peer's `on_tick`).
    pub fn schedule(&mut self, peer: u32, at: f64) {
        self.armed.insert(peer, at);
        self.push(peer, at);
    }

    /// Arms `peer` to wake no later than `at`: keeps an existing
    /// earlier wake time, moves a later one up. Used by external pokes
    /// (peer-gone notifications, rejoin bootstraps, frame rejects) that
    /// must not *delay* an already-imminent wake.
    pub fn hasten(&mut self, peer: u32, at: f64) {
        match self.armed.get(&peer) {
            Some(&cur) if cur <= at => {}
            _ => {
                self.armed.insert(peer, at);
                self.push(peer, at);
            }
        }
    }

    /// Disarms `peer` (no-op if not armed). The stale heap entry is
    /// dropped lazily.
    pub fn cancel(&mut self, peer: u32) {
        self.armed.remove(&peer);
    }

    /// Whether `peer` currently has a wake time armed.
    pub fn is_armed(&self, peer: u32) -> bool {
        self.armed.contains_key(&peer)
    }

    /// The currently armed wake time for `peer`, if any.
    pub fn armed_at(&self, peer: u32) -> Option<f64> {
        self.armed.get(&peer).copied()
    }

    /// Number of armed peers.
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// `true` when no peer is armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Earliest armed wake time, if any.
    pub fn next_at(&mut self) -> Option<f64> {
        self.skim();
        self.heap.peek().map(|std::cmp::Reverse(w)| w.at)
    }

    /// Disarms every peer whose wake time is `<= now` and adds them to
    /// `due`. Using a `BTreeSet` makes the union with the harness's
    /// ready set iterate in ascending peer-id order — the same order
    /// the legacy full scan visited peers in.
    pub fn pop_due(&mut self, now: f64, due: &mut BTreeSet<u32>) {
        while let Some(std::cmp::Reverse(w)) = self.heap.peek().copied() {
            if w.at > now {
                break;
            }
            self.heap.pop();
            if self.live(&w) {
                self.armed.remove(&w.peer);
                due.insert(w.peer);
            }
        }
    }

    /// Pops the single earliest armed wake as `(time, peer)`,
    /// regardless of the current time. Exposed for the property tests,
    /// which check the pop sequence is a total deterministic order.
    pub fn pop_next(&mut self) -> Option<(f64, u32)> {
        while let Some(std::cmp::Reverse(w)) = self.heap.pop() {
            if self.live(&w) {
                self.armed.remove(&w.peer);
                return Some((w.at, w.peer));
            }
        }
        None
    }

    fn push(&mut self, peer: u32, at: f64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(std::cmp::Reverse(Wake { at, peer, seq }));
    }

    /// Is this heap entry the authoritative one for its peer?
    fn live(&self, w: &Wake) -> bool {
        self.armed.get(&w.peer).is_some_and(|&at| at.to_bits() == w.at.to_bits())
    }

    /// Drops stale entries off the top so `peek` sees a live one.
    fn skim(&mut self) {
        while let Some(std::cmp::Reverse(w)) = self.heap.peek().copied() {
            if self.live(&w) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel) -> Vec<(f64, u32)> {
        std::iter::from_fn(|| w.pop_next()).collect()
    }

    #[test]
    fn pops_in_time_then_id_order() {
        let mut w = TimerWheel::new();
        w.schedule(3, 2.0);
        w.schedule(1, 1.0);
        w.schedule(2, 1.0);
        w.schedule(9, 0.5);
        assert_eq!(drain(&mut w), vec![(0.5, 9), (1.0, 1), (1.0, 2), (2.0, 3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn reschedule_replaces_in_both_directions() {
        let mut w = TimerWheel::new();
        w.schedule(1, 5.0);
        w.schedule(1, 9.0); // later: authoritative replace
        assert_eq!(w.armed_at(1), Some(9.0));
        w.schedule(2, 7.0);
        w.schedule(2, 3.0); // earlier: also replaces
        assert_eq!(drain(&mut w), vec![(3.0, 2), (9.0, 1)]);
    }

    #[test]
    fn hasten_only_moves_wakes_earlier() {
        let mut w = TimerWheel::new();
        w.schedule(1, 5.0);
        w.hasten(1, 8.0); // later: ignored
        assert_eq!(w.armed_at(1), Some(5.0));
        w.hasten(1, 2.0); // earlier: wins
        assert_eq!(w.armed_at(1), Some(2.0));
        w.hasten(7, 4.0); // unarmed: arms
        assert_eq!(drain(&mut w), vec![(2.0, 1), (4.0, 7)]);
    }

    #[test]
    fn cancel_disarms_lazily() {
        let mut w = TimerWheel::new();
        w.schedule(1, 1.0);
        w.schedule(2, 2.0);
        w.cancel(1);
        assert!(!w.is_armed(1));
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_at(), Some(2.0));
        assert_eq!(drain(&mut w), vec![(2.0, 2)]);
    }

    #[test]
    fn pop_due_collects_everything_at_or_before_now() {
        let mut w = TimerWheel::new();
        for (p, t) in [(5, 0.0), (1, 1.0), (8, 1.0), (2, 3.0)] {
            w.schedule(p, t);
        }
        let mut due = BTreeSet::new();
        w.pop_due(1.0, &mut due);
        assert_eq!(due.into_iter().collect::<Vec<_>>(), vec![1, 5, 8]);
        assert_eq!(w.len(), 1);
        let mut rest = BTreeSet::new();
        w.pop_due(100.0, &mut rest);
        assert_eq!(rest.into_iter().collect::<Vec<_>>(), vec![2]);
        assert!(w.is_empty());
    }

    #[test]
    fn stale_entries_never_resurrect_a_peer() {
        let mut w = TimerWheel::new();
        w.schedule(1, 1.0);
        w.schedule(1, 4.0);
        let mut due = BTreeSet::new();
        w.pop_due(2.0, &mut due); // stale 1.0 entry must not fire
        assert!(due.is_empty());
        assert_eq!(w.armed_at(1), Some(4.0));
        w.pop_due(4.0, &mut due);
        assert_eq!(due.into_iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn identical_same_time_reschedules_fire_once() {
        let mut w = TimerWheel::new();
        w.schedule(1, 3.0);
        w.schedule(1, 3.0);
        w.schedule(1, 3.0);
        let mut due = BTreeSet::new();
        w.pop_due(3.0, &mut due);
        assert_eq!(due.into_iter().collect::<Vec<_>>(), vec![1]);
        assert!(w.is_empty());
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn next_at_skips_stale_tops(){
        let mut w = TimerWheel::new();
        w.schedule(1, 1.0);
        w.schedule(2, 5.0);
        w.schedule(1, 9.0); // 1.0 entry now stale
        assert_eq!(w.next_at(), Some(5.0));
    }
}
