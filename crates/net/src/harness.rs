//! Swarm-in-process harness: boot N peers on a [`Transport`], run the
//! real protocol to completion, audit every frame.
//!
//! The harness owns the things a peer cannot see: the transport, the
//! tracker rendezvous (`tchain-proto`), an event [`Tracer`]
//! (`tchain-obs`), and — the point of the exercise — an [`Observer`]
//! that watches every delivered frame and checks the T-Chain incentive
//! invariant on the wire: **no key travels without a reciprocation
//! behind it**. A `KeyRelease` from `S` to `T` for piece `p` is legal
//! only when
//!
//! 1. the transaction `(S → T, p)` was reported by its designated payee
//!    (the §II-B2 release, §II-D1 relays and duplicate re-sends), or
//! 2. `T` is the designated payee of the unreported transaction
//!    `(S → R, p)` named by the frame's escrow `requestor` marker — the
//!    §II-B4 handoff of a departing donor, or
//! 3. `S` holds such an escrow for a transaction `(D → T, p)` and `T`'s
//!    reciprocation has been observed — the escrow release (marked with
//!    `requestor = T`).
//!
//! Anything else is a violation and fails the run. The observer also
//! reconstructs chains (an upload either opens one or extends the chain
//! of the transaction it reciprocates) so chain-length statistics are
//! comparable with the fluid simulator's.

use crate::content::{fingerprint, mix64, Content};
use crate::frame::{CausalMeta, Frame, FrameError};
use crate::runtime::{Checkpoint, NetConfig, Outbox, PeerCounters, PeerRole, PeerRuntime};
pub use crate::sched::SchedMode;
use crate::sched::TimerWheel;
use crate::strategy::{
    strategy_label, AttackerState, ColluderRegistry, NetStrategy, Strategy, RECHOKE_PERIOD,
    WHITEWASH_REJOIN_DELAY,
};
use crate::telemetry::{virt_ms, FlightDump, FlightRecorder, PeerTelemetry, SwarmTelemetry};
use crate::transport::{
    ChannelMesh, ChaosRecord, Delivery, NetError, RejectCause, Transport, TransportStats,
};
use std::collections::{BTreeMap, BTreeSet};
use tchain_obs::{
    trace_event, ChaosKind, Event, MetricName, OracleKind, RejectKind, TraceRecord, Tracer,
    WireMsg,
};
use tchain_proto::{NeighborPolicy, Tracker};
use tchain_proto::wire::Message;
use tchain_sim::{
    Act, ChaosAction, ChaosPlan, ChaosState, ChurnPlan, ChurnState, ExplorePlan, FaultPlan,
    FrameMutation, NodeId, SchedPerturber, Schedule, SimRng,
};

/// Scenario parameters for one swarm run.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Total peers including the single seeder (id 0).
    pub peers: u32,
    /// Per-peer behavioural strategies `(peer id, strategy)` — the
    /// shared `tchain-attacks` vocabulary, one entry per strategic
    /// peer. Absent ids are compliant; id 0 (the seeder) must not
    /// appear. [`SwarmConfig::with_free_riders`] reproduces the
    /// historical "n highest ids free-ride" count layout.
    pub strategies: Vec<(u32, Strategy)>,
    /// Pieces in the shared file.
    pub pieces: usize,
    /// Bytes per piece.
    pub piece_len: usize,
    /// Master seed: content, per-peer RNG and keyrings fork from it.
    pub seed: u64,
    /// Peer-level protocol tunables.
    pub net: NetConfig,
    /// Fault plan for the mesh transport (loss/latency/partitions).
    pub plan: FaultPlan,
    /// Byzantine chaos plan: frame corruption, duplication, reordering,
    /// resets and crash-restart schedules.
    pub chaos: ChaosPlan,
    /// Membership churn schedule: staggered joins, flash crowds and
    /// voluntary §II-B4 departures. Composes with `plan` and `chaos`.
    pub churn: ChurnPlan,
    /// Peer scheduler (indexed timer wheel vs legacy linear scan vs
    /// perturbed exploration).
    pub sched: SchedMode,
    /// Perturbation plan for [`SchedMode::Explore`]: PCT priority
    /// sampling or bit-exact replay of a recorded [`Schedule`]. `None`
    /// under `Explore` degenerates to the empty replay — the default
    /// indexed interleaving, fingerprint and all. Ignored by the other
    /// modes.
    pub explore: Option<ExplorePlan>,
    /// Virtual seconds per tick (mesh transport).
    pub tick_dt: f64,
    /// Hard stop if the swarm has not drained by then.
    pub max_ticks: u64,
    /// Capacity of the obs event ring (0 disables tracing).
    pub trace_capacity: usize,
    /// Swarm telemetry: per-peer causal tracers (Lamport-stamped frame
    /// metadata on the wire), metric histograms, swarm aggregation and
    /// the flight recorder. Off by default — a disabled run sends
    /// byte-identical frames and keeps its fingerprint.
    pub telemetry: bool,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            peers: 8,
            strategies: Vec::new(),
            pieces: 24,
            piece_len: 1024,
            seed: 42,
            net: NetConfig::default(),
            plan: FaultPlan::none(),
            chaos: ChaosPlan::none(),
            churn: ChurnPlan::none(),
            sched: SchedMode::Indexed,
            explore: None,
            tick_dt: 1.0,
            max_ticks: 4000,
            trace_capacity: 4096,
            telemetry: false,
        }
    }
}

impl SwarmConfig {
    /// Historical scenario shape: the `n` highest ids are plain
    /// §III-A2 zero-upload free-riders. Role derivation then
    /// reproduces the count-based peer layout exactly — same ids, same
    /// roles, same draw sequence — so seeded fingerprints from the
    /// `free_riders: n` era keep holding.
    #[must_use]
    pub fn with_free_riders(mut self, n: u32) -> Self {
        assert!(n < self.peers, "leave at least the seeder compliant");
        self.strategies.retain(|&(id, _)| id < self.peers - n);
        self.strategies
            .extend((self.peers - n..self.peers).map(|id| (id, Strategy::zero_upload())));
        self
    }

    /// Boot-time free-riders (any flavour) in the scenario.
    pub fn free_rider_count(&self) -> u32 {
        self.strategies.iter().filter(|(_, s)| s.is_free_rider()).count() as u32
    }
}

#[derive(Debug)]
struct TxnObs {
    payee: Option<u32>,
    reported: bool,
    escrowed: bool,
    /// The report that closed this txn attested a reciprocation the
    /// observer never saw on the wire (§IV-D collusion).
    false_report: bool,
    /// The forged report already unlocked a key (colluder gain is one
    /// key per falsified txn — retransmitted releases are not extra
    /// loot).
    gain_booked: bool,
    chain: usize,
}

#[derive(Debug, Default)]
struct ChainObs {
    len: u32,
    terminated: bool,
}

/// Frame-level audit of the incentive invariant.
#[derive(Debug, Default)]
pub struct Observer {
    /// `(donor, requestor, piece) -> state`.
    txns: BTreeMap<(u32, u32, u32), TxnObs>,
    /// Triples whose *earlier generation* was reported before a re-upload
    /// replaced the entry. When a key release is lost in flight, the
    /// requestor re-requests and the donor opens a fresh txn for the same
    /// triple — but the donor's retry timer may still re-send the old
    /// generation's key, which is backed by the delivered report of that
    /// generation and must not audit against the new, unreported one.
    reported_generations: BTreeSet<(u32, u32, u32)>,
    /// `(donor, piece, requestor)` reciprocations seen on the wire.
    recips: BTreeMap<(u32, u32), Vec<u32>>,
    /// Peers that left the swarm. A report delivered to a departed donor
    /// must *not* mark its transaction reported: the donor never acted on
    /// it, so its §II-B4 handoff of that key (racing the report on the
    /// wire) is the legitimate — and only — release path.
    departed: std::collections::BTreeSet<u32>,
    /// Wire identities run by a strategic operator → scenario label.
    /// The incentive-economics ledger attributes per-frame flows
    /// (leakage, Sybil trials, false reports) to these.
    attackers: BTreeMap<u32, &'static str>,
    /// Colluder/Sybil group of strategic identities.
    groups: BTreeMap<u32, u32>,
    /// Seeder ids, for attributing seeder-altruism leakage.
    seeders: BTreeSet<u32>,
    chains: Vec<ChainObs>,
    /// Human-readable invariant violations (must stay empty).
    pub violations: Vec<String>,
    /// Encrypted uploads seen.
    pub uploads: u64,
    /// §II-B3 unencrypted gift uploads seen.
    pub gifts: u64,
    /// Reception reports seen.
    pub reports: u64,
    /// Key releases seen.
    pub key_releases: u64,
    /// Key releases classified as §II-B4 escrow handoffs.
    pub escrow_transfers: u64,
    /// False reception reports detected — reports attesting a
    /// reciprocation that never crossed the wire — once per txn.
    pub false_reports: u64,
    /// `(reporter, donor, requestor, piece)` per detected false report.
    pub false_report_log: Vec<(u32, u32, u32, u32)>,
    /// Key releases a colluder extracted via a false report. The donor
    /// acted in good faith on a payee-signed report, so these book as
    /// colluder gain, not invariant violations.
    pub colluder_gain: u64,
    /// Designated-payee uploads non-attackers donated to attackers.
    pub altruism_leaked: u64,
    /// Uploads (encrypted or gift) seeders donated to attackers.
    pub seeder_leakage: u64,
    /// §II-B3 gifts that landed on attackers.
    pub gift_leakage: u64,
    /// Designated-payee uploads whose requestor sat in a Sybil group —
    /// the §III-A4 trials.
    pub sybil_checks: u64,
    /// Trials where the payee landed in the requestor's own group.
    pub sybil_collisions: u64,
}

impl Observer {
    fn observe(&mut self, d: &Delivery, tracer: &mut Tracer, now: f64) {
        // A chaos-fabricated duplicate is wire noise, not a sender action:
        // auditing the second copy would re-register live transactions
        // (erasing `reported` and flagging the donor's later, legal key
        // release) and double-count protocol events. The schedule
        // explorer found exactly that phantom; receivers still process
        // the copy — only the audit skips it.
        if d.duplicated {
            return;
        }
        let (from, to) = (d.from.0, d.to.0);
        let Frame::Control(msg) = &d.frame else { return };
        match msg {
            Message::PieceUpload { reciprocates, piece, payee, .. } => {
                let p = piece.0;
                let payee = payee.map(|n| n.0);
                // Chain attribution: an upload either extends the chain
                // of the transaction it reciprocates or opens a new one.
                let chain = match reciprocates {
                    Some((p0, d0)) => {
                        let parent_key = (d0.0, from, p0.0);
                        self.recips.entry((d0.0, p0.0)).or_default().push(from);
                        if let Some(parent) = self.txns.get(&parent_key) {
                            // Direct reciprocity: the donor is its own
                            // payee, and this upload *is* the report
                            // (unless the donor already left — then it
                            // never learns of the reciprocation).
                            if parent.payee == Some(d0.0)
                                && d0.0 == to
                                && !self.departed.contains(&to)
                            {
                                let c = parent.chain;
                                self.txns.get_mut(&parent_key).expect("checked").reported = true;
                                c
                            } else {
                                parent.chain
                            }
                        } else {
                            self.new_chain()
                        }
                    }
                    None => self.new_chain(),
                };
                if let Some(c) = self.chains.get_mut(chain) {
                    c.len += 1;
                }
                match payee {
                    Some(py) => {
                        self.uploads += 1;
                        if self.attackers.contains_key(&to) && !self.attackers.contains_key(&from) {
                            self.altruism_leaked += 1;
                        }
                        // §III-A4 Sybil trial: the exploit fires only
                        // when the requestor *and* the payee land in the
                        // same group.
                        if let Some(g) = self.groups.get(&to) {
                            self.sybil_checks += 1;
                            if self.groups.get(&py) == Some(g) {
                                self.sybil_collisions += 1;
                                trace_event!(tracer, now, Event::SybilCollision {
                                    donor: from,
                                    requestor: to,
                                    payee: py,
                                    piece: p,
                                });
                            }
                        }
                        // A re-upload of the same triple is a genuinely
                        // new transaction (retry after loss or stall,
                        // with a freshly designated payee) and replaces
                        // the audit entry; chaos-fabricated duplicates
                        // never reach this point. If the superseded
                        // generation was already reported, remember it —
                        // its key may still be retried legally.
                        if self.txns.get(&(from, to, p)).is_some_and(|t| t.reported) {
                            self.reported_generations.insert((from, to, p));
                        }
                        self.txns.insert(
                            (from, to, p),
                            TxnObs {
                                payee,
                                reported: false,
                                escrowed: false,
                                false_report: false,
                                gain_booked: false,
                                chain,
                            },
                        );
                    }
                    None => {
                        // §II-B3 termination: no key, chain ends here.
                        self.gifts += 1;
                        if self.attackers.contains_key(&to) {
                            self.gift_leakage += 1;
                        }
                        if let Some(c) = self.chains.get_mut(chain) {
                            c.terminated = true;
                        }
                    }
                }
                if self.seeders.contains(&from) && self.attackers.contains_key(&to) {
                    self.seeder_leakage += 1;
                }
                trace_event!(tracer, now, Event::TxnStart {
                    txn: pack(from, to, p),
                    chain: chain as u64,
                    donor: from,
                    requestor: to,
                    payee,
                    piece: p,
                });
            }
            Message::ReceptionReport { requestor, piece } => {
                self.reports += 1;
                let mut falsified = false;
                if !self.departed.contains(&to) {
                    // Detection soundness: a truthful report is always
                    // preceded on the wire by the reciprocation it
                    // attests — the payee only learns of the txn from
                    // that delivery — so a payee-signed report with no
                    // observed reciprocation from the requestor toward
                    // the donor is provably false (§IV-D).
                    let truthful = self
                        .recips
                        .get(&(to, piece.0))
                        .is_some_and(|rs| rs.contains(&requestor.0));
                    if let Some(t) = self.txns.get_mut(&(to, requestor.0, piece.0)) {
                        if t.payee == Some(from) {
                            if !truthful {
                                falsified = true;
                                if !t.reported {
                                    t.false_report = true;
                                    self.false_reports += 1;
                                    self.false_report_log.push((from, to, requestor.0, piece.0));
                                    trace_event!(tracer, now, Event::FalseReport {
                                        txn: pack(to, requestor.0, piece.0),
                                        reporter: from,
                                        donor: to,
                                        requestor: requestor.0,
                                        piece: piece.0,
                                    });
                                }
                            }
                            t.reported = true;
                        }
                    }
                }
                trace_event!(tracer, now, Event::ReportSent {
                    txn: pack(to, requestor.0, piece.0),
                    from,
                    to,
                    falsified,
                });
            }
            Message::KeyRelease { piece, requestor, .. } => {
                let p = piece.0;
                self.key_releases += 1;
                let escrowed = self.classify_key(from, to, p, requestor.map(|r| r.0));
                match escrowed {
                    Some(true) => self.escrow_transfers += 1,
                    Some(false) => {}
                    None => {
                        let ctx: Vec<String> = self
                            .txns
                            .iter()
                            .filter(|((d, r, tp), _)| {
                                *tp == p && (*d == from || *r == to || *d == to || *r == from)
                            })
                            .map(|((d, r, tp), t)| {
                                format!(
                                    "txn {d}->{r} p{tp} payee={:?} reported={} escrowed={}",
                                    t.payee, t.reported, t.escrowed
                                )
                            })
                            .collect();
                        self.violations.push(format!(
                            "unreciprocated key release {from} -> {to} piece {p} tag={:?} [{}]",
                            requestor.map(|r| r.0),
                            ctx.join("; ")
                        ));
                    }
                }
                trace_event!(tracer, now, Event::KeySent {
                    txn: pack(from, to, p),
                    from,
                    to,
                    escrowed: escrowed == Some(true),
                });
            }
            _ => {}
        }
    }

    /// Applies release rules 1–3 from the module docs. `Some(true)` means
    /// an escrow-path release, `Some(false)` a normal one, `None` a
    /// violation. The wire `requestor` marker pins the escrow rules to
    /// one specific transaction — an untagged release is only ever legal
    /// under rule 1.
    fn classify_key(
        &mut self,
        from: u32,
        to: u32,
        piece: u32,
        requestor: Option<u32>,
    ) -> Option<bool> {
        match requestor {
            // Rule 1: the release closes a reported txn (from -> to).
            None => {
                if let Some(t) = self.txns.get_mut(&(from, to, piece)) {
                    if t.reported {
                        // A falsely-reported txn still releases "legally":
                        // the donor acted in good faith on a payee-signed
                        // report. The audit books the extraction instead —
                        // once per txn, so duplicate releases of the same
                        // key never inflate the gain.
                        if t.false_report && !t.gain_booked {
                            t.gain_booked = true;
                            self.colluder_gain += 1;
                        }
                        return Some(false);
                    }
                }
                // A late retry of a superseded generation's key: that
                // generation's report was delivered before a re-upload
                // replaced the txn entry, so the release is still backed
                // by observed reciprocation.
                self.reported_generations.contains(&(from, to, piece)).then_some(false)
            }
            // Rule 2: a departing donor hands the key of its unreported
            // txn `(from -> r, piece)` to that txn's payee `to`.
            Some(r) if r != to => {
                let t = self.txns.get_mut(&(from, r, piece))?;
                if t.payee == Some(to) && !t.reported {
                    t.escrowed = true;
                    Some(true)
                } else {
                    None
                }
            }
            // Rule 3: the payee `from` forwards an escrowed key to the
            // requestor `to`, whose reciprocation has been seen.
            Some(_) => {
                let release = self.txns.iter().any(|((d, r, p), t)| {
                    *r == to
                        && *p == piece
                        && t.payee == Some(from)
                        && t.escrowed
                        && self.recips.get(&(*d, *p)).is_some_and(|rs| rs.contains(&to))
                });
                release.then_some(true)
            }
        }
    }

    /// Records that `id` left the swarm; later frames addressed to it are
    /// audited as delivered-but-unacted-on.
    pub fn note_departed(&mut self, id: u32) {
        self.departed.insert(id);
    }

    /// Records that a crashed `id` rejoined from a checkpoint: it acts on
    /// delivered frames again, so the departed-peer audit carve-outs no
    /// longer apply to it.
    pub fn note_rejoined(&mut self, id: u32) {
        self.departed.remove(&id);
    }

    /// Registers a strategic wire identity for the audit ledger, so
    /// leakage and Sybil counters attribute per-frame flows to it.
    pub fn note_attacker(&mut self, id: u32, label: &'static str, group: Option<u32>) {
        self.attackers.insert(id, label);
        if let Some(g) = group {
            self.groups.insert(id, g);
        }
    }

    /// Registers a seeder id for leakage attribution.
    pub fn note_seeder(&mut self, id: u32) {
        self.seeders.insert(id);
    }

    fn new_chain(&mut self) -> usize {
        self.chains.push(ChainObs::default());
        self.chains.len() - 1
    }

    /// Chains opened.
    pub fn chains_started(&self) -> usize {
        self.chains.len()
    }

    /// Mean transactions per chain.
    pub fn mean_chain_len(&self) -> f64 {
        if self.chains.is_empty() {
            return 0.0;
        }
        self.chains.iter().map(|c| f64::from(c.len)).sum::<f64>() / self.chains.len() as f64
    }

    /// Longest chain observed.
    pub fn max_chain_len(&self) -> u32 {
        self.chains.iter().map(|c| c.len).max().unwrap_or(0)
    }

    /// Chains that ended in a §II-B3 unencrypted termination.
    pub fn chains_terminated(&self) -> usize {
        self.chains.iter().filter(|c| c.terminated).count()
    }

    /// Transactions per chain, in chain-open order (telemetry feeds its
    /// chain-length histogram from this).
    pub fn chain_lengths(&self) -> Vec<u32> {
        self.chains.iter().map(|c| c.len).collect()
    }
}

fn pack(a: u32, b: u32, p: u32) -> u64 {
    (u64::from(a) << 42) | (u64::from(b) << 21) | u64::from(p)
}

/// Classifies a frame as a span-carrying wire message and derives its
/// transaction span id. Both endpoints compute the same span because
/// the sender stamps it into the [`CausalMeta`] the receiver reads —
/// this function only runs on the send side.
fn wire_view(from: u32, to: u32, frame: &Frame) -> Option<(WireMsg, u64)> {
    match frame {
        Frame::PieceData { piece, .. } => Some((WireMsg::PieceData, pack(from, to, piece.0))),
        Frame::Control(Message::PieceUpload { piece, .. }) => {
            Some((WireMsg::Upload, pack(from, to, piece.0)))
        }
        Frame::Control(Message::ReceptionReport { requestor, piece }) => {
            Some((WireMsg::Report, pack(to, requestor.0, piece.0)))
        }
        Frame::Control(Message::KeyRelease { piece, .. }) => {
            Some((WireMsg::Key, pack(from, to, piece.0)))
        }
        _ => None,
    }
}

/// One peer's causal trace ring, keyed by peer id.
pub type PeerRing = (u32, Vec<TraceRecord>);

/// Harness-side telemetry, alive only while [`SwarmConfig::telemetry`]
/// is set: one causal [`Tracer`] and one [`PeerTelemetry`] per peer,
/// pending-interval maps feeding the latency histograms, and the
/// flight recorder. The whole struct sits behind an `Option` so a
/// disabled run never constructs (or consults) any of it.
struct TelemetryState {
    capacity: usize,
    tracers: BTreeMap<u32, Tracer>,
    metrics: BTreeMap<u32, PeerTelemetry>,
    /// `(donor, requestor, piece)` → PieceUpload delivery time.
    upload_seen: BTreeMap<(u32, u32, u32), f64>,
    /// `(requestor, piece)` → first PieceData delivery time.
    data_seen: BTreeMap<(u32, u32), f64>,
    /// `(payee, piece)` → §II-B4 escrow handoff delivery time.
    escrow_since: BTreeMap<(u32, u32), f64>,
    recorder: FlightRecorder,
}

impl TelemetryState {
    fn new(capacity: usize) -> Self {
        TelemetryState {
            capacity,
            tracers: BTreeMap::new(),
            metrics: BTreeMap::new(),
            upload_seen: BTreeMap::new(),
            data_seen: BTreeMap::new(),
            escrow_since: BTreeMap::new(),
            recorder: FlightRecorder::new(64, 8),
        }
    }

    fn tracer(&mut self, peer: u32) -> &mut Tracer {
        let cap = self.capacity;
        self.tracers.entry(peer).or_insert_with(|| Tracer::for_peer(peer, cap))
    }

    fn metric(&mut self, peer: u32) -> &mut PeerTelemetry {
        self.metrics.entry(peer).or_insert_with(|| PeerTelemetry::new(peer))
    }

    /// Stamps an outgoing frame: ticks the sender's Lamport clock,
    /// records a `FrameSent` for span-carrying messages (the record
    /// itself is the tick, so the stamp equals the event's clock) and
    /// returns the wire metadata.
    fn on_send(&mut self, now: f64, from: u32, to: u32, frame: &Frame) -> CausalMeta {
        let view = wire_view(from, to, frame);
        let tracer = self.tracer(from);
        let (lamport, span) = match view {
            Some((msg, span)) => {
                tracer.record(now, Event::FrameSent { span, to, msg });
                (tracer.lamport(), span)
            }
            None => (tracer.tick(), 0),
        };
        CausalMeta { origin: from, lamport, span }
    }

    /// Witnesses an incoming frame's clock (so the receive event lands
    /// strictly after the send), records `FrameReceived` and feeds the
    /// latency histograms from delivery-time intervals.
    fn on_delivery(&mut self, d: &Delivery, now: f64) {
        let (from, to) = (d.from.0, d.to.0);
        if let Some(meta) = &d.meta {
            let tracer = self.tracer(to);
            tracer.witness(meta.lamport);
            if let Some((msg, _)) = wire_view(from, to, &d.frame) {
                tracer.record(now, Event::FrameReceived { span: meta.span, from, msg });
            }
        }
        match &d.frame {
            Frame::PieceData { piece, .. } => {
                self.data_seen.entry((to, piece.0)).or_insert(now);
            }
            Frame::Control(Message::PieceUpload { piece, payee: Some(_), .. }) => {
                self.upload_seen.insert((from, to, piece.0), now);
            }
            Frame::Control(Message::ReceptionReport { requestor, piece }) => {
                if let Some(t0) = self.upload_seen.remove(&(to, requestor.0, piece.0)) {
                    self.metric(to).piece_rtt.observe(virt_ms(now - t0));
                }
            }
            Frame::Control(Message::KeyRelease { piece, requestor, .. }) => {
                let p = piece.0;
                if let Some(t0) = self.data_seen.remove(&(to, p)) {
                    self.metric(to).request_key_latency.observe(virt_ms(now - t0));
                }
                match requestor.map(|r| r.0) {
                    // §II-B4 handoff: the payee `to` starts holding the key.
                    Some(r) if r != to => {
                        self.escrow_since.insert((to, p), now);
                    }
                    // Rule-3 forward: the payee `from` stops holding it.
                    Some(_) => {
                        if let Some(t0) = self.escrow_since.remove(&(from, p)) {
                            self.metric(from).escrow_dwell.observe(virt_ms(now - t0));
                        }
                    }
                    None => {}
                }
            }
            _ => {}
        }
    }

    /// A quarantine imposed by `peer`: histogram the duration and trip
    /// the flight recorder.
    fn on_quarantine(&mut self, peer: u32, now: f64, until: f64) {
        self.metric(peer).quarantine.observe(virt_ms(until - now));
        self.flight("quarantine", now);
    }

    /// Captures the merged tail of every peer ring (no-op once the
    /// per-run capture budget is spent).
    fn flight(&mut self, reason: &'static str, at: f64) {
        if self.recorder.full() {
            return;
        }
        let rings: Vec<Vec<TraceRecord>> = self.tracers.values().map(|t| t.records()).collect();
        self.recorder.capture(reason, at, &rings);
    }

    /// End-of-run fold: stamps one `MetricSample` event per metric per
    /// peer into its own ring, folds final counters into the metric
    /// blocks and builds the swarm aggregate.
    fn finish(
        mut self,
        now: f64,
        peers: &[(u32, PeerCounters, i64)],
        chain_lengths: &[u32],
        terminations: &[(&'static str, u64)],
    ) -> (SwarmTelemetry, Vec<PeerRing>, Vec<FlightDump>) {
        for &(id, c, goodwill) in peers {
            self.metric(id).finish(c, goodwill);
            let samples = [
                (MetricName::Uploads, c.uploaded),
                (MetricName::Downloads, c.decrypted + c.unencrypted),
                (MetricName::ReportsSent, c.reports_sent),
                (MetricName::ReportRetries, c.report_retries),
                (MetricName::KeysSent, c.keys_sent),
                (MetricName::KeysReceived, c.decrypted),
                (MetricName::EscrowHeld, c.escrowed),
                (MetricName::Quarantines, c.quarantines),
            ];
            let tracer = self.tracer(id);
            for (metric, value) in samples {
                tracer.record(now, Event::MetricSample { peer: id, metric, value });
            }
        }
        // `SwarmTelemetry::peers` is *defined* to be ascending-peer-id
        // ordered — consumers (Prometheus exposition, fairness index
        // pairing, the net_telemetry experiment's JSONL) index into it
        // positionally. Enforce the invariant explicitly instead of
        // inheriting it from BTreeMap iteration by accident: churn and
        // departures leave non-contiguous id sets, so sort by the id
        // carried in each block and assert the result.
        let mut peer_metrics: Vec<PeerTelemetry> =
            self.metrics.into_values().collect();
        peer_metrics.sort_by_key(|m| m.peer);
        debug_assert!(
            peer_metrics.windows(2).all(|w| w[0].peer < w[1].peer),
            "per-peer telemetry ids must be strictly ascending"
        );
        let mut swarm = SwarmTelemetry {
            peers: peer_metrics,
            ..SwarmTelemetry::default()
        };
        for &len in chain_lengths {
            swarm.chain_lengths.observe(u64::from(len));
        }
        for &(cause, n) in terminations {
            if n > 0 {
                swarm.note_termination(cause, n);
            }
        }
        let rings = self.tracers.iter().map(|(&id, t)| (id, t.records())).collect();
        (swarm, rings, self.recorder.into_dumps())
    }
}

/// Maps a transport injection to its obs event kind. `Deliver` is never
/// recorded as an injection, hence `None`.
fn chaos_kind(action: ChaosAction) -> Option<ChaosKind> {
    Some(match action {
        ChaosAction::Deliver => return None,
        ChaosAction::Corrupt(FrameMutation::BitFlip { .. }) => ChaosKind::BitFlip,
        ChaosAction::Corrupt(FrameMutation::Truncate { .. }) => ChaosKind::Truncate,
        ChaosAction::Corrupt(FrameMutation::OversizeLen) => ChaosKind::OversizeLen,
        ChaosAction::Duplicate => ChaosKind::Duplicate,
        ChaosAction::Reorder => ChaosKind::Reorder,
        ChaosAction::Reset => ChaosKind::Reset,
    })
}

/// Maps a receiver-side reject cause to its obs event kind.
fn reject_kind(cause: &RejectCause) -> RejectKind {
    match cause {
        RejectCause::Reset => RejectKind::Reset,
        RejectCause::Malformed(e) => match e {
            FrameError::Oversized { .. } => RejectKind::Oversized,
            FrameError::UnknownKind(_) => RejectKind::UnknownKind,
            FrameError::ChecksumMismatch { .. } => RejectKind::ChecksumMismatch,
            FrameError::TruncatedStream => RejectKind::Truncated,
            FrameError::Control(_) | FrameError::TruncatedBody => RejectKind::Malformed,
        },
    }
}

/// Outcome of one swarm run.
#[derive(Debug)]
pub struct SwarmReport {
    /// Transport backend name.
    pub backend: &'static str,
    /// Peers in the run (including the seeder).
    pub peers: u32,
    /// Free-riding leechers.
    pub free_riders: u32,
    /// Pieces in the file.
    pub pieces: usize,
    /// Ticks executed.
    pub ticks: u64,
    /// Transport-clock seconds elapsed.
    pub elapsed: f64,
    /// Compliant leechers that completed the file.
    pub completed_compliant: u32,
    /// Compliant leechers in the scenario.
    pub total_compliant: u32,
    /// Free-riders that completed the file.
    pub completed_free_riders: u32,
    /// Every held piece on every peer matched the content byte-for-byte.
    pub plaintext_ok: bool,
    /// Invariant violations found by the observer (must be empty).
    pub violations: Vec<String>,
    /// Chains opened / mean length / max length / §II-B3 terminations.
    pub chains_started: usize,
    /// Mean transactions per chain.
    pub mean_chain_len: f64,
    /// Longest observed chain.
    pub max_chain_len: u32,
    /// Chains closed by unencrypted termination uploads.
    pub chains_terminated: usize,
    /// Encrypted uploads observed.
    pub uploads: u64,
    /// Unencrypted gift uploads observed.
    pub gifts: u64,
    /// Reception reports observed.
    pub reports: u64,
    /// Key releases observed.
    pub key_releases: u64,
    /// Key releases over the §II-B4 escrow path.
    pub escrow_transfers: u64,
    /// Chaos injections taken by the transport (corrupt/dup/reorder/reset).
    pub chaos_injects: u64,
    /// Frames (or streams) receivers rejected as malformed or reset.
    pub frame_rejects: u64,
    /// Quarantines imposed after repeated rejects from one peer.
    pub quarantines: u64,
    /// Abrupt crash-restart crashes executed.
    pub crashes: u64,
    /// Checkpoint rejoins completed.
    pub rejoins: u64,
    /// Peers that joined mid-run from the churn schedule.
    pub churn_joins: u64,
    /// Peers that left voluntarily mid-run (§II-B4 handoff) from the
    /// churn schedule.
    pub churn_departs: u64,
    /// Completion breakdown per strategy label → `(completed, total)`,
    /// over boot leechers plus whitewash identities; the seeder and
    /// incomplete voluntary departures are excluded.
    pub completed_by_strategy: BTreeMap<&'static str, (u32, u32)>,
    /// False reception reports the observer detected and attributed.
    pub false_reports: u64,
    /// `(reporter, donor, requestor, piece)` per detected false report.
    pub false_report_log: Vec<(u32, u32, u32, u32)>,
    /// Key releases colluders extracted via false reports (§IV-D gain).
    pub colluder_gain: u64,
    /// Designated-payee uploads leaked from non-attackers to attackers.
    pub altruism_leaked: u64,
    /// Uploads leaked from seeders to attackers.
    pub seeder_leakage: u64,
    /// §II-B3 gifts that landed on attackers.
    pub gift_leakage: u64,
    /// Uploads whose requestor sat in a Sybil group (§III-A4 trials).
    pub sybil_checks: u64,
    /// Trials where the payee landed in the requestor's group.
    pub sybil_collisions: u64,
    /// Whitewash identity resets completed.
    pub whitewash_rejoins: u64,
    /// Tracker member-list queries served — the large-view signature
    /// (one per peer at rendezvous, plus every §IV-C re-query).
    pub tracker_queries: u64,
    /// Every surviving peer's §II-D2 ledger matched its unreported
    /// donor-transaction count at the end of the run.
    pub ledger_ok: bool,
    /// Transport delivery counters.
    pub transport: TransportStats,
    /// Order-sensitive digest of every delivered frame — two runs with
    /// the same seed must agree bit-for-bit.
    pub fingerprint: u64,
    /// obs events recorded during the run.
    pub events_recorded: u64,
    /// `(peer id, completion time)` for every completed peer.
    pub completion_times: Vec<(u32, f64)>,
    /// Per-peer protocol counters, id-ordered.
    pub peer_counters: Vec<(u32, PeerCounters)>,
    /// Swarm telemetry aggregate — `None` unless
    /// [`SwarmConfig::telemetry`] was set.
    pub telemetry: Option<SwarmTelemetry>,
    /// Per-peer causal trace rings, id-ordered; empty when telemetry is
    /// off. Each ring merges with the others via
    /// `tchain_obs::merge_traces` into one causally ordered trace.
    pub peer_rings: Vec<PeerRing>,
    /// Flight-recorder captures (violation / quarantine / crash), in
    /// trigger order; empty when telemetry is off or nothing fired.
    pub flight_dumps: Vec<FlightDump>,
    /// The effective schedule of an explore-mode run: every
    /// non-default scheduling action actually applied, replayable
    /// bit-for-bit via [`tchain_sim::ExplorePlan::Replay`]. `None`
    /// outside [`SchedMode::Explore`].
    pub schedule: Option<Schedule>,
    /// Scheduling decision points consumed by an explore-mode run
    /// (default decisions included); 0 outside explore mode.
    pub sched_decisions: u64,
    /// End-of-run safety oracles that failed, in a fixed order; empty
    /// on a clean run. Superset view: `ok()` covers key-release,
    /// plaintext and completion — this list adds the ledger and
    /// quarantine-evidence oracles.
    pub failed_oracles: Vec<OracleKind>,
}

impl SwarmReport {
    /// `true` when the run satisfied every acceptance invariant: all
    /// compliant leechers done, all plaintexts byte-identical, and zero
    /// unreciprocated key releases.
    pub fn ok(&self) -> bool {
        self.completed_compliant == self.total_compliant
            && self.plaintext_ok
            && self.violations.is_empty()
    }
}

/// A crashed peer waiting out its jittered outage before rejoining.
struct RejoinSlot {
    at: f64,
    generation: u32,
    checkpoint: Checkpoint,
}

/// A whitewashed operator waiting out its rejoin delay before coming
/// back under a fresh identity — loot intact, ledgers wiped.
struct WhitewashSlot {
    at: f64,
    prior: u32,
    new_id: u32,
    operator: usize,
    generation: u32,
    checkpoint: Checkpoint,
}

/// Adversary-engine state, alive only when some strategy manipulates
/// beyond zero upload. Behind an `Option` (like churn and telemetry)
/// with its own salted RNG fork, so manipulation-free runs make zero
/// extra draws and keep their fingerprints bit for bit.
struct AttackState {
    /// Strategic draws (re-query sampling, rejoin bootstraps) come from
    /// this fork, never from the harness RNG the compliant path uses.
    rng: SimRng,
    colluders: ColluderRegistry,
    /// One entry per manipulating operator, in boot-id order; survives
    /// the identity changes a whitewasher cycles through.
    operators: Vec<AttackerState>,
    /// Forged §IV-D reports staged during delivery audit, flushed
    /// through the normal send path next `handle_attacks`.
    staged_reports: Vec<(NodeId, NodeId, Frame)>,
    /// `(donor, requestor, piece)` txns already falsely reported —
    /// ring mates file one forged report per transaction.
    reported_txns: BTreeSet<(u32, u32, u32)>,
    pending_whitewash: Vec<WhitewashSlot>,
    whitewash_rejoins: u64,
}

/// N in-process peers over one transport.
pub struct SwarmHarness<T: Transport> {
    transport: T,
    cfg: SwarmConfig,
    content: Content,
    peers: BTreeMap<u32, PeerRuntime>,
    tracker: Tracker,
    observer: Observer,
    tracer: Tracer,
    rng: SimRng,
    fingerprint: u64,
    departed_handled: BTreeMap<u32, ()>,
    /// Harness-side view of the chaos plan: crash schedule + backoff
    /// jitter. Frame-level injections live in the transport's own state.
    chaos: ChaosState,
    pending_rejoin: Vec<RejoinSlot>,
    chaos_injects: u64,
    crashes: u64,
    rejoins: u64,
    telemetry: Option<TelemetryState>,
    /// Timer index over peers ([`SchedMode::Indexed`]): each armed peer
    /// has one authoritative wake time; `ready` collects peers that
    /// received frames this tick and must run `on_tick` regardless.
    wheel: TimerWheel,
    ready: BTreeSet<u32>,
    /// Scheduling decision stream for [`SchedMode::Explore`]; `None`
    /// in the other modes, so they make zero extra work per tick.
    perturb: Option<SchedPerturber>,
    /// Expanded churn schedule; `None` when the plan is empty, so a
    /// churn-free run makes zero extra RNG draws and keeps its
    /// pre-churn fingerprint.
    churn: Option<ChurnState>,
    /// Next fresh peer id for churn joins and whitewash rebirths
    /// (initial ids are 0..peers).
    next_id: u32,
    churn_joined: u64,
    churn_departed: u64,
    /// Adversary engine; `None` when no strategy manipulates, so
    /// attack-free runs make zero extra RNG draws.
    attack: Option<AttackState>,
    /// Free-riders in the boot scenario (whitewash rebirths keep the
    /// count — an operator is one free-rider however many ids it burns).
    boot_free_riders: u32,
    /// Voluntary departures that left *before* completing — excluded
    /// from the completion target (they can never finish).
    churn_departed_incomplete: u32,
}

impl<T: Transport> SwarmHarness<T> {
    /// Builds the swarm: seeder is id 0, free-riders take the highest
    /// ids, everyone registers with transport and tracker.
    pub fn new(mut transport: T, cfg: SwarmConfig) -> Result<Self, NetError> {
        assert!(cfg.peers >= 2, "a swarm needs a seeder and a leecher");
        let mut strategy_of: BTreeMap<u32, Strategy> = BTreeMap::new();
        for &(id, s) in &cfg.strategies {
            assert!(id != 0, "the seeder (id 0) cannot carry a strategy");
            assert!(id < cfg.peers, "strategy assigned to unknown peer {id}");
            assert!(strategy_of.insert(id, s).is_none(), "duplicate strategy for peer {id}");
        }
        let boot_free_riders = cfg.free_rider_count();
        assert!(boot_free_riders < cfg.peers, "leave at least the seeder compliant");
        cfg.churn.validate();
        let content = Content::new(cfg.seed ^ 0x0C04_7E47, cfg.pieces, cfg.piece_len);
        let mut peers = BTreeMap::new();
        // Size tracker shards to the peak membership the scenario can
        // reach; ≤ 64 expected peers degenerates to the flat historical
        // layout (identical draw sequence, so 16-peer goldens hold).
        let expected_peak = cfg.peers + cfg.churn.total_joins();
        let mut tracker = Tracker::with_shards(Tracker::shards_for(expected_peak));
        let arm = !transport.reliable();
        for id in 0..cfg.peers {
            let strategy = strategy_of.get(&id).copied().unwrap_or_default();
            let role = if id == 0 {
                PeerRole::Seeder
            } else if strategy.is_free_rider() {
                PeerRole::FreeRider
            } else {
                PeerRole::Compliant
            };
            let mut peer =
                PeerRuntime::with_strategy(NodeId(id), role, content, cfg.net, cfg.seed, strategy);
            peer.set_arm_retries(arm);
            transport.register(NodeId(id))?;
            tracker.register(NodeId(id));
            peers.insert(id, peer);
        }
        let mut observer = Observer::default();
        observer.note_seeder(0);
        for (&id, s) in &strategy_of {
            if s.is_free_rider() {
                observer.note_attacker(id, strategy_label(s), s.collusion_group().map(|g| g.0));
            }
        }
        // The adversary engine, like churn, only exists when asked for:
        // its RNG is a salted fork so strategic draws never perturb the
        // compliant stream.
        let attack = cfg.strategies.iter().any(|(_, s)| s.manipulates()).then(|| {
            let mut colluders = ColluderRegistry::new();
            let mut operators = Vec::new();
            for (&id, s) in &strategy_of {
                if !s.manipulates() {
                    continue;
                }
                if let Some(g) = s.collusion_group() {
                    colluders.register(NodeId(id), g);
                }
                operators.push(AttackerState::new(id, *s, 0.0));
            }
            AttackState {
                rng: SimRng::new(cfg.seed ^ 0xA77A_C4E4),
                colluders,
                operators,
                staged_reports: Vec::new(),
                reported_txns: BTreeSet::new(),
                pending_whitewash: Vec::new(),
                whitewash_rejoins: 0,
            }
        });
        let tracer = if cfg.trace_capacity > 0 {
            Tracer::with_capacity(cfg.trace_capacity)
        } else {
            Tracer::disabled()
        };
        let rng = SimRng::new(cfg.seed ^ 0x7A_C4E4);
        // The harness forks its own chaos state for crash scheduling and
        // backoff jitter; salting the seed keeps its draws independent of
        // the transport's frame-level injection stream.
        let mut chaos_plan = cfg.chaos.clone();
        chaos_plan.seed ^= 0x0C_1A05_44A4;
        let chaos = ChaosState::new(chaos_plan);
        let telemetry = cfg.telemetry.then(|| {
            TelemetryState::new(if cfg.trace_capacity > 0 { cfg.trace_capacity } else { 4096 })
        });
        let churn = (!cfg.churn.is_none()).then(|| ChurnState::new(&cfg.churn));
        // Explore mode without a plan is the empty replay: every
        // decision defaults, reproducing the indexed interleaving.
        let perturb = (cfg.sched == SchedMode::Explore).then(|| match &cfg.explore {
            Some(plan) => SchedPerturber::new(plan),
            None => SchedPerturber::new(&ExplorePlan::Replay(Schedule::default())),
        });
        let next_id = cfg.peers;
        Ok(SwarmHarness {
            transport,
            cfg,
            content,
            peers,
            tracker,
            observer,
            tracer,
            rng,
            fingerprint: 0x5EED_F00D,
            departed_handled: BTreeMap::new(),
            chaos,
            pending_rejoin: Vec::new(),
            chaos_injects: 0,
            crashes: 0,
            rejoins: 0,
            telemetry,
            wheel: TimerWheel::new(),
            ready: BTreeSet::new(),
            perturb,
            churn,
            next_id,
            churn_joined: 0,
            churn_departed: 0,
            attack,
            boot_free_riders,
            churn_departed_incomplete: 0,
        })
    }

    /// Runs the swarm to completion (all compliant leechers hold the
    /// whole file) or to `max_ticks`, and audits the result.
    pub fn run(mut self) -> Result<SwarmReport, NetError> {
        // Tracker rendezvous + bitfield handshake. Request the §IV-A
        // policy list (50), not the whole swarm: for pools of ≤ 51 the
        // tracker's `k.min(pool-1)` cap makes the two requests
        // draw-identical (same sampling branch, same RNG stream — the
        // 16-peer goldens depend on that), and at 256 peers the bounded
        // list is what keeps per-peer neighbor state O(policy), not
        // O(N).
        let list_k = NeighborPolicy::default().list_size;
        let mut staged: Vec<(NodeId, NodeId, Frame)> = Vec::new();
        let ids: Vec<u32> = self.peers.keys().copied().collect();
        for &id in &ids {
            let members = self.tracker.random_members(NodeId(id), list_k, &mut self.rng);
            let peer = self.peers.get_mut(&id).expect("registered");
            let mut out: Outbox = Vec::new();
            peer.bootstrap(&members, &mut out);
            staged.extend(out.into_iter().map(|(to, f)| (NodeId(id), to, f)));
        }
        self.flush(staged)?;
        if self.cfg.sched != SchedMode::LegacyLinear {
            for &id in &ids {
                self.wheel.schedule(id, 0.0);
            }
        }

        let mut ticks = 0u64;
        let mut grace = 0u32;
        let mut batch: Vec<Delivery> = Vec::new();
        while ticks < self.cfg.max_ticks {
            ticks += 1;
            let deliveries = self.transport.advance()?;
            let now = self.transport.now();
            let mut staged: Vec<(NodeId, NodeId, Frame)> = Vec::new();
            // Batched dispatch: consecutive same-recipient deliveries
            // share one peer lookup and one outbox. Audit (observer,
            // telemetry, fingerprint fold) stays in exact delivery
            // order, and the recipient's `on_frame`s run in that same
            // order — the staged stream is byte-identical to the
            // one-at-a-time path.
            let mut it = deliveries.into_iter().peekable();
            while let Some(first) = it.next() {
                let to = first.to;
                batch.clear();
                batch.push(first);
                while it.peek().is_some_and(|d| d.to == to) {
                    batch.push(it.next().expect("peeked"));
                }
                for d in &batch {
                    let violations_before = self.observer.violations.len();
                    let false_before = self.observer.false_reports;
                    self.observer.observe(d, &mut self.tracer, now);
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.on_delivery(d, now);
                        if self.observer.violations.len() > violations_before {
                            tel.flight("violation", now);
                        }
                        // A detected false report trips the recorder:
                        // the capture shows the collusion's causal
                        // context (upload, forged report, key release).
                        if self.observer.false_reports > false_before {
                            tel.flight("collusion", now);
                        }
                    }
                    self.stage_collusion(d);
                    self.fold(d);
                }
                if let Some(peer) = self.peers.get_mut(&to.0) {
                    let mut out: Outbox = Vec::new();
                    for d in batch.drain(..) {
                        peer.on_frame(now, d.from, d.frame, &mut out);
                    }
                    staged.extend(out.into_iter().map(|(t, f)| (to, t, f)));
                    // A delivered frame can unlock same-tick work
                    // (reciprocation, key relay): run this peer's
                    // on_tick now, exactly when the legacy scan would.
                    self.ready.insert(to.0);
                }
            }
            // Peers whose departure flag may flip this tick — only
            // `on_tick` (depart_on_complete) and churn `leave` set it,
            // so the ticked set plus churn victims covers all of them.
            let mut woke: BTreeSet<u32> = BTreeSet::new();
            match self.cfg.sched {
                SchedMode::LegacyLinear => {
                    self.ready.clear();
                    for (&id, peer) in self.peers.iter_mut() {
                        let mut out: Outbox = Vec::new();
                        peer.on_tick(now, &mut out);
                        staged.extend(out.into_iter().map(|(to, f)| (NodeId(id), to, f)));
                    }
                }
                SchedMode::Indexed | SchedMode::Explore => {
                    // Union of due timers and frame receivers, visited
                    // in ascending id order — the same order the legacy
                    // scan used; every skipped peer is quiescent (see
                    // `PeerRuntime::next_wake`), so the staged stream
                    // matches the full scan's bit for bit.
                    let mut due = std::mem::take(&mut self.ready);
                    self.wheel.pop_due(now, &mut due);
                    if self.perturb.is_none() {
                        for id in due {
                            self.tick_peer(id, now, &mut staged, &mut woke);
                        }
                    } else {
                        // Explore: the run-order decision point goes
                        // through the perturber. `Pick(0)` at every
                        // step reproduces the loop above exactly.
                        let mut pending: Vec<u32> = due.into_iter().collect();
                        while !pending.is_empty() {
                            let p = self.perturb.as_mut().expect("explore mode");
                            let step = p.step();
                            let arity = pending.len() as u32;
                            match p.decide(&pending) {
                                Act::Defer => {
                                    trace_event!(self.tracer, now, Event::ScheduleChoice {
                                        step,
                                        arity,
                                        pick: u32::MAX,
                                    });
                                    // Punt the whole due set a tick:
                                    // the ready set re-runs them on
                                    // the next transport poll.
                                    for id in pending.drain(..) {
                                        self.ready.insert(id);
                                    }
                                }
                                Act::Pick(i) => {
                                    if i != 0 {
                                        trace_event!(self.tracer, now, Event::ScheduleChoice {
                                            step,
                                            arity,
                                            pick: i,
                                        });
                                    }
                                    let id = pending.remove(i as usize);
                                    self.tick_peer(id, now, &mut staged, &mut woke);
                                }
                            }
                        }
                    }
                }
            }
            self.flush(staged)?;
            self.handle_churn(now, &mut woke)?;
            match self.cfg.sched {
                SchedMode::Indexed | SchedMode::Explore => {
                    self.handle_departures(now, Some(&woke))
                }
                SchedMode::LegacyLinear => self.handle_departures(now, None),
            }
            self.handle_chaos_records(now);
            self.handle_rejoins(now)?;
            self.handle_crashes(now);
            self.handle_attacks(now)?;
            if self.compliant_done() {
                // A few grace ticks drain in-flight frames so trailing
                // key releases still pass under the observer's eye.
                grace += 1;
                if grace > 4 {
                    break;
                }
            }
        }

        let plaintext_ok = self.plaintexts_ok();
        let mut completion_times = Vec::new();
        let mut peer_counters = Vec::new();
        let mut completed_compliant = 0;
        // From the scenario, not the survivors: a peer still waiting out
        // its crash outage at the deadline must count as incomplete.
        // Churn joins raise the target; a voluntary departure that left
        // before completing can never finish and leaves it.
        let total_compliant = self.cfg.peers - 1 - self.boot_free_riders
            + self.churn_joined as u32
            - self.churn_departed_incomplete;
        let mut completed_free_riders = 0;
        for (&id, p) in &self.peers {
            if let Some(t) = p.completion_time() {
                completion_times.push((id, t));
            }
            peer_counters.push((id, p.counters()));
            match p.role() {
                PeerRole::Compliant => {
                    if p.is_complete() {
                        completed_compliant += 1;
                    }
                }
                PeerRole::FreeRider => {
                    if p.is_complete() {
                        completed_free_riders += 1;
                    }
                }
                PeerRole::Seeder => {}
            }
        }
        // Per-strategy completion ledger: live (or completed-departed)
        // leechers under their current strategy, plus any operator
        // caught mid-whitewash at the deadline.
        let mut completed_by_strategy: BTreeMap<&'static str, (u32, u32)> = BTreeMap::new();
        for p in self.peers.values() {
            if p.role() == PeerRole::Seeder || (p.departed() && !p.is_complete()) {
                continue;
            }
            let e = completed_by_strategy.entry(strategy_label(&p.strategy())).or_insert((0, 0));
            e.1 += 1;
            if p.is_complete() {
                e.0 += 1;
            }
        }
        if let Some(attack) = &self.attack {
            for slot in &attack.pending_whitewash {
                let s = attack.operators[slot.operator].strategy;
                let e = completed_by_strategy.entry(strategy_label(&s)).or_insert((0, 0));
                e.1 += 1;
                if slot.checkpoint.held_pieces() == self.cfg.pieces {
                    e.0 += 1;
                }
            }
        }
        // Safety-oracle sweep: the invariant set the schedule explorer
        // searches against, audited on *every* run (any mode). Each
        // failure lands in the trace and trips the flight recorder, so
        // a violating interleaving carries its causal context out.
        let ledger_ok = self
            .peers
            .values()
            .filter(|p| !p.departed())
            .all(PeerRuntime::ledger_consistent);
        let frame_rejects: u64 = peer_counters.iter().map(|(_, c)| c.frame_rejects).sum();
        let quarantines: u64 = peer_counters.iter().map(|(_, c)| c.quarantines).sum();
        let mut failed_oracles = Vec::new();
        if !self.observer.violations.is_empty() {
            failed_oracles.push(OracleKind::KeyRelease);
        }
        if !ledger_ok {
            failed_oracles.push(OracleKind::Ledger);
        }
        if !plaintext_ok {
            failed_oracles.push(OracleKind::Plaintext);
        }
        if completed_compliant != total_compliant {
            failed_oracles.push(OracleKind::Completion);
        }
        if quarantines > 0 && frame_rejects == 0 {
            failed_oracles.push(OracleKind::Quarantine);
        }
        {
            let now = self.transport.now();
            for &oracle in &failed_oracles {
                trace_event!(self.tracer, now, Event::OracleViolation { oracle });
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.flight("oracle", now);
                }
            }
        }
        let (schedule, sched_decisions) = match self.perturb.take() {
            Some(p) => {
                let decisions = p.decisions();
                (Some(p.into_schedule()), decisions)
            }
            None => (None, 0),
        };
        let (telemetry, peer_rings, flight_dumps) = match self.telemetry.take() {
            Some(tel) => {
                let now = self.transport.now();
                let tel_peers: Vec<(u32, PeerCounters, i64)> = self
                    .peers
                    .iter()
                    .map(|(&id, p)| (id, p.counters(), p.goodwill_balance()))
                    .collect();
                let terminations = [
                    ("gift", self.observer.chains_terminated() as u64),
                    ("departure", self.departed_handled.len() as u64),
                    ("crash", self.crashes),
                    ("quarantine", peer_counters.iter().map(|(_, c)| c.quarantines).sum()),
                ];
                let (swarm, rings, dumps) =
                    tel.finish(now, &tel_peers, &self.observer.chain_lengths(), &terminations);
                (Some(swarm), rings, dumps)
            }
            None => (None, Vec::new(), Vec::new()),
        };
        Ok(SwarmReport {
            backend: self.transport.backend(),
            peers: self.cfg.peers,
            free_riders: self.boot_free_riders,
            pieces: self.cfg.pieces,
            ticks,
            elapsed: self.transport.now(),
            completed_compliant,
            total_compliant,
            completed_free_riders,
            plaintext_ok,
            violations: std::mem::take(&mut self.observer.violations),
            chains_started: self.observer.chains_started(),
            mean_chain_len: self.observer.mean_chain_len(),
            max_chain_len: self.observer.max_chain_len(),
            chains_terminated: self.observer.chains_terminated(),
            uploads: self.observer.uploads,
            gifts: self.observer.gifts,
            reports: self.observer.reports,
            key_releases: self.observer.key_releases,
            escrow_transfers: self.observer.escrow_transfers,
            chaos_injects: self.chaos_injects,
            frame_rejects,
            quarantines,
            crashes: self.crashes,
            rejoins: self.rejoins,
            churn_joins: self.churn_joined,
            churn_departs: self.churn_departed,
            completed_by_strategy,
            false_reports: self.observer.false_reports,
            false_report_log: std::mem::take(&mut self.observer.false_report_log),
            colluder_gain: self.observer.colluder_gain,
            altruism_leaked: self.observer.altruism_leaked,
            seeder_leakage: self.observer.seeder_leakage,
            gift_leakage: self.observer.gift_leakage,
            sybil_checks: self.observer.sybil_checks,
            sybil_collisions: self.observer.sybil_collisions,
            whitewash_rejoins: self.attack.as_ref().map_or(0, |a| a.whitewash_rejoins),
            tracker_queries: self.tracker.queries(),
            ledger_ok,
            transport: self.transport.stats(),
            fingerprint: self.fingerprint,
            events_recorded: self.tracer.emitted(),
            completion_times,
            peer_counters,
            telemetry,
            peer_rings,
            flight_dumps,
            schedule,
            sched_decisions,
            failed_oracles,
        })
    }

    /// Runs one due peer's `on_tick` and re-arms it — the body of the
    /// indexed scheduler's visit, shared verbatim by explore mode so a
    /// perturbed run differs from production only in visit *order*.
    fn tick_peer(
        &mut self,
        id: u32,
        now: f64,
        staged: &mut Vec<(NodeId, NodeId, Frame)>,
        woke: &mut BTreeSet<u32>,
    ) {
        let Some(peer) = self.peers.get_mut(&id) else {
            self.wheel.cancel(id);
            return;
        };
        let mut out: Outbox = Vec::new();
        peer.on_tick(now, &mut out);
        // Re-arm. Output means the peer is mid-burst: tick it again
        // next round, like the legacy scan. Quiet peers park on their
        // earliest timer deadline, or disarm entirely until a frame
        // arrives. `now` (not now + dt) marks "next transport poll" on
        // wall-clock backends too — it pops on the following tick
        // either way, since this tick's pop already ran.
        if out.is_empty() {
            match peer.next_wake() {
                Some(w) if w > now => self.wheel.schedule(id, w),
                Some(_) => self.wheel.schedule(id, now),
                None => self.wheel.cancel(id),
            }
        } else {
            self.wheel.schedule(id, now);
            staged.extend(out.into_iter().map(|(to, f)| (NodeId(id), to, f)));
        }
        woke.insert(id);
    }

    fn flush(&mut self, staged: Vec<(NodeId, NodeId, Frame)>) -> Result<(), NetError> {
        let now = self.transport.now();
        for (from, to, frame) in staged {
            let meta = self.telemetry.as_mut().map(|tel| tel.on_send(now, from.0, to.0, &frame));
            match self.transport.send_meta(from, to, frame, meta) {
                // A peer may address someone who already left the
                // transport's view; that is a drop, not a failure.
                Err(NetError::UnknownPeer(_)) => {}
                other => other?,
            }
        }
        Ok(())
    }

    /// Fires due churn events. Joins (staggered or flash-crowd) mint
    /// fresh ids, register with transport and tracker, and bootstrap
    /// off a policy-capped member list; voluntary departures run the
    /// §II-B4 escrow handoff via [`PeerRuntime::leave`] on victims
    /// drawn from the churn stream's own seeded RNG. Victims land in
    /// `woke` so the departure sweep handles them this tick.
    fn handle_churn(&mut self, now: f64, woke: &mut BTreeSet<u32>) -> Result<(), NetError> {
        let Some(mut churn) = self.churn.take() else { return Ok(()) };
        let list_k = NeighborPolicy::default().list_size;
        let arm = !self.transport.reliable();
        for _ in 0..churn.joins_due(now) {
            let id = self.next_id;
            self.next_id += 1;
            let mut peer = PeerRuntime::new(
                NodeId(id),
                PeerRole::Compliant,
                self.content,
                self.cfg.net,
                self.cfg.seed,
            );
            peer.set_arm_retries(arm);
            self.transport.register(NodeId(id))?;
            self.tracker.register(NodeId(id));
            trace_event!(self.tracer, now, Event::PeerJoin { peer: id, compliant: true });
            let members = self.tracker.random_members(NodeId(id), list_k, &mut self.rng);
            let mut out: Outbox = Vec::new();
            peer.bootstrap(&members, &mut out);
            let staged: Vec<(NodeId, NodeId, Frame)> =
                out.into_iter().map(|(to, f)| (NodeId(id), to, f)).collect();
            self.peers.insert(id, peer);
            self.flush(staged)?;
            self.churn_joined += 1;
            if self.cfg.sched != SchedMode::LegacyLinear {
                self.wheel.schedule(id, now);
            }
        }
        for fraction in churn.departures_due(now) {
            // Victims come from the live compliant leechers: the seeder
            // stays (someone must hold the full file) and free-riders
            // have nothing to hand off.
            let eligible: Vec<NodeId> = self
                .peers
                .values()
                .filter(|p| p.role() == PeerRole::Compliant && !p.departed())
                .map(PeerRuntime::id)
                .collect();
            for victim in churn.pick_victims(fraction, &eligible) {
                let Some(peer) = self.peers.get_mut(&victim.0) else { continue };
                if !peer.is_complete() {
                    self.churn_departed_incomplete += 1;
                }
                let mut out: Outbox = Vec::new();
                peer.leave(&mut out);
                let staged: Vec<(NodeId, NodeId, Frame)> =
                    out.into_iter().map(|(to, f)| (victim, to, f)).collect();
                self.flush(staged)?;
                self.churn_departed += 1;
                woke.insert(victim.0);
                self.wheel.cancel(victim.0);
            }
        }
        self.churn = Some(churn);
        Ok(())
    }

    /// Sweeps newly departed peers out of transport/tracker view.
    ///
    /// `candidates` is the indexed-scheduler fast path: the departure
    /// flag only flips inside `on_tick` (depart-on-complete) or a churn
    /// `leave`, so the peers that ran this tick are the only ones that
    /// can newly carry it — no full scan needed. `None` (legacy mode)
    /// checks everyone.
    fn handle_departures(&mut self, now: f64, candidates: Option<&BTreeSet<u32>>) {
        let departed: Vec<u32> = match candidates {
            Some(c) => c
                .iter()
                .filter(|id| {
                    !self.departed_handled.contains_key(id)
                        && self.peers.get(id).is_some_and(PeerRuntime::departed)
                })
                .copied()
                .collect(),
            None => self
                .peers
                .iter()
                .filter(|(id, p)| p.departed() && !self.departed_handled.contains_key(id))
                .map(|(&id, _)| id)
                .collect(),
        };
        for id in departed {
            self.transport.disconnect(NodeId(id));
            self.tracker.unregister(NodeId(id));
            self.departed_handled.insert(id, ());
            self.observer.note_departed(id);
            trace_event!(self.tracer, now, Event::PeerDepart { peer: id });
            self.wheel.cancel(id);
            // The connection-reset every remaining peer would see: stop
            // serving the departed peer and abandon transactions toward
            // it (otherwise a donor keeps donating to a ghost and later
            // escrows keys nobody can claim).
            for (&pid, peer) in self.peers.iter_mut() {
                if pid != id && !peer.departed() {
                    peer.on_peer_gone(NodeId(id));
                    // State changed outside this peer's own on_tick
                    // (a freed donation slot can unlock work): wake it
                    // next tick. `hasten` never delays an earlier wake.
                    self.wheel.hasten(pid, now);
                }
            }
        }
    }

    /// Drains the transport's chaos log: injections become trace events;
    /// receiver-side rejects feed the receiving peer's strike counter and
    /// may trip a quarantine.
    fn handle_chaos_records(&mut self, now: f64) {
        for rec in self.transport.take_chaos() {
            match rec {
                ChaosRecord::Inject { from, to, action } => {
                    self.chaos_injects += 1;
                    if let Some(kind) = chaos_kind(action) {
                        trace_event!(self.tracer, now, Event::ChaosInject {
                            from: from.0,
                            to: to.0,
                            kind,
                        });
                    }
                }
                ChaosRecord::Reject(rej) => {
                    trace_event!(self.tracer, now, Event::FrameReject {
                        peer: rej.to.0,
                        offender: rej.from.0,
                        kind: reject_kind(&rej.cause),
                    });
                    if let Some(peer) = self.peers.get_mut(&rej.to.0) {
                        if let Some(until) = peer.on_frame_reject(now, rej.from) {
                            trace_event!(self.tracer, now, Event::PeerQuarantine {
                                peer: rej.to.0,
                                offender: rej.from.0,
                                until,
                            });
                            if let Some(tel) = self.telemetry.as_mut() {
                                tel.on_quarantine(rej.to.0, now, until);
                            }
                        }
                        // Strike/quarantine state changed outside the
                        // peer's own on_tick: wake it so its next_wake
                        // re-arms off the new quarantine deadline.
                        self.wheel.hasten(rej.to.0, now);
                    }
                }
            }
        }
    }

    /// Fires due crash-restart events: victims are checkpointed, torn out
    /// of transport/tracker/swarm with no §II-B4 goodbye, and scheduled to
    /// rejoin after a jittered outage.
    fn handle_crashes(&mut self, now: f64) {
        if !self.chaos.crash_due(now) {
            return;
        }
        let alive: Vec<NodeId> = self
            .peers
            .values()
            .filter(|p| p.role() == PeerRole::Compliant && !p.departed())
            .map(PeerRuntime::id)
            .collect();
        for (victim, restart_after) in self.chaos.crash_victims(now, &alive) {
            let Some(peer) = self.peers.remove(&victim.0) else { continue };
            // Round-trip the checkpoint through its byte encoding so the
            // rejoin path exercises exactly what a process reloading a
            // file on disk would.
            let bytes = peer.checkpoint().to_bytes();
            let checkpoint = Checkpoint::from_bytes(&bytes).expect("own encoding");
            self.crashes += 1;
            self.transport.disconnect(victim);
            self.tracker.unregister(victim);
            self.observer.note_departed(victim.0);
            self.wheel.cancel(victim.0);
            trace_event!(self.tracer, now, Event::PeerCrash { peer: victim.0 });
            if let Some(tel) = self.telemetry.as_mut() {
                tel.flight("crash", now);
            }
            for (&pid, other) in self.peers.iter_mut() {
                if pid != victim.0 && !other.departed() {
                    other.on_peer_gone(victim);
                    self.wheel.hasten(pid, now);
                }
            }
            let generation = checkpoint.generation() + 1;
            self.pending_rejoin.push(RejoinSlot {
                at: now + self.chaos.backoff_jitter(restart_after),
                generation,
                checkpoint,
            });
        }
    }

    /// Restores crashed peers whose outage has elapsed: re-register with
    /// transport and tracker, rebuild the runtime from its checkpoint
    /// (fresh generation-salted RNG and keyring) and re-bootstrap.
    fn handle_rejoins(&mut self, now: f64) -> Result<(), NetError> {
        if self.pending_rejoin.is_empty() {
            return Ok(());
        }
        let mut due: Vec<RejoinSlot> = Vec::new();
        let mut later: Vec<RejoinSlot> = Vec::new();
        for slot in self.pending_rejoin.drain(..) {
            if slot.at <= now {
                due.push(slot);
            } else {
                later.push(slot);
            }
        }
        self.pending_rejoin = later;
        // Deterministic rejoin order regardless of crash-draw order.
        due.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.checkpoint.id().cmp(&b.checkpoint.id())));
        let arm = !self.transport.reliable();
        for slot in due {
            let id = slot.checkpoint.id();
            let mut peer = PeerRuntime::restore(
                &slot.checkpoint,
                self.content,
                self.cfg.net,
                self.cfg.seed,
                slot.generation,
            )
            .expect("checkpoint was taken from this swarm's content");
            peer.set_arm_retries(arm);
            self.transport.reconnect(id)?;
            self.tracker.register(id);
            self.observer.note_rejoined(id.0);
            self.rejoins += 1;
            trace_event!(self.tracer, now, Event::PeerRejoin {
                peer: id.0,
                generation: slot.generation,
            });
            // Policy-capped list, same cap as the initial rendezvous:
            // draw-identical to the old whole-swarm request for every
            // pool the pre-scale scenarios reach (≤ 51 members).
            let members = self
                .tracker
                .random_members(id, NeighborPolicy::default().list_size, &mut self.rng);
            let mut out: Outbox = Vec::new();
            peer.bootstrap(&members, &mut out);
            let staged: Vec<(NodeId, NodeId, Frame)> =
                out.into_iter().map(|(to, f)| (id, to, f)).collect();
            self.peers.insert(id.0, peer);
            // The restored peer starts ticking again next round.
            self.wheel.schedule(id.0, now);
            self.flush(staged)?;
        }
        Ok(())
    }

    /// Audits a delivered frame for the §IV-D collusion hook: when an
    /// encrypted upload lands on a ring member whose designated payee
    /// is a ring mate, the mate will forge a reception report on the
    /// requestor's behalf — the donor then releases the key (and
    /// clears a §II-D2 ledger slot) for a reciprocation that never
    /// happened. One forged report per transaction.
    fn stage_collusion(&mut self, d: &Delivery) {
        let Some(attack) = self.attack.as_mut() else { return };
        if attack.colluders.is_empty() {
            return;
        }
        let Frame::Control(Message::PieceUpload { piece, payee: Some(py), .. }) = &d.frame else {
            return;
        };
        let (donor, requestor) = (d.from, d.to);
        if !attack.colluders.same_group(requestor, *py) {
            return;
        }
        if !attack.reported_txns.insert((donor.0, requestor.0, piece.0)) {
            return;
        }
        attack.staged_reports.push((
            *py,
            donor,
            Frame::Control(Message::ReceptionReport { requestor, piece: *piece }),
        ));
    }

    /// Runs every strategic operator's turn: flush forged collusion
    /// reports, fire §IV-C large-view tracker re-queries, trigger and
    /// settle whitewash identity resets. A no-op — zero draws, zero
    /// branches on peer state — when no strategy manipulates.
    fn handle_attacks(&mut self, now: f64) -> Result<(), NetError> {
        let Some(mut attack) = self.attack.take() else { return Ok(()) };
        let staged = std::mem::take(&mut attack.staged_reports);
        self.flush(staged)?;
        for op in 0..attack.operators.len() {
            let Some(id) = attack.operators[op].live_id else { continue };
            let Some(peer) = self.peers.get(&id) else { continue };
            attack.operators[op].note_progress(peer.have_count(), now);
            if attack.operators[op].should_whitewash(now) {
                self.whitewash(&mut attack, op, id, now);
                continue;
            }
            if attack.operators[op].strategy.large_view()
                && now >= attack.operators[op].next_requery
            {
                // §IV-C: re-query the tracker every rechoke period —
                // "much more frequently than in normal BitTorrent
                // operations" — and greet every returned member. The
                // accept-all half is the runtime's default connection
                // policy, so the engine only drives the schedule.
                attack.operators[op].next_requery = now + RECHOKE_PERIOD;
                let members = self.tracker.random_members(
                    NodeId(id),
                    NeighborPolicy::default().list_size,
                    &mut attack.rng,
                );
                let peer = self.peers.get_mut(&id).expect("live");
                let mut out: Outbox = Vec::new();
                peer.bootstrap(&members, &mut out);
                let staged: Vec<(NodeId, NodeId, Frame)> =
                    out.into_iter().map(|(to, f)| (NodeId(id), to, f)).collect();
                self.flush(staged)?;
            }
        }
        self.handle_whitewash_rejoins(&mut attack, now)?;
        self.attack = Some(attack);
        Ok(())
    }

    /// §IV-C whitewash: tear the identity out with no §II-B4 goodbye
    /// (crash-style teardown), keep the loot via checkpoint, and queue
    /// a rejoin under a fresh id. Neighbors see a vanished peer; the
    /// returnee is "treated as another newcomer".
    fn whitewash(&mut self, attack: &mut AttackState, op: usize, id: u32, now: f64) {
        let Some(peer) = self.peers.remove(&id) else { return };
        let new_id = self.next_id;
        self.next_id += 1;
        // Same byte round-trip as the crash path; `with_id` wipes the
        // neighbor-facing ledgers that belonged to the dead identity.
        let bytes = peer.checkpoint().with_id(new_id).to_bytes();
        let checkpoint = Checkpoint::from_bytes(&bytes).expect("own encoding");
        self.transport.disconnect(NodeId(id));
        self.tracker.unregister(NodeId(id));
        self.observer.note_departed(id);
        self.wheel.cancel(id);
        attack.colluders.unregister(NodeId(id));
        attack.operators[op].live_id = None;
        trace_event!(self.tracer, now, Event::PeerDepart { peer: id });
        for (&pid, other) in self.peers.iter_mut() {
            if !other.departed() {
                other.on_peer_gone(NodeId(id));
                self.wheel.hasten(pid, now);
            }
        }
        let generation = checkpoint.generation() + 1;
        attack.pending_whitewash.push(WhitewashSlot {
            at: now + WHITEWASH_REJOIN_DELAY,
            prior: id,
            new_id,
            operator: op,
            generation,
            checkpoint,
        });
    }

    /// Settles due whitewash rejoins: restore from the re-identified
    /// checkpoint, register the fresh id (`register`, not `reconnect`
    /// — the transport has never seen it), re-adopt the operator's
    /// strategy and bootstrap as a newcomer.
    fn handle_whitewash_rejoins(
        &mut self,
        attack: &mut AttackState,
        now: f64,
    ) -> Result<(), NetError> {
        if attack.pending_whitewash.is_empty() {
            return Ok(());
        }
        let mut due: Vec<WhitewashSlot> = Vec::new();
        let mut later: Vec<WhitewashSlot> = Vec::new();
        for slot in attack.pending_whitewash.drain(..) {
            if slot.at <= now {
                due.push(slot);
            } else {
                later.push(slot);
            }
        }
        attack.pending_whitewash = later;
        due.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.new_id.cmp(&b.new_id)));
        let arm = !self.transport.reliable();
        for slot in due {
            let mut peer = PeerRuntime::restore(
                &slot.checkpoint,
                self.content,
                self.cfg.net,
                self.cfg.seed,
                slot.generation,
            )
            .expect("checkpoint was taken from this swarm's content");
            let strategy = attack.operators[slot.operator].strategy;
            peer.adopt_strategy(strategy);
            peer.set_arm_retries(arm);
            self.transport.register(NodeId(slot.new_id))?;
            self.tracker.register(NodeId(slot.new_id));
            if let Some(g) = strategy.collusion_group() {
                attack.colluders.register(NodeId(slot.new_id), g);
            }
            self.observer.note_attacker(
                slot.new_id,
                strategy_label(&strategy),
                strategy.collusion_group().map(|g| g.0),
            );
            attack.operators[slot.operator].rebirth(slot.new_id, peer.have_count(), now);
            attack.whitewash_rejoins += 1;
            trace_event!(self.tracer, now, Event::WhitewashRejoin {
                peer: slot.new_id,
                prior: slot.prior,
                generation: slot.generation,
            });
            let members = self.tracker.random_members(
                NodeId(slot.new_id),
                NeighborPolicy::default().list_size,
                &mut attack.rng,
            );
            let mut out: Outbox = Vec::new();
            peer.bootstrap(&members, &mut out);
            let staged: Vec<(NodeId, NodeId, Frame)> =
                out.into_iter().map(|(to, f)| (NodeId(slot.new_id), to, f)).collect();
            self.peers.insert(slot.new_id, peer);
            self.wheel.schedule(slot.new_id, now);
            self.flush(staged)?;
        }
        Ok(())
    }

    fn compliant_done(&self) -> bool {
        self.pending_rejoin.is_empty()
            && self.churn.as_ref().is_none_or(ChurnState::done)
            && self
                .peers
                .values()
                .filter(|p| p.role() == PeerRole::Compliant)
                // A voluntary departure that left incomplete is out of
                // the completion set — it can never finish. Without
                // churn `departed` implies `is_complete`, so this is
                // the historical predicate on every pre-churn scenario.
                .all(|p| p.is_complete() || p.departed())
    }

    fn plaintexts_ok(&self) -> bool {
        self.peers.values().all(|p| {
            (0..self.content.pieces as u32).all(|i| match p.piece_bytes(i) {
                Some(bytes) => bytes == self.content.piece(i).as_slice(),
                None => true,
            })
        })
    }

    fn fold(&mut self, d: &Delivery) {
        let enc = d.frame.encode();
        self.fingerprint = mix64(
            self.fingerprint
                ^ fingerprint(&enc)
                ^ (u64::from(d.from.0) << 32)
                ^ u64::from(d.to.0),
        );
    }
}

/// Runs `cfg` on a fresh deterministic [`ChannelMesh`].
///
/// # Errors
///
/// Propagates any transport-level [`NetError`].
pub fn run_swarm(cfg: SwarmConfig) -> Result<SwarmReport, NetError> {
    let mesh = ChannelMesh::with_chaos(cfg.plan.clone(), cfg.chaos.clone(), cfg.tick_dt);
    SwarmHarness::new(mesh, cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{FreeRiderConfig, GroupId};

    #[test]
    fn small_swarm_completes_cleanly() {
        let report = run_swarm(SwarmConfig::default()).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.completed_compliant, report.total_compliant);
        assert!(report.uploads > 0);
        assert!(report.key_releases > 0);
        assert!(report.events_recorded > 0, "obs tracing wired in");
    }

    #[test]
    fn free_rider_is_starved() {
        let cfg = SwarmConfig::default().with_free_riders(1);
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(
            report.completed_free_riders, 0,
            "free rider should not finish while compliant peers are active"
        );
        let (done, total) = report.completed_by_strategy["free_rider"];
        assert_eq!((done, total), (0, 1));
        let (cdone, ctotal) = report.completed_by_strategy["compliant"];
        assert_eq!(cdone, ctotal);
    }

    #[test]
    fn explicit_strategies_match_the_count_builder() {
        // `with_free_riders(n)` is defined as sugar for zero-upload
        // entries on the n highest ids — the two spellings must be the
        // same run, frame for frame.
        let by_count = SwarmConfig::default().with_free_riders(2);
        let by_hand = SwarmConfig {
            strategies: vec![(6, Strategy::zero_upload()), (7, Strategy::zero_upload())],
            ..SwarmConfig::default()
        };
        let a = run_swarm(by_count).expect("a");
        let b = run_swarm(by_hand).expect("b");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.free_riders, 2);
        assert_eq!(a.completion_times, b.completion_times);
    }

    #[test]
    fn plain_free_riders_build_no_attack_state() {
        // Zero-upload free-riders manipulate nothing: no engine, no
        // extra tracker traffic, no identity churn.
        let report = run_swarm(SwarmConfig::default().with_free_riders(2)).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.tracker_queries, u64::from(report.peers), "rendezvous only");
        assert_eq!(report.whitewash_rejoins, 0);
        assert_eq!(report.false_reports, 0);
        assert_eq!(report.sybil_checks, 0);
    }

    #[test]
    fn large_view_requeries_hammer_the_tracker_and_still_starve() {
        let cfg = SwarmConfig {
            strategies: vec![
                (6, Strategy::FreeRider(FreeRiderConfig { large_view: true, ..Default::default() })),
                (7, Strategy::FreeRider(FreeRiderConfig { large_view: true, ..Default::default() })),
            ],
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.completed_free_riders, 0, "large view must not beat T-Chain");
        assert!(
            report.tracker_queries > u64::from(report.peers) + 4,
            "re-queries every rechoke period must show up in the tracker load, got {}",
            report.tracker_queries
        );
        let (_, total) = report.completed_by_strategy["aggressive"];
        assert_eq!(total, 2);
    }

    #[test]
    fn aggressive_runs_stay_deterministic() {
        let cfg = SwarmConfig {
            strategies: vec![
                (5, Strategy::aggressive_free_rider()),
                (6, Strategy::colluding_free_rider(GroupId(0))),
                (7, Strategy::colluding_free_rider(GroupId(0))),
            ],
            max_ticks: 2000,
            ..SwarmConfig::default()
        };
        let a = run_swarm(cfg.clone()).expect("a");
        let b = run_swarm(cfg).expect("b");
        assert_eq!(a.fingerprint, b.fingerprint, "attack runs must stay deterministic");
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.false_reports, b.false_reports);
        assert_eq!(a.whitewash_rejoins, b.whitewash_rejoins);
        assert_eq!(a.completion_times, b.completion_times);
    }

    #[test]
    fn collusion_ring_is_detected_and_attributed() {
        let mut cfg = SwarmConfig {
            peers: 10,
            telemetry: true,
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        cfg.strategies = vec![
            (7, Strategy::colluding_free_rider(GroupId(0))),
            (8, Strategy::colluding_free_rider(GroupId(0))),
            (9, Strategy::colluding_free_rider(GroupId(0))),
        ];
        let report = run_swarm(cfg).expect("run");
        assert!(report.violations.is_empty(), "good-faith releases are not violations: {:?}",
            report.violations);
        assert!(report.false_reports > 0, "a 3-ring among 10 peers must collide");
        assert_eq!(
            report.false_report_log.len() as u64,
            report.false_reports,
            "every false report is attributed"
        );
        // Ring identities are the boot colluders (7..10) plus any
        // rebirth ids their whitewash cycles mint (10..). Compliant
        // peers and the seeder keep ids 0..7.
        for &(reporter, donor, requestor, _) in &report.false_report_log {
            assert!(reporter >= 7, "reporter {reporter} must be in the ring");
            assert!(requestor >= 7, "requestor {requestor} must be in the ring");
            assert!(donor < 7, "donor {donor} is the deceived outsider");
        }
        assert!(report.colluder_gain > 0, "false reports must unlock keys");
        assert!(
            report.colluder_gain <= report.false_reports,
            "one release per forged report at most (reliable mesh)"
        );
        assert!(report.sybil_checks >= report.false_reports);
        assert_eq!(report.completed_compliant, report.total_compliant, "compliant unaffected");
        assert!(
            report.flight_dumps.iter().any(|d| d.reason == "collusion"),
            "first detection must trip the flight recorder"
        );
    }

    #[test]
    fn whitewash_rejoins_keep_ledgers_and_compliant_completion() {
        let mut cfg = SwarmConfig {
            peers: 10,
            pieces: 48,
            max_ticks: 8000,
            // A late churn join keeps the swarm alive long enough for
            // the whitewash patience clock to run out.
            churn: ChurnPlan::none().with_joins(60.0, 2, 20.0),
            ..SwarmConfig::default()
        };
        cfg.strategies =
            vec![(8, Strategy::aggressive_free_rider()), (9, Strategy::aggressive_free_rider())];
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.whitewash_rejoins > 0, "patience must run out at least once");
        assert!(report.ledger_ok, "identity resets must not corrupt the k-pending ledger");
        assert_eq!(report.completed_compliant, report.total_compliant);
        let (done, total) = report.completed_by_strategy["aggressive"];
        assert_eq!(total, 2, "operators counted once across identities");
        assert_eq!(done, 0, "whitewashing must not beat T-Chain");
    }

    #[test]
    fn departure_exercises_escrow() {
        let cfg = SwarmConfig {
            peers: 10,
            net: NetConfig { depart_on_complete: true, ..NetConfig::default() },
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let cfg = SwarmConfig { peers: 6, ..SwarmConfig::default() };
        let a = run_swarm(cfg.clone()).expect("run a");
        let b = run_swarm(cfg).expect("run b");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.completion_times, b.completion_times);
    }

    #[test]
    fn corruption_chaos_swarm_still_completes() {
        let cfg = SwarmConfig {
            chaos: ChaosPlan::corrupting(77, 0.05),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.chaos_injects > 0, "5 % corruption must actually fire");
        assert!(report.frame_rejects > 0, "corrupted frames must surface as rejects");
    }

    #[test]
    fn byzantine_mix_survives_the_full_taxonomy() {
        let cfg = SwarmConfig {
            chaos: ChaosPlan::byzantine(13, 0.08),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.chaos_injects > 0);
    }

    #[test]
    fn crash_restart_rejoins_from_checkpoint_and_completes() {
        let cfg = SwarmConfig {
            peers: 10,
            chaos: ChaosPlan::none().with_crash_restart(6.0, 0.25, 5.0),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.crashes > 0, "the crash event must fire before completion");
        assert_eq!(report.rejoins, report.crashes, "every crash rejoins");
        assert_eq!(report.completed_compliant, report.total_compliant);
    }

    #[test]
    fn same_seed_same_chaos_run() {
        let cfg = SwarmConfig {
            peers: 8,
            chaos: ChaosPlan::byzantine(5, 0.06).with_crash_restart(6.0, 0.25, 5.0),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let a = run_swarm(cfg.clone()).expect("run a");
        let b = run_swarm(cfg).expect("run b");
        assert_eq!(a.fingerprint, b.fingerprint, "chaos runs must stay deterministic");
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.chaos_injects, b.chaos_injects);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.completion_times, b.completion_times);
    }

    #[test]
    fn telemetry_run_merges_causally_and_keeps_the_fingerprint() {
        let off = run_swarm(SwarmConfig::default()).expect("off");
        let cfg = SwarmConfig { telemetry: true, ..SwarmConfig::default() };
        let on = run_swarm(cfg).expect("on");
        assert!(on.ok(), "violations: {:?}", on.violations);
        assert_eq!(
            on.fingerprint, off.fingerprint,
            "causal stamps must not perturb the delivered-frame stream"
        );
        assert_eq!(on.ticks, off.ticks);
        assert_eq!(on.completion_times, off.completion_times);

        assert_eq!(on.peer_rings.len() as u32, on.peers, "every peer traced");
        let rings: Vec<Vec<TraceRecord>> =
            on.peer_rings.iter().map(|(_, r)| r.clone()).collect();
        let merged = tchain_obs::merge_traces(&rings).expect("rings merge");
        let arrows = tchain_obs::validate_causal(&merged).expect("causally consistent");
        assert!(arrows > 0, "flow arrows must connect sends to receives");

        let tel = on.telemetry.expect("aggregate present");
        assert!(tel.peers.iter().any(|p| p.request_key_latency.count() > 0));
        assert!(tel.peers.iter().any(|p| p.piece_rtt.count() > 0));
        assert!(tel.chain_lengths.count() > 0);
        let j = tel.fairness_index();
        assert!(j > 0.0 && j <= 1.0 + 1e-12, "Jain index in range, got {j}");
        let prom = tel.to_prometheus();
        assert!(prom.contains("tchain_fairness_index"));
        assert!(prom.contains("tchain_chain_length_bucket"));
    }

    #[test]
    fn telemetry_off_reports_nothing_extra() {
        let report = run_swarm(SwarmConfig::default()).expect("run");
        assert!(report.telemetry.is_none());
        assert!(report.peer_rings.is_empty());
        assert!(report.flight_dumps.is_empty());
    }

    #[test]
    fn quarantine_under_chaos_trips_the_flight_recorder() {
        let cfg = SwarmConfig {
            telemetry: true,
            chaos: ChaosPlan::corrupting(77, 0.05),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        if report.quarantines > 0 {
            assert!(!report.flight_dumps.is_empty(), "quarantine must capture a dump");
            let dump = &report.flight_dumps[0];
            assert_eq!(dump.reason, "quarantine");
            assert!(!dump.records.is_empty());
            assert!(!dump.to_jsonl().is_empty());
        }
    }

    #[test]
    fn indexed_scheduler_matches_legacy_fingerprint() {
        let base = SwarmConfig { peers: 8, ..SwarmConfig::default() };
        let a = run_swarm(SwarmConfig { sched: SchedMode::Indexed, ..base.clone() }).expect("a");
        let b = run_swarm(SwarmConfig { sched: SchedMode::LegacyLinear, ..base }).expect("b");
        assert_eq!(a.fingerprint, b.fingerprint, "skipping quiescent peers must be invisible");
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.completion_times, b.completion_times);
    }

    #[test]
    fn indexed_scheduler_matches_legacy_under_chaos() {
        // Chaos exercises every external-mutation poke: quarantines,
        // crash teardown, rejoin bootstraps. A missed wake diverges the
        // fingerprint immediately.
        let base = SwarmConfig {
            peers: 8,
            chaos: ChaosPlan::byzantine(5, 0.06).with_crash_restart(6.0, 0.25, 5.0),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let a = run_swarm(SwarmConfig { sched: SchedMode::Indexed, ..base.clone() }).expect("a");
        let b = run_swarm(SwarmConfig { sched: SchedMode::LegacyLinear, ..base }).expect("b");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.completion_times, b.completion_times);
    }

    #[test]
    fn churn_joins_and_departures_complete() {
        let cfg = SwarmConfig {
            peers: 10,
            churn: ChurnPlan::none().with_joins(12.0, 3, 2.0).with_departures(30.0, 0.25),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.churn_joins, 3);
        assert!(report.churn_departs > 0, "a quarter of the live leechers must leave");
        assert!(report.ledger_ok, "churn must preserve the k-pending ledger invariant");
        assert_eq!(report.completed_compliant, report.total_compliant);
    }

    #[test]
    fn flash_crowd_is_absorbed() {
        let cfg = SwarmConfig {
            peers: 8,
            churn: ChurnPlan::none().with_flash_crowd(10.0, 6),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let report = run_swarm(cfg).expect("run");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.churn_joins, 6);
        assert_eq!(report.total_compliant, 8 - 1 + 6);
        assert_eq!(report.completed_compliant, report.total_compliant);
    }

    #[test]
    fn churn_same_seed_same_fingerprint() {
        let cfg = SwarmConfig {
            peers: 10,
            churn: ChurnPlan::none()
                .with_joins(12.0, 4, 1.0)
                .with_departures(25.0, 0.2)
                .with_flash_crowd(40.0, 3),
            max_ticks: 8000,
            ..SwarmConfig::default()
        };
        let a = run_swarm(cfg.clone()).expect("a");
        let b = run_swarm(cfg).expect("b");
        assert_eq!(a.fingerprint, b.fingerprint, "churn must stay deterministic");
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.churn_joins, b.churn_joins);
        assert_eq!(a.churn_departs, b.churn_departs);
        assert_eq!(a.completion_times, b.completion_times);
    }

    #[test]
    fn churn_free_runs_keep_the_pre_churn_fingerprint_shape() {
        // ChurnPlan::none() must add zero RNG draws and zero report
        // deltas relative to the pre-churn harness.
        let report = run_swarm(SwarmConfig::default()).expect("run");
        assert_eq!(report.churn_joins, 0);
        assert_eq!(report.churn_departs, 0);
        assert!(report.ledger_ok);
    }

    #[test]
    fn telemetry_peer_metrics_are_id_ordered_despite_gaps() {
        // `SwarmTelemetry::peers` ascending-id order is a documented
        // invariant, not a BTreeMap accident: feed finish() ids out of
        // order with the gaps a departed/churned swarm leaves.
        let tel = TelemetryState::new(64);
        let ids = [42u32, 3, 7, 0];
        let peers: Vec<(u32, PeerCounters, i64)> =
            ids.iter().map(|&id| (id, PeerCounters::default(), 0i64)).collect();
        let (swarm, rings, _) = tel.finish(1.0, &peers, &[2, 3], &[("gift", 1)]);
        let got: Vec<u32> = swarm.peers.iter().map(|m| m.peer).collect();
        assert_eq!(got, vec![0, 3, 7, 42]);
        let ring_ids: Vec<u32> = rings.iter().map(|&(id, _)| id).collect();
        assert_eq!(ring_ids, vec![0, 3, 7, 42], "trace rings share the ordering contract");
    }

    #[test]
    fn chaos_free_runs_are_untouched_by_the_chaos_layer() {
        // A ChaosPlan::none() config must produce the exact run an
        // unmodified harness would: zero injections, zero draws.
        let report = run_swarm(SwarmConfig::default()).expect("run");
        assert_eq!(report.chaos_injects, 0);
        assert_eq!(report.frame_rejects, 0);
        assert_eq!(report.crashes, 0);
    }
}

