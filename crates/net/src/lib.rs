//! tchain-net: an executable T-Chain peer runtime.
//!
//! Everything below the fluid simulators actually *moves bytes*: a
//! [`Transport`] abstraction with a deterministic in-process
//! [`ChannelMesh`] (seeded loss/latency via `tchain-sim`'s fault plans)
//! and a framed [`TcpLoopback`] backend over real sockets; a strict
//! incremental framing layer ([`Frame`], [`FrameDecoder`]) carrying
//! `tchain-proto` control messages plus bulk [`Frame::PieceData`] whose
//! payloads are genuinely ChaCha20-encrypted with `tchain-crypto`
//! per-transaction keys; a [`PeerRuntime`] state machine implementing
//! the §II-B triangle protocol (payee designation, reciprocate-before-
//! key, §II-B3 termination, §II-B4 escrow, §II-D1 forward
//! re-encryption, §II-D2 flow control, §II-D3 opportunistic seeding);
//! and a [`SwarmHarness`] that boots N peers in one process, runs a
//! flash crowd to completion and audits every key release on the wire.
//!
//! On top of that sits a chaos layer: both transports compose a
//! `tchain-sim` `ChaosPlan` that corrupts, duplicates, reorders and
//! resets frames in flight; the checksummed codec turns every mutation
//! into a typed [`FrameError`]; receivers convert rejects into strikes
//! and temporary quarantines; and a crash-restart schedule kills peers
//! abruptly and rejoins them from a serialized [`Checkpoint`]. The
//! harness orchestrates all of it and asserts that safety (byte-exact
//! plaintexts, zero unreciprocated key releases) survives.
//!
//! The crate depends only on `tchain-{crypto,proto,sim,obs}` — the
//! fluid drivers in `tchain-core` know nothing about it, which is what
//! lets integration tests cross-check the two independently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod content;
pub mod explore;
mod frame;
mod harness;
mod runtime;
pub mod sched;
pub mod strategy;
mod tcp;
pub mod telemetry;
mod transport;

pub use content::{fingerprint, Content};
pub use explore::{
    canary_armed, scenario_config, scenarios, ExploreConfig, ExploreOutcome, Witness,
};
pub use frame::{
    frame_checksum, CausalMeta, Frame, FrameDecoder, FrameError, CAUSAL_META_LEN,
    FRAME_HEADER_LEN, MAX_FRAME_BODY,
};
pub use harness::{run_swarm, Observer, SchedMode, SwarmConfig, SwarmHarness, SwarmReport};
pub use sched::TimerWheel;
pub use strategy::{
    strategy_label, AttackerState, ColluderRegistry, FreeRiderConfig, GroupId, NetStrategy,
    Strategy, RECHOKE_PERIOD, WHITEWASH_PATIENCE, WHITEWASH_REJOIN_DELAY,
};
pub use telemetry::{FlightDump, FlightRecorder, PeerTelemetry, SwarmTelemetry};
pub use runtime::{
    Checkpoint, CheckpointError, NetConfig, Outbox, PeerCounters, PeerRole, PeerRuntime,
};
pub use tcp::TcpLoopback;
pub use transport::{
    ChannelMesh, ChaosRecord, Delivery, FrameReject, NetError, RejectCause, Transport,
    TransportStats,
};
