//! Deterministic shared-file content.
//!
//! A real swarm distributes bytes, so the net runtime needs actual piece
//! plaintexts — and a way for a receiver to know it decrypted correctly.
//! [`Content`] plays the role of a `.torrent`: every peer is constructed
//! with the same `(seed, pieces, piece_len)` spec and therefore knows the
//! expected fingerprint of every piece a priori. A piece counts as
//! *completed* only when the decrypted bytes match that fingerprint, which
//! makes the ChaCha20 key release self-verifying end to end.

/// Stateless splitmix64 step, the generator behind piece bytes and
/// fingerprints (no external hash crates).
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive 64-bit fingerprint of a byte string.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut acc = 0xF1CE_F1CE_F1CE_F1CEu64;
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        acc = mix64(acc ^ u64::from_le_bytes(w));
    }
    mix64(acc ^ bytes.len() as u64)
}

/// The shared file: a deterministic generator every peer holds, standing
/// in for the out-of-band metadata (infohash) of a real deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Content {
    /// Content seed (independent of protocol RNG streams).
    pub seed: u64,
    /// Number of pieces in the file.
    pub pieces: usize,
    /// Bytes per piece.
    pub piece_len: usize,
}

impl Content {
    /// A new content spec.
    pub fn new(seed: u64, pieces: usize, piece_len: usize) -> Self {
        assert!(pieces > 0 && piece_len > 0, "content needs pieces and bytes");
        Content { seed, pieces, piece_len }
    }

    /// The plaintext of piece `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn piece(&self, i: u32) -> Vec<u8> {
        assert!((i as usize) < self.pieces, "piece {i} out of range {}", self.pieces);
        let mut out = Vec::with_capacity(self.piece_len);
        let mut state = mix64(self.seed ^ (u64::from(i) << 32) ^ 0x7EC4);
        while out.len() < self.piece_len {
            state = mix64(state);
            let take = (self.piece_len - out.len()).min(8);
            out.extend_from_slice(&state.to_le_bytes()[..take]);
        }
        out
    }

    /// The expected fingerprint of piece `i` (what a real client reads
    /// from the torrent metadata).
    pub fn expected(&self, i: u32) -> u64 {
        fingerprint(&self.piece(i))
    }

    /// Whether `bytes` are the correct plaintext of piece `i`.
    pub fn verify(&self, i: u32, bytes: &[u8]) -> bool {
        bytes.len() == self.piece_len && fingerprint(bytes) == self.expected(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pieces_are_deterministic_and_distinct() {
        let c = Content::new(7, 4, 100);
        assert_eq!(c.piece(0), c.piece(0));
        assert_ne!(c.piece(0), c.piece(1));
        assert_eq!(c.piece(3).len(), 100);
        let d = Content::new(8, 4, 100);
        assert_ne!(c.piece(0), d.piece(0), "seed changes content");
    }

    #[test]
    fn verify_accepts_only_the_true_plaintext() {
        let c = Content::new(3, 2, 64);
        let mut p = c.piece(1);
        assert!(c.verify(1, &p));
        p[10] ^= 1;
        assert!(!c.verify(1, &p));
        assert!(!c.verify(0, &c.piece(1)));
        assert!(!c.verify(1, &c.piece(1)[..63]));
    }

    #[test]
    fn fingerprint_is_length_and_order_sensitive() {
        assert_ne!(fingerprint(b"ab"), fingerprint(b"ba"));
        assert_ne!(fingerprint(b"a"), fingerprint(b"a\0"));
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
    }
}
