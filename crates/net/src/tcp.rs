//! Framed TCP loopback backend.
//!
//! Real sockets on `127.0.0.1`, one listener per registered peer and one
//! lazily-opened directional connection per `(from, to)` link. Each
//! connection starts with a 4-byte hello (the sender's `NodeId`) so the
//! acceptor can attribute inbound frames; everything after is the
//! [`Frame`] stream of `frame.rs`, reassembled by the incremental
//! [`FrameDecoder`]. Sockets are non-blocking and drained every
//! [`Transport::advance`]; delivery *timing* is up to the kernel, so this
//! backend is for throughput benches and smoke tests — determinism claims
//! belong to [`ChannelMesh`](crate::ChannelMesh).

use crate::frame::{Frame, FrameDecoder};
use crate::transport::{Delivery, NetError, Transport, TransportStats};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Instant;
use tchain_sim::NodeId;

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    write_buf: Vec<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Conn { stream, decoder: FrameDecoder::new(), write_buf: Vec::new() })
    }

    /// Flushes as much of the pending write buffer as the socket accepts.
    fn flush(&mut self) -> Result<(), NetError> {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => break,
                Ok(n) => {
                    self.write_buf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reads all currently-available bytes into the frame decoder.
    fn drain_read(&mut self) -> Result<(), NetError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break, // peer closed; decoder keeps what arrived
                Ok(n) => self.decoder.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

/// A not-yet-attributed inbound connection (hello bytes still arriving).
struct PendingAccept {
    stream: TcpStream,
    hello: Vec<u8>,
}

/// TCP loopback transport: real framed sockets between in-process peers.
pub struct TcpLoopback {
    listeners: BTreeMap<u32, (TcpListener, SocketAddr)>,
    /// Sender-side streams, keyed by (from, to).
    outbound: BTreeMap<(u32, u32), Conn>,
    /// Receiver-side streams, keyed by (owner, remote sender).
    inbound: BTreeMap<(u32, u32), Conn>,
    pending: Vec<(u32, PendingAccept)>,
    gone: BTreeMap<u32, bool>,
    started: Instant,
    stats: TransportStats,
}

impl TcpLoopback {
    /// A fresh loopback transport with no endpoints.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for parity with binding on
    /// registration.
    pub fn new() -> Result<Self, NetError> {
        Ok(TcpLoopback {
            listeners: BTreeMap::new(),
            outbound: BTreeMap::new(),
            inbound: BTreeMap::new(),
            pending: Vec::new(),
            gone: BTreeMap::new(),
            started: Instant::now(),
            stats: TransportStats::default(),
        })
    }

    fn connect(&mut self, from: NodeId, to: NodeId) -> Result<&mut Conn, NetError> {
        let key = (from.0, to.0);
        if !self.outbound.contains_key(&key) {
            let (_, addr) =
                self.listeners.get(&to.0).ok_or(NetError::UnknownPeer(to))?;
            let stream = TcpStream::connect(addr)?;
            let mut conn = Conn::new(stream)?;
            conn.write_buf.extend_from_slice(&from.0.to_le_bytes());
            self.outbound.insert(key, conn);
        }
        Ok(self.outbound.get_mut(&key).expect("just inserted"))
    }

    fn accept_new(&mut self) -> Result<(), NetError> {
        for (&owner, (listener, _)) in &self.listeners {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        self.pending.push((
                            owner,
                            PendingAccept { stream, hello: Vec::new() },
                        ));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        // Attribute pending connections whose 4-byte hello is complete.
        let mut still = Vec::new();
        for (owner, mut p) in std::mem::take(&mut self.pending) {
            p.stream.set_nonblocking(true)?;
            let mut byte = [0u8; 4];
            loop {
                if p.hello.len() == 4 {
                    break;
                }
                match p.stream.read(&mut byte[..4 - p.hello.len()]) {
                    Ok(0) => break,
                    Ok(n) => p.hello.extend_from_slice(&byte[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            if p.hello.len() == 4 {
                let from = u32::from_le_bytes([p.hello[0], p.hello[1], p.hello[2], p.hello[3]]);
                self.inbound.insert((owner, from), Conn::new(p.stream)?);
            } else {
                still.push((owner, p));
            }
        }
        self.pending = still;
        Ok(())
    }
}

impl Transport for TcpLoopback {
    fn register(&mut self, id: NodeId) -> Result<(), NetError> {
        if self.listeners.contains_key(&id.0) {
            return Ok(());
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        self.listeners.insert(id.0, (listener, addr));
        Ok(())
    }

    fn send(&mut self, from: NodeId, to: NodeId, frame: Frame) -> Result<(), NetError> {
        if !self.listeners.contains_key(&to.0) {
            return Err(NetError::UnknownPeer(to));
        }
        self.stats.sent += 1;
        if self.gone.get(&to.0).copied().unwrap_or(false) {
            self.stats.dropped += 1;
            return Ok(());
        }
        let conn = self.connect(from, to)?;
        frame.encode_into(&mut conn.write_buf);
        conn.flush()?;
        Ok(())
    }

    fn advance(&mut self) -> Result<Vec<Delivery>, NetError> {
        self.accept_new()?;
        for conn in self.outbound.values_mut() {
            conn.flush()?;
        }
        let mut out = Vec::new();
        let gone = &self.gone;
        for (&(owner, from), conn) in self.inbound.iter_mut() {
            conn.drain_read()?;
            while let Some(frame) = conn.decoder.next_frame()? {
                if gone.get(&owner).copied().unwrap_or(false) {
                    self.stats.dropped += 1;
                    continue;
                }
                self.stats.delivered += 1;
                self.stats.bytes_delivered += frame.encoded_len() as u64;
                out.push(Delivery { from: NodeId(from), to: NodeId(owner), frame });
            }
        }
        Ok(out)
    }

    fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn disconnect(&mut self, id: NodeId) {
        self.gone.insert(id.0, true);
    }

    fn backend(&self) -> &'static str {
        "tcp_loopback"
    }

    fn reliable(&self) -> bool {
        true
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_proto::wire::Message;
    use tchain_proto::PieceId;

    /// Loopback sockets may be unavailable in sandboxed environments;
    /// skip rather than fail so the suite stays hermetic.
    fn try_pair() -> Option<TcpLoopback> {
        let mut t = TcpLoopback::new().ok()?;
        match (t.register(NodeId(1)), t.register(NodeId(2))) {
            (Ok(()), Ok(())) => Some(t),
            _ => None,
        }
    }

    fn pump(t: &mut TcpLoopback, want: usize) -> Vec<Delivery> {
        let mut got = Vec::new();
        for _ in 0..2000 {
            got.extend(t.advance().expect("advance"));
            if got.len() >= want {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn frames_cross_real_sockets() {
        let Some(mut t) = try_pair() else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        let frames = vec![
            Frame::Control(Message::NeighborRequest { from: NodeId(1) }),
            Frame::PieceData { piece: PieceId(4), payload: vec![9; 70_000] },
            Frame::Control(Message::Have { piece: PieceId(4) }),
        ];
        for f in &frames {
            t.send(NodeId(1), NodeId(2), f.clone()).expect("send");
        }
        let got = pump(&mut t, frames.len());
        assert_eq!(got.len(), frames.len());
        for (d, f) in got.iter().zip(&frames) {
            assert_eq!(d.from, NodeId(1));
            assert_eq!(d.to, NodeId(2));
            assert_eq!(&d.frame, f, "stream order and bytes preserved");
        }
        assert_eq!(t.stats().delivered, 3);
    }

    #[test]
    fn bidirectional_links_are_independent() {
        let Some(mut t) = try_pair() else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        t.send(NodeId(1), NodeId(2), Frame::Control(Message::Have { piece: PieceId(1) }))
            .expect("send");
        t.send(NodeId(2), NodeId(1), Frame::Control(Message::Have { piece: PieceId(2) }))
            .expect("send");
        let got = pump(&mut t, 2);
        assert_eq!(got.len(), 2);
        assert!(got.iter().any(|d| d.to == NodeId(1)));
        assert!(got.iter().any(|d| d.to == NodeId(2)));
    }
}
