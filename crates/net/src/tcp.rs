//! Framed TCP loopback backend.
//!
//! Real sockets on `127.0.0.1`, one listener per registered peer and one
//! lazily-opened directional connection per `(from, to)` link. Each
//! connection starts with a 4-byte hello (the sender's `NodeId`) so the
//! acceptor can attribute inbound frames; everything after is the
//! [`Frame`] stream of `frame.rs`, reassembled by the incremental
//! [`FrameDecoder`]. Sockets are non-blocking and drained every
//! [`Transport::advance`]; delivery *timing* is up to the kernel, so this
//! backend is for throughput benches and smoke tests — determinism claims
//! belong to [`ChannelMesh`](crate::ChannelMesh).
//!
//! Failure handling is connection-scoped, never transport-scoped: a
//! stream that produces a [`FrameError`] (corruption has no resync point)
//! or dies mid-frame is torn down and surfaced as a
//! [`FrameReject`] via [`Transport::take_chaos`], while every other link
//! keeps flowing. A sender whose socket comes back reset reopens it on
//! the next send. Chaos injection ([`ChaosPlan`]) mangles the sender-side
//! wire bytes before they hit the socket, so detection exercises the same
//! checksum path a genuinely byzantine peer would; `Reorder` is the one
//! action TCP cannot express (a stream cannot overtake itself) and
//! delivers normally.

use crate::frame::{CausalMeta, Frame, FrameDecoder};
use crate::transport::{
    apply_mutation, ChaosRecord, Delivery, FrameReject, NetError, RejectCause, Transport,
    TransportStats,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Instant;
use tchain_sim::{ChaosAction, ChaosPlan, ChaosState, NodeId};

/// `true` for I/O errors meaning "this connection is dead", which the
/// backend absorbs as a link reset rather than a transport failure.
fn is_reset(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected
            | ErrorKind::UnexpectedEof
    )
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    write_buf: Vec<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Conn { stream, decoder: FrameDecoder::new(), write_buf: Vec::new() })
    }

    /// Flushes as much of the pending write buffer as the socket accepts.
    fn flush(&mut self) -> Result<(), NetError> {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => break,
                Ok(n) => {
                    self.write_buf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reads all currently-available bytes into the frame decoder.
    /// Returns `true` when the stream has ended (EOF or a reset-class
    /// error); what was buffered before the end is kept for decoding.
    fn drain_read(&mut self) -> Result<bool, NetError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => self.decoder.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if is_reset(e.kind()) => return Ok(true),
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// A not-yet-attributed inbound connection (hello bytes still arriving).
struct PendingAccept {
    stream: TcpStream,
    hello: Vec<u8>,
}

/// TCP loopback transport: real framed sockets between in-process peers.
pub struct TcpLoopback {
    listeners: BTreeMap<u32, (TcpListener, SocketAddr)>,
    /// Sender-side streams, keyed by (from, to).
    outbound: BTreeMap<(u32, u32), Conn>,
    /// Receiver-side streams, keyed by (owner, remote sender).
    inbound: BTreeMap<(u32, u32), Conn>,
    pending: Vec<(u32, PendingAccept)>,
    gone: BTreeSet<u32>,
    chaos: ChaosState,
    records: Vec<ChaosRecord>,
    started: Instant,
    stats: TransportStats,
}

impl TcpLoopback {
    /// A fresh loopback transport with no endpoints and no chaos.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for parity with binding on
    /// registration.
    pub fn new() -> Result<Self, NetError> {
        Self::with_chaos(ChaosPlan::none())
    }

    /// A loopback transport that mangles sender-side wire bytes per the
    /// chaos plan. Crash schedules in the plan are ignored here — crash
    /// orchestration belongs to the harness.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for parity with binding on
    /// registration.
    pub fn with_chaos(chaos: ChaosPlan) -> Result<Self, NetError> {
        Ok(TcpLoopback {
            listeners: BTreeMap::new(),
            outbound: BTreeMap::new(),
            inbound: BTreeMap::new(),
            pending: Vec::new(),
            gone: BTreeSet::new(),
            chaos: ChaosState::new(chaos),
            records: Vec::new(),
            started: Instant::now(),
            stats: TransportStats::default(),
        })
    }

    fn connect(&mut self, from: NodeId, to: NodeId) -> Result<&mut Conn, NetError> {
        let key = (from.0, to.0);
        if !self.outbound.contains_key(&key) {
            let (_, addr) = self.listeners.get(&to.0).ok_or(NetError::UnknownPeer(to))?;
            let stream = TcpStream::connect(addr)?;
            let mut conn = Conn::new(stream)?;
            conn.write_buf.extend_from_slice(&from.0.to_le_bytes());
            self.outbound.insert(key, conn);
        }
        self.outbound
            .get_mut(&key)
            .ok_or(NetError::BackendState("outbound connection vanished after insert"))
    }

    /// Appends `bytes` to the link's stream and flushes what the socket
    /// accepts. A reset-class failure tears the connection down and is
    /// reported as a link reset, not a transport error — the next send
    /// reopens the socket.
    fn write_bytes(&mut self, from: NodeId, to: NodeId, bytes: &[u8]) -> Result<(), NetError> {
        let attempt = (|| {
            let conn = self.connect(from, to)?;
            conn.write_buf.extend_from_slice(bytes);
            conn.flush()
        })();
        match attempt {
            Err(NetError::Io(e)) if is_reset(e.kind()) => {
                self.outbound.remove(&(from.0, to.0));
                self.stats.dropped += 1;
                self.records
                    .push(ChaosRecord::Reject(FrameReject { from, to, cause: RejectCause::Reset }));
                Ok(())
            }
            other => other,
        }
    }

    fn accept_new(&mut self) -> Result<(), NetError> {
        for (&owner, (listener, _)) in &self.listeners {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        self.pending.push((owner, PendingAccept { stream, hello: Vec::new() }));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e.into()),
                }
            }
        }
        // Attribute pending connections whose 4-byte hello is complete.
        let mut still = Vec::new();
        for (owner, mut p) in std::mem::take(&mut self.pending) {
            p.stream.set_nonblocking(true)?;
            let mut byte = [0u8; 4];
            loop {
                if p.hello.len() == 4 {
                    break;
                }
                match p.stream.read(&mut byte[..4 - p.hello.len()]) {
                    Ok(0) => break,
                    Ok(n) => p.hello.extend_from_slice(&byte[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if is_reset(e.kind()) => break,
                    Err(e) => return Err(e.into()),
                }
            }
            if p.hello.len() == 4 {
                let from = u32::from_le_bytes([p.hello[0], p.hello[1], p.hello[2], p.hello[3]]);
                self.inbound.insert((owner, from), Conn::new(p.stream)?);
            } else {
                still.push((owner, p));
            }
        }
        self.pending = still;
        Ok(())
    }
}

impl Transport for TcpLoopback {
    fn register(&mut self, id: NodeId) -> Result<(), NetError> {
        // Re-registering a departed peer revives it (crash-restart).
        self.gone.remove(&id.0);
        if self.listeners.contains_key(&id.0) {
            return Ok(());
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        self.listeners.insert(id.0, (listener, addr));
        Ok(())
    }

    fn send(&mut self, from: NodeId, to: NodeId, frame: Frame) -> Result<(), NetError> {
        self.send_meta(from, to, frame, None)
    }

    fn send_meta(
        &mut self,
        from: NodeId,
        to: NodeId,
        frame: Frame,
        meta: Option<CausalMeta>,
    ) -> Result<(), NetError> {
        if !self.listeners.contains_key(&to.0) {
            return Err(NetError::UnknownPeer(to));
        }
        self.stats.sent += 1;
        if self.gone.contains(&to.0) || self.gone.contains(&from.0) {
            self.stats.dropped += 1;
            return Ok(());
        }
        // The chaos draw keys on the bare frame length so telemetry
        // stamps cannot change which frames get hit.
        let action = self.chaos.action(frame.encoded_len());
        if action != ChaosAction::Deliver {
            self.records.push(ChaosRecord::Inject { from, to, action });
        }
        match action {
            // A TCP stream cannot overtake itself: Reorder is a no-op
            // here and the frame rides the stream in order.
            ChaosAction::Deliver | ChaosAction::Reorder => {
                self.write_bytes(from, to, &frame.encode_with_meta(meta.as_ref()))
            }
            ChaosAction::Corrupt(m) => {
                // The mutation mangles the real wire image — meta block
                // included when one is attached — so the checksum path
                // under test is exactly what a receiver would run.
                let mut bytes = frame.encode_with_meta(meta.as_ref());
                apply_mutation(&mut bytes, m);
                self.write_bytes(from, to, &bytes)
            }
            ChaosAction::Duplicate => {
                let bytes = frame.encode_with_meta(meta.as_ref());
                self.write_bytes(from, to, &bytes)?;
                self.write_bytes(from, to, &bytes)
            }
            ChaosAction::Reset => {
                // Push half the frame onto the wire, then kill the socket:
                // the receiver sees a stream that dies mid-frame.
                let bytes = frame.encode_with_meta(meta.as_ref());
                self.write_bytes(from, to, &bytes[..bytes.len() / 2])?;
                if let Some(mut conn) = self.outbound.remove(&(from.0, to.0)) {
                    let _ = conn.flush();
                }
                self.stats.dropped += 1;
                Ok(())
            }
        }
    }

    fn advance(&mut self) -> Result<Vec<Delivery>, NetError> {
        self.accept_new()?;
        let mut dead_out = Vec::new();
        for (&key, conn) in self.outbound.iter_mut() {
            match conn.flush() {
                Ok(()) => {}
                Err(NetError::Io(e)) if is_reset(e.kind()) => dead_out.push(key),
                Err(e) => return Err(e),
            }
        }
        for key in dead_out {
            self.outbound.remove(&key);
            self.records.push(ChaosRecord::Reject(FrameReject {
                from: NodeId(key.0),
                to: NodeId(key.1),
                cause: RejectCause::Reset,
            }));
        }
        let mut out = Vec::new();
        let mut dead_in = Vec::new();
        let mut batch: Vec<(Frame, Option<CausalMeta>)> = Vec::new();
        for (&(owner, from), conn) in self.inbound.iter_mut() {
            let closed = conn.drain_read()?;
            // Batched dispatch: one poll decodes every complete frame
            // the read landed (merged reads yield several, split reads
            // leave the partial tail buffered for the next poll).
            batch.clear();
            let link_dead = match conn.decoder.drain_frames(&mut batch) {
                Ok(()) => false,
                Err(e) => {
                    // Corrupt stream: no resync point, the connection is
                    // dead. Frames decoded before the corruption still
                    // deliver below; surface the typed cause and keep
                    // every other link flowing.
                    self.stats.dropped += 1;
                    self.records.push(ChaosRecord::Reject(FrameReject {
                        from: NodeId(from),
                        to: NodeId(owner),
                        cause: RejectCause::Malformed(e),
                    }));
                    true
                }
            };
            for (frame, meta) in batch.drain(..) {
                if self.gone.contains(&owner) {
                    self.stats.dropped += 1;
                    continue;
                }
                self.stats.delivered += 1;
                self.stats.bytes_delivered += frame.encoded_len() as u64;
                out.push(Delivery { from: NodeId(from), to: NodeId(owner), frame, meta, duplicated: false });
            }
            if link_dead {
                dead_in.push((owner, from));
            } else if closed {
                if conn.decoder.finish().is_err() {
                    // The stream ended inside a frame — a reset from the
                    // receiver's point of view.
                    self.stats.dropped += 1;
                    self.records.push(ChaosRecord::Reject(FrameReject {
                        from: NodeId(from),
                        to: NodeId(owner),
                        cause: RejectCause::Reset,
                    }));
                }
                dead_in.push((owner, from));
            }
        }
        for key in dead_in {
            self.inbound.remove(&key);
        }
        Ok(out)
    }

    fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn disconnect(&mut self, id: NodeId) {
        self.gone.insert(id.0);
    }

    fn take_chaos(&mut self) -> Vec<ChaosRecord> {
        std::mem::take(&mut self.records)
    }

    fn backend(&self) -> &'static str {
        "tcp_loopback"
    }

    fn reliable(&self) -> bool {
        !self.chaos.active()
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_proto::wire::Message;
    use tchain_proto::PieceId;

    /// Loopback sockets may be unavailable in sandboxed environments;
    /// skip rather than fail so the suite stays hermetic.
    fn try_pair() -> Option<TcpLoopback> {
        try_pair_chaos(ChaosPlan::none())
    }

    fn try_pair_chaos(chaos: ChaosPlan) -> Option<TcpLoopback> {
        let mut t = TcpLoopback::with_chaos(chaos).ok()?;
        match (t.register(NodeId(1)), t.register(NodeId(2))) {
            (Ok(()), Ok(())) => Some(t),
            _ => None,
        }
    }

    fn pump(t: &mut TcpLoopback, want: usize) -> Vec<Delivery> {
        let mut got = Vec::new();
        for _ in 0..2000 {
            got.extend(t.advance().expect("advance"));
            if got.len() >= want {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        got
    }

    /// Pumps until at least `want` chaos records accumulate.
    fn pump_records(t: &mut TcpLoopback, want: usize) -> Vec<ChaosRecord> {
        let mut records = Vec::new();
        for _ in 0..2000 {
            t.advance().expect("advance");
            records.extend(t.take_chaos());
            if records.len() >= want {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        records
    }

    #[test]
    fn frames_cross_real_sockets() {
        let Some(mut t) = try_pair() else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        let frames = vec![
            Frame::Control(Message::NeighborRequest { from: NodeId(1) }),
            Frame::PieceData { piece: PieceId(4), payload: vec![9; 70_000] },
            Frame::Control(Message::Have { piece: PieceId(4) }),
        ];
        for f in &frames {
            t.send(NodeId(1), NodeId(2), f.clone()).expect("send");
        }
        let got = pump(&mut t, frames.len());
        assert_eq!(got.len(), frames.len());
        for (d, f) in got.iter().zip(&frames) {
            assert_eq!(d.from, NodeId(1));
            assert_eq!(d.to, NodeId(2));
            assert_eq!(&d.frame, f, "stream order and bytes preserved");
        }
        assert_eq!(t.stats().delivered, 3);
    }

    #[test]
    fn bidirectional_links_are_independent() {
        let Some(mut t) = try_pair() else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        t.send(NodeId(1), NodeId(2), Frame::Control(Message::Have { piece: PieceId(1) }))
            .expect("send");
        t.send(NodeId(2), NodeId(1), Frame::Control(Message::Have { piece: PieceId(2) }))
            .expect("send");
        let got = pump(&mut t, 2);
        assert_eq!(got.len(), 2);
        assert!(got.iter().any(|d| d.to == NodeId(1)));
        assert!(got.iter().any(|d| d.to == NodeId(2)));
    }

    #[test]
    fn corrupted_stream_rejects_and_link_recovers() {
        // Corrupt exactly the early frames: with p=1.0 every send is
        // mangled, so nothing may ever deliver and each doomed stream
        // must surface a typed reject instead of erroring the transport.
        let Some(mut t) = try_pair_chaos(ChaosPlan::corrupting(13, 1.0)) else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        assert!(!t.reliable());
        t.send(NodeId(1), NodeId(2), Frame::Control(Message::Have { piece: PieceId(3) }))
            .expect("send");
        let records = pump_records(&mut t, 2);
        assert!(
            records.iter().any(|r| matches!(r, ChaosRecord::Inject { .. })),
            "injection must be logged: {records:?}"
        );
        // A truncate-to-nothing mutation leaves no receiver-side evidence;
        // any other mutation must produce a reject. Either way the
        // transport stayed alive:
        t.send(NodeId(2), NodeId(1), Frame::Control(Message::Have { piece: PieceId(5) }))
            .expect("transport must survive a poisoned link");
        assert_eq!(t.stats().delivered, 0, "no corrupted frame may deliver silently");
    }

    #[test]
    fn chaos_reset_kills_the_stream_mid_frame() {
        let plan = ChaosPlan { reset_prob: 1.0, ..ChaosPlan::none() };
        let Some(mut t) = try_pair_chaos(plan) else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        t.send(NodeId(1), NodeId(2), Frame::PieceData { piece: PieceId(0), payload: vec![7; 512] })
            .expect("send");
        let records = pump_records(&mut t, 2);
        assert!(records
            .iter()
            .any(|r| matches!(r, ChaosRecord::Inject { action: ChaosAction::Reset, .. })));
        assert!(
            records.iter().any(
                |r| matches!(r, ChaosRecord::Reject(rj) if rj.cause == RejectCause::Reset)
            ),
            "receiver must observe the mid-frame cut: {records:?}"
        );
        assert_eq!(t.stats().delivered, 0);
    }

    #[test]
    fn meta_stamps_cross_real_sockets() {
        let Some(mut t) = try_pair() else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        let meta = CausalMeta { origin: 1, lamport: 11, span: 900 };
        t.send_meta(
            NodeId(1),
            NodeId(2),
            Frame::Control(Message::Have { piece: PieceId(8) }),
            Some(meta),
        )
        .expect("send");
        t.send(NodeId(1), NodeId(2), Frame::Control(Message::Have { piece: PieceId(9) }))
            .expect("send");
        let got = pump(&mut t, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].meta, Some(meta), "stamp survives the wire");
        assert_eq!(got[1].meta, None, "unstamped frame stays unstamped");
    }

    #[test]
    fn disconnect_cuts_both_directions_and_reconnect_revives() {
        let Some(mut t) = try_pair() else {
            eprintln!("skipping: loopback TCP unavailable");
            return;
        };
        t.disconnect(NodeId(2));
        t.send(NodeId(1), NodeId(2), Frame::Control(Message::Have { piece: PieceId(1) }))
            .expect("send to gone peer is a drop, not an error");
        t.send(NodeId(2), NodeId(1), Frame::Control(Message::Have { piece: PieceId(2) }))
            .expect("send from gone peer is a drop, not an error");
        assert_eq!(t.stats().dropped, 2);
        t.reconnect(NodeId(2)).expect("reconnect");
        t.send(NodeId(1), NodeId(2), Frame::Control(Message::Have { piece: PieceId(3) }))
            .expect("send");
        let got = pump(&mut t, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].frame, Frame::Control(Message::Have { piece: PieceId(3) }));
    }
}
