//! Swarm telemetry: per-peer metric histograms, swarm-level
//! aggregation with a fairness index, Prometheus text exposition and a
//! flight recorder.
//!
//! The harness owns one [`PeerTelemetry`] per peer while telemetry is
//! enabled ([`crate::SwarmConfig::telemetry`]) and folds them into a
//! [`SwarmTelemetry`] at the end of the run. Everything here is plain
//! deterministic state — counters, [`Log2Histogram`]s and `BTreeMap`s —
//! so two same-seed runs produce byte-identical expositions, and a
//! telemetry-disabled run never constructs any of it (the harness keeps
//! the whole subsystem behind an `Option`).
//!
//! Latency-class metrics are observed in integer **milliseconds** of
//! transport virtual time, which maps well onto the log2 bucket shape:
//! one-tick round trips land in single-digit buckets, stalled retries
//! in the hundreds.

use crate::runtime::PeerCounters;
use std::collections::BTreeMap;
use tchain_obs::{
    merge_traces, to_jsonl, Log2Histogram, PrometheusWriter, StatsRegistry, TelemetrySnapshot,
    TraceRecord,
};

/// Histogram name: PieceData arrival → KeyRelease arrival at the
/// requestor (how long a reciprocation is held hostage).
pub const HIST_REQUEST_KEY_LATENCY: &str = "request_key_latency_ms";
/// Histogram name: PieceUpload sent → ReceptionReport back at the donor.
pub const HIST_PIECE_RTT: &str = "piece_rtt_ms";
/// Histogram name: report retransmissions per peer per run.
pub const HIST_REPORT_RETRIES: &str = "report_retries";
/// Histogram name: §II-B4 escrow handoff → rule-3 forward at the payee.
pub const HIST_ESCROW_DWELL: &str = "escrow_dwell_ms";
/// Histogram name: quarantine durations imposed on offenders.
pub const HIST_QUARANTINE: &str = "quarantine_ms";
/// Histogram name: transactions per incentive chain (swarm-level).
pub const HIST_CHAIN_LENGTH: &str = "chain_length";

/// Converts transport virtual seconds to the integer milliseconds the
/// histograms bucket. Negative or NaN intervals clamp to zero.
pub fn virt_ms(dt: f64) -> u64 {
    if dt.is_finite() && dt > 0.0 {
        (dt * 1000.0).round() as u64
    } else {
        0
    }
}

/// Deterministic per-peer metrics: protocol counters, a goodwill gauge
/// and the latency/duration histograms of the tentpole.
#[derive(Debug, Clone, Default)]
pub struct PeerTelemetry {
    /// Peer id.
    pub peer: u32,
    /// Final protocol counters (filled when the run drains).
    pub counters: PeerCounters,
    /// Uploads minus downloads — the incentive balance gauge.
    pub goodwill: i64,
    /// PieceData delivered → matching KeyRelease delivered.
    pub request_key_latency: Log2Histogram,
    /// PieceUpload delivered → ReceptionReport delivered back.
    pub piece_rtt: Log2Histogram,
    /// Report retransmissions (one observation per run).
    pub report_retries: Log2Histogram,
    /// Escrow handoff delivered → escrow forward sent on.
    pub escrow_dwell: Log2Histogram,
    /// Durations of quarantines this peer imposed.
    pub quarantine: Log2Histogram,
}

impl PeerTelemetry {
    /// Fresh telemetry for `peer`.
    pub fn new(peer: u32) -> Self {
        PeerTelemetry { peer, ..Self::default() }
    }

    /// Pieces this peer obtained (decrypted reciprocations plus §II-B3
    /// gifts).
    pub fn downloads(&self) -> u64 {
        self.counters.decrypted + self.counters.unencrypted
    }

    /// Pieces this peer served.
    pub fn uploads(&self) -> u64 {
        self.counters.uploaded
    }

    /// Folds the end-of-run counters in and derives the gauge metrics.
    pub fn finish(&mut self, counters: PeerCounters, goodwill: i64) {
        self.counters = counters;
        self.goodwill = goodwill;
        self.report_retries.observe(counters.report_retries);
    }

    /// This peer's metrics as a mergeable [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.add("uploads", self.uploads());
        s.add("downloads", self.downloads());
        s.add("reports_sent", self.counters.reports_sent);
        s.add("report_retries", self.counters.report_retries);
        s.add("keys_sent", self.counters.keys_sent);
        s.add("escrow_held", self.counters.escrowed);
        s.add("frame_rejects", self.counters.frame_rejects);
        s.add("quarantines", self.counters.quarantines);
        for (name, h) in self.histograms() {
            *s.histograms.entry(name.to_string()).or_default() = *h;
        }
        s
    }

    fn histograms(&self) -> [(&'static str, &Log2Histogram); 5] {
        [
            (HIST_REQUEST_KEY_LATENCY, &self.request_key_latency),
            (HIST_PIECE_RTT, &self.piece_rtt),
            (HIST_REPORT_RETRIES, &self.report_retries),
            (HIST_ESCROW_DWELL, &self.escrow_dwell),
            (HIST_QUARANTINE, &self.quarantine),
        ]
    }
}

/// Swarm-level aggregation: the fold of every peer's telemetry plus the
/// metrics only the harness-wide observer can see.
#[derive(Debug, Clone, Default)]
pub struct SwarmTelemetry {
    /// Per-peer telemetry, id-ordered.
    pub peers: Vec<PeerTelemetry>,
    /// Transactions per incentive chain.
    pub chain_lengths: Log2Histogram,
    /// Chain/peer terminations by cause (`gift`, `departure`, `crash`,
    /// `quarantine`).
    pub terminations: BTreeMap<&'static str, u64>,
}

impl SwarmTelemetry {
    /// Bumps one termination-cause counter.
    pub fn note_termination(&mut self, cause: &'static str, n: u64) {
        *self.terminations.entry(cause).or_insert(0) += n;
    }

    /// Jain's fairness index over per-peer upload/download ratios
    /// `x_i = uploads_i / max(1, downloads_i)`, taken over peers that
    /// actually downloaded something (the seeder never does, and would
    /// otherwise dominate the spread). `J = (Σx)² / (n·Σx²)`; 1.0 means
    /// perfectly even reciprocation, `1/n` maximal skew. Empty input
    /// reports 1.0 — a degenerate swarm is trivially fair.
    pub fn fairness_index(&self) -> f64 {
        let xs: Vec<f64> = self
            .peers
            .iter()
            .filter(|p| p.downloads() > 0)
            .map(|p| p.uploads() as f64 / p.downloads().max(1) as f64)
            .collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (xs.len() as f64 * sq)
    }

    /// The swarm fold of every peer snapshot plus the swarm-only
    /// histograms — merge-order independent by construction.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        for p in &self.peers {
            s.merge(&p.snapshot());
        }
        *s.histograms.entry(HIST_CHAIN_LENGTH.to_string()).or_default() = self.chain_lengths;
        for (cause, n) in &self.terminations {
            s.add(&format!("terminations_{cause}"), *n);
        }
        s
    }

    /// Dumps the swarm fold into a [`StatsRegistry`] under `prefix`
    /// (counter totals plus `.count`/`.sum` per histogram), and sets the
    /// fairness index in parts-per-million (the registry is integral).
    pub fn export_stats(&self, prefix: &str, reg: &mut StatsRegistry) {
        use tchain_obs::ExportStats;
        self.snapshot().export_stats(prefix, reg);
        reg.set(
            &format!("{prefix}.fairness_ppm"),
            (self.fairness_index() * 1_000_000.0).round() as u64,
        );
    }

    /// Prometheus text-format (0.0.4) exposition: per-peer counters and
    /// histograms labelled `peer="<id>"`, the swarm chain-length
    /// histogram, termination-cause counters and the fairness gauge.
    pub fn to_prometheus(&self) -> String {
        type CounterCol = (&'static str, &'static str, fn(&PeerTelemetry) -> u64);
        type HistCol = (&'static str, &'static str, fn(&PeerTelemetry) -> &Log2Histogram);
        let mut w = PrometheusWriter::new();
        let label = |p: &PeerTelemetry| format!("peer=\"{}\"", p.peer);
        let counters: [CounterCol; 6] = [
            ("tchain_peer_uploads", "Piece bodies served", |p| p.uploads()),
            ("tchain_peer_downloads", "Pieces obtained", |p| p.downloads()),
            ("tchain_peer_reports_sent", "Reception reports sent", |p| p.counters.reports_sent),
            ("tchain_peer_keys_sent", "Key releases sent", |p| p.counters.keys_sent),
            ("tchain_peer_frame_rejects", "Malformed frames rejected", |p| {
                p.counters.frame_rejects
            }),
            ("tchain_peer_quarantines", "Quarantines imposed", |p| p.counters.quarantines),
        ];
        for (name, help, get) in counters {
            let samples: Vec<(String, u64)> =
                self.peers.iter().map(|p| (label(p), get(p))).collect();
            w.counter(name, help, &samples);
        }
        let goodwill: Vec<(String, f64)> =
            self.peers.iter().map(|p| (label(p), p.goodwill as f64)).collect();
        w.gauge("tchain_peer_goodwill", "Uploads minus downloads", &goodwill);
        let hists: [HistCol; 5] = [
            (
                "tchain_request_key_latency_ms",
                "PieceData to KeyRelease latency",
                |p| &p.request_key_latency,
            ),
            ("tchain_piece_rtt_ms", "Upload to reception-report round trip", |p| &p.piece_rtt),
            ("tchain_report_retries", "Report retransmissions per run", |p| &p.report_retries),
            ("tchain_escrow_dwell_ms", "Escrow handoff to forward dwell", |p| &p.escrow_dwell),
            ("tchain_quarantine_ms", "Quarantine durations imposed", |p| &p.quarantine),
        ];
        for (name, help, get) in hists {
            let samples: Vec<(String, Log2Histogram)> =
                self.peers.iter().map(|p| (label(p), *get(p))).collect();
            w.histogram(name, help, &samples);
        }
        w.histogram(
            "tchain_chain_length",
            "Transactions per incentive chain",
            &[(String::new(), self.chain_lengths)],
        );
        let terms: Vec<(String, u64)> = self
            .terminations
            .iter()
            .map(|(cause, n)| (format!("cause=\"{cause}\""), *n))
            .collect();
        w.counter("tchain_terminations", "Terminations by cause", &terms);
        w.gauge(
            "tchain_fairness_index",
            "Jain fairness of upload/download ratios",
            &[(String::new(), self.fairness_index())],
        );
        w.finish()
    }
}

/// One flight-recorder capture: the causally merged tail of every
/// peer's event ring at the moment something went wrong.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What tripped the capture (`violation`, `quarantine`, `crash`).
    pub reason: &'static str,
    /// Transport virtual time of the trigger.
    pub at: f64,
    /// Last-N merged trace records leading up to the trigger.
    pub records: Vec<TraceRecord>,
}

impl FlightDump {
    /// The captured tail as JSONL, ready to drop next to run artifacts.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.records)
    }
}

/// Captures the merged last-N events across all peer rings when a
/// safety violation, quarantine or crash fires. Capture count is capped
/// so a quarantine storm cannot balloon a run report.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    window: usize,
    max_dumps: usize,
    dumps: Vec<FlightDump>,
}

impl FlightRecorder {
    /// A recorder keeping the last `window` merged events per capture,
    /// at most `max_dumps` captures per run.
    pub fn new(window: usize, max_dumps: usize) -> Self {
        FlightRecorder { window, max_dumps, dumps: Vec::new() }
    }

    /// `true` once the capture budget is spent (callers can then skip
    /// the merge work entirely).
    pub fn full(&self) -> bool {
        self.dumps.len() >= self.max_dumps
    }

    /// Merges `rings` causally and keeps the last `window` records as a
    /// new dump. A no-op when full; malformed rings capture empty.
    pub fn capture(&mut self, reason: &'static str, at: f64, rings: &[Vec<TraceRecord>]) {
        if self.full() {
            return;
        }
        let merged = merge_traces(rings).unwrap_or_default();
        let tail = merged.len().saturating_sub(self.window);
        self.dumps.push(FlightDump { reason, at, records: merged[tail..].to_vec() });
    }

    /// Captures so far, in trigger order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Consumes the recorder, yielding its captures.
    pub fn into_dumps(self) -> Vec<FlightDump> {
        self.dumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_obs::Event;

    fn peer(id: u32, up: u64, down: u64) -> PeerTelemetry {
        let mut p = PeerTelemetry::new(id);
        let counters = PeerCounters {
            uploaded: up,
            decrypted: down,
            reports_sent: down,
            ..PeerCounters::default()
        };
        p.finish(counters, up as i64 - down as i64);
        p
    }

    #[test]
    fn fairness_is_one_for_even_ratios_and_drops_with_skew() {
        let even = SwarmTelemetry {
            peers: vec![peer(0, 10, 0), peer(1, 5, 5), peer(2, 7, 7)],
            ..SwarmTelemetry::default()
        };
        assert!((even.fairness_index() - 1.0).abs() < 1e-12, "equal ratios are fair");

        let skewed = SwarmTelemetry {
            peers: vec![peer(1, 12, 1), peer(2, 0, 12)],
            ..SwarmTelemetry::default()
        };
        let j = skewed.fairness_index();
        assert!(j < 0.6, "one free-rider must drag J well below 1, got {j}");
        assert!(j >= 0.5, "J is bounded below by 1/n, got {j}");
    }

    #[test]
    fn fairness_ignores_pure_uploaders_and_degenerate_swarms() {
        let s = SwarmTelemetry { peers: vec![peer(0, 100, 0)], ..SwarmTelemetry::default() };
        assert_eq!(s.fairness_index(), 1.0, "seeder-only swarm is trivially fair");
        assert_eq!(SwarmTelemetry::default().fairness_index(), 1.0);
    }

    #[test]
    fn snapshot_folds_peers_and_prometheus_has_the_headline_series() {
        let mut s = SwarmTelemetry {
            peers: vec![peer(1, 4, 2), peer(2, 3, 5)],
            ..SwarmTelemetry::default()
        };
        s.peers[0].request_key_latency.observe(3);
        s.chain_lengths.observe(5);
        s.chain_lengths.observe(2);
        s.note_termination("gift", 2);
        s.note_termination("crash", 1);

        let snap = s.snapshot();
        assert_eq!(snap.counters.get("uploads"), Some(&7));
        assert_eq!(snap.counters.get("downloads"), Some(&7));
        assert_eq!(snap.counters.get("terminations_gift"), Some(&2));
        assert_eq!(snap.histograms[HIST_CHAIN_LENGTH].count(), 2);

        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE tchain_fairness_index gauge"));
        assert!(prom.contains("tchain_fairness_index "));
        assert!(prom.contains("# TYPE tchain_chain_length histogram"));
        assert!(prom.contains("tchain_chain_length_count 2"));
        assert!(prom.contains("tchain_peer_uploads{peer=\"1\"} 4"));
        assert!(prom.contains("tchain_terminations{cause=\"crash\"} 1"));
        assert!(prom.contains("tchain_request_key_latency_ms_bucket{peer=\"1\",le=\"3\"} 1"));

        let mut reg = StatsRegistry::new();
        s.export_stats("swarm", &mut reg);
        assert_eq!(reg.get("swarm.uploads"), 7);
        assert_eq!(reg.get("swarm.chain_length.count"), 2);
        assert!(reg.get("swarm.fairness_ppm") > 0);
    }

    #[test]
    fn flight_recorder_keeps_the_tail_and_caps_captures() {
        let mut rec = FlightRecorder::new(2, 2);
        let ring: Vec<TraceRecord> = (0..4)
            .map(|i| TraceRecord {
                t: i as f64,
                seq: i,
                origin: Some(7),
                lamport: Some(i + 1),
                event: Event::PeerDepart { peer: 7 },
            })
            .collect();
        rec.capture("quarantine", 1.0, std::slice::from_ref(&ring));
        assert_eq!(rec.dumps()[0].records.len(), 2, "window trims to last N");
        assert_eq!(rec.dumps()[0].records[0].lamport, Some(3));
        rec.capture("crash", 2.0, std::slice::from_ref(&ring));
        rec.capture("violation", 3.0, std::slice::from_ref(&ring));
        assert_eq!(rec.dumps().len(), 2, "capture budget caps dumps");
        assert!(!rec.dumps()[0].to_jsonl().is_empty());
    }

    #[test]
    fn virt_ms_clamps_and_rounds() {
        assert_eq!(virt_ms(0.0015), 2);
        assert_eq!(virt_ms(1.0), 1000);
        assert_eq!(virt_ms(-3.0), 0);
        assert_eq!(virt_ms(f64::NAN), 0);
    }
}
