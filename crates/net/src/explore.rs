//! Schedule exploration: PCT interleaving search with failing-schedule
//! shrinking.
//!
//! Every safety property the harness audits — no unreciprocated key
//! release, §II-D2 ledger conservation, plaintext integrity, §II-B4
//! escrow-backed completion, quarantine evidence — is normally only
//! checked along the one interleaving a seed happens to produce. This
//! module searches *orderings*: it drives [`SwarmHarness`] in
//! [`SchedMode::Explore`], where the indexed scheduler's one decision
//! point (which due peer runs next) is answered by a `tchain-sim`
//! [`SchedPerturber`] sampling PCT-style randomized priorities. Each
//! run records its non-default decisions as a sparse, replayable
//! [`Schedule`]; a failing run is handed to a delta-debugging shrinker
//! ([`shrink`]) that minimizes the schedule to a small human-readable
//! [`Witness`], replayable bit-for-bit forever after.
//!
//! The scenario grid ([`scenarios`]/[`scenario_config`]) spans the
//! chaos × churn × attack surface of PRs 6, 8 and 9 at search-friendly
//! sizes; `tests/schedule_replay.rs` pins previously shrunk witnesses,
//! and the `net_explore` experiment runs the budgeted search in CI.
//! The engine's teeth are proven by a mutation canary: building with
//! `RUSTFLAGS="--cfg tchain_canary"` re-arms the PR 9 `restore()`
//! ledger bug, which the search must find and shrink.
//!
//! [`SwarmHarness`]: crate::SwarmHarness
//! [`SchedPerturber`]: tchain_sim::SchedPerturber

use crate::harness::{run_swarm, SchedMode, SwarmConfig, SwarmReport};
use crate::strategy::{GroupId, Strategy};
use tchain_obs::OracleKind;
use tchain_sim::{ChaosPlan, ChurnPlan, ExplorePlan, FaultPlan, Schedule};

/// `true` when this build carries the seeded `restore()` ledger
/// mutation (`RUSTFLAGS="--cfg tchain_canary"`). The canary drill
/// expects the explorer to find it; everything else expects it off.
pub fn canary_armed() -> bool {
    cfg!(tchain_canary)
}

/// Search knobs for one scenario's exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// PCT depth `d`: priorities plus `d − 1` change points per run.
    pub depth: u32,
    /// Estimated decisions per run (change points sample over this).
    pub est_steps: u64,
    /// PCT runs to sample before declaring the scenario clean.
    pub budget: u32,
    /// Replay runs the shrinker may spend minimizing a failure.
    pub shrink_budget: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig { depth: 3, est_steps: 2048, budget: 24, shrink_budget: 160 }
    }
}

/// A minimized failing schedule with everything needed to replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// Scenario grid name ([`scenario_config`] input).
    pub scenario: String,
    /// Swarm seed of the scenario.
    pub seed: u64,
    /// PCT seed whose sampled run first failed (provenance).
    pub pct_seed: u64,
    /// PCT depth of the originating search.
    pub depth: u32,
    /// Oracles the shrunk schedule fails (this build's verdict).
    pub oracles: Vec<OracleKind>,
    /// Delivered-frame fingerprint of the shrunk replay.
    pub fingerprint: u64,
    /// The minimized schedule itself.
    pub schedule: Schedule,
}

/// Outcome of one failing run's minimization, with search provenance.
#[derive(Debug)]
pub struct Failure {
    /// The minimized, replay-verified witness.
    pub witness: Witness,
    /// Recorded choices before shrinking.
    pub original_len: usize,
    /// Replay runs the shrinker actually spent.
    pub shrink_runs: u32,
}

/// Outcome of one scenario's budgeted search.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// PCT runs executed (≤ budget; stops at the first failure).
    pub runs: u32,
    /// Scheduling decision points consumed across all runs.
    pub decisions: u64,
    /// The first oracle failure found, minimized — `None` if the
    /// budget drained clean.
    pub failure: Option<Failure>,
}

/// Names of the scenario grid, in canonical order. Each spans a
/// different slice of the chaos × churn × attack surface at a size the
/// search can afford hundreds of runs against.
pub fn scenarios() -> &'static [&'static str] {
    &[
        "baseline",
        "free-riders",
        "lossy",
        "chaos",
        "crash",
        "churn",
        "collusion",
        "chaos-churn",
    ]
}

/// Builds the [`SwarmConfig`] for a named grid scenario at `seed`;
/// `None` for unknown names. Tracing and telemetry stay off — the
/// search wants raw throughput, and a witness replay can switch them
/// on after the fact.
pub fn scenario_config(name: &str, seed: u64) -> Option<SwarmConfig> {
    let base = SwarmConfig {
        peers: 8,
        pieces: 8,
        piece_len: 256,
        seed,
        sched: SchedMode::Explore,
        max_ticks: 6000,
        trace_capacity: 0,
        ..SwarmConfig::default()
    };
    let cfg = match name {
        "baseline" => base,
        "free-riders" => base.with_free_riders(2),
        "lossy" => SwarmConfig { plan: FaultPlan::lossy(seed ^ 0x10_55, 0.05), ..base },
        "chaos" => SwarmConfig { chaos: ChaosPlan::byzantine(seed ^ 0xB42, 0.05), ..base },
        "crash" => SwarmConfig {
            chaos: ChaosPlan::corrupting(seed ^ 0xC4A5, 0.0).with_crash_restart(8.0, 0.34, 4.0),
            ..base
        },
        "churn" => SwarmConfig {
            churn: ChurnPlan::none().with_joins(6.0, 3, 2.0).with_departures(16.0, 0.25),
            ..base
        },
        "collusion" => SwarmConfig {
            peers: 10,
            strategies: vec![
                (8, Strategy::colluding_free_rider(GroupId(0))),
                (9, Strategy::colluding_free_rider(GroupId(0))),
            ],
            ..base
        },
        "chaos-churn" => SwarmConfig {
            chaos: ChaosPlan::byzantine(seed ^ 0xCC, 0.04),
            churn: ChurnPlan::none().with_flash_crowd(10.0, 4),
            ..base
        },
        _ => return None,
    };
    Some(cfg)
}

/// Runs `base` under the given perturbation plan (forcing
/// [`SchedMode::Explore`]) and returns the audited report.
pub fn run_with_plan(base: &SwarmConfig, plan: &ExplorePlan) -> SwarmReport {
    let cfg = SwarmConfig {
        sched: SchedMode::Explore,
        explore: Some(plan.clone()),
        ..base.clone()
    };
    run_swarm(cfg).expect("mesh transport cannot fail")
}

/// SplitMix64: decorrelates per-run PCT seeds from one search seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Budgeted PCT search over one scenario: sample up to `cfg.budget`
/// perturbed runs; on the first oracle failure, shrink the recorded
/// schedule and return the replay-verified witness.
pub fn explore(
    scenario: &str,
    base: &SwarmConfig,
    search_seed: u64,
    cfg: &ExploreConfig,
) -> ExploreOutcome {
    let mut decisions = 0u64;
    for run in 0..cfg.budget {
        let pct_seed = splitmix64(search_seed.wrapping_add(u64::from(run)));
        let plan =
            ExplorePlan::Pct { seed: pct_seed, depth: cfg.depth, est_steps: cfg.est_steps };
        let report = run_with_plan(base, &plan);
        decisions += report.sched_decisions;
        if report.failed_oracles.is_empty() {
            continue;
        }
        let original = report.schedule.clone().unwrap_or_default();
        let original_len = original.len();
        let (schedule, shrink_runs) = shrink(base, &original, cfg.shrink_budget);
        // Seal the witness with a fresh replay: its fingerprint and
        // verdict are what the regression suite will pin.
        let sealed = run_with_plan(base, &ExplorePlan::Replay(schedule.clone()));
        return ExploreOutcome {
            runs: run + 1,
            decisions,
            failure: Some(Failure {
                witness: Witness {
                    scenario: scenario.to_string(),
                    seed: base.seed,
                    pct_seed,
                    depth: cfg.depth,
                    oracles: sealed.failed_oracles.clone(),
                    fingerprint: sealed.fingerprint,
                    schedule,
                },
                original_len,
                shrink_runs,
            }),
        };
    }
    ExploreOutcome { runs: cfg.budget, decisions, failure: None }
}

/// Delta-debugging (ddmin) minimization of a failing schedule: find a
/// small choice subset that still fails some oracle on replay, then
/// polish to 1-minimality. Every subset of a sparse schedule is itself
/// a valid schedule (picks clamp, missed steps default), which is what
/// makes plain ddmin sound here. Returns the minimized schedule and
/// the replay runs spent.
pub fn shrink(base: &SwarmConfig, schedule: &Schedule, budget: u32) -> (Schedule, u32) {
    let spent = std::cell::Cell::new(0u32);
    let fails = |choices: &[tchain_sim::Choice]| -> bool {
        spent.set(spent.get() + 1);
        let s = Schedule { choices: choices.to_vec() };
        !run_with_plan(base, &ExplorePlan::Replay(s)).failed_oracles.is_empty()
    };
    // Fast path: a schedule-independent bug (the canary's shape) needs
    // no choices at all.
    if fails(&[]) {
        return (Schedule::default(), spent.get());
    }
    let mut cur = schedule.choices.clone();
    let mut n = 2usize;
    while cur.len() >= 2 && n <= cur.len() && spent.get() < budget {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < cur.len() && spent.get() < budget {
            // Complement of cur[start .. start+chunk].
            let complement: Vec<tchain_sim::Choice> = cur
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= start + chunk)
                .map(|(_, c)| *c)
                .collect();
            if fails(&complement) {
                cur = complement;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start += chunk;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    // 1-minimal polish: drop any single choice whose removal keeps the
    // failure.
    let mut i = 0usize;
    while i < cur.len() && spent.get() < budget {
        let mut without = cur.clone();
        without.remove(i);
        if fails(&without) {
            cur = without;
        } else {
            i += 1;
        }
    }
    (Schedule { choices: cur }, spent.get())
}

/// Parses an [`OracleKind`] from its stable snake_case name.
pub fn oracle_from_str(s: &str) -> Option<OracleKind> {
    Some(match s {
        "key_release" => OracleKind::KeyRelease,
        "ledger" => OracleKind::Ledger,
        "plaintext" => OracleKind::Plaintext,
        "completion" => OracleKind::Completion,
        "quarantine" => OracleKind::Quarantine,
        _ => return None,
    })
}

fn oracle_list(oracles: &[OracleKind]) -> String {
    if oracles.is_empty() {
        "pass".to_string()
    } else {
        oracles.iter().map(OracleKind::as_str).collect::<Vec<_>>().join(",")
    }
}

fn parse_oracle_list(s: &str) -> Result<Vec<OracleKind>, String> {
    if s == "pass" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|name| oracle_from_str(name.trim()).ok_or_else(|| format!("unknown oracle {name:?}")))
        .collect()
}

impl Witness {
    /// Serializes to the witness file format checked into
    /// `tests/schedules/`: a `key value` header followed by the
    /// schedule's `step …` lines.
    ///
    /// ```text
    /// # tchain-net schedule witness v1
    /// scenario crash
    /// seed 0x2a
    /// pct_seed 0x1f2e3d4c
    /// depth 3
    /// oracles pass
    /// fingerprint 0x5eedf00d
    /// step 17 pick 2
    /// step 40 defer
    /// ```
    pub fn to_text(&self) -> String {
        let mut s = String::from("# tchain-net schedule witness v1\n");
        s.push_str(&format!("scenario {}\n", self.scenario));
        s.push_str(&format!("seed {:#x}\n", self.seed));
        s.push_str(&format!("pct_seed {:#x}\n", self.pct_seed));
        s.push_str(&format!("depth {}\n", self.depth));
        s.push_str(&format!("oracles {}\n", oracle_list(&self.oracles)));
        s.push_str(&format!("fingerprint {:#x}\n", self.fingerprint));
        s.push_str(&self.schedule.to_text());
        s
    }

    /// Parses the [`Witness::to_text`] format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut scenario = None;
        let mut seed = None;
        let mut pct_seed = 0u64;
        let mut depth = 0u32;
        let mut oracles = None;
        let mut fingerprint = None;
        let mut sched_lines = String::new();
        let parse_u64 = |v: &str| -> Result<u64, String> {
            let r = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            r.map_err(|_| format!("bad number {v:?}"))
        };
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once(' ').ok_or_else(|| format!("bad line {line:?}"))?;
            match key {
                "scenario" => scenario = Some(value.trim().to_string()),
                "seed" => seed = Some(parse_u64(value.trim())?),
                "pct_seed" => pct_seed = parse_u64(value.trim())?,
                "depth" => {
                    depth = value.trim().parse().map_err(|_| format!("bad depth {value:?}"))?
                }
                "oracles" => oracles = Some(parse_oracle_list(value.trim())?),
                "fingerprint" => fingerprint = Some(parse_u64(value.trim())?),
                "step" => {
                    sched_lines.push_str(line);
                    sched_lines.push('\n');
                }
                _ => return Err(format!("unknown witness key {key:?}")),
            }
        }
        Ok(Witness {
            scenario: scenario.ok_or("missing scenario")?,
            seed: seed.ok_or("missing seed")?,
            pct_seed,
            depth,
            oracles: oracles.ok_or("missing oracles")?,
            fingerprint: fingerprint.ok_or("missing fingerprint")?,
            schedule: Schedule::from_text(&sched_lines)?,
        })
    }

    /// Replays the witness against its own scenario and returns the
    /// fresh report (panics on an unknown scenario name).
    pub fn replay(&self) -> SwarmReport {
        let base = scenario_config(&self.scenario, self.seed)
            .unwrap_or_else(|| panic!("unknown scenario {:?}", self.scenario));
        run_with_plan(&base, &ExplorePlan::Replay(self.schedule.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tchain_sim::{Act, Choice};

    #[test]
    fn empty_replay_matches_indexed_bit_for_bit() {
        for scenario in ["baseline", "free-riders"] {
            let base = scenario_config(scenario, 0x5EED).expect("known scenario");
            let indexed =
                run_swarm(SwarmConfig { sched: SchedMode::Indexed, explore: None, ..base.clone() })
                    .expect("indexed");
            let replay = run_with_plan(&base, &ExplorePlan::Replay(Schedule::default()));
            assert_eq!(replay.fingerprint, indexed.fingerprint, "{scenario}");
            assert_eq!(replay.ticks, indexed.ticks, "{scenario}");
            assert!(replay.schedule.as_ref().is_some_and(Schedule::is_empty), "{scenario}");
            assert!(replay.sched_decisions > 0, "{scenario}");
        }
    }

    #[test]
    fn pct_runs_are_deterministic_and_rerecordable() {
        let base = scenario_config("baseline", 0x5EED).expect("scenario");
        let plan = ExplorePlan::Pct { seed: 0xD00D, depth: 3, est_steps: 2048 };
        let a = run_with_plan(&base, &plan);
        let b = run_with_plan(&base, &plan);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.sched_decisions, b.sched_decisions);
        // Replaying the recorded schedule reproduces the perturbed run
        // without the sampler — and re-records the same schedule.
        let sched = a.schedule.clone().expect("explore mode records");
        assert!(!sched.is_empty(), "PCT at depth 3 must perturb something");
        let r = run_with_plan(&base, &ExplorePlan::Replay(sched.clone()));
        assert_eq!(r.fingerprint, a.fingerprint);
        assert_eq!(r.schedule.as_ref(), Some(&sched));
    }

    #[test]
    fn perturbed_baseline_keeps_every_oracle() {
        let base = scenario_config("baseline", 0x5EED).expect("scenario");
        let cfg = ExploreConfig { budget: 4, ..ExploreConfig::default() };
        let out = explore("baseline", &base, 0xACE, &cfg);
        assert_eq!(out.runs, 4);
        assert!(out.decisions > 0);
        if !canary_armed() {
            assert!(out.failure.is_none(), "baseline must stay clean under perturbation");
        }
    }

    #[test]
    fn witness_text_round_trips() {
        let w = Witness {
            scenario: "crash".to_string(),
            seed: 0x2A,
            pct_seed: 0x1F2E_3D4C,
            depth: 3,
            oracles: vec![OracleKind::Ledger, OracleKind::Completion],
            fingerprint: 0x5EED_F00D,
            schedule: Schedule {
                choices: vec![
                    Choice { step: 17, act: Act::Pick(2) },
                    Choice { step: 40, act: Act::Defer },
                ],
            },
        };
        let text = w.to_text();
        assert_eq!(Witness::from_text(&text).expect("parse"), w);
        let clean = Witness { oracles: Vec::new(), ..w };
        assert!(clean.to_text().contains("oracles pass"));
        assert_eq!(Witness::from_text(&clean.to_text()).expect("parse"), clean);
        assert!(Witness::from_text("scenario x\n").is_err());
    }

    #[test]
    fn scenario_grid_is_closed() {
        for name in scenarios() {
            assert!(scenario_config(name, 1).is_some(), "{name} must build");
        }
        assert!(scenario_config("no-such-scenario", 1).is_none());
    }

    #[cfg(tchain_canary)]
    #[test]
    fn canary_bug_is_found_and_shrunk() {
        let base = scenario_config("crash", 0x5EED).expect("scenario");
        let out = explore("crash", &base, 0xACE, &ExploreConfig::default());
        let failure = out.failure.expect("the canary ledger bug must be found");
        assert!(
            failure.witness.oracles.contains(&OracleKind::Ledger),
            "expected a ledger oracle failure, got {:?}",
            failure.witness.oracles
        );
        assert!(
            failure.witness.schedule.len() <= 50,
            "witness must shrink to ≤ 50 choices, got {}",
            failure.witness.schedule.len()
        );
    }
}
