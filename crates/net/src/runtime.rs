//! The executable T-Chain peer: a message-driven state machine.
//!
//! A [`PeerRuntime`] is pure with respect to its transport — the harness
//! feeds it delivered frames ([`PeerRuntime::on_frame`]) and clock ticks
//! ([`PeerRuntime::on_tick`]); the peer pushes outgoing `(to, frame)`
//! pairs into an outbox. All protocol state of §II-B lives here:
//!
//! * **donor side** — initiation/opportunistic rounds bounded by upload
//!   slots, payee designation (direct reciprocity §II-B2 first, then a
//!   random interested neighbor, §II-B3 unencrypted termination when no
//!   payee exists), the per-neighbor `k`-pending flow-control ledger of
//!   §II-D2, key minting/release through `tchain-crypto`, and the PR 1
//!   stall sweep that closes free-riding chains;
//! * **requestor side** — ciphertext buffering, the reciprocate-before-
//!   key obligation, §II-D1 newcomer bootstrapping by *forward
//!   re-encryption* (a newcomer with no plaintext re-encrypts the very
//!   ciphertext it just received under a fresh key and passes it on —
//!   ChaCha20's XOR keystream commutes, so layered keys can be stripped
//!   in any order), and hash-verified decryption against [`Content`];
//! * **payee side** — reception reports with bounded exponential-backoff
//!   retransmission on unreliable transports, and the §II-B4 escrow:
//!   keys a departing donor hands over are held until the matching
//!   reciprocation arrives, then forwarded to the requestor.
//!
//! Determinism: all iteration is over `BTreeMap`/sorted vectors and all
//! randomness comes from a forked [`SimRng`], so a peer's behavior is a
//! function of (seed, delivered frames, tick times) alone.

use crate::content::{fingerprint, Content};
use crate::frame::Frame;
use crate::strategy::{NetStrategy, Strategy};
use std::collections::BTreeMap;
use tchain_crypto::{KeyId, Keyring, PieceKey};
use tchain_proto::wire::{Message, KEY_WIRE_SIZE};
use tchain_proto::{Bitfield, PieceId};
use tchain_sim::{NodeId, SimRng};

/// Outgoing frames produced by one peer callback.
pub type Outbox = Vec<(NodeId, Frame)>;

/// What the peer does with the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerRole {
    /// Holds the full file from t=0 and initiates chains (§II-B1).
    Seeder,
    /// Follows the protocol: reciprocates, reports, announces.
    Compliant,
    /// Downloads and hoards: never reciprocates, reports or serves.
    FreeRider,
}

/// Tunables of the net runtime (the PR 1/fluid-driver parameters that
/// survive the move from accounting to bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// §II-D2 flow-control bound: a neighbor with `k` un-reciprocated
    /// pieces from us is neither served nor designated payee.
    pub k_pending: u32,
    /// Concurrent chain initiations a seeder keeps in flight (§II-B1).
    pub seeder_slots: usize,
    /// Chain initiations a completed leecher keeps in flight (§II-D3
    /// opportunistic seeding).
    pub opportunistic_slots: usize,
    /// Seconds before a donor closes an un-reciprocated transaction
    /// (free-riding stall, §IV-F) and a requestor abandons an
    /// unfulfillable obligation.
    pub stall_timeout: f64,
    /// Seconds before the first report retransmission (unreliable
    /// transports only).
    pub retry_base: f64,
    /// Multiplicative backoff between retransmissions.
    pub retry_backoff: f64,
    /// Report retransmission attempts before giving up.
    pub max_retries: u32,
    /// Leechers depart the moment they complete, handing §II-B4 escrow
    /// keys to the designated payees.
    pub depart_on_complete: bool,
    /// Completed, non-departing leechers keep seeding (§II-D3).
    pub opportunistic: bool,
    /// Frame rejects tolerated from one neighbor before it is
    /// quarantined (byzantine strike policy).
    pub strike_limit: u32,
    /// Seconds a quarantined neighbor is excluded from donor rounds and
    /// payee designation. Quarantine is deliberately temporary: under
    /// injected chaos the "offender" is innocent, so a bounded exclusion
    /// keeps false positives from starving the swarm.
    pub quarantine_secs: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            k_pending: 2,
            seeder_slots: 4,
            opportunistic_slots: 1,
            stall_timeout: 25.0,
            retry_base: 2.0,
            retry_backoff: 2.0,
            max_retries: 4,
            depart_on_complete: false,
            opportunistic: true,
            strike_limit: 3,
            quarantine_secs: 30.0,
        }
    }
}

/// What a peer knows about a neighbor.
#[derive(Debug)]
struct Neighbor {
    have: Bitfield,
    /// `true` once an actual `Bitfield` message arrived (not a
    /// placeholder from the tracker list or a `NeighborRequest`).
    known: bool,
}

/// A transaction where this peer is the donor, keyed by
/// `(requestor, piece)` in [`PeerRuntime::donor_txns`].
#[derive(Debug)]
struct DonorTxn {
    payee: Option<u32>,
    key_id: Option<KeyId>,
    started: f64,
    reported: bool,
    /// Ciphertext source when this upload is a §II-D1 forward:
    /// `(original donor, piece)` of our own pending entry.
    source: Option<(u32, u32)>,
    /// Underlying keys received for `source` before our own release was
    /// unlocked; sent along with the minted key once reported.
    pending_relay: Vec<[u8; KEY_WIRE_SIZE]>,
    /// Every key wire blob sent to the requestor, for duplicate-report
    /// re-sends (PR 1 key-loss recovery).
    sent_keys: Vec<[u8; KEY_WIRE_SIZE]>,
}

/// An encrypted piece received but not yet decryptable, keyed by
/// `(donor, piece)`.
#[derive(Debug)]
struct PendingPiece {
    reciprocates: Option<(u32, u32)>,
    payee: Option<u32>,
    ciphertext_len: u32,
    /// Working buffer: ciphertext with every received key applied.
    work: Option<Vec<u8>>,
    /// Fingerprints of applied keys (XOR self-inverts, so a re-applied
    /// duplicate would *undo* decryption — dedupe is correctness here).
    applied: Vec<u64>,
    /// The forward transaction sourcing this entry, if we re-encrypted
    /// and passed the ciphertext on (§II-D1): `(requestor, piece)` key
    /// into `donor_txns`.
    forward_txn: Option<(u32, u32)>,
}

/// A reciprocation owed: upload something to `payee` so the key for
/// `(donor, piece)` gets released.
#[derive(Debug)]
struct Obligation {
    donor: u32,
    piece: u32,
    payee: u32,
    since: f64,
    asked_neighbor: bool,
}

/// Escrowed keys held for one `(donor, piece)`: each entry pairs the
/// requestor the key settles with the key bytes themselves.
type EscrowedKeys = Vec<(u32, [u8; KEY_WIRE_SIZE])>;

/// A payee's pending report retransmission.
#[derive(Debug)]
struct ReportRetry {
    donor: u32,
    requestor: u32,
    piece: u32,
    next_at: f64,
    attempt: u32,
}

/// Per-peer counters surfaced in the swarm report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerCounters {
    /// Pieces completed by hash-verified decryption.
    pub decrypted: u64,
    /// Pieces completed from §II-B3 unencrypted uploads.
    pub unencrypted: u64,
    /// Key releases sent (own mints, relays and escrow forwards).
    pub keys_sent: u64,
    /// Reception reports sent (first sends, not retries).
    pub reports_sent: u64,
    /// Report retransmissions fired.
    pub report_retries: u64,
    /// Transactions closed by the donor stall sweep.
    pub stalled_txns: u64,
    /// Keys escrowed to a payee at departure (§II-B4).
    pub escrowed: u64,
    /// Frame rejects attributed to neighbors (byzantine strikes).
    pub frame_rejects: u64,
    /// Neighbors quarantined after crossing the strike limit.
    pub quarantines: u64,
    /// Piece bodies pushed onto the wire (donations, gifts, re-uploads).
    pub uploaded: u64,
}

/// The executable peer.
#[derive(Debug)]
pub struct PeerRuntime {
    id: NodeId,
    role: PeerRole,
    /// Behavioural strategy, consulted (via [`crate::NetStrategy`]) at
    /// every protocol fork. Derived from `role` by [`PeerRuntime::new`]
    /// for back-compat; [`PeerRuntime::with_strategy`] sets it freely.
    /// Not checkpointed — an operator's brain survives its identities,
    /// so the harness re-adopts it after every restore.
    strategy: Strategy,
    cfg: NetConfig,
    content: Content,
    arm_retries: bool,
    rng: SimRng,
    keyring: Keyring,
    have: Bitfield,
    plain: Vec<Option<Vec<u8>>>,
    neighbors: BTreeMap<u32, Neighbor>,
    donor_txns: BTreeMap<(u32, u32), DonorTxn>,
    active_donations: usize,
    ledger: BTreeMap<u32, u32>,
    pending_in: BTreeMap<(u32, u32), PendingPiece>,
    obligations: Vec<Obligation>,
    retries: Vec<ReportRetry>,
    /// §II-B4 escrow held as payee: keys from a departed donor, keyed
    /// `(donor, piece)` with the requestor each key is destined for
    /// (from the handoff's `requestor` marker — one donor can have
    /// several transactions for the same piece with different
    /// requestors, and the keys are not interchangeable).
    escrow: BTreeMap<(u32, u32), EscrowedKeys>,
    /// Reciprocations observed as payee: `(donor, piece)` → every
    /// requestor whose reciprocation we received, the lookup escrow
    /// forwarding needs when keys arrive late.
    recips_seen: BTreeMap<(u32, u32), std::collections::BTreeSet<u32>>,
    /// `(requestor, piece)` gift uploads already sent (§II-B3) → send
    /// time, so the donor round does not re-gift while data is in
    /// flight. Entries expire after `stall_timeout`: a gift is
    /// fire-and-forget, and on a byzantine transport the one gift a
    /// requestor's endgame depends on can be corrupted in flight —
    /// suppressing re-gifts forever would wedge the swarm.
    gifted: BTreeMap<(u32, u32), f64>,
    /// Byzantine strike counters per apparent offender.
    strikes: BTreeMap<u32, u32>,
    /// Quarantined offenders → local-clock expiry. Swept lazily each
    /// tick; a quarantined neighbor is skipped by donor rounds and payee
    /// designation but keeps its obligations (liveness over punishment).
    quarantined: BTreeMap<u32, f64>,
    /// Restart incarnation: 0 for the original process, bumped by each
    /// crash-restart [`PeerRuntime::restore`].
    generation: u32,
    complete_at: Option<f64>,
    departed: bool,
    counters: PeerCounters,
}

impl PeerRuntime {
    /// Builds a peer. Seeders start with the full file; everyone else
    /// starts empty.
    pub fn new(id: NodeId, role: PeerRole, content: Content, cfg: NetConfig, seed: u64) -> Self {
        let strategy = match role {
            PeerRole::FreeRider => Strategy::zero_upload(),
            _ => Strategy::Compliant,
        };
        Self::with_strategy(id, role, content, cfg, seed, strategy)
    }

    /// Builds a peer with an explicit behavioural [`Strategy`]. The
    /// role still decides starting holdings (seeders begin full) and
    /// donor scheduling class; the strategy decides everything the
    /// adversary engine forks on. `new` is `with_strategy` with the
    /// strategy derived from the role.
    pub fn with_strategy(
        id: NodeId,
        role: PeerRole,
        content: Content,
        cfg: NetConfig,
        seed: u64,
        strategy: Strategy,
    ) -> Self {
        let pieces = content.pieces;
        let (have, plain) = if role == PeerRole::Seeder {
            let mut plain = Vec::with_capacity(pieces);
            for i in 0..pieces {
                plain.push(Some(content.piece(i as u32)));
            }
            (Bitfield::full(pieces), plain)
        } else {
            (Bitfield::new(pieces), vec![None; pieces])
        };
        PeerRuntime {
            id,
            role,
            strategy,
            cfg,
            content,
            arm_retries: false,
            rng: SimRng::new(seed ^ u64::from(id.0).wrapping_mul(0x9E37_79B9)),
            keyring: Keyring::new(seed ^ (u64::from(id.0) << 32) ^ 0x5EED),
            have,
            plain,
            neighbors: BTreeMap::new(),
            donor_txns: BTreeMap::new(),
            active_donations: 0,
            ledger: BTreeMap::new(),
            pending_in: BTreeMap::new(),
            obligations: Vec::new(),
            retries: Vec::new(),
            escrow: BTreeMap::new(),
            recips_seen: BTreeMap::new(),
            gifted: BTreeMap::new(),
            strikes: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            generation: 0,
            complete_at: None,
            departed: false,
            counters: PeerCounters::default(),
        }
    }

    /// Enables report retransmission timers (harness calls this when the
    /// transport is unreliable; on reliable transports the retry path
    /// stays cold, like the fluid drivers' fault-free fast path).
    pub fn set_arm_retries(&mut self, arm: bool) {
        self.arm_retries = arm;
    }

    /// This peer's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The peer's role.
    pub fn role(&self) -> PeerRole {
        self.role
    }

    /// The peer's behavioural strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Re-adopts a strategy after a restore: checkpoints carry the
    /// wire-visible state only, and the operator driving an identity is
    /// not wire-visible — the harness re-injects it on rejoin (both the
    /// crash-restart and the whitewash path).
    pub fn adopt_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// `true` when every piece is held.
    pub fn is_complete(&self) -> bool {
        self.have.is_complete()
    }

    /// Transport time at which the file completed.
    pub fn completion_time(&self) -> Option<f64> {
        self.complete_at
    }

    /// `true` once the peer left the swarm (§II-B4 graceful departure).
    pub fn departed(&self) -> bool {
        self.departed
    }

    /// Pieces currently held.
    pub fn have_count(&self) -> usize {
        self.have.count()
    }

    /// The decrypted bytes of piece `i`, if held.
    pub fn piece_bytes(&self, i: u32) -> Option<&[u8]> {
        self.plain.get(i as usize).and_then(|p| p.as_deref())
    }

    /// Per-peer protocol counters.
    pub fn counters(&self) -> PeerCounters {
        self.counters
    }

    /// Goodwill balance: pieces served to the swarm minus pieces obtained
    /// from it. Positive for net contributors, negative for net consumers.
    /// T-Chain's invariant is that this cannot drift far negative for a
    /// compliant peer — free-riders stall instead of draining donors.
    pub fn goodwill_balance(&self) -> i64 {
        let got = self.counters.decrypted + self.counters.unencrypted;
        self.counters.uploaded as i64 - got as i64
    }

    /// Restart incarnation (0 = original, bumped per crash-restart).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// `true` while `peer` is quarantined (between a strike-limit breach
    /// and the lazy expiry sweep of [`PeerRuntime::on_tick`]).
    pub fn is_quarantining(&self, peer: NodeId) -> bool {
        self.quarantined.contains_key(&peer.0)
    }

    /// Deterministic ±20 % jitter drawn from this peer's own RNG stream.
    /// Retry schedules use it so peers who lost the same frame do not
    /// retransmit in lockstep (a thundering-herd de-correlator).
    fn jittered(&mut self, base: f64) -> f64 {
        base * (0.8 + 0.4 * self.rng.f64())
    }

    /// Records a rejected frame (or reset) attributed to `offender`.
    ///
    /// Every reject is a strike; at [`NetConfig::strike_limit`] strikes
    /// the offender enters quarantine for [`NetConfig::quarantine_secs`]
    /// and the counter resets. Returns the quarantine expiry when this
    /// reject tripped the limit. Quarantine only withholds *new goodwill*
    /// (donor rounds, payee designation); existing obligations toward the
    /// offender stand, so a falsely-accused peer is never starved — the
    /// stall sweep, not the strike policy, owns abandoned transactions.
    pub fn on_frame_reject(&mut self, now: f64, offender: NodeId) -> Option<f64> {
        if self.departed {
            return None;
        }
        self.counters.frame_rejects += 1;
        let strikes = self.strikes.entry(offender.0).or_insert(0);
        *strikes += 1;
        if *strikes >= self.cfg.strike_limit {
            *strikes = 0;
            let until = now + self.cfg.quarantine_secs;
            self.quarantined.insert(offender.0, until);
            self.counters.quarantines += 1;
            Some(until)
        } else {
            None
        }
    }

    /// Handshake with an initial tracker membership list.
    pub fn bootstrap(&mut self, members: &[NodeId], out: &mut Outbox) {
        for &m in members {
            if m == self.id {
                continue;
            }
            self.neighbors
                .entry(m.0)
                .or_insert_with(|| Neighbor { have: Bitfield::new(self.content.pieces), known: false });
            out.push((m, Frame::Control(Message::bitfield(&self.have))));
        }
    }

    // ------------------------------------------------------------------
    // Frame handling
    // ------------------------------------------------------------------

    /// Processes one delivered frame.
    pub fn on_frame(&mut self, now: f64, from: NodeId, frame: Frame, out: &mut Outbox) {
        if self.departed {
            return;
        }
        match frame {
            Frame::Control(msg) => self.on_control(now, from, msg, out),
            Frame::PieceData { piece, payload } => self.on_piece_data(now, from, piece, payload, out),
        }
    }

    fn on_control(&mut self, now: f64, from: NodeId, msg: Message, out: &mut Outbox) {
        match msg {
            Message::Bitfield { pieces, bits } => {
                if pieces as usize != self.content.pieces {
                    return; // wrong swarm
                }
                let Some(bf) = Bitfield::from_packed_bytes(pieces as usize, &bits) else {
                    return;
                };
                match self.neighbors.get_mut(&from.0) {
                    Some(n) => {
                        n.have = bf;
                        n.known = true;
                    }
                    None => {
                        self.neighbors.insert(from.0, Neighbor { have: bf, known: true });
                        out.push((from, Frame::Control(Message::bitfield(&self.have))));
                    }
                }
            }
            Message::Have { piece } => {
                if let Some(n) = self.neighbors.get_mut(&from.0) {
                    if piece.index() < n.have.len() {
                        n.have.set(piece);
                    }
                }
            }
            Message::NeighborRequest { from: who } => {
                // §II-B1: a reciprocator introducing itself before serving
                // us as payee. Learn it, tell it what we have.
                let who = if who.0 == from.0 { who } else { from };
                self.neighbors
                    .entry(who.0)
                    .or_insert_with(|| Neighbor { have: Bitfield::new(self.content.pieces), known: false });
                out.push((who, Frame::Control(Message::bitfield(&self.have))));
            }
            Message::PieceUpload { reciprocates, piece, payee, ciphertext_len } => {
                self.pending_in.insert(
                    (from.0, piece.0),
                    PendingPiece {
                        reciprocates: reciprocates.map(|(p, d)| (p.0, d.0)),
                        payee: payee.map(|p| p.0),
                        ciphertext_len,
                        work: None,
                        applied: Vec::new(),
                        forward_txn: None,
                    },
                );
            }
            Message::ReceptionReport { requestor, piece } => {
                self.handle_report(now, from.0, requestor.0, piece.0, out);
            }
            Message::KeyRelease { piece, requestor, key } => {
                self.on_key(now, from.0, piece.0, requestor.map(|r| r.0), key, out);
            }
        }
    }

    /// Bulk arrival: pair the payload with its header (FIFO links
    /// guarantee header-first; an orphan payload means the header was
    /// lost, and the stall machinery owns that case).
    fn on_piece_data(&mut self, now: f64, from: NodeId, piece: PieceId, payload: Vec<u8>, out: &mut Outbox) {
        let key = (from.0, piece.0);
        let Some(entry) = self.pending_in.get_mut(&key) else {
            return; // orphan data: header dropped by the lossy control plane
        };
        if entry.work.is_some() || payload.len() != entry.ciphertext_len as usize {
            return; // duplicate or mangled
        }
        entry.work = Some(payload);
        let reciprocates = entry.reciprocates;
        let payee = entry.payee;

        // Reception complete — if this upload reciprocates an earlier
        // transaction, the §II-B2 step-3 report goes to that donor now.
        // Even a free-riding payee reports: the §III-A2 cheat is refusing
        // to *upload*, and a received ciphertext is only ever worth
        // anything to the payee if its reception is on record (the fluid
        // driver's free-riders report truthfully for the same reason).
        if let Some((p0, d0)) = reciprocates {
            self.recips_seen.entry((d0, p0)).or_default().insert(from.0);
            if d0 == self.id.0 {
                // Direct reciprocity (§II-B2): we are donor and payee
                // in one; the report is internal.
                self.handle_report(now, self.id.0, from.0, p0, out);
            } else {
                self.send_report(now, d0, from.0, p0, out);
            }
            // §II-B4: a departed donor's key may already sit in escrow.
            self.try_escrow_forward(d0, p0, out);
        }

        match payee {
            None => {
                // §II-B3 termination upload: plaintext, no obligation.
                let bytes = self.pending_in.remove(&key).and_then(|e| e.work);
                if let Some(bytes) = bytes {
                    if !self.have.has(piece) && self.content.verify(piece.0, &bytes) {
                        self.counters.unencrypted += 1;
                        self.complete_piece(now, piece.0, bytes, out);
                    }
                }
            }
            Some(p) => {
                if self.strategy.serve_uploads() && !self.have.has(piece) {
                    self.obligations.push(Obligation {
                        donor: from.0,
                        piece: piece.0,
                        payee: p,
                        since: now,
                        asked_neighbor: false,
                    });
                } else if self.strategy.serve_uploads() {
                    // Already hold the piece via another chain: still owe
                    // the reciprocation (the donor is waiting).
                    self.obligations.push(Obligation {
                        donor: from.0,
                        piece: piece.0,
                        payee: p,
                        since: now,
                        asked_neighbor: false,
                    });
                }
                // Free-riders hoard the ciphertext and do nothing.
            }
        }
    }

    /// Donor side of §II-B2 steps 3–4: a report unlocks the key release.
    fn handle_report(&mut self, _now: f64, reporter: u32, requestor: u32, piece: u32, out: &mut Outbox) {
        if !self.strategy.serve_uploads() {
            return;
        }
        let Some(txn) = self.donor_txns.get_mut(&(requestor, piece)) else {
            return; // stale or forged
        };
        // Only the designated payee's word counts (§II-B: the payee is
        // the witness the donor chose).
        if txn.payee != Some(reporter) {
            return;
        }
        if txn.reported {
            // Duplicate report: the key (or its delivery) was lost —
            // re-send everything released so far (PR 1 recovery).
            let resend = txn.sent_keys.clone();
            for k in resend {
                self.counters.keys_sent += 1;
                out.push((NodeId(requestor), Frame::Control(Message::KeyRelease {
                    piece: PieceId(piece),
                    requestor: None,
                    key: k,
                })));
            }
            return;
        }
        txn.reported = true;
        let mut release: Vec<[u8; KEY_WIRE_SIZE]> = Vec::new();
        if let Some(kid) = txn.key_id.take() {
            if let Some(k) = self.keyring.release(kid) {
                release.push(k.to_wire_bytes());
            }
        }
        release.append(&mut txn.pending_relay);
        for k in &release {
            txn.sent_keys.push(*k);
        }
        for k in release {
            self.counters.keys_sent += 1;
            out.push((NodeId(requestor), Frame::Control(Message::KeyRelease {
                piece: PieceId(piece),
                requestor: None,
                key: k,
            })));
        }
        self.active_donations = self.active_donations.saturating_sub(1);
        let pending = self.ledger.entry(requestor).or_insert(0);
        *pending = pending.saturating_sub(1);
    }

    fn send_report(&mut self, now: f64, donor: u32, requestor: u32, piece: u32, out: &mut Outbox) {
        self.counters.reports_sent += 1;
        out.push((NodeId(donor), Frame::Control(Message::ReceptionReport {
            requestor: NodeId(requestor),
            piece: PieceId(piece),
        })));
        if self.arm_retries {
            let delay = self.jittered(self.cfg.retry_base);
            self.retries.push(ReportRetry {
                donor,
                requestor,
                piece,
                next_at: now + delay,
                attempt: 0,
            });
        }
    }

    /// Key arrival: attribute the key to a pending entry, apply it
    /// (deduped — XOR would self-invert), relay to a §II-D1 forward if
    /// one sources this entry, verify, complete.
    ///
    /// Attribution by the `requestor` marker:
    /// * `Some(r)`, `r ≠ self` — the §II-B4 handoff of a departing
    ///   donor: we are the payee, the key belongs to its transaction
    ///   with `r`; hold it in escrow until `r`'s reciprocation shows up;
    /// * `Some(self)` — the payee's escrow *forward* of a departed
    ///   donor's key: applied to the entry whose designated payee is
    ///   the sender;
    /// * `None` — the normal §II-B2 release or §II-D1 underlying-key
    ///   relay, applied to the sender's own entry `(from, piece)`.
    ///
    /// A key matching no entry is a stale duplicate (the piece already
    /// completed via another chain, or the header was lost and the
    /// stall machinery owns the transaction) and is dropped.
    fn on_key(
        &mut self,
        now: f64,
        from: u32,
        piece: u32,
        requestor: Option<u32>,
        key: [u8; KEY_WIRE_SIZE],
        out: &mut Outbox,
    ) {
        let entry_key = match requestor {
            Some(r) if r != self.id.0 => {
                self.escrow.entry((from, piece)).or_default().push((r, key));
                self.try_escrow_forward(from, piece, out);
                return;
            }
            Some(_) => {
                let forwarded = self
                    .pending_in
                    .iter()
                    .find(|(&(_, p), e)| p == piece && e.payee == Some(from))
                    .map(|(&k, _)| k);
                match forwarded {
                    Some(k) => k,
                    None => return,
                }
            }
            None => {
                let k = (from, piece);
                if !self.pending_in.contains_key(&k) {
                    return;
                }
                k
            }
        };
        let fp = fingerprint(&key);
        let (verified, forward) = {
            let entry = self.pending_in.get_mut(&entry_key).expect("checked");
            if entry.applied.contains(&fp) {
                return; // duplicate re-send
            }
            entry.applied.push(fp);
            let mut verified = None;
            if let Some(work) = entry.work.as_mut() {
                PieceKey::from_wire_bytes(&key).apply(work);
                if self.content.verify(piece, work) {
                    verified = entry.work.take();
                }
            }
            (verified, entry.forward_txn)
        };
        // §II-D1 relay: whoever holds our re-encrypted forward of this
        // ciphertext needs every underlying key too — but keys only move
        // on reported reciprocation, so queue until our txn unlocks.
        if let Some(ft) = forward {
            if let Some(txn) = self.donor_txns.get_mut(&ft) {
                if txn.reported {
                    txn.sent_keys.push(key);
                    self.counters.keys_sent += 1;
                    out.push((NodeId(ft.0), Frame::Control(Message::KeyRelease {
                        piece: PieceId(ft.1),
                        requestor: None,
                        key,
                    })));
                } else {
                    txn.pending_relay.push(key);
                }
            }
        }
        if let Some(bytes) = verified {
            self.pending_in.remove(&entry_key);
            self.counters.decrypted += 1;
            self.complete_piece(now, piece, bytes, out);
        }
    }

    /// §II-B4: forward every escrowed key for `(donor, piece)` whose
    /// designated requestor has reciprocated; keys for requestors still
    /// owing stay held.
    fn try_escrow_forward(&mut self, donor: u32, piece: u32, out: &mut Outbox) {
        if !self.strategy.serve_uploads() {
            return;
        }
        let Some(seen) = self.recips_seen.get(&(donor, piece)) else {
            return;
        };
        let Some(held) = self.escrow.get_mut(&(donor, piece)) else {
            return;
        };
        let mut fire = Vec::new();
        held.retain(|&(r, k)| {
            if seen.contains(&r) {
                fire.push((r, k));
                false
            } else {
                true
            }
        });
        if held.is_empty() {
            self.escrow.remove(&(donor, piece));
        }
        for (r, k) in fire {
            self.counters.keys_sent += 1;
            out.push((NodeId(r), Frame::Control(Message::KeyRelease {
                piece: PieceId(piece),
                requestor: Some(NodeId(r)),
                key: k,
            })));
        }
    }

    fn complete_piece(&mut self, now: f64, piece: u32, bytes: Vec<u8>, out: &mut Outbox) {
        if self.have.has(PieceId(piece)) {
            return;
        }
        self.have.set(PieceId(piece));
        self.plain[piece as usize] = Some(bytes);
        if self.strategy.serve_uploads() {
            let targets: Vec<u32> = self.neighbors.keys().copied().collect();
            for t in targets {
                out.push((NodeId(t), Frame::Control(Message::Have { piece: PieceId(piece) })));
            }
        }
        if self.have.is_complete() && self.complete_at.is_none() {
            self.complete_at = Some(now);
        }
    }

    // ------------------------------------------------------------------
    // Tick processing
    // ------------------------------------------------------------------

    /// One scheduler step: obligations, retries, stall sweep, donor
    /// rounds, departure.
    pub fn on_tick(&mut self, now: f64, out: &mut Outbox) {
        if self.departed {
            return;
        }
        // Expired quarantines lift here, so within one tick the map
        // holds exactly the active exclusions.
        self.quarantined.retain(|_, &mut until| until > now);
        if self.strategy.serve_uploads() {
            self.process_obligations(now, out);
            self.fire_retries(now, out);
        }
        self.stall_sweep(now, out);
        let donating = self.role == PeerRole::Seeder
            || (self.role == PeerRole::Compliant
                && self.is_complete()
                && self.cfg.opportunistic
                && !self.cfg.depart_on_complete);
        if donating {
            self.donor_round(now, out);
        }
        if self.role == PeerRole::Compliant && self.is_complete() && self.cfg.depart_on_complete {
            self.depart(out);
        }
    }

    /// Voluntary departure (churn): run the §II-B4 handoff — every key
    /// still awaiting its reciprocation report goes to the designated
    /// payee — and leave, whether or not the file is complete. This is
    /// the same escrow path `depart_on_complete` takes; a `ChurnPlan`
    /// departure simply invokes it early.
    pub fn leave(&mut self, out: &mut Outbox) {
        if !self.departed {
            self.depart(out);
        }
    }

    /// Earliest future time at which this peer's *timers* require an
    /// `on_tick`, or `None` when the peer is purely reactive (nothing
    /// will happen until a frame arrives). The indexed harness
    /// scheduler parks peers on this: the quiescence invariant — an
    /// `on_tick` that emits nothing draws no RNG and mutates nothing
    /// except timer expirations — is what makes skipping idle peers
    /// bit-identical to the legacy every-peer scan.
    ///
    /// The timer sources, each with its wake deadline:
    /// * quarantine expiry (`until`) — re-enables donor candidates,
    /// * obligation expiry (`since + stall_timeout`),
    /// * report retransmissions (`next_at`),
    /// * donor-transaction stall sweep (`started + stall_timeout`),
    /// * gift-suppression expiry (`sent + stall_timeout`).
    ///
    /// Strict-`>` deadlines (stall sweeps) fire on the first tick
    /// *after* the deadline; waking exactly at the deadline is a
    /// harmless no-op and the harness re-arms one tick later, which
    /// lands on the same tick the legacy scan acted on.
    pub fn next_wake(&self) -> Option<f64> {
        if self.departed {
            return None;
        }
        let mut wake: Option<f64> = None;
        let mut fold = |t: f64| match wake {
            Some(w) if w <= t => {}
            _ => wake = Some(t),
        };
        for &until in self.quarantined.values() {
            fold(until);
        }
        let stall = self.cfg.stall_timeout;
        for ob in &self.obligations {
            fold(ob.since + stall);
        }
        for r in &self.retries {
            fold(r.next_at);
        }
        for txn in self.donor_txns.values() {
            if !txn.reported {
                fold(txn.started + stall);
            }
        }
        for &sent in self.gifted.values() {
            fold(sent + stall);
        }
        wake
    }

    /// §II-D2 ledger consistency: for every neighbor `n`, `ledger[n]`
    /// equals the number of unreported donor transactions keyed
    /// `(n, _)`. Donations increment it, first reports and the stall
    /// sweep decrement it, peer-gone removes both sides — churn must
    /// not break the correspondence. Exposed for the property suite.
    pub fn ledger_consistent(&self) -> bool {
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for (&(requestor, _), txn) in &self.donor_txns {
            if !txn.reported {
                *counts.entry(requestor).or_insert(0) += 1;
            }
        }
        self.ledger
            .iter()
            .all(|(&n, &k)| counts.get(&n).copied().unwrap_or(0) == k)
            && counts
                .iter()
                .all(|(&n, &k)| self.ledger.get(&n).copied().unwrap_or(0) == k)
    }

    /// Reciprocations currently owed (§II-B2 obligations outstanding).
    pub fn pending_obligations(&self) -> usize {
        self.obligations.len()
    }

    /// Escrowed keys currently held as payee for departed donors
    /// (§II-B4), counted across all `(donor, piece)` entries.
    pub fn escrow_held(&self) -> usize {
        self.escrow.values().map(|held| held.len()).sum()
    }

    /// §II-B4 graceful departure: hand every key still awaiting its
    /// reciprocation report to the designated payee, then leave.
    fn depart(&mut self, out: &mut Outbox) {
        let mut handoff: Vec<(u32, u32, u32, [u8; KEY_WIRE_SIZE])> = Vec::new();
        for (&(requestor, piece), txn) in self.donor_txns.iter_mut() {
            if txn.reported {
                continue;
            }
            let Some(payee) = txn.payee else { continue };
            if payee == self.id.0 {
                continue;
            }
            if let Some(kid) = txn.key_id.take() {
                if let Some(k) = self.keyring.release(kid) {
                    handoff.push((payee, piece, requestor, k.to_wire_bytes()));
                }
            }
            for k in txn.pending_relay.drain(..) {
                handoff.push((payee, piece, requestor, k));
            }
        }
        // The requestor marker tells the payee which transaction each
        // key belongs to — it may be payee for several transactions of
        // ours over the same piece, and must not forward a key to a
        // requestor whose transaction used a different one.
        for (payee, piece, requestor, key) in handoff {
            self.counters.escrowed += 1;
            out.push((NodeId(payee), Frame::Control(Message::KeyRelease {
                piece: PieceId(piece),
                requestor: Some(NodeId(requestor)),
                key,
            })));
        }
        self.departed = true;
    }

    /// Departure notice from the harness (the connection-reset a real
    /// deployment would see): forget the neighbor and abandon state
    /// that can no longer progress — transactions whose requestor is
    /// gone (their uploads were dropped; handing their keys to a payee
    /// at departure would circulate keys nobody can claim), obligations
    /// owed to a gone payee, and report retries toward a gone donor.
    pub fn on_peer_gone(&mut self, gone: NodeId) {
        let gone = gone.0;
        self.neighbors.remove(&gone);
        let dead: Vec<(u32, u32)> = self
            .donor_txns
            .keys()
            .filter(|&&(r, _)| r == gone)
            .copied()
            .collect();
        for k in dead {
            if let Some(mut txn) = self.donor_txns.remove(&k) {
                if !txn.reported {
                    if let Some(kid) = txn.key_id.take() {
                        self.keyring.release(kid);
                    }
                    self.active_donations = self.active_donations.saturating_sub(1);
                }
                if let Some(src) = txn.source {
                    if let Some(e) = self.pending_in.get_mut(&src) {
                        e.forward_txn = None;
                    }
                }
            }
        }
        self.ledger.remove(&gone);
        self.obligations.retain(|ob| ob.payee != gone);
        self.retries.retain(|r| r.donor != gone);
    }

    /// Works through owed reciprocations (§II-B2): a real piece the payee
    /// wants if we have one, else the §II-D1 forward of the pending
    /// ciphertext, else the §II-B3 unencrypted termination.
    fn process_obligations(&mut self, now: f64, out: &mut Outbox) {
        let mut keep = Vec::new();
        let obligations = std::mem::take(&mut self.obligations);
        for mut ob in obligations {
            if now - ob.since > self.cfg.stall_timeout {
                continue; // unfulfillable; the donor's sweep closes the chain
            }
            let payee_known = self.neighbors.get(&ob.payee).is_some_and(|n| n.known);
            if !payee_known {
                if !ob.asked_neighbor {
                    // §II-B1 neighboring request before serving a payee
                    // we have not met.
                    self.neighbors.entry(ob.payee).or_insert_with(|| Neighbor {
                        have: Bitfield::new(self.content.pieces),
                        known: false,
                    });
                    out.push((NodeId(ob.payee), Frame::Control(Message::NeighborRequest {
                        from: self.id,
                    })));
                    ob.asked_neighbor = true;
                }
                keep.push(ob);
                continue;
            }
            if self.fulfill_obligation(now, &ob, out) {
                continue;
            }
            keep.push(ob);
        }
        self.obligations = keep;
    }

    fn fulfill_obligation(&mut self, now: f64, ob: &Obligation, out: &mut Outbox) -> bool {
        // Prefer a real piece the payee wants (§II-B2).
        let payee_have = &self.neighbors[&ob.payee].have;
        let wanted: Vec<u32> = payee_have
            .missing_from(&self.have)
            .map(|p| p.0)
            .filter(|&p| self.plain[p as usize].is_some())
            .collect();
        if let Some(q) = self.rarest_of(&wanted) {
            return self.donate(now, ob.payee, q, Some((ob.piece, ob.donor)), None, out);
        }
        // §II-D1 newcomer bootstrapping: forward the re-encrypted
        // ciphertext of the very piece we owe for, if the payee wants it.
        let entry_key = (ob.donor, ob.piece);
        let entry_forwardable = self
            .pending_in
            .get(&entry_key)
            .is_some_and(|e| e.work.is_some() && e.forward_txn.is_none());
        let payee_wants_piece =
            (ob.piece as usize) < payee_have.len() && !payee_have.has(PieceId(ob.piece));
        if entry_forwardable && payee_wants_piece {
            return self.donate(now, ob.payee, ob.piece, Some((ob.piece, ob.donor)), Some(entry_key), out);
        }
        false
    }

    /// Picks the rarest piece (availability across known neighbors, ties
    /// to the lowest index) from `candidates`.
    fn rarest_of(&self, candidates: &[u32]) -> Option<u32> {
        candidates
            .iter()
            .copied()
            .map(|p| {
                let avail = self
                    .neighbors
                    .values()
                    .filter(|n| n.known && n.have.has(PieceId(p)))
                    .count();
                (avail, p)
            })
            .min()
            .map(|(_, p)| p)
    }

    /// Seeder/opportunistic chain initiation (§II-B1, §II-D3).
    fn donor_round(&mut self, now: f64, out: &mut Outbox) {
        let slots = if self.role == PeerRole::Seeder {
            self.cfg.seeder_slots
        } else {
            self.cfg.opportunistic_slots
        };
        for _ in 0..slots {
            if self.active_donations >= slots {
                break;
            }
            // Interested neighbors under the §II-D2 ledger cap.
            let mut cands: Vec<(u32, u32)> = Vec::new(); // (neighbor, piece)
            for (&nid, n) in &self.neighbors {
                if !n.known || self.quarantined.contains_key(&nid) {
                    continue;
                }
                if self.ledger.get(&nid).copied().unwrap_or(0) >= self.cfg.k_pending {
                    continue;
                }
                let wants: Vec<u32> = n
                    .have
                    .missing_from(&self.have)
                    .map(|p| p.0)
                    .filter(|&p| {
                        self.plain[p as usize].is_some()
                            && !self.donor_txns.contains_key(&(nid, p))
                            && !self.gifted.contains_key(&(nid, p))
                    })
                    .collect();
                if let Some(p) = self.rarest_of(&wants) {
                    cands.push((nid, p));
                }
            }
            if cands.is_empty() {
                break;
            }
            let &(r, p) = self.rng.choose(&cands).expect("nonempty");
            if !self.donate(now, r, p, None, None, out) {
                break;
            }
        }
    }

    /// Uploads piece `piece` to `to`: picks a payee (direct reciprocity
    /// first, then a random eligible neighbor, §II-B3 unencrypted when
    /// none), encrypts, and emits header + bulk data on the same link.
    fn donate(
        &mut self,
        now: f64,
        to: u32,
        piece: u32,
        reciprocates: Option<(u32, u32)>,
        source: Option<(u32, u32)>,
        out: &mut Outbox,
    ) -> bool {
        if self.donor_txns.contains_key(&(to, piece)) {
            return false;
        }
        let payee = self.select_payee(to, piece);
        let payload: Vec<u8> = if let Some(src) = source {
            match self.pending_in.get(&src).and_then(|e| e.work.clone()) {
                Some(w) => w,
                None => return false,
            }
        } else {
            match &self.plain[piece as usize] {
                Some(p) => p.clone(),
                None => return false,
            }
        };
        let (payload, key_id) = match payee {
            Some(_) => {
                let (kid, k) = self.keyring.mint();
                (k.apply_to_vec(&payload), Some(kid))
            }
            None if source.is_some() => return false, // cannot gift ciphertext
            None => (payload, None),
        };
        let header = Message::PieceUpload {
            reciprocates: reciprocates.map(|(p, d)| (PieceId(p), NodeId(d))),
            piece: PieceId(piece),
            payee: payee.map(NodeId),
            ciphertext_len: payload.len() as u32,
        };
        out.push((NodeId(to), Frame::Control(header)));
        out.push((NodeId(to), Frame::PieceData { piece: PieceId(piece), payload }));
        self.counters.uploaded += 1;
        match payee {
            Some(_) => {
                self.donor_txns.insert(
                    (to, piece),
                    DonorTxn {
                        payee,
                        key_id,
                        started: now,
                        reported: false,
                        source,
                        pending_relay: Vec::new(),
                        sent_keys: Vec::new(),
                    },
                );
                if let Some(src) = source {
                    if let Some(e) = self.pending_in.get_mut(&src) {
                        e.forward_txn = Some((to, piece));
                    }
                }
                self.active_donations += 1;
                *self.ledger.entry(to).or_insert(0) += 1;
            }
            None => {
                self.gifted.insert((to, piece), now);
            }
        }
        true
    }

    /// §II-B2 payee designation for an upload of `piece` to `to`.
    fn select_payee(&mut self, to: u32, piece: u32) -> Option<u32> {
        // Direct reciprocity: if the requestor has something we want,
        // name ourselves payee (§II-B2).
        if !self.is_complete() {
            if let Some(n) = self.neighbors.get(&to) {
                if n.known && self.have.wants_from(&n.have) {
                    return Some(self.id.0);
                }
            }
        }
        let to_have = self.neighbors.get(&to).map(|n| n.have.clone());
        let cands: Vec<u32> = self
            .neighbors
            .iter()
            .filter(|&(&nid, n)| {
                nid != to
                    && nid != self.id.0
                    && !self.quarantined.contains_key(&nid)
                    && self.ledger.get(&nid).copied().unwrap_or(0) < self.cfg.k_pending
                    && ((piece as usize) < n.have.len() && !n.have.has(PieceId(piece))
                        || to_have.as_ref().is_some_and(|th| n.have.wants_from(th)))
            })
            .map(|(&nid, _)| nid)
            .collect();
        self.rng.choose(&cands).copied()
    }

    /// PR 1 stall sweep: close transactions whose reciprocation never
    /// came (free-riding, §IV-F) and release their slots and ledger.
    /// Also expires the gift-suppression window: if a §II-B3 gift was
    /// lost in flight, the requestor becomes giftable again (a completed
    /// requestor's `Have` broadcast keeps it out of the donor round's
    /// candidate set regardless).
    ///
    /// Every stall additionally triggers anti-entropy: the donor
    /// re-requests the bitfields of the stalled transaction's requestor
    /// and payee. A stall is the symptom of a stale view — on a
    /// byzantine transport a `Have` broadcast can be corrupted away, and
    /// a donor that never refreshes keeps designating payees that want
    /// nothing (the requestor can never reciprocate to them) instead of
    /// falling through to the §II-B3 termination gift.
    fn stall_sweep(&mut self, now: f64, out: &mut Outbox) {
        self.gifted.retain(|_, &mut sent| now - sent <= self.cfg.stall_timeout);
        let stalled: Vec<(u32, u32)> = self
            .donor_txns
            .iter()
            .filter(|(_, t)| !t.reported && now - t.started > self.cfg.stall_timeout)
            .map(|(&k, _)| k)
            .collect();
        let mut refresh: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for key in stalled {
            if let Some(mut txn) = self.donor_txns.remove(&key) {
                if let Some(kid) = txn.key_id.take() {
                    self.keyring.release(kid);
                }
                if let Some(src) = txn.source {
                    if let Some(e) = self.pending_in.get_mut(&src) {
                        e.forward_txn = None;
                    }
                }
                self.active_donations = self.active_donations.saturating_sub(1);
                let pending = self.ledger.entry(key.0).or_insert(0);
                *pending = pending.saturating_sub(1);
                self.counters.stalled_txns += 1;
                refresh.insert(key.0);
                if let Some(p) = txn.payee {
                    if p != self.id.0 {
                        refresh.insert(p);
                    }
                }
            }
        }
        for nid in refresh {
            out.push((NodeId(nid), Frame::Control(Message::NeighborRequest { from: self.id })));
        }
    }

    /// Bounded exponential-backoff report retransmission (PR 1), with
    /// per-peer jitter so concurrent losers de-correlate.
    fn fire_retries(&mut self, now: f64, out: &mut Outbox) {
        let mut due = Vec::new();
        let mut retries = std::mem::take(&mut self.retries);
        retries.retain_mut(|r| {
            if now < r.next_at {
                return true;
            }
            r.attempt += 1;
            due.push((r.donor, r.requestor, r.piece));
            if r.attempt >= self.cfg.max_retries {
                return false;
            }
            let backoff = self.cfg.retry_base * self.cfg.retry_backoff.powi(r.attempt as i32);
            r.next_at = now + self.jittered(backoff);
            true
        });
        self.retries = retries;
        for (donor, requestor, piece) in due {
            self.counters.report_retries += 1;
            out.push((NodeId(donor), Frame::Control(Message::ReceptionReport {
                requestor: NodeId(requestor),
                piece: PieceId(piece),
            })));
        }
    }

    // ------------------------------------------------------------------
    // Crash-restart checkpointing
    // ------------------------------------------------------------------

    /// Snapshots the state a crashed peer needs to rejoin: the piece set
    /// (indices only — plaintext is regenerable from [`Content`]), the
    /// §II-D2 ledger, §II-B4 escrow held as payee, the reciprocations
    /// witnessed for escrow forwarding, the gift log and the counters.
    ///
    /// Deliberately *not* checkpointed: in-flight ciphertexts, donor
    /// transactions, obligations and retry timers. A crash loses them on
    /// a real machine too; the swarm recovers through the existing stall
    /// sweep and re-donation machinery, which is exactly the recovery
    /// path the chaos harness asserts on. The ledger snapshot is kept
    /// for post-mortems but [`PeerRuntime::restore`] does not reapply
    /// it — its counts track the donor transactions that died with the
    /// process.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            id: self.id.0,
            role: self.role,
            generation: self.generation,
            pieces: self.content.pieces as u32,
            complete_at: self.complete_at,
            counters: self.counters,
            held: (0..self.content.pieces as u32)
                .filter(|&i| self.plain[i as usize].is_some())
                .collect(),
            ledger: self.ledger.iter().map(|(&n, &k)| (n, k)).collect(),
            escrow: self
                .escrow
                .iter()
                .flat_map(|(&(d, p), held)| held.iter().map(move |&(r, k)| (d, p, r, k)))
                .collect(),
            recips_seen: self
                .recips_seen
                .iter()
                .flat_map(|(&(d, p), rs)| rs.iter().map(move |&r| (d, p, r)))
                .collect(),
            gifted: self.gifted.keys().copied().collect(),
        }
    }

    /// Rebuilds a peer from a checkpoint after a crash.
    ///
    /// `generation` names the new incarnation (checkpoint generation + 1
    /// under the harness) and salts the restored RNG and keyring streams
    /// — a restarted peer must mint fresh keys, never reuse its dead
    /// incarnation's. Plaintext is regenerated from `content` for every
    /// held piece. Neighbors start empty: the peer re-registers with the
    /// tracker and re-bootstraps, which is the §II-B4 rejoin protocol.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when the checkpoint does not fit
    /// `content` or names an unknown role.
    pub fn restore(
        cp: &Checkpoint,
        content: Content,
        cfg: NetConfig,
        seed: u64,
        generation: u32,
    ) -> Result<Self, CheckpointError> {
        if cp.pieces as usize != content.pieces {
            return Err(CheckpointError::PieceOutOfRange);
        }
        let mut have = Bitfield::new(content.pieces);
        let mut plain = vec![None; content.pieces];
        for &i in &cp.held {
            if i as usize >= content.pieces {
                return Err(CheckpointError::PieceOutOfRange);
            }
            have.set(PieceId(i));
            plain[i as usize] = Some(content.piece(i));
        }
        let salt = u64::from(generation).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut escrow: BTreeMap<(u32, u32), EscrowedKeys> = BTreeMap::new();
        for &(d, p, r, k) in &cp.escrow {
            escrow.entry((d, p)).or_default().push((r, k));
        }
        let mut recips_seen: BTreeMap<(u32, u32), std::collections::BTreeSet<u32>> =
            BTreeMap::new();
        for &(d, p, r) in &cp.recips_seen {
            recips_seen.entry((d, p)).or_default().insert(r);
        }
        Ok(PeerRuntime {
            id: NodeId(cp.id),
            role: cp.role,
            strategy: match cp.role {
                PeerRole::FreeRider => Strategy::zero_upload(),
                _ => Strategy::Compliant,
            },
            cfg,
            content,
            arm_retries: false,
            rng: SimRng::new(seed ^ u64::from(cp.id).wrapping_mul(0x9E37_79B9) ^ salt),
            keyring: Keyring::new(seed ^ (u64::from(cp.id) << 32) ^ 0x5EED ^ salt),
            have,
            plain,
            neighbors: BTreeMap::new(),
            donor_txns: BTreeMap::new(),
            active_donations: 0,
            // The §II-D2 ledger counts *unreported donor transactions*,
            // and those died with the crashed process — restoring the
            // checkpointed counts would leave entries nothing can ever
            // decrement (reports for unknown txns are dropped as stale,
            // and the stall sweep only touches live txns). The ledger
            // restarts at zero with the transactions it tracks; the
            // checkpoint still carries the counts for post-mortems.
            //
            // `tchain_canary` deliberately resurrects the pre-fix
            // behaviour (checkpointed counts reloaded wholesale) as a
            // seeded mutation: the schedule-exploration engine must
            // find this `ledger_consistent` break and shrink it, or
            // its oracle set has no teeth. Never enable outside the
            // explore drill.
            #[cfg(not(tchain_canary))]
            ledger: BTreeMap::new(),
            #[cfg(tchain_canary)]
            ledger: cp.ledger.iter().copied().collect(),
            pending_in: BTreeMap::new(),
            obligations: Vec::new(),
            retries: Vec::new(),
            escrow,
            recips_seen,
            // Gift send times are not checkpointed; age them out as
            // ancient so the restarted peer may re-gift immediately.
            gifted: cp.gifted.iter().map(|&k| (k, f64::NEG_INFINITY)).collect(),
            strikes: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            generation,
            complete_at: cp.complete_at,
            departed: false,
            counters: cp.counters,
        })
    }
}

/// Serializable snapshot of the durable state of one [`PeerRuntime`]
/// (see [`PeerRuntime::checkpoint`] for what is and is not included).
///
/// [`Checkpoint::to_bytes`]/[`Checkpoint::from_bytes`] give a versioned,
/// fully hand-rolled little-endian encoding — a crashed process could
/// genuinely persist and reload it; the in-process harness round-trips it
/// to prove that.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    id: u32,
    role: PeerRole,
    generation: u32,
    pieces: u32,
    complete_at: Option<f64>,
    counters: PeerCounters,
    held: Vec<u32>,
    ledger: Vec<(u32, u32)>,
    /// Flattened §II-B4 escrow: `(donor, piece, requestor, key bytes)`.
    escrow: Vec<(u32, u32, u32, [u8; KEY_WIRE_SIZE])>,
    /// Flattened reciprocation witness set: `(donor, piece, requestor)`.
    recips_seen: Vec<(u32, u32, u32)>,
    gifted: Vec<(u32, u32)>,
}

/// Errors from [`Checkpoint::from_bytes`] and [`PeerRuntime::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte buffer ended inside a field.
    Truncated,
    /// The magic prefix was not `TCKP`.
    BadMagic,
    /// Unknown format version.
    BadVersion,
    /// Unknown role byte.
    BadRole,
    /// A held piece index (or the piece count) does not fit the content.
    PieceOutOfRange,
    /// Bytes remained after the last field.
    TrailingBytes,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            CheckpointError::Truncated => "checkpoint truncated",
            CheckpointError::BadMagic => "bad checkpoint magic",
            CheckpointError::BadVersion => "unsupported checkpoint version",
            CheckpointError::BadRole => "unknown role byte",
            CheckpointError::PieceOutOfRange => "piece index out of range for content",
            CheckpointError::TrailingBytes => "trailing bytes after checkpoint",
        };
        f.write_str(what)
    }
}

impl std::error::Error for CheckpointError {}

const CHECKPOINT_MAGIC: [u8; 4] = *b"TCKP";
const CHECKPOINT_VERSION: u16 = 2;

struct CpReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CpReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Element count with a sanity bound: no list can have more entries
    /// than bytes remaining, so a corrupt count fails fast instead of
    /// attempting a giant allocation.
    fn count(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }
}

impl Checkpoint {
    /// The checkpointed peer's id.
    pub fn id(&self) -> NodeId {
        NodeId(self.id)
    }

    /// The incarnation this snapshot was taken from.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The same snapshot re-keyed to a different wire identity — the
    /// whitewash move (§IV-C): the operator keeps every piece it
    /// extracted but presents them under a brand-new id, so deceived
    /// neighbors treat it as another newcomer. Neighbor-facing ledger
    /// state is dropped along with the old identity (those relations
    /// belong to the dead id; carrying them would leak the linkage the
    /// whitewasher is laundering away).
    pub fn with_id(&self, id: u32) -> Checkpoint {
        Checkpoint {
            id,
            ledger: Vec::new(),
            escrow: Vec::new(),
            recips_seen: Vec::new(),
            gifted: Vec::new(),
            ..self.clone()
        }
    }

    /// Number of pieces held at crash time.
    pub fn held_pieces(&self) -> usize {
        self.held.len()
    }

    /// Escrowed key entries held as payee at crash time.
    pub fn escrow_entries(&self) -> usize {
        self.escrow.len()
    }

    /// Versioned little-endian encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + 4 * self.held.len()
                + 8 * self.ledger.len()
                + (12 + KEY_WIRE_SIZE) * self.escrow.len()
                + 12 * self.recips_seen.len()
                + 8 * self.gifted.len(),
        );
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(match self.role {
            PeerRole::Seeder => 0,
            PeerRole::Compliant => 1,
            PeerRole::FreeRider => 2,
        });
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.pieces.to_le_bytes());
        match self.complete_at {
            Some(t) => {
                out.push(1);
                out.extend_from_slice(&t.to_bits().to_le_bytes());
            }
            None => out.push(0),
        }
        let c = &self.counters;
        for v in [
            c.decrypted,
            c.unencrypted,
            c.keys_sent,
            c.reports_sent,
            c.report_retries,
            c.stalled_txns,
            c.escrowed,
            c.frame_rejects,
            c.quarantines,
            c.uploaded,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.held.len() as u32).to_le_bytes());
        for &p in &self.held {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out.extend_from_slice(&(self.ledger.len() as u32).to_le_bytes());
        for &(n, k) in &self.ledger {
            out.extend_from_slice(&n.to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
        }
        out.extend_from_slice(&(self.escrow.len() as u32).to_le_bytes());
        for &(d, p, r, key) in &self.escrow {
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&p.to_le_bytes());
            out.extend_from_slice(&r.to_le_bytes());
            out.extend_from_slice(&key);
        }
        out.extend_from_slice(&(self.recips_seen.len() as u32).to_le_bytes());
        for &(d, p, r) in &self.recips_seen {
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&p.to_le_bytes());
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&(self.gifted.len() as u32).to_le_bytes());
        for &(r, p) in &self.gifted {
            out.extend_from_slice(&r.to_le_bytes());
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Strict decode of [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on truncation, bad magic/version/role
    /// or trailing bytes — a corrupt checkpoint is never half-loaded.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = CpReader { buf: bytes, pos: 0 };
        if r.take(4)? != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if r.u16()? != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion);
        }
        let id = r.u32()?;
        let role = match r.u8()? {
            0 => PeerRole::Seeder,
            1 => PeerRole::Compliant,
            2 => PeerRole::FreeRider,
            _ => return Err(CheckpointError::BadRole),
        };
        let generation = r.u32()?;
        let pieces = r.u32()?;
        let complete_at = match r.u8()? {
            0 => None,
            _ => Some(f64::from_bits(r.u64()?)),
        };
        let counters = PeerCounters {
            decrypted: r.u64()?,
            unencrypted: r.u64()?,
            keys_sent: r.u64()?,
            reports_sent: r.u64()?,
            report_retries: r.u64()?,
            stalled_txns: r.u64()?,
            escrowed: r.u64()?,
            frame_rejects: r.u64()?,
            quarantines: r.u64()?,
            uploaded: r.u64()?,
        };
        let mut held = Vec::with_capacity(r.count()?);
        for _ in 0..held.capacity() {
            held.push(r.u32()?);
        }
        let mut ledger = Vec::with_capacity(r.count()?);
        for _ in 0..ledger.capacity() {
            ledger.push((r.u32()?, r.u32()?));
        }
        let mut escrow = Vec::with_capacity(r.count()?);
        for _ in 0..escrow.capacity() {
            let (d, p, rq) = (r.u32()?, r.u32()?, r.u32()?);
            let mut key = [0u8; KEY_WIRE_SIZE];
            key.copy_from_slice(r.take(KEY_WIRE_SIZE)?);
            escrow.push((d, p, rq, key));
        }
        let mut recips_seen = Vec::with_capacity(r.count()?);
        for _ in 0..recips_seen.capacity() {
            recips_seen.push((r.u32()?, r.u32()?, r.u32()?));
        }
        let mut gifted = Vec::with_capacity(r.count()?);
        for _ in 0..gifted.capacity() {
            gifted.push((r.u32()?, r.u32()?));
        }
        if r.pos != bytes.len() {
            return Err(CheckpointError::TrailingBytes);
        }
        Ok(Checkpoint {
            id,
            role,
            generation,
            pieces,
            complete_at,
            counters,
            held,
            ledger,
            escrow,
            recips_seen,
            gifted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content() -> Content {
        Content { seed: 0xC0FFEE, pieces: 8, piece_len: 256 }
    }

    #[test]
    fn retry_jitter_decorrelates_peers_and_stays_in_band() {
        // Satellite: two peers who lost the same frame must not
        // retransmit in lockstep — their jittered delays diverge while
        // staying inside the ±20 % band.
        let mut a = PeerRuntime::new(NodeId(1), PeerRole::Compliant, content(), NetConfig::default(), 42);
        let mut b = PeerRuntime::new(NodeId(2), PeerRole::Compliant, content(), NetConfig::default(), 42);
        let mut identical = 0;
        for _ in 0..64 {
            let (x, y) = (a.jittered(2.0), b.jittered(2.0));
            assert!((1.6..2.4).contains(&x), "jitter {x} out of band");
            assert!((1.6..2.4).contains(&y), "jitter {y} out of band");
            if x.to_bits() == y.to_bits() {
                identical += 1;
            }
        }
        assert!(identical < 4, "retry schedules must de-correlate, {identical}/64 collided");
    }

    #[test]
    fn strike_limit_quarantines_then_expires() {
        let cfg = NetConfig { strike_limit: 3, quarantine_secs: 10.0, ..NetConfig::default() };
        let mut p = PeerRuntime::new(NodeId(1), PeerRole::Compliant, content(), cfg, 7);
        let bad = NodeId(9);
        assert_eq!(p.on_frame_reject(1.0, bad), None);
        assert_eq!(p.on_frame_reject(1.5, bad), None);
        assert!(!p.is_quarantining(bad));
        let until = p.on_frame_reject(2.0, bad);
        assert_eq!(until, Some(12.0), "third strike quarantines");
        assert!(p.is_quarantining(bad));
        assert_eq!(p.counters().frame_rejects, 3);
        assert_eq!(p.counters().quarantines, 1);
        let mut out = Outbox::new();
        p.on_tick(11.0, &mut out);
        assert!(p.is_quarantining(bad), "quarantine holds until expiry");
        p.on_tick(12.5, &mut out);
        assert!(!p.is_quarantining(bad), "quarantine lifts after expiry");
        // Strikes were reset at quarantine time: re-offending restarts
        // the count instead of instantly re-quarantining.
        assert_eq!(p.on_frame_reject(13.0, bad), None);
    }

    #[test]
    fn quarantined_peer_gets_no_new_donations() {
        let c = content();
        let mut seeder = PeerRuntime::new(NodeId(0), PeerRole::Seeder, c, NetConfig::default(), 3);
        let mut out = Outbox::new();
        seeder.bootstrap(&[NodeId(1)], &mut out);
        // Teach the seeder that peer 1 wants everything.
        seeder.on_frame(
            0.5,
            NodeId(1),
            Frame::Control(Message::Bitfield { pieces: c.pieces as u32, bits: vec![0u8; c.pieces.div_ceil(8)] }),
            &mut out,
        );
        // Quarantine peer 1, then run a donor round: nothing may go out.
        while seeder.on_frame_reject(1.0, NodeId(1)).is_none() {}
        out.clear();
        seeder.on_tick(1.0, &mut out);
        assert!(
            out.iter().all(|(to, _)| *to != NodeId(1)),
            "no donation may target a quarantined peer: {out:?}"
        );
        // After expiry the same tick logic serves it again.
        out.clear();
        seeder.on_tick(1.0 + seeder.cfg.quarantine_secs + 1.0, &mut out);
        assert!(
            out.iter().any(|(to, f)| *to == NodeId(1) && matches!(f, Frame::PieceData { .. })),
            "donations resume after quarantine expiry: {out:?}"
        );
    }

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let c = content();
        let mut p = PeerRuntime::new(NodeId(5), PeerRole::Compliant, c, NetConfig::default(), 11);
        // Fabricate durable state across every checkpointed table.
        let mut out = Outbox::new();
        p.complete_piece(3.0, 2, c.piece(2), &mut out);
        p.ledger.insert(7, 2);
        p.escrow.insert((9, 1), vec![(4, [0xAB; KEY_WIRE_SIZE])]);
        p.recips_seen.entry((9, 1)).or_default().insert(4);
        p.gifted.insert((6, 0), 2.0);
        p.counters.decrypted = 1;
        p.counters.frame_rejects = 5;
        let cp = p.checkpoint();
        assert_eq!(cp.held_pieces(), 1);
        assert_eq!(cp.escrow_entries(), 1);
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, cp);
    }

    #[test]
    fn restore_rebuilds_plaintext_and_salts_the_rng() {
        let c = content();
        let mut p = PeerRuntime::new(NodeId(5), PeerRole::Compliant, c, NetConfig::default(), 11);
        let mut out = Outbox::new();
        p.complete_piece(3.0, 2, c.piece(2), &mut out);
        p.complete_piece(4.0, 6, c.piece(6), &mut out);
        let cp = p.checkpoint();
        let mut r = PeerRuntime::restore(&cp, c, NetConfig::default(), 11, cp.generation() + 1)
            .expect("restore");
        assert_eq!(r.generation(), 1);
        assert_eq!(r.have_count(), 2);
        assert_eq!(r.piece_bytes(2).unwrap(), &c.piece(2)[..], "plaintext regenerated");
        assert_eq!(r.piece_bytes(6).unwrap(), &c.piece(6)[..]);
        assert!(r.neighbors.is_empty(), "rejoin starts with a fresh neighbor set");
        assert!(!r.departed());
        // The restored incarnation's RNG stream must differ from the
        // original's (fresh generation salt), or restarted peers would
        // replay their dead incarnation's choices.
        let (orig, restored): (Vec<u64>, Vec<u64>) = (
            (0..8).map(|_| p.rng.f64().to_bits()).collect(),
            (0..8).map(|_| r.rng.f64().to_bits()).collect(),
        );
        assert_ne!(orig, restored);
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors() {
        let c = content();
        let p = PeerRuntime::new(NodeId(5), PeerRole::Compliant, c, NetConfig::default(), 11);
        let bytes = p.checkpoint().to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes[..3]), Err(CheckpointError::Truncated));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(Checkpoint::from_bytes(&bad_magic), Err(CheckpointError::BadMagic));
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert_eq!(Checkpoint::from_bytes(&bad_version), Err(CheckpointError::BadVersion));
        let mut bad_role = bytes.clone();
        bad_role[10] = 9;
        assert_eq!(Checkpoint::from_bytes(&bad_role), Err(CheckpointError::BadRole));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(Checkpoint::from_bytes(&trailing), Err(CheckpointError::TrailingBytes));
        // A checkpoint for different content is refused at restore time.
        let other = Content { seed: 1, pieces: 4, piece_len: 64 };
        let err = PeerRuntime::restore(&p.checkpoint(), other, NetConfig::default(), 11, 1)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, CheckpointError::PieceOutOfRange);
    }
}
